//! Section 3 — the clock synchronizers α*, β*, γ*.
//!
//! Cost-metric reproduction: `src/bin/report.rs` §7.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csp_bench::clock_workload;
use csp_graph::NodeId;
use csp_sim::DelayModel;
use csp_sync::clock::{run_alpha_star, run_beta_star, run_gamma_star};
use std::hint::black_box;

fn bench_clock(c: &mut Criterion) {
    let mut group = c.benchmark_group("clock_sync");
    group.sample_size(12);
    for n in [12usize, 20] {
        let w = clock_workload(n, 1_000);
        let pulses = 4;
        group.bench_with_input(BenchmarkId::new("alpha", n), &w, |b, w| {
            b.iter(|| {
                black_box(run_alpha_star(&w.graph, pulses, DelayModel::WorstCase, 0).unwrap())
            })
        });
        group.bench_with_input(BenchmarkId::new("beta", n), &w, |b, w| {
            b.iter(|| {
                black_box(
                    run_beta_star(&w.graph, NodeId::new(0), pulses, DelayModel::WorstCase, 0)
                        .unwrap(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("gamma", n), &w, |b, w| {
            b.iter(|| {
                black_box(run_gamma_star(&w.graph, pulses, DelayModel::WorstCase, 0).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_clock);
criterion_main!(benches);
