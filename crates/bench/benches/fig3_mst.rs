//! Figure 3 — the four MST algorithms.
//!
//! Cost-metric reproduction: `src/bin/report.rs` §3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csp_algo::mst::{run_mst_centr, run_mst_fast, run_mst_ghs, run_mst_hybrid};
use csp_bench::fig3_workloads;
use csp_graph::NodeId;
use csp_sim::DelayModel;
use std::hint::black_box;

fn bench_mst(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_mst");
    group.sample_size(12);
    let workloads = fig3_workloads();
    for w in &workloads {
        group.bench_with_input(BenchmarkId::new("ghs", &w.name), w, |b, w| {
            b.iter(|| {
                black_box(run_mst_ghs(&w.graph, NodeId::new(0), DelayModel::WorstCase, 0).unwrap())
            })
        });
        group.bench_with_input(BenchmarkId::new("centr", &w.name), w, |b, w| {
            b.iter(|| {
                black_box(
                    run_mst_centr(&w.graph, NodeId::new(0), DelayModel::WorstCase, 0).unwrap(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("fast", &w.name), w, |b, w| {
            b.iter(|| {
                black_box(run_mst_fast(&w.graph, NodeId::new(0), DelayModel::WorstCase, 0).unwrap())
            })
        });
        group.bench_with_input(BenchmarkId::new("hybrid", &w.name), w, |b, w| {
            b.iter(|| {
                black_box(
                    run_mst_hybrid(&w.graph, NodeId::new(0), DelayModel::WorstCase, 0).unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mst);
criterion_main!(benches);
