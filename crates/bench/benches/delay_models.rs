//! Ablation — sensitivity of protocol costs to the delay adversary.
//!
//! Communication costs are schedule-independent for deterministic
//! protocols; completion time is what the adversary moves. This bench
//! tracks simulator throughput across the delay models.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csp_algo::mst::run_mst_ghs;
use csp_graph::{generators, NodeId};
use csp_sim::DelayModel;
use std::hint::black_box;

fn bench_delays(c: &mut Criterion) {
    let mut group = c.benchmark_group("delay_models");
    group.sample_size(15);
    let g = generators::connected_gnp(24, 0.2, generators::WeightDist::Uniform(1, 24), 13);
    for (label, delay) in [
        ("worst_case", DelayModel::WorstCase),
        ("uniform", DelayModel::Uniform),
        ("half", DelayModel::Proportional { num: 1, den: 2 }),
        ("eager", DelayModel::Eager),
    ] {
        group.bench_with_input(BenchmarkId::new("ghs", label), &delay, |b, &delay| {
            b.iter(|| black_box(run_mst_ghs(&g, NodeId::new(0), delay, 1).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_delays);
criterion_main!(benches);
