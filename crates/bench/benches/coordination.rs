//! Coordination primitives: leader election, termination detection, and
//! the echo (PIF) pattern.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csp_algo::cast::{flood_tree, run_echo};
use csp_algo::flood::Flood;
use csp_algo::leader::run_leader_election;
use csp_algo::termination::run_with_termination_detection;
use csp_graph::{generators, NodeId};
use csp_sim::DelayModel;
use std::hint::black_box;

fn bench_coordination(c: &mut Criterion) {
    let mut group = c.benchmark_group("coordination");
    group.sample_size(15);
    for n in [16usize, 32] {
        let g = generators::connected_gnp(n, 0.2, generators::WeightDist::Uniform(1, 12), 7);
        group.bench_with_input(BenchmarkId::new("leader_election", n), &g, |b, g| {
            b.iter(|| black_box(run_leader_election(g, DelayModel::WorstCase, 0).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("termination_detection", n), &g, |b, g| {
            b.iter(|| {
                black_box(
                    run_with_termination_detection(
                        g,
                        NodeId::new(0),
                        DelayModel::WorstCase,
                        0,
                        |v, _| Flood::new(v == NodeId::new(0)),
                    )
                    .unwrap(),
                )
            })
        });
        let tree = flood_tree(&g, NodeId::new(0), DelayModel::WorstCase, 0).unwrap();
        group.bench_with_input(BenchmarkId::new("echo", n), &g, |b, g| {
            b.iter(|| black_box(run_echo(g, &tree, 9, DelayModel::WorstCase, 0).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_coordination);
criterion_main!(benches);
