//! Figures 7–8 — the lower-bound family G_n: construction and the cost
//! of spanning it.
//!
//! Cost-metric reproduction: `src/bin/report.rs` §6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csp_algo::flood::run_flood;
use csp_algo::mst::run_mst_centr;
use csp_graph::{generators, NodeId};
use csp_sim::DelayModel;
use std::hint::black_box;

fn bench_lower_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_lower_bound");
    group.sample_size(15);
    for n in [12usize, 20, 28] {
        group.bench_with_input(BenchmarkId::new("construct", n), &n, |b, &n| {
            b.iter(|| black_box(generators::lower_bound_family(n, 8)))
        });
        let g = generators::lower_bound_family(n, 8);
        group.bench_with_input(BenchmarkId::new("flood", n), &g, |b, g| {
            b.iter(|| black_box(run_flood(g, NodeId::new(0), DelayModel::WorstCase, 0).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("mst_centr", n), &g, |b, g| {
            b.iter(|| {
                black_box(run_mst_centr(g, NodeId::new(0), DelayModel::WorstCase, 0).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lower_bound);
criterion_main!(benches);
