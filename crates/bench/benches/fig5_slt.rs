//! Figures 5–6 — the shallow-light tree construction (q ablation).
//!
//! Cost-metric reproduction: `src/bin/report.rs` §5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csp_graph::slt::{shallow_light_tree_with_rule, BreakpointRule};
use csp_graph::{generators, NodeId};
use std::hint::black_box;

fn bench_slt(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_slt");
    group.sample_size(20);
    let g = generators::connected_gnp(96, 0.08, generators::WeightDist::Uniform(1, 64), 9);
    for q in [1u64, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("root_path", q), &q, |b, &q| {
            b.iter(|| {
                black_box(shallow_light_tree_with_rule(
                    &g,
                    NodeId::new(0),
                    q,
                    BreakpointRule::RootPath,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("consecutive", q), &q, |b, &q| {
            b.iter(|| {
                black_box(shallow_light_tree_with_rule(
                    &g,
                    NodeId::new(0),
                    q,
                    BreakpointRule::ConsecutivePairs,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_slt);
criterion_main!(benches);
