//! Section 4 — synchronizer γ_w hosting a synchronous protocol, with the
//! cluster-parameter k ablation.
//!
//! Cost-metric reproduction: `src/bin/report.rs` §8.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csp_algo::spt::run_spt_synch;
use csp_graph::{generators, NodeId};
use csp_sim::DelayModel;
use std::hint::black_box;

fn bench_synchronizer(c: &mut Criterion) {
    let mut group = c.benchmark_group("synchronizer");
    group.sample_size(10);
    let g = generators::connected_gnp(16, 0.2, generators::WeightDist::Uniform(1, 8), 7);
    for k in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("spt_under_gamma_w", k), &k, |b, &k| {
            b.iter(|| {
                black_box(run_spt_synch(&g, NodeId::new(0), k, DelayModel::WorstCase, 0).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_synchronizer);
criterion_main!(benches);
