//! Figure 1 — global function computation over SLT / MST / SPT trees.
//!
//! Wall-clock of the simulated convergecast+broadcast; the cost-metric
//! reproduction of the figure lives in `src/bin/report.rs` (§1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csp_algo::global::{compute_global, Max, TreeKind};
use csp_bench::random_sweep;
use csp_graph::NodeId;
use csp_sim::DelayModel;
use std::hint::black_box;

fn bench_global(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_global");
    group.sample_size(20);
    for w in random_sweep(&[16, 32, 64], 3) {
        let inputs: Vec<u64> = (0..w.params.n as u64).collect();
        for (label, kind) in [
            ("slt", TreeKind::Slt { q: 2 }),
            ("mst", TreeKind::Mst),
            ("spt", TreeKind::Spt),
        ] {
            group.bench_with_input(BenchmarkId::new(label, w.params.n), &w, |b, w| {
                b.iter(|| {
                    let out = compute_global(
                        &w.graph,
                        NodeId::new(0),
                        Max,
                        black_box(&inputs),
                        kind,
                        DelayModel::WorstCase,
                    )
                    .unwrap();
                    black_box(out.value)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_global);
criterion_main!(benches);
