//! Figure 4 (+ Figure 9) — the SPT algorithms and the strip sweep.
//!
//! Cost-metric reproduction: `src/bin/report.rs` §4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csp_algo::spt::synch::run_spt_synch_ideal;
use csp_algo::spt::{run_spt_centr, run_spt_recur, run_spt_synch};
use csp_graph::{generators, NodeId};
use csp_sim::DelayModel;
use std::hint::black_box;

fn bench_spt(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_spt");
    group.sample_size(12);
    let g = generators::connected_gnp(20, 0.2, generators::WeightDist::Uniform(1, 12), 11);
    group.bench_function("centr", |b| {
        b.iter(|| black_box(run_spt_centr(&g, NodeId::new(0), DelayModel::WorstCase, 0).unwrap()))
    });
    // Figure 9: the strip-depth sweep.
    for delta in [1u64, 4, 16, 64] {
        group.bench_with_input(BenchmarkId::new("recur", delta), &delta, |b, &delta| {
            b.iter(|| {
                black_box(
                    run_spt_recur(&g, NodeId::new(0), delta, DelayModel::WorstCase, 0).unwrap(),
                )
            })
        });
    }
    group.bench_function("synch_ideal", |b| {
        b.iter(|| black_box(run_spt_synch_ideal(&g, NodeId::new(0))))
    });
    group.bench_function("synch_gamma_w_k2", |b| {
        b.iter(|| {
            black_box(run_spt_synch(&g, NodeId::new(0), 2, DelayModel::WorstCase, 0).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_spt);
criterion_main!(benches);
