//! Figure 2 — connectivity algorithms on both adversarial regimes.
//!
//! Cost-metric reproduction: `src/bin/report.rs` §2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csp_algo::con_hybrid::run_con_hybrid;
use csp_algo::dfs::run_dfs;
use csp_algo::flood::run_flood;
use csp_bench::{regime_a, regime_b};
use csp_graph::NodeId;
use csp_sim::DelayModel;
use std::hint::black_box;

fn bench_connectivity(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_connectivity");
    group.sample_size(15);
    for w in [regime_a(32), regime_b(24, 8)] {
        group.bench_with_input(BenchmarkId::new("flood", &w.name), &w, |b, w| {
            b.iter(|| {
                black_box(run_flood(&w.graph, NodeId::new(0), DelayModel::WorstCase, 0).unwrap())
            })
        });
        group.bench_with_input(BenchmarkId::new("dfs", &w.name), &w, |b, w| {
            b.iter(|| {
                black_box(run_dfs(&w.graph, NodeId::new(0), DelayModel::WorstCase, 0).unwrap())
            })
        });
        group.bench_with_input(BenchmarkId::new("hybrid", &w.name), &w, |b, w| {
            b.iter(|| {
                black_box(
                    run_con_hybrid(&w.graph, NodeId::new(0), DelayModel::WorstCase, 0).unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_connectivity);
criterion_main!(benches);
