//! Section 5 — the execution-tree controller taming a runaway protocol.
//!
//! Cost-metric reproduction: `src/bin/report.rs` §9.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csp_control::{run_controlled, GrantPolicy};
use csp_graph::{generators, NodeId};
use csp_sim::{Context, DelayModel, Process};
use std::hint::black_box;

#[derive(Debug)]
struct Echo {
    initiator: bool,
}

impl Process for Echo {
    type Msg = u32;

    fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
        if self.initiator {
            let targets: Vec<NodeId> = ctx.neighbors().map(|(u, _, _)| u).collect();
            for u in targets {
                ctx.send(u, 0);
            }
        }
    }

    fn on_message(&mut self, from: NodeId, b: u32, ctx: &mut Context<'_, u32>) {
        ctx.send(from, b + 1);
    }
}

fn bench_controller(c: &mut Criterion) {
    let mut group = c.benchmark_group("controller");
    group.sample_size(15);
    let g = generators::grid(4, 4, generators::WeightDist::Uniform(1, 6), 3);
    for threshold in [200u64, 1600] {
        for policy in [GrantPolicy::Naive, GrantPolicy::Caching] {
            group.bench_with_input(
                BenchmarkId::new(format!("{policy:?}"), threshold),
                &threshold,
                |b, &threshold| {
                    b.iter(|| {
                        black_box(
                            run_controlled(
                                &g,
                                NodeId::new(0),
                                threshold,
                                policy,
                                DelayModel::WorstCase,
                                0,
                                |v, _| Echo {
                                    initiator: v == NodeId::new(0),
                                },
                            )
                            .unwrap(),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_controller);
criterion_main!(benches);
