//! Throughput of the `csp-adversary` machinery: record overhead over a
//! plain oracle run, schedule replay, and the full search pipeline at a
//! small budget.
//!
//! The interesting ratio is record/replay vs the bare simulator run —
//! the adversary hook must stay cheap enough to fan out thousands of
//! probes per search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csp_adversary::{find_worst_schedule, replay, Fallback, Recorder, SearchConfig};
use csp_algo::mst::ghs::Ghs;
use csp_algo::spt::recur::SptRecur;
use csp_graph::{generators, NodeId, WeightedGraph};
use csp_sim::{DelayModel, ModelOracle, Simulator};
use std::hint::black_box;

fn workload() -> WeightedGraph {
    generators::connected_gnp(16, 0.25, generators::WeightDist::Uniform(1, 32), 7)
}

fn bench_record_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("adversary_record_replay");
    group.sample_size(20);
    let g = workload();

    group.bench_function("ghs_bare_run", |b| {
        b.iter(|| {
            black_box(
                Simulator::new(&g)
                    .delay(DelayModel::WorstCase)
                    .run(Ghs::new)
                    .unwrap(),
            )
        })
    });
    group.bench_function("ghs_recorded_run", |b| {
        b.iter(|| {
            let mut rec = Recorder::new(ModelOracle::new(DelayModel::WorstCase, 0));
            let run = Simulator::new(&g)
                .run_with_oracle(&mut rec, Ghs::new)
                .unwrap();
            black_box((run, rec.into_schedule(Fallback::WorstCase)))
        })
    });

    let mut rec = Recorder::new(ModelOracle::new(DelayModel::WorstCase, 0));
    Simulator::new(&g)
        .run_with_oracle(&mut rec, Ghs::new)
        .unwrap();
    let schedule = rec.into_schedule(Fallback::WorstCase);
    group.bench_function("ghs_replay", |b| {
        b.iter(|| black_box(replay(&g, Ghs::new, &schedule)))
    });
    group.finish();
}

fn bench_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("adversary_search");
    group.sample_size(10);
    let g = workload();
    let cfg = SearchConfig::builder()
        .random_probes(8)
        .hill_rounds(3)
        .candidates_per_round(4)
        .build()
        .expect("bench search config is statically valid");
    let root = NodeId::new(0);
    group.bench_with_input(BenchmarkId::new("find_worst", "ghs"), &g, |b, g| {
        b.iter(|| black_box(find_worst_schedule(g, Ghs::new, &cfg)))
    });
    group.bench_with_input(BenchmarkId::new("find_worst", "spt_recur"), &g, |b, g| {
        b.iter(|| {
            black_box(find_worst_schedule(
                g,
                |v, _| SptRecur::new(v, root, 1 << 40),
                &cfg,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_record_replay, bench_search);
criterion_main!(benches);
