//! Fault-search throughput: what enabling drop/crash search costs the
//! adversary loop, measured on the retransmission-wrapped protocol the
//! fault model exists for.
//!
//! ```text
//! cargo run -p csp-bench --release --bin fault_search_bench \
//!     [-- out.json [budget]]
//! ```
//!
//! Each workload runs `find_worst_schedule` over `Reliable<SPT_recur>`
//! twice with an identical budget: once delay-only (the pre-fault
//! search, `drop_flips = 0`) and once with drop mutation and crash
//! probes enabled. Reported per workload and aggregate: candidate
//! evaluations per second for both modes, their ratio
//! (`relative_throughput` — how much of the delay-only speed the fault
//! search keeps), and the completion-time gain the fault adversary buys
//! (`fault_gain = fault_best / delay_best`). The report lands in
//! `BENCH_fault_search.json` (schema pinned by CI).

use csp_adversary::{find_worst_schedule, SearchConfig, SearchOutcome};
use csp_algo::spt::recur::SptRecur;
use csp_graph::{generators, NodeId, WeightedGraph};
use csp_sim::Reliable;
use std::time::Instant;

/// Strip depth putting `SPT_recur` in its single-strip regime.
const ONE_STRIP: u64 = 1 << 40;

/// Retry bound for the wrapper: enough to out-last any searched drop
/// schedule on these instances.
const MAX_RETRIES: u32 = 3;

fn make(v: NodeId, _: &WeightedGraph) -> Reliable<SptRecur> {
    Reliable::new(SptRecur::new(v, NodeId::new(0), ONE_STRIP), MAX_RETRIES)
}

fn workloads() -> Vec<(&'static str, WeightedGraph)> {
    vec![
        (
            "gnp-n12",
            generators::connected_gnp(12, 0.3, generators::WeightDist::Uniform(1, 16), 42),
        ),
        ("heavy-chord-n12", generators::heavy_chord_cycle(12, 64)),
    ]
}

struct ModeRun {
    outcome: SearchOutcome,
    secs: f64,
}

fn run_mode(g: &WeightedGraph, cfg: &SearchConfig) -> ModeRun {
    let start = Instant::now();
    let outcome = find_worst_schedule(g, make, cfg);
    ModeRun {
        outcome,
        secs: start.elapsed().as_secs_f64(),
    }
}

fn eps(m: &ModeRun) -> f64 {
    m.outcome.evaluations as f64 / m.secs
}

fn main() {
    let mut args = std::env::args().skip(1);
    let out_path = args
        .next()
        .unwrap_or_else(|| "BENCH_fault_search.json".to_string());
    let budget: usize = args
        .next()
        .map(|s| s.parse().expect("budget must be an integer"))
        .unwrap_or(16);

    let base = SearchConfig::builder()
        .random_probes(budget)
        .hill_rounds(budget / 2)
        .candidates_per_round(4)
        .polish_passes(1);
    let delay_cfg = base.build().expect("delay-only config is valid");
    let fault_cfg = base
        .drop_flips(2)
        .crash_probes(2)
        .build()
        .expect("fault config is valid");

    let mut rows = Vec::new();
    let (mut d_evals, mut d_secs) = (0usize, 0.0f64);
    let (mut f_evals, mut f_secs) = (0usize, 0.0f64);
    for (name, g) in workloads() {
        let delay = run_mode(&g, &delay_cfg);
        let fault = run_mode(&g, &fault_cfg);
        let gain = fault.outcome.best_time.get() as f64 / delay.outcome.best_time.get() as f64;
        eprintln!(
            "{:<16} delay {:>7.0} eval/s (best {})  fault {:>7.0} eval/s (best {}, {} drops)  gain {:.3}x",
            name,
            eps(&delay),
            delay.outcome.best_time,
            eps(&fault),
            fault.outcome.best_time,
            fault.outcome.schedule.dropped_count(),
            gain,
        );
        d_evals += delay.outcome.evaluations;
        d_secs += delay.secs;
        f_evals += fault.outcome.evaluations;
        f_secs += fault.secs;
        rows.push(format!(
            concat!(
                "    {{\"workload\": \"{}\", \"delay_evaluations\": {}, ",
                "\"fault_evaluations\": {}, \"delay_eval_per_s\": {:.1}, ",
                "\"fault_eval_per_s\": {:.1}, \"delay_best_time\": {}, ",
                "\"fault_best_time\": {}, \"fault_drops\": {}, ",
                "\"fault_crashes\": {}, \"fault_gain\": {:.3}}}"
            ),
            name,
            delay.outcome.evaluations,
            fault.outcome.evaluations,
            eps(&delay),
            eps(&fault),
            delay.outcome.best_time.get(),
            fault.outcome.best_time.get(),
            fault.outcome.schedule.dropped_count(),
            fault.outcome.schedule.crashes.len(),
            gain,
        ));
    }

    let delay_eps = d_evals as f64 / d_secs;
    let fault_eps = f_evals as f64 / f_secs;
    let relative = fault_eps / delay_eps;
    eprintln!(
        "aggregate: delay {delay_eps:.0} eval/s, fault {fault_eps:.0} eval/s ({relative:.2}x relative throughput)"
    );

    let json = format!(
        "{{\n  \"bench\": \"fault_search_evaluations_per_second\",\n  \
         \"protocol\": \"Reliable<SPT_recur> (single strip)\",\n  \
         \"delay_mode\": \"drop_flips 0, crash_probes 0 (pre-fault search)\",\n  \
         \"fault_mode\": \"drop_flips 2, crash_probes 2\",\n  \
         \"budget\": {budget},\n  \
         \"delay_eval_per_s\": {delay_eps:.1},\n  \
         \"fault_eval_per_s\": {fault_eps:.1},\n  \
         \"relative_throughput\": {relative:.3},\n  \"per_workload\": [\n{}\n  ]\n}}\n",
        rows.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("write bench JSON");
    eprintln!("wrote {out_path}");
}
