//! Workload generator CLI: dumps any of the library's graph families as
//! a plain edge list (parseable by `csp_graph::io::parse_edge_list`).
//!
//! ```text
//! cargo run -p csp-bench --bin workload -- lower-bound 24 8
//! cargo run -p csp-bench --bin workload -- gnp 64 0.1 32 7
//! cargo run -p csp-bench --bin workload -- list
//! ```

use csp_graph::generators::{self, WeightDist};
use csp_graph::io::to_edge_list;
use csp_graph::params::CostParams;
use csp_graph::WeightedGraph;
use std::process::ExitCode;

const USAGE: &str = "\
usage: workload <family> <args…>

families:
  gnp <n> <p> <wmax> <seed>      connected Erdős–Rényi, uniform weights 1..=wmax
  grid <rows> <cols> <wmax> <seed>
  torus <rows> <cols> <wmax> <seed>
  hypercube <dim> <max_exp> <seed>   power-of-two weights 2^0..2^max_exp
  tree <n> <wmax> <seed>
  lower-bound <n> <x>            the Figure-7 family G_n
  split <n> <x> <i>              the Figure-8 family G'_{n,i}
  chords <n> <heavy>             light cycle + heavy chords (d ≪ W)
  sparse-heavy <n> <heavy> <seed>
  cluster <clusters> <size> <heavy> <seed>
  list                           print this family list
";

fn parse<T: std::str::FromStr>(args: &[String], i: usize, what: &str) -> Result<T, String> {
    args.get(i)
        .ok_or_else(|| format!("missing argument <{what}>"))?
        .parse()
        .map_err(|_| format!("bad <{what}>: {:?}", args[i]))
}

fn build(args: &[String]) -> Result<WeightedGraph, String> {
    let family = args.first().map(String::as_str).ok_or(USAGE.to_string())?;
    let g = match family {
        "gnp" => generators::connected_gnp(
            parse(args, 1, "n")?,
            parse(args, 2, "p")?,
            WeightDist::Uniform(1, parse(args, 3, "wmax")?),
            parse(args, 4, "seed")?,
        ),
        "grid" => generators::grid(
            parse(args, 1, "rows")?,
            parse(args, 2, "cols")?,
            WeightDist::Uniform(1, parse(args, 3, "wmax")?),
            parse(args, 4, "seed")?,
        ),
        "torus" => generators::torus(
            parse(args, 1, "rows")?,
            parse(args, 2, "cols")?,
            WeightDist::Uniform(1, parse(args, 3, "wmax")?),
            parse(args, 4, "seed")?,
        ),
        "hypercube" => generators::hypercube(
            parse(args, 1, "dim")?,
            WeightDist::PowerOfTwo(parse(args, 2, "max_exp")?),
            parse(args, 3, "seed")?,
        ),
        "tree" => generators::random_tree(
            parse(args, 1, "n")?,
            WeightDist::Uniform(1, parse(args, 2, "wmax")?),
            parse(args, 3, "seed")?,
        ),
        "lower-bound" => generators::lower_bound_family(parse(args, 1, "n")?, parse(args, 2, "x")?),
        "split" => generators::lower_bound_split(
            parse(args, 1, "n")?,
            parse(args, 2, "x")?,
            parse(args, 3, "i")?,
        ),
        "chords" => generators::heavy_chord_cycle(parse(args, 1, "n")?, parse(args, 2, "heavy")?),
        "sparse-heavy" => generators::sparse_heavy_path(
            parse(args, 1, "n")?,
            parse(args, 2, "heavy")?,
            parse(args, 3, "seed")?,
        ),
        "cluster" => generators::cluster_graph(
            parse(args, 1, "clusters")?,
            parse(args, 2, "size")?,
            parse(args, 3, "heavy")?,
            parse(args, 4, "seed")?,
        ),
        "list" | "--help" | "-h" => return Err(USAGE.to_string()),
        other => return Err(format!("unknown family {other:?}\n\n{USAGE}")),
    };
    Ok(g)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match build(&args) {
        Ok(g) => {
            let p = CostParams::of(&g);
            print!("# {p}\n{}", to_edge_list(&g));
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn every_family_builds() {
        for cmd in [
            "gnp 16 0.2 8 3",
            "grid 3 4 5 1",
            "torus 3 3 4 1",
            "hypercube 3 2 1",
            "tree 10 6 2",
            "lower-bound 10 4",
            "split 10 4 1",
            "chords 10 100",
            "sparse-heavy 12 50 1",
            "cluster 2 4 20 1",
        ] {
            let g = build(&argv(cmd)).unwrap_or_else(|e| panic!("{cmd}: {e}"));
            assert!(g.node_count() > 0, "{cmd}");
        }
    }

    #[test]
    fn errors_are_helpful() {
        assert!(build(&argv("gnp 16"))
            .unwrap_err()
            .contains("missing argument"));
        assert!(build(&argv("nope 1"))
            .unwrap_err()
            .contains("unknown family"));
        assert!(build(&argv("list")).unwrap_err().contains("families:"));
    }

    #[test]
    fn output_round_trips() {
        let g = build(&argv("lower-bound 12 5")).unwrap();
        let text = to_edge_list(&g);
        let back = csp_graph::io::parse_edge_list(&text).unwrap();
        assert_eq!(back.total_weight(), g.total_weight());
    }
}
