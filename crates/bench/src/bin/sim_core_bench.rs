//! Events-per-second microbench covering every executor: the flat-array
//! asynchronous event core ([`Simulator`]) with its default bucket
//! queue, the same core on the retained `BinaryHeap` reference queue
//! ([`CoreKind::Heap`]), and the retained `HashMap` reference core
//! ([`BaselineSimulator`]), all running GHS — the chattiest protocol in
//! the workspace — plus the lock-step [`SyncRunner`] running
//! `SPT_synch`, on the Figure-3 MST workloads.
//!
//! ```text
//! cargo run -p csp-bench --release --bin sim_core_bench [-- out.json]
//! ```
//!
//! Writes a hand-rolled JSON report (default `BENCH_sim_core.json`)
//! with per-workload and aggregate events/sec for all asynchronous
//! cores, the flat-vs-baseline speedup ratio, and the synchronous
//! executor's rate.
//! "Event" = one delivered message; with no communication budget both
//! asynchronous cores deliver every message they meter, so their event
//! counts are identical by construction (and asserted).

use csp_algo::mst::ghs::Ghs;
use csp_algo::spt::synch::SptSynch;
use csp_bench::fig3_workloads;
use csp_graph::{NodeId, WeightedGraph};
use csp_sim::{BaselineSimulator, CoreKind, DelayModel, Simulator, SyncRunner};
use std::hint::black_box;
use std::time::Instant;

/// Seeds swept per workload — enough runs that per-run noise averages
/// out without the bench taking more than a few seconds in release.
const SEEDS: [u64; 4] = [0, 1, 2, 3];
/// Timed repetitions of the full seed sweep per core.
const REPS: u32 = 30;
/// Untimed warm-up repetitions (page in code + allocator state).
const WARMUP: u32 = 3;

struct CoreRate {
    events: u64,
    secs: f64,
}

impl CoreRate {
    fn eps(&self) -> f64 {
        self.events as f64 / self.secs
    }
}

fn run_flat(g: &WeightedGraph, seed: u64) -> u64 {
    let out = Simulator::new(g)
        .delay(DelayModel::WorstCase)
        .seed(seed)
        .run(Ghs::new)
        .expect("flat GHS run");
    black_box(out.cost.messages)
}

fn run_heap(g: &WeightedGraph, seed: u64) -> u64 {
    let out = Simulator::new(g)
        .core(CoreKind::Heap)
        .delay(DelayModel::WorstCase)
        .seed(seed)
        .run(Ghs::new)
        .expect("heap GHS run");
    black_box(out.cost.messages)
}

fn run_baseline(g: &WeightedGraph, seed: u64) -> u64 {
    let out = BaselineSimulator::new(g)
        .delay(DelayModel::WorstCase)
        .seed(seed)
        .run(Ghs::new)
        .expect("baseline GHS run");
    black_box(out.cost.messages)
}

fn run_sync(g: &WeightedGraph, _seed: u64) -> u64 {
    // SPT_synch is deterministic (lock-step), so the seed is unused; the
    // sweep still runs once per seed to keep the rep structure of the
    // async measurements.
    let out = SyncRunner::new(g)
        .run(|v, _| SptSynch::new(v, NodeId::new(0)))
        .expect("synchronous SPT run");
    black_box(out.cost.messages)
}

fn measure(g: &WeightedGraph, run: impl Fn(&WeightedGraph, u64) -> u64) -> CoreRate {
    for _ in 0..WARMUP {
        for s in SEEDS {
            run(g, s);
        }
    }
    let mut events = 0u64;
    let start = Instant::now();
    for _ in 0..REPS {
        for s in SEEDS {
            events += run(g, s);
        }
    }
    CoreRate {
        events,
        secs: start.elapsed().as_secs_f64(),
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_sim_core.json".to_string());

    let workloads = fig3_workloads();
    let mut rows = Vec::new();
    let (mut base_events, mut base_secs) = (0u64, 0.0f64);
    let (mut flat_events, mut flat_secs) = (0u64, 0.0f64);
    let (mut heap_events, mut heap_secs) = (0u64, 0.0f64);
    let (mut sync_events, mut sync_secs) = (0u64, 0.0f64);

    for w in &workloads {
        // Interleave the cores per workload so thermal / allocator
        // drift hits all sides equally.
        let base = measure(&w.graph, run_baseline);
        let heap = measure(&w.graph, run_heap);
        let flat = measure(&w.graph, run_flat);
        let sync = measure(&w.graph, run_sync);
        assert_eq!(
            base.events, flat.events,
            "{}: the async cores must deliver identical event counts",
            w.name
        );
        assert_eq!(
            heap.events, flat.events,
            "{}: the async cores must deliver identical event counts",
            w.name
        );
        let speedup = flat.eps() / base.eps();
        eprintln!(
            "{:<24} events/rep {:>8}  baseline {:>12.0} ev/s  heap {:>12.0} ev/s  flat {:>12.0} ev/s  speedup {speedup:.2}x  sync {:>12.0} ev/s",
            w.name,
            base.events / (REPS as u64 * SEEDS.len() as u64),
            base.eps(),
            heap.eps(),
            flat.eps(),
            sync.eps(),
        );
        base_events += base.events;
        base_secs += base.secs;
        flat_events += flat.events;
        flat_secs += flat.secs;
        heap_events += heap.events;
        heap_secs += heap.secs;
        sync_events += sync.events;
        sync_secs += sync.secs;
        rows.push(format!(
            concat!(
                "    {{\"workload\": \"{}\", \"events\": {}, ",
                "\"baseline_eps\": {:.0}, \"heap_eps\": {:.0}, \"flat_eps\": {:.0}, ",
                "\"speedup\": {:.3}, ",
                "\"sync_events\": {}, \"sync_eps\": {:.0}}}"
            ),
            json_escape(&w.name),
            base.events,
            base.eps(),
            heap.eps(),
            flat.eps(),
            speedup,
            sync.events,
            sync.eps(),
        ));
    }

    let baseline_eps = base_events as f64 / base_secs;
    let flat_eps = flat_events as f64 / flat_secs;
    let heap_eps = heap_events as f64 / heap_secs;
    let sync_eps = sync_events as f64 / sync_secs;
    let speedup = flat_eps / baseline_eps;
    eprintln!(
        "aggregate: baseline {baseline_eps:.0} ev/s, heap {heap_eps:.0} ev/s, flat {flat_eps:.0} ev/s, speedup {speedup:.2}x, sync {sync_eps:.0} ev/s"
    );

    let json = format!(
        "{{\n  \"bench\": \"sim_core_events_per_second\",\n  \"protocol\": \"GHS (MST)\",\n  \
         \"sync_protocol\": \"SPT_synch (lock-step SyncRunner)\",\n  \
         \"delay_model\": \"WorstCase\",\n  \"seeds_per_workload\": {},\n  \"reps\": {},\n  \
         \"baseline_eps\": {:.0},\n  \"heap_eps\": {:.0},\n  \"flat_eps\": {:.0},\n  \
         \"speedup\": {:.3},\n  \
         \"sync_eps\": {:.0},\n  \"per_workload\": [\n{}\n  ]\n}}\n",
        SEEDS.len(),
        REPS,
        baseline_eps,
        heap_eps,
        flat_eps,
        speedup,
        sync_eps,
        rows.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("write bench JSON");
    eprintln!("wrote {out_path}");
}
