//! Events-per-second microbench: the flat-array event core
//! ([`Simulator`]) against the retained `HashMap` reference core
//! ([`BaselineSimulator`]) on the Figure-3 MST workloads, running GHS —
//! the chattiest protocol in the workspace.
//!
//! ```text
//! cargo run -p csp-bench --release --bin sim_core_bench [-- out.json]
//! ```
//!
//! Writes a hand-rolled JSON report (default `BENCH_sim_core.json`)
//! with per-workload and aggregate events/sec for both cores and the
//! speedup ratio. "Event" = one delivered message; with no
//! communication budget both cores deliver every message they meter,
//! so the event counts are identical by construction (and asserted).

use csp_algo::mst::ghs::Ghs;
use csp_bench::fig3_workloads;
use csp_graph::WeightedGraph;
use csp_sim::{BaselineSimulator, DelayModel, Simulator};
use std::hint::black_box;
use std::time::Instant;

/// Seeds swept per workload — enough runs that per-run noise averages
/// out without the bench taking more than a few seconds in release.
const SEEDS: [u64; 4] = [0, 1, 2, 3];
/// Timed repetitions of the full seed sweep per core.
const REPS: u32 = 30;
/// Untimed warm-up repetitions (page in code + allocator state).
const WARMUP: u32 = 3;

struct CoreRate {
    events: u64,
    secs: f64,
}

impl CoreRate {
    fn eps(&self) -> f64 {
        self.events as f64 / self.secs
    }
}

fn run_flat(g: &WeightedGraph, seed: u64) -> u64 {
    let out = Simulator::new(g)
        .delay(DelayModel::WorstCase)
        .seed(seed)
        .run(Ghs::new)
        .expect("flat GHS run");
    black_box(out.cost.messages)
}

fn run_baseline(g: &WeightedGraph, seed: u64) -> u64 {
    let out = BaselineSimulator::new(g)
        .delay(DelayModel::WorstCase)
        .seed(seed)
        .run(Ghs::new)
        .expect("baseline GHS run");
    black_box(out.cost.messages)
}

fn measure(g: &WeightedGraph, run: impl Fn(&WeightedGraph, u64) -> u64) -> CoreRate {
    for _ in 0..WARMUP {
        for s in SEEDS {
            run(g, s);
        }
    }
    let mut events = 0u64;
    let start = Instant::now();
    for _ in 0..REPS {
        for s in SEEDS {
            events += run(g, s);
        }
    }
    CoreRate {
        events,
        secs: start.elapsed().as_secs_f64(),
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_sim_core.json".to_string());

    let workloads = fig3_workloads();
    let mut rows = Vec::new();
    let (mut base_events, mut base_secs) = (0u64, 0.0f64);
    let (mut flat_events, mut flat_secs) = (0u64, 0.0f64);

    for w in &workloads {
        // Interleave the two cores per workload so thermal / allocator
        // drift hits both sides equally.
        let base = measure(&w.graph, run_baseline);
        let flat = measure(&w.graph, run_flat);
        assert_eq!(
            base.events, flat.events,
            "{}: the two cores must deliver identical event counts",
            w.name
        );
        let speedup = flat.eps() / base.eps();
        eprintln!(
            "{:<24} events/rep {:>8}  baseline {:>12.0} ev/s  flat {:>12.0} ev/s  speedup {speedup:.2}x",
            w.name,
            base.events / (REPS as u64 * SEEDS.len() as u64),
            base.eps(),
            flat.eps(),
        );
        base_events += base.events;
        base_secs += base.secs;
        flat_events += flat.events;
        flat_secs += flat.secs;
        rows.push(format!(
            concat!(
                "    {{\"workload\": \"{}\", \"events\": {}, ",
                "\"baseline_eps\": {:.0}, \"flat_eps\": {:.0}, \"speedup\": {:.3}}}"
            ),
            json_escape(&w.name),
            base.events,
            base.eps(),
            flat.eps(),
            speedup,
        ));
    }

    let baseline_eps = base_events as f64 / base_secs;
    let flat_eps = flat_events as f64 / flat_secs;
    let speedup = flat_eps / baseline_eps;
    eprintln!("aggregate: baseline {baseline_eps:.0} ev/s, flat {flat_eps:.0} ev/s, speedup {speedup:.2}x");

    let json = format!(
        "{{\n  \"bench\": \"sim_core_events_per_second\",\n  \"protocol\": \"GHS (MST)\",\n  \
         \"delay_model\": \"WorstCase\",\n  \"seeds_per_workload\": {},\n  \"reps\": {},\n  \
         \"baseline_eps\": {:.0},\n  \"flat_eps\": {:.0},\n  \"speedup\": {:.3},\n  \
         \"per_workload\": [\n{}\n  ]\n}}\n",
        SEEDS.len(),
        REPS,
        baseline_eps,
        flat_eps,
        speedup,
        rows.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("write bench JSON");
    eprintln!("wrote {out_path}");
}
