//! Recovery traffic as a function of *churn rate*: what repeated
//! crash–rejoin cycles of the same victim cost on top of a churn-free
//! run of the self-healing stack.
//!
//! ```text
//! cargo run -p csp-bench --release --bin churn_bench \
//!     [-- out.json [points]]
//! ```
//!
//! Each workload runs the crash-tolerant weighted SPT
//! (`Detect<Resilient>`) under worst-case delays: once churn-free (the
//! baseline), then once per churn rate `k = 1..=points`, where rate `k`
//! packs `k` crash–rejoin cycles of the victim into its
//! guaranteed-detection window. Every rejoin waits out the victim's
//! largest channel `θ(e)` so each cycle is fully *observed*: the
//! survivors suspect, heal, then pay the `Auxiliary` re-announcement
//! bill to pull the blank incarnation back into the Bellman fixpoint.
//! Reported per point: weighted completion, weighted `Protocol` and
//! `Auxiliary` traffic, the recovery meter, and the ratio of protocol
//! traffic to the churn-free baseline (`churn_overhead`) — the
//! recovery-traffic-vs-churn-rate curve. Rates that do not fit the
//! window (heavy-weight instances fit only a few observable cycles) are
//! clamped to `max_cycles` and reported as such rather than silently
//! rescaled. The report lands in `BENCH_churn.json` (schema pinned by
//! CI).
//!
//! Runs are single-threaded and fully deterministic; `runs_per_s` is
//! wall-clock throughput on whatever host executed the bench (CI runs
//! on 1–2 core machines, so the committed number is *not* comparable to
//! a workstation's) — CI pins the schema and the overhead inequalities
//! only, never throughput.

use csp_algo::resilient::{run_resilient_spt, ResilientOutcome};
use csp_graph::{generators, NodeId, WeightedGraph};
use csp_sim::{ChurnOracle, CostClass, DelayModel, DetectConfig, ModelOracle, SimTime};
use std::time::Instant;

/// Detector tuning shared with the `self_healing` example and
/// `resilient_bench`: period 8 with 30 beats keeps the horizon past
/// tick 150 on these instances.
fn detector() -> DetectConfig {
    DetectConfig::new(8, 30, 0)
}

fn workloads() -> Vec<(&'static str, WeightedGraph)> {
    vec![
        (
            "gnp-n12",
            generators::connected_gnp(12, 0.3, generators::WeightDist::Uniform(1, 16), 42),
        ),
        (
            "gnp-n16",
            generators::connected_gnp(16, 0.25, generators::WeightDist::Uniform(1, 16), 7),
        ),
        ("heavy-chord-n12", generators::heavy_chord_cycle(12, 64)),
    ]
}

/// The non-source vertex carrying the most SPT children in the
/// churn-free run (ties broken by degree): every one of its cycles
/// orphans the largest subtree.
fn pick_victim(g: &WeightedGraph, baseline: &ResilientOutcome) -> NodeId {
    let mut children = vec![0usize; g.node_count()];
    for p in baseline.parents.iter().flatten() {
        children[p.index()] += 1;
    }
    g.nodes()
        .skip(1)
        .max_by_key(|&v| (children[v.index()], g.neighbors(v).count()))
        .expect("instance has more than one vertex")
}

fn run_churned(g: &WeightedGraph, victim: NodeId, chain: Vec<SimTime>) -> ResilientOutcome {
    let plans = if chain.is_empty() {
        vec![]
    } else {
        vec![(victim, chain)]
    };
    let mut oracle = ChurnOracle::new(ModelOracle::new(DelayModel::WorstCase, 0), plans, vec![]);
    run_resilient_spt(g, NodeId::new(0), &mut oracle, detector()).expect("run quiesces")
}

fn main() {
    let mut args = std::env::args().skip(1);
    let out_path = args
        .next()
        .unwrap_or_else(|| "BENCH_churn.json".to_string());
    let points: u64 = args
        .next()
        .map(|s| s.parse().expect("points must be an integer"))
        .unwrap_or(4);
    assert!(points > 0, "need at least one churn rate");

    let mut rows = Vec::new();
    let mut runs = 0u64;
    let start = Instant::now();
    for (name, g) in workloads() {
        let baseline = run_churned(&g, NodeId::new(0), vec![]);
        runs += 1;
        let base_protocol = baseline.cost.comm_of(CostClass::Protocol).get();
        let victim = pick_victim(&g, &baseline);
        let horizon = g
            .neighbors(victim)
            .map(|(_, _, w)| detector().detection_horizon(w.get()))
            .min()
            .expect("victim has neighbors");
        // Every rejoin waits out the victim's slowest channel, so each
        // cycle is suspected (and healed) before the resurrection.
        let gap = g
            .neighbors(victim)
            .map(|(_, _, w)| detector().theta(w.get()))
            .max()
            .expect("victim has neighbors")
            + 1;
        // Rate k needs k cycles of at least gap+1 ticks inside the
        // window; heavier instances fit fewer observable cycles.
        let max_cycles = ((horizon.saturating_sub(gap + 1)) / (gap + 1)).max(1);

        let mut curve = Vec::new();
        let mut max_overhead = 0.0f64;
        for k in 1..=points {
            let cycles = k.min(max_cycles);
            let stride = (horizon - gap - 1) / cycles;
            let mut chain = Vec::new();
            for i in 0..cycles {
                let crash_at = 1 + i * stride;
                chain.push(SimTime::new(crash_at));
                chain.push(SimTime::new(crash_at + gap));
            }
            let last_event = chain.last().unwrap().get();
            let out = run_churned(&g, victim, chain);
            runs += 1;
            let protocol = out.cost.comm_of(CostClass::Protocol).get();
            let auxiliary = out.cost.comm_of(CostClass::Auxiliary).get();
            let overhead = protocol as f64 / base_protocol as f64;
            max_overhead = max_overhead.max(overhead);
            curve.push(format!(
                concat!(
                    "        {{\"cycles\": {}, \"last_event\": {}, ",
                    "\"completion\": {}, \"protocol_comm\": {}, ",
                    "\"auxiliary_comm\": {}, \"recoveries\": {}, ",
                    "\"churn_overhead\": {:.3}}}"
                ),
                cycles,
                last_event,
                out.cost.completion.get(),
                protocol,
                auxiliary,
                out.cost.recoveries,
                overhead,
            ));
        }
        eprintln!(
            "{:<16} victim {} horizon {:>3} rejoin gap {:>3} (max {} \
             cycles)  churn-free protocol {:>5}  max churn overhead {:.3}x",
            name, victim, horizon, gap, max_cycles, base_protocol, max_overhead,
        );
        rows.push(format!(
            concat!(
                "    {{\"workload\": \"{}\", \"victim\": {}, \"horizon\": {}, ",
                "\"rejoin_gap\": {}, \"max_cycles\": {}, ",
                "\"crash_free_completion\": {}, \"crash_free_protocol_comm\": {}, ",
                "\"max_churn_overhead\": {:.3}, \"curve\": [\n{}\n    ]}}"
            ),
            name,
            victim.index(),
            horizon,
            gap,
            max_cycles,
            baseline.cost.completion.get(),
            base_protocol,
            max_overhead,
            curve.join(",\n"),
        ));
    }
    let runs_per_s = runs as f64 / start.elapsed().as_secs_f64();
    eprintln!("aggregate: {runs} monitored runs at {runs_per_s:.0} runs/s");

    let json = format!(
        "{{\n  \"bench\": \"churn_recovery_traffic\",\n  \
         \"protocol\": \"Detect<Resilient> weighted SPT, worst-case delays\",\n  \
         \"detector\": \"period 8, beats 30, loss_tolerance 0\",\n  \
         \"points\": {points},\n  \
         \"runs_per_s\": {runs_per_s:.1},\n  \"per_workload\": [\n{}\n  ]\n}}\n",
        rows.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("write bench JSON");
    eprintln!("wrote {out_path}");
}
