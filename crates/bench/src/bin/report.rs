//! Regenerates every table and figure of the paper's evaluation as
//! measured tables on simulator workloads.
//!
//! ```text
//! cargo run -p csp-bench --release --bin report
//! ```
//!
//! Absolute numbers depend on the simulator, not the authors' testbed;
//! what must (and does) match the paper is the *shape*: which algorithm
//! wins on which regime, by roughly what factor, and that every measured
//! cost stays within its stated bound (reported as a normalized ratio).

use csp_adversary::{find_worst_schedule, SearchConfig};
use csp_algo::con_hybrid::{connectivity_pivot, run_con_hybrid};
use csp_algo::dfs::{run_dfs, Dfs};
use csp_algo::flood::{run_flood, Flood};
use csp_algo::global::{compute_global, Max, TreeKind};
use csp_algo::mst::ghs::Ghs;
use csp_algo::mst::{run_mst_centr, run_mst_fast, run_mst_ghs, run_mst_hybrid};
use csp_algo::spt::recur::SptRecur;
use csp_algo::spt::synch::run_spt_synch_ideal;
use csp_algo::spt::{run_spt_centr, run_spt_hybrid, run_spt_recur, run_spt_synch};
use csp_bench::{clock_workload, random_sweep, ratio, regime_a, regime_b, row, Workload};
use csp_control::{run_controlled, GrantPolicy};
use csp_graph::algo::mst_line;
use csp_graph::generators;
use csp_graph::params::CostParams;
use csp_graph::slt::{shallow_light_tree, shallow_light_tree_with_rule, BreakpointRule};
use csp_graph::{Cost, NodeId};
use csp_sim::sweep::par_map;
use csp_sim::sync::{SyncContext, SyncProcess};
use csp_sim::{Context, CostClass, DelayModel, Process};
use csp_sync::clock::{run_alpha_star, run_beta_star, run_gamma_star};
use csp_sync::net::{alpha_w_overhead, beta_w_overhead, run_synchronized, GammaWConfig};

fn heading(title: &str) {
    println!();
    println!("{:=^78}", format!(" {title} "));
}

fn log2c(n: usize) -> u128 {
    (n.max(2) as f64).log2().ceil() as u128
}

/// §0 — the paper's motivation (Section 1.1): classical, weight-blind
/// analysis sees two networks with the same topology as identical; the
/// weighted measures tell them apart.
fn motivation() {
    heading("Section 1.1 — why weights matter (classical vs weighted analysis)");
    let widths = [22, 10, 12, 10, 12];
    println!(
        "{}",
        row(
            &["network", "msgs", "wtd comm", "hops time", "wtd time"].map(String::from),
            &widths
        )
    );
    // Same 16-cycle topology; one uniform, one with a few heavy links.
    let uniform = generators::cycle(16, |_| 1);
    let skewed = generators::cycle(16, |i| if i % 4 == 0 { 512 } else { 1 });
    for (name, g) in [
        ("cycle, all w=1", &uniform),
        ("cycle, 4 heavy links", &skewed),
    ] {
        let out = run_flood(g, NodeId::new(0), DelayModel::WorstCase, 0).unwrap();
        let hops = out
            .tree
            .members()
            .map(|v| out.tree.hop_depth(v))
            .max()
            .unwrap_or(0);
        println!(
            "{}",
            row(
                &[
                    name.to_string(),
                    out.cost.messages.to_string(),
                    out.cost.weighted_comm.to_string(),
                    hops.to_string(),
                    out.cost.completion.get().to_string(),
                ],
                &widths
            )
        );
    }
    println!("classical analysis (messages, hops) cannot distinguish the rows;");
    println!("the weighted measures differ by two orders of magnitude — the");
    println!("premise of cost-sensitive analysis.");
}

/// §1 — Figure 1: global function computation. Upper bound O(V̂) comm,
/// O(D̂) time over the SLT; measured ratios must stay bounded as n grows.
fn fig1_global() {
    heading("Figure 1 — global function computation (comm Θ(V̂), time Θ(D̂))");
    let widths = [12, 8, 8, 10, 9, 8, 9];
    println!(
        "{}",
        row(
            &["workload", "tree", "comm", "comm/V̂", "time", "time/D̂", "value"].map(String::from),
            &widths
        )
    );
    for w in random_sweep(&[16, 32, 48, 64], 3) {
        let inputs: Vec<u64> = (0..w.params.n as u64).map(|i| i * 31 % 101).collect();
        for (label, kind) in [
            ("SLT q=2", TreeKind::Slt { q: 2 }),
            ("MST", TreeKind::Mst),
            ("SPT", TreeKind::Spt),
        ] {
            let out = compute_global(
                &w.graph,
                NodeId::new(0),
                Max,
                &inputs,
                kind,
                DelayModel::WorstCase,
            )
            .expect("global computation");
            println!(
                "{}",
                row(
                    &[
                        w.name.clone(),
                        label.to_string(),
                        out.cost.weighted_comm.to_string(),
                        format!(
                            "{:.2}",
                            ratio(out.cost.weighted_comm.get(), w.params.mst_weight.get())
                        ),
                        out.cost.completion.get().to_string(),
                        format!(
                            "{:.2}",
                            ratio(
                                out.cost.completion.get() as u128,
                                w.params.weighted_diameter.get()
                            )
                        ),
                        out.value.to_string(),
                    ],
                    &widths
                )
            );
        }
    }
    println!("paper: only the SLT keeps BOTH ratios O(1); the SPT's comm/V̂ and");
    println!("the MST's time/D̂ may grow with n.");
}

/// §2 — Figure 2: connectivity algorithms on both regimes.
fn fig2_connectivity() {
    heading("Figure 2 — connectivity (flood/DFS O(Ê), hybrid O(min{Ê, n·V̂}))");
    let widths = [22, 10, 10, 12, 10, 11];
    println!(
        "{}",
        row(
            &["workload", "algo", "comm", "Ê", "n·V̂", "comm/min"].map(String::from),
            &widths
        )
    );
    let workloads = vec![regime_a(48), regime_b(32, 12)];
    // Workloads are independent — fan them out over the sweep driver
    // and print the collected row bundles in workload order.
    let bundles = par_map(&workloads, workloads.len(), |w| {
        let e_hat = w.params.total_weight;
        let nv = w.params.mst_weight * w.params.n as u128;
        let pivot = connectivity_pivot(&w.graph, w.params.mst_weight);
        let root = NodeId::new(0);
        let flood = run_flood(&w.graph, root, DelayModel::WorstCase, 0).unwrap();
        let dfs = run_dfs(&w.graph, root, DelayModel::WorstCase, 0).unwrap();
        let hybrid = run_con_hybrid(&w.graph, root, DelayModel::WorstCase, 0).unwrap();
        [
            ("CON_flood", flood.cost.weighted_comm),
            ("DFS", dfs.cost.weighted_comm),
            ("CON_hybrid", hybrid.cost.weighted_comm),
        ]
        .map(|(name, comm)| {
            row(
                &[
                    w.name.clone(),
                    name.to_string(),
                    comm.to_string(),
                    e_hat.to_string(),
                    nv.to_string(),
                    format!("{:.2}", ratio(comm.get(), pivot.get())),
                ],
                &widths,
            )
        })
    });
    for line in bundles.into_iter().flatten() {
        println!("{line}");
    }
    println!("paper: flood/DFS track Ê (losing badly on regime B); the hybrid");
    println!("tracks min{{Ê, n·V̂}} on both (constant-factor restart overhead).");
}

/// §3 — Figure 3: the MST algorithms.
fn fig3_mst() {
    heading("Figure 3 — MST algorithms");
    let widths = [22, 11, 10, 12, 10, 12];
    println!(
        "{}",
        row(
            &["workload", "algo", "comm", "bound", "ratio", "time"].map(String::from),
            &widths
        )
    );
    let workloads = vec![
        regime_a(40),
        regime_b(28, 12),
        Workload::new(
            "gnp n=48",
            generators::connected_gnp(48, 0.15, generators::WeightDist::Uniform(1, 32), 5),
        ),
    ];
    // Four MST algorithms × three workloads, all independent: fan the
    // workloads out over the sweep driver.
    let bundles = par_map(&workloads, workloads.len(), |w| {
        let root = NodeId::new(0);
        let p = &w.params;
        let ghs = run_mst_ghs(&w.graph, root, DelayModel::WorstCase, 0).unwrap();
        let centr = run_mst_centr(&w.graph, root, DelayModel::WorstCase, 0).unwrap();
        let fast = run_mst_fast(&w.graph, root, DelayModel::WorstCase, 0).unwrap();
        let hybrid = run_mst_hybrid(&w.graph, root, DelayModel::WorstCase, 0).unwrap();
        let ghs_bound = (p.total_weight + p.mst_weight * log2c(p.n)).get();
        let centr_bound = (p.mst_weight * p.n as u128).get();
        let w_hat = p.mst_weight.get().max(2) as f64;
        let fast_bound = (p.total_weight.get() as f64 * (p.n as f64).log2() * w_hat.log2()) as u128;
        let hybrid_bound = ghs_bound.min(centr_bound);
        [
            ("MST_ghs", ghs.cost, ghs_bound),
            ("MST_centr", centr.cost, centr_bound),
            ("MST_fast", fast.cost, fast_bound),
            ("MST_hybrid", hybrid.cost, hybrid_bound),
        ]
        .map(|(name, cost, bound)| {
            row(
                &[
                    w.name.clone(),
                    name.to_string(),
                    cost.weighted_comm.to_string(),
                    bound.to_string(),
                    format!("{:.2}", ratio(cost.weighted_comm.get(), bound)),
                    cost.completion.get().to_string(),
                ],
                &widths,
            )
        })
    });
    for line in bundles.into_iter().flatten() {
        println!("{line}");
    }
    println!("bounds: GHS Ê+V̂·log n · centr n·V̂ · fast Ê·log n·log V̂ · hybrid min.");
    println!("paper: GHS wins regime A, centr wins regime B, hybrid within a");
    println!("constant of the winner on both.");
}

/// §4 — Figure 4 + Figure 9: the SPT algorithms and the strip method.
fn fig4_spt() {
    heading("Figure 4 — SPT algorithms (+ Figure 9 strip sweep)");
    let widths = [14, 16, 11, 11, 11, 9];
    println!(
        "{}",
        row(
            &["workload", "algo", "comm", "proto", "sync-ovh", "time"].map(String::from),
            &widths
        )
    );
    let w = Workload::new(
        "gnp n=24",
        generators::connected_gnp(24, 0.18, generators::WeightDist::Uniform(1, 16), 11),
    );
    let s = NodeId::new(0);
    let centr = run_spt_centr(&w.graph, s, DelayModel::WorstCase, 0).unwrap();
    let mut lines = vec![(
        "SPT_centr".to_string(),
        centr.cost.weighted_comm,
        centr.cost.comm_of(CostClass::Protocol),
        Cost::ZERO,
        centr.cost.completion.get(),
    )];
    for delta in [1u64, 4, 16, 64] {
        let recur = run_spt_recur(&w.graph, s, delta, DelayModel::WorstCase, 0).unwrap();
        lines.push((
            format!("SPT_recur Δ={delta}"),
            recur.cost.weighted_comm,
            recur.cost.comm_of(CostClass::Protocol),
            recur.cost.comm_of(CostClass::Auxiliary),
            recur.cost.completion.get(),
        ));
    }
    let ideal = run_spt_synch_ideal(&w.graph, s);
    lines.push((
        "SPT_synch ideal".to_string(),
        ideal.cost.weighted_comm,
        ideal.cost.comm_of(CostClass::Protocol),
        Cost::ZERO,
        ideal.cost.completion.get(),
    ));
    for k in [2usize, 4] {
        let synch = run_spt_synch(&w.graph, s, k, DelayModel::WorstCase, 0).unwrap();
        lines.push((
            format!("SPT_synch k={k}"),
            synch.cost.weighted_comm,
            synch.cost.comm_of(CostClass::Protocol),
            synch.cost.comm_of(CostClass::Synchronizer),
            synch.cost.completion.get(),
        ));
    }
    let hybrid = run_spt_hybrid(&w.graph, s, 4, 2, DelayModel::WorstCase, 0).unwrap();
    lines.push((
        format!("SPT_hybrid ({:?})", hybrid.winner),
        hybrid.cost.weighted_comm,
        hybrid.cost.comm_of(CostClass::Protocol),
        hybrid.cost.comm_of(CostClass::Synchronizer) + hybrid.cost.comm_of(CostClass::Auxiliary),
        hybrid.cost.completion.get(),
    ));
    for (name, comm, proto, ovh, time) in lines {
        println!(
            "{}",
            row(
                &[
                    w.name.clone(),
                    name,
                    comm.to_string(),
                    proto.to_string(),
                    ovh.to_string(),
                    time.to_string(),
                ],
                &widths
            )
        );
    }
    println!("paper: small strip depths Δ pay a tree sweep per strip (large");
    println!("sync-ovh) while large Δ approaches plain relaxation; γ_w pays its");
    println!("O(k·n·log n)-per-pulse overhead for generality, with k trading");
    println!("communication against time.");
}

/// §5 — Figures 5–6: the SLT construction and its q trade-off.
fn fig5_slt() {
    heading("Figures 5–6 — shallow-light trees (w ≤ (1+2/q)·V̂, depth ≤ (q+1)·D̂)");
    let widths = [18, 6, 10, 12, 10, 12];
    println!(
        "{}",
        row(
            &["workload", "q", "w(T)/V̂", "bound", "h(T)/D̂", "bound"].map(String::from),
            &widths
        )
    );
    let workloads = vec![
        Workload::new(
            "gnp n=40",
            generators::connected_gnp(40, 0.12, generators::WeightDist::Uniform(1, 64), 9),
        ),
        Workload::new("chords n=24", generators::heavy_chord_cycle(24, 300)),
        regime_b(24, 8),
    ];
    for w in &workloads {
        for q in [1u64, 2, 4, 8] {
            let slt = shallow_light_tree(&w.graph, NodeId::new(0), q);
            println!(
                "{}",
                row(
                    &[
                        w.name.clone(),
                        q.to_string(),
                        format!(
                            "{:.3}",
                            ratio(slt.weight().get(), w.params.mst_weight.get())
                        ),
                        format!("{:.3}", 1.0 + 2.0 / q as f64),
                        format!(
                            "{:.3}",
                            ratio(slt.height().get(), w.params.weighted_diameter.get())
                        ),
                        format!("{:.3}", q as f64 + 1.0),
                    ],
                    &widths
                )
            );
        }
    }
    // Ablation: the verbatim Figure-5 breakpoint rule (consecutive
    // breakpoint pairs in T_S) vs the default root-path rule.
    println!();
    let widths = [18, 6, 14, 12, 14, 12];
    println!(
        "{}",
        row(
            &[
                "rule ablation",
                "q",
                "RootPath w/V̂",
                "h/D̂",
                "Consec w/V̂",
                "h/D̂"
            ]
            .map(String::from),
            &widths
        )
    );
    let g_ab = generators::connected_gnp(40, 0.12, generators::WeightDist::Uniform(1, 64), 9);
    let p_ab = CostParams::of(&g_ab);
    for q in [1u64, 2, 4] {
        let root_rule =
            shallow_light_tree_with_rule(&g_ab, NodeId::new(0), q, BreakpointRule::RootPath);
        let consec = shallow_light_tree_with_rule(
            &g_ab,
            NodeId::new(0),
            q,
            BreakpointRule::ConsecutivePairs,
        );
        println!(
            "{}",
            row(
                &[
                    "gnp n=40".to_string(),
                    q.to_string(),
                    format!(
                        "{:.3}",
                        ratio(root_rule.weight().get(), p_ab.mst_weight.get())
                    ),
                    format!(
                        "{:.3}",
                        ratio(root_rule.height().get(), p_ab.weighted_diameter.get())
                    ),
                    format!("{:.3}", ratio(consec.weight().get(), p_ab.mst_weight.get())),
                    format!(
                        "{:.3}",
                        ratio(consec.height().get(), p_ab.weighted_diameter.get())
                    ),
                ],
                &widths
            )
        );
    }

    // Figure 6 style: one concrete run with its breakpoints on the line.
    let g = generators::heavy_chord_cycle(12, 60);
    let slt = shallow_light_tree_with_rule(&g, NodeId::new(0), 2, BreakpointRule::RootPath);
    let mst = csp_graph::algo::prim_mst(&g, NodeId::new(0));
    let line = mst_line(&mst);
    println!();
    println!(
        "example run (n=12 chord cycle, q=2): line length {} (≤ 2·V̂ = {}), breakpoints at {:?}",
        line.total_weight(),
        CostParams::of(&g).mst_weight * 2,
        slt.breakpoints
    );
}

/// §6 — Figures 7–8: the lower-bound family.
fn fig7_lower_bound() {
    heading("Figures 7–8 — lower-bound family G_n (spanning tree needs Ω(n·V̂))");
    let widths = [14, 12, 12, 12, 12, 12];
    println!(
        "{}",
        row(
            &["n", "Ê", "n·V̂", "flood", "MST_centr", "CON_hybrid"].map(String::from),
            &widths
        )
    );
    for n in [12usize, 16, 24, 32] {
        let w = regime_b(n, 8);
        let root = NodeId::new(0);
        let flood = run_flood(&w.graph, root, DelayModel::WorstCase, 0).unwrap();
        let centr = run_mst_centr(&w.graph, root, DelayModel::WorstCase, 0).unwrap();
        let hybrid = run_con_hybrid(&w.graph, root, DelayModel::WorstCase, 0).unwrap();
        println!(
            "{}",
            row(
                &[
                    n.to_string(),
                    w.params.total_weight.to_string(),
                    (w.params.mst_weight * n as u128).to_string(),
                    flood.cost.weighted_comm.to_string(),
                    centr.cost.weighted_comm.to_string(),
                    hybrid.cost.weighted_comm.to_string(),
                ],
                &widths
            )
        );
    }
    // Figure 8: the split construction exists and is well-formed.
    let g = generators::lower_bound_family(16, 8);
    let gs = generators::lower_bound_split(16, 8, 2);
    println!();
    println!(
        "Figure 8 split G'_(16,2): {} vertices (G_16 has {}), {} edges (G_16 has {}), connected: {}",
        gs.node_count(),
        g.node_count(),
        gs.edge_count(),
        g.edge_count(),
        csp_graph::algo::is_connected(&gs),
    );
    println!("paper: every correct algorithm must distinguish G_n from the splits,");
    println!("forcing Ω(n·V̂) traffic; flooding additionally pays the Ê of the");
    println!("heavy bypasses while the frugal algorithms do not.");
}

/// §7 — Section 3: clock synchronizers.
fn clock_sync() {
    heading("Section 3 — clock synchronization (pulse delay: α* O(W), γ* O(d·log²n))");
    let widths = [20, 8, 8, 10, 10, 10, 12];
    println!(
        "{}",
        row(
            &["workload", "d", "W", "α*", "β*", "γ*", "γ*/d·log²n"].map(String::from),
            &widths
        )
    );
    for (n, heavy) in [(12usize, 500u64), (16, 2_000), (24, 8_000), (32, 8_000)] {
        let w = clock_workload(n, heavy);
        let pulses = 4;
        let alpha = run_alpha_star(&w.graph, pulses, DelayModel::WorstCase, 0).unwrap();
        let beta =
            run_beta_star(&w.graph, NodeId::new(0), pulses, DelayModel::WorstCase, 0).unwrap();
        let gamma = run_gamma_star(&w.graph, pulses, DelayModel::WorstCase, 0).unwrap();
        let d = w.params.max_neighbor_distance.get().max(1);
        let log_n = (n as f64).log2();
        println!(
            "{}",
            row(
                &[
                    w.name.clone(),
                    d.to_string(),
                    w.params.max_weight.to_string(),
                    alpha.stats.max_pulse_delay().to_string(),
                    beta.stats.max_pulse_delay().to_string(),
                    gamma.stats.max_pulse_delay().to_string(),
                    format!(
                        "{:.2}",
                        gamma.stats.max_pulse_delay() as f64 / (d as f64 * log_n * log_n)
                    ),
                ],
                &widths
            )
        );
    }
    println!("paper: α* is pinned to W; γ* stays within O(d·log²n) of the Ω(d)");
    println!("lower bound regardless of how heavy the chords get.");
}

/// A tiny synchronous protocol that runs for a fixed number of pulses so
/// the per-pulse synchronizer overhead can be measured.
#[derive(Clone, Debug)]
struct PulseLoad {
    until: u64,
}

impl SyncProcess for PulseLoad {
    type Msg = ();

    fn on_pulse(&mut self, pulse: u64, _inbox: &[(NodeId, ())], ctx: &mut SyncContext<'_, ()>) {
        if pulse == 0 && self.until > 0 {
            ctx.wake_at(self.until);
        } else if pulse >= self.until {
            ctx.finish();
        }
    }
}

/// §8 — Section 4: synchronizer γ_w amortized overhead per pulse.
fn synchronizer_overhead() {
    heading("Section 4 — synchronizer γ_w (C(γ_w)=O(k·n·log n), T(γ_w)=O(log_k n·log n))");
    let widths = [14, 4, 12, 14, 12, 12];
    println!(
        "{}",
        row(
            &[
                "workload",
                "k",
                "sync comm",
                "per pulse",
                "/k·n·log n",
                "time/pulse"
            ]
            .map(String::from),
            &widths
        )
    );
    for n in [12usize, 20, 28] {
        let g = generators::connected_gnp(n, 0.2, generators::WeightDist::PowerOfTwo(4), 3);
        let pulses = 24u64;
        for k in [2usize, 4, 8] {
            let out = run_synchronized(
                &g,
                &GammaWConfig::new(k),
                pulses,
                DelayModel::WorstCase,
                0,
                |_, _| PulseLoad { until: pulses },
            )
            .unwrap();
            let sync_comm = out.cost.comm_of(CostClass::Synchronizer).get();
            let per_pulse = sync_comm as f64 / pulses as f64;
            let bound = k as f64 * n as f64 * (n as f64).log2();
            println!(
                "{}",
                row(
                    &[
                        format!("gnp n={n}"),
                        k.to_string(),
                        sync_comm.to_string(),
                        format!("{per_pulse:.1}"),
                        format!("{:.3}", per_pulse / bound),
                        format!("{:.1}", out.cost.completion.get() as f64 / pulses as f64),
                    ],
                    &widths
                )
            );
        }
    }
    println!("paper: per-pulse synchronizer communication is O(k·n·log n) and");
    println!("grows with k while per-pulse time shrinks — the γ trade-off.");

    // Baselines: the naive synchronizer α_w pays Θ(Ê) comm and Θ(W)
    // time per pulse ("cleaning the links costs W", Section 4.1); the
    // tree synchronizer β_w pays Θ(V̂) comm but Θ(D̂) time.
    println!();
    let widths = [18, 9, 14, 12, 12, 12];
    println!(
        "{}",
        row(
            &["baseline", "sync", "comm/pulse", "time/pulse", "Ê", "W"].map(String::from),
            &widths
        )
    );
    for heavy in [100u64, 1000, 10000] {
        let g = generators::heavy_chord_cycle(16, heavy);
        let p = CostParams::of(&g);
        let pulses = 8;
        let alpha = alpha_w_overhead(&g, pulses, DelayModel::WorstCase, 0).unwrap();
        let beta = beta_w_overhead(&g, NodeId::new(0), pulses, DelayModel::WorstCase, 0).unwrap();
        for (name, cost) in [("α_w", alpha), ("β_w", beta)] {
            println!(
                "{}",
                row(
                    &[
                        format!("chords W={heavy}"),
                        name.to_string(),
                        format!(
                            "{:.0}",
                            cost.comm_of(CostClass::Synchronizer).get() as f64
                                / (pulses + 1) as f64
                        ),
                        format!("{:.0}", cost.completion.get() as f64 / pulses as f64),
                        p.total_weight.to_string(),
                        p.max_weight.to_string(),
                    ],
                    &widths
                )
            );
        }
    }
    println!("α_w's per-pulse time is pinned to W (the failure mode the weight-");
    println!("level decomposition avoids); β_w is frugal in communication but");
    println!("pays a D̂ tree round-trip per pulse.");
}

/// A diverging "walker" for the controller table: a token that patrols
/// the path forever, so resource consumption happens at every depth of
/// the execution tree (which is where the grant policies differ).
#[derive(Debug)]
struct Walker {
    initiator: bool,
}

impl Process for Walker {
    type Msg = bool; // direction: true = rightward

    fn on_start(&mut self, ctx: &mut Context<'_, bool>) {
        if self.initiator {
            ctx.send(NodeId::new(1), true);
        }
    }

    fn on_message(&mut self, _from: NodeId, rightward: bool, ctx: &mut Context<'_, bool>) {
        let me = ctx.self_id().index();
        let n = ctx.node_count();
        let (next, dir) = if rightward {
            if me + 1 < n {
                (me + 1, true)
            } else {
                (me - 1, false)
            }
        } else if me > 0 {
            (me - 1, false)
        } else {
            (me + 1, true)
        };
        ctx.send(NodeId::new(next), dir);
    }
}

/// §9 — Section 5: the controller.
fn controller() {
    heading("Section 5 — controller (c_φ = O(c_π·log² c_π); cut-off ≤ 2·c_π)");
    let widths = [10, 10, 12, 12, 12, 14];
    println!(
        "{}",
        row(
            &[
                "c_π",
                "policy",
                "proto comm",
                "ctl comm",
                "total",
                "/c·log²c"
            ]
            .map(String::from),
            &widths
        )
    );
    // A long path: the execution tree is deep, so request/permit routing
    // distance is what separates the two policies.
    let g = generators::path(24, |_| 1);
    for threshold in [100u64, 400, 1600, 6400] {
        for policy in [GrantPolicy::Naive, GrantPolicy::Caching] {
            let out = run_controlled(
                &g,
                NodeId::new(0),
                threshold,
                policy,
                DelayModel::WorstCase,
                0,
                |v, _| Walker {
                    initiator: v == NodeId::new(0),
                },
            )
            .unwrap();
            assert!(out.suspended, "the walker must be cut off");
            let c = (2 * threshold) as f64;
            println!(
                "{}",
                row(
                    &[
                        threshold.to_string(),
                        format!("{policy:?}"),
                        out.cost.comm_of(CostClass::Protocol).to_string(),
                        out.cost.comm_of(CostClass::Controller).to_string(),
                        out.cost.weighted_comm.to_string(),
                        format!(
                            "{:.3}",
                            out.cost.weighted_comm.get() as f64 / (c * c.log2() * c.log2())
                        ),
                    ],
                    &widths
                )
            );
        }
    }
    println!("paper: protocol consumption stays ≤ 2·c_π and the total overhead");
    println!("ratio against c·log²c stays bounded as c_π grows.");
}

/// §10 — the cited companions: leader election (\[Awe87]) rides on GHS
/// for O(V̂) extra; termination detection (\[DS80]) doubles the hosted
/// protocol's weighted traffic exactly.
fn companions() {
    heading("Companions — leader election [Awe87] and termination detection [DS80]");
    let widths = [14, 26, 12, 12, 12];
    println!(
        "{}",
        row(
            &["workload", "primitive", "total comm", "overhead", "bound"].map(String::from),
            &widths
        )
    );
    for w in random_sweep(&[16, 32], 5) {
        let election =
            csp_algo::leader::run_leader_election(&w.graph, DelayModel::WorstCase, 0).unwrap();
        println!(
            "{}",
            row(
                &[
                    w.name.clone(),
                    format!("leader = {}", election.leader),
                    election.cost.weighted_comm.to_string(),
                    election.cost.comm_of(CostClass::Auxiliary).to_string(),
                    format!("≤ 2·V̂ = {}", w.params.mst_weight * 2),
                ],
                &widths
            )
        );
        let detected = csp_algo::termination::run_with_termination_detection(
            &w.graph,
            NodeId::new(0),
            DelayModel::WorstCase,
            0,
            |v, _| csp_algo::flood::Flood::new(v == NodeId::new(0)),
        )
        .unwrap();
        println!(
            "{}",
            row(
                &[
                    w.name.clone(),
                    format!("detect @ {}", detected.detected_at),
                    detected.cost.weighted_comm.to_string(),
                    detected.cost.comm_of(CostClass::Auxiliary).to_string(),
                    "= protocol".to_string(),
                ],
                &widths
            )
        );
    }
    println!("leader announcements travel only MST branches; detection acks");
    println!("mirror the hosted traffic one-for-one (overhead factor exactly 2).");
}

/// §11 — the adversary: how much worse than the fixed `WorstCase` delay
/// model can a *searched* per-message delay schedule make the Figure-2/
/// 3/4 protocols?
fn adversary_gap() {
    heading("Section 11 — adversarial schedule search (searched vs WorstCase time)");
    let widths = [16, 18, 12, 10, 7, 14];
    println!(
        "{}",
        row(
            &[
                "protocol",
                "workload",
                "worst-case",
                "searched",
                "gap",
                "strategy"
            ]
            .map(String::from),
            &widths
        )
    );
    // A smaller budget than `examples/adversary_hunt.rs` so the report
    // stays fast; the committed proof schedules under `tests/schedules/`
    // come from the full default budget.
    let cfg = SearchConfig::builder()
        .random_probes(16)
        .hill_rounds(6)
        .candidates_per_round(6)
        .build()
        .expect("report search config is statically valid");
    let root = NodeId::new(0);
    let families = [
        (
            "gnp n=12",
            generators::connected_gnp(12, 0.3, generators::WeightDist::Uniform(1, 16), 42),
        ),
        (
            "sparse-heavy n=14",
            generators::sparse_heavy_path(14, 100, 3),
        ),
    ];
    for (family, g) in &families {
        let mut outcomes = vec![
            (
                "CON_flood",
                find_worst_schedule(g, |v, _| Flood::new(v == root), &cfg),
            ),
            (
                "DFS",
                find_worst_schedule(g, |v, g| Dfs::new(v, g, root), &cfg),
            ),
            ("MST_ghs", find_worst_schedule(g, Ghs::new, &cfg)),
            (
                // Single-strip SPT_recur = chaotic Bellman–Ford: the one
                // Figure-4 regime whose message set depends on delivery
                // order, so the searched adversary beats WorstCase.
                "SPT_recur Δ=∞",
                find_worst_schedule(g, |v, _| SptRecur::new(v, root, 1 << 40), &cfg),
            ),
        ];
        for (name, out) in outcomes.drain(..) {
            println!(
                "{}",
                row(
                    &[
                        name.to_string(),
                        family.to_string(),
                        out.worst_case.get().to_string(),
                        out.best_time.get().to_string(),
                        format!("{:.3}", out.gap()),
                        out.strategy.to_string(),
                    ],
                    &widths
                )
            );
        }
    }
    println!("gap = searched/WorstCase completion time. Flood/DFS/GHS are timing-");
    println!("monotone here (every delay pattern delivers the same message set,");
    println!("so stretching all delays to w(e) is already the maximum — gap 1);");
    println!("chaotic Bellman–Ford re-relaxes along delivery order and a searched");
    println!("schedule provably exceeds the uniform worst case.");
}

fn main() {
    println!("Cost-Sensitive Analysis of Communication Protocols — reproduction report");
    println!("(Awerbuch, Baratz, Peleg; PODC 1990 / MIT-LCS-TM-453)");
    motivation();
    fig1_global();
    fig2_connectivity();
    fig3_mst();
    fig4_spt();
    fig5_slt();
    fig7_lower_bound();
    clock_sync();
    synchronizer_overhead();
    controller();
    companions();
    adversary_gap();
    println!();
    println!("{:=^78}", " end of report ");
}
