//! Recovery cost of the self-healing stack: what a crash costs on top
//! of a crash-free run, as a function of *when* the victim dies.
//!
//! ```text
//! cargo run -p csp-bench --release --bin resilient_bench \
//!     [-- out.json [points]]
//! ```
//!
//! Each workload runs the crash-tolerant weighted SPT
//! (`Detect<Resilient>`) under worst-case delays: once crash-free (the
//! baseline), then once per point of a crash-time grid spanning the
//! victim's guaranteed-detection horizon. Reported per point:
//! weighted completion, weighted announcement (`Protocol`) traffic and
//! its ratio to the crash-free baseline (`recovery_overhead`) — the
//! curve the `self_healing` example's adversary climbs. The victim is
//! the vertex carrying the most SPT children in the crash-free run, so
//! its crash orphans the largest subtree. The report lands in
//! `BENCH_resilient.json` (schema pinned by CI).

use csp_algo::resilient::{run_resilient_spt, ResilientOutcome};
use csp_graph::{generators, NodeId, WeightedGraph};
use csp_sim::{CostClass, CrashOracle, DelayModel, DetectConfig, ModelOracle, SimTime};
use std::time::Instant;

/// Detector tuning shared with the `self_healing` example: period 8
/// with 30 beats keeps the horizon past tick 150 on these instances.
fn detector() -> DetectConfig {
    DetectConfig::new(8, 30, 0)
}

fn workloads() -> Vec<(&'static str, WeightedGraph)> {
    vec![
        (
            "gnp-n12",
            generators::connected_gnp(12, 0.3, generators::WeightDist::Uniform(1, 16), 42),
        ),
        (
            "gnp-n16",
            generators::connected_gnp(16, 0.25, generators::WeightDist::Uniform(1, 16), 7),
        ),
        ("heavy-chord-n12", generators::heavy_chord_cycle(12, 64)),
    ]
}

/// The non-source vertex carrying the most SPT children in the
/// crash-free run (ties broken by degree): the crash that orphans the
/// largest subtree and forces the widest healing wave.
fn pick_victim(g: &WeightedGraph, baseline: &ResilientOutcome) -> NodeId {
    let mut children = vec![0usize; g.node_count()];
    for p in baseline.parents.iter().flatten() {
        children[p.index()] += 1;
    }
    g.nodes()
        .skip(1)
        .max_by_key(|&v| (children[v.index()], g.neighbors(v).count()))
        .expect("instance has more than one vertex")
}

fn run_crashed(g: &WeightedGraph, crashes: Vec<(NodeId, SimTime)>) -> ResilientOutcome {
    let mut oracle = CrashOracle::new(ModelOracle::new(DelayModel::WorstCase, 0), crashes);
    run_resilient_spt(g, NodeId::new(0), &mut oracle, detector()).expect("run quiesces")
}

fn main() {
    let mut args = std::env::args().skip(1);
    let out_path = args
        .next()
        .unwrap_or_else(|| "BENCH_resilient.json".to_string());
    let points: u64 = args
        .next()
        .map(|s| s.parse().expect("points must be an integer"))
        .unwrap_or(8);
    assert!(points > 0, "need at least one grid point");

    let mut rows = Vec::new();
    let mut runs = 0u64;
    let start = Instant::now();
    for (name, g) in workloads() {
        let baseline = run_crashed(&g, vec![]);
        runs += 1;
        let base_protocol = baseline.cost.comm_of(CostClass::Protocol).get();
        let victim = pick_victim(&g, &baseline);
        let horizon = g
            .neighbors(victim)
            .map(|(_, _, w)| detector().detection_horizon(w.get()))
            .min()
            .expect("victim has neighbors");

        let mut curve = Vec::new();
        let mut max_overhead = 0.0f64;
        for i in 0..=points {
            let at = horizon * i / points;
            let out = run_crashed(&g, vec![(victim, SimTime::new(at))]);
            runs += 1;
            let protocol = out.cost.comm_of(CostClass::Protocol).get();
            let overhead = protocol as f64 / base_protocol as f64;
            max_overhead = max_overhead.max(overhead);
            curve.push(format!(
                concat!(
                    "        {{\"crash_at\": {}, \"completion\": {}, ",
                    "\"protocol_comm\": {}, \"suspected_links\": {}, ",
                    "\"recovery_overhead\": {:.3}}}"
                ),
                at,
                out.cost.completion.get(),
                protocol,
                out.suspected_links,
                overhead,
            ));
        }
        eprintln!(
            "{:<16} victim {} horizon {:>3}  crash-free protocol {:>5} \
             (completion {})  max recovery overhead {:.3}x",
            name, victim, horizon, base_protocol, baseline.cost.completion, max_overhead,
        );
        rows.push(format!(
            concat!(
                "    {{\"workload\": \"{}\", \"victim\": {}, \"horizon\": {}, ",
                "\"crash_free_completion\": {}, \"crash_free_protocol_comm\": {}, ",
                "\"max_recovery_overhead\": {:.3}, \"curve\": [\n{}\n    ]}}"
            ),
            name,
            victim.index(),
            horizon,
            baseline.cost.completion.get(),
            base_protocol,
            max_overhead,
            curve.join(",\n"),
        ));
    }
    let runs_per_s = runs as f64 / start.elapsed().as_secs_f64();
    eprintln!("aggregate: {runs} monitored runs at {runs_per_s:.0} runs/s");

    let json = format!(
        "{{\n  \"bench\": \"resilient_recovery_cost\",\n  \
         \"protocol\": \"Detect<Resilient> weighted SPT, worst-case delays\",\n  \
         \"detector\": \"period 8, beats 30, loss_tolerance 0\",\n  \
         \"points\": {points},\n  \
         \"runs_per_s\": {runs_per_s:.1},\n  \"per_workload\": [\n{}\n  ]\n}}\n",
        rows.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("write bench JSON");
    eprintln!("wrote {out_path}");
}
