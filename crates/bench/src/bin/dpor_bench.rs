//! DPOR reduction: how many delay schedules the sleep-set explorer
//! evaluates versus naive enumeration of the whole delay cube.
//!
//! ```text
//! cargo run -p csp-bench --release --bin dpor_bench \
//!     [-- out.json [class_budget]]
//! ```
//!
//! Each workload is a small `Uniform(1, 2)`-weighted gnp instance under
//! flooding, where the naive schedule count is exactly `Π_e w(e)²`
//! (every directed edge carries one message with `w(e)` admissible
//! delays). The n=8 instance is small enough to enumerate *every* delay
//! assignment by backtracking DFS, which pins two facts the CI job
//! gates on:
//!
//! * the explorer's worst completion equals the naive enumeration's
//!   worst — no class the adversary cares about was lost; and
//! * the explorer evaluated at least 5× fewer schedules than the cube
//!   holds (`reduction = naive_schedules / dpor_evaluations`).
//!
//! Larger instances report the computed cube size only — enumerating
//! `2^26` runs is the point of *not* doing naive search. The report
//! lands in `BENCH_dpor.json` (schema pinned by CI).

use csp_adversary::{explore_exhaustive, SearchConfig};
use csp_algo::flood::Flood;
use csp_graph::{generators, NodeId, WeightedGraph};
use csp_sim::{DelayOracle, MsgInfo, Simulator};
use std::time::Instant;

fn make(v: NodeId, _: &WeightedGraph) -> Flood {
    Flood::new(v == NodeId::new(0))
}

fn workloads() -> Vec<(&'static str, bool, WeightedGraph)> {
    // (name, enumerate_naive, graph). Weights are Uniform(1, 2) so the
    // delay cube is 2^(2 · #weight-2 edges) — enumerable at n=8.
    vec![
        (
            "gnp-n8",
            true,
            generators::connected_gnp(8, 0.25, generators::WeightDist::Uniform(1, 2), 8),
        ),
        (
            "gnp-n10",
            false,
            generators::connected_gnp(10, 0.3, generators::WeightDist::Uniform(1, 2), 10),
        ),
        (
            "gnp-n12",
            false,
            generators::connected_gnp(12, 0.3, generators::WeightDist::Uniform(1, 2), 12),
        ),
    ]
}

/// Replays a fixed prefix of per-dispatch delay choices and extends the
/// path with the fastest admissible delay at every fresh dispatch —
/// one leaf of the adaptive enumeration tree per run.
struct EnumOracle<'a> {
    /// `(choice, weight)` per dispatch index, in dispatch order.
    path: &'a mut Vec<(u64, u64)>,
    cursor: usize,
}

impl DelayOracle for EnumOracle<'_> {
    fn delay(&mut self, msg: &MsgInfo) -> u64 {
        if self.cursor < self.path.len() {
            let choice = self.path[self.cursor].0;
            self.cursor += 1;
            choice
        } else {
            self.path.push((1, msg.weight.get()));
            self.cursor += 1;
            1
        }
    }
}

/// Walks every delay assignment of the (adaptive) decision tree by
/// backtracking DFS: run, bump the deepest non-maximal choice, truncate
/// everything after it, repeat. Returns `(leaves, worst_completion)`.
fn enumerate_naive(g: &WeightedGraph, cap: u64) -> (u64, u64) {
    let mut path: Vec<(u64, u64)> = Vec::new();
    let mut leaves = 0u64;
    let mut worst = 0u64;
    loop {
        let mut oracle = EnumOracle {
            path: &mut path,
            cursor: 0,
        };
        let run = Simulator::new(g)
            .run_with_oracle(&mut oracle, make)
            .expect("flood quiesces under every admissible schedule");
        leaves += 1;
        worst = worst.max(run.cost.completion.get());
        assert!(
            leaves <= cap,
            "naive enumeration exceeded {cap} leaves — choose a smaller instance"
        );
        while let Some(last) = path.last_mut() {
            if last.0 < last.1 {
                last.0 += 1;
                break;
            }
            path.pop();
        }
        if path.is_empty() {
            break;
        }
    }
    (leaves, worst)
}

/// `Π_e w(e)²` — the naive schedule count, computed without running:
/// under flooding every directed edge carries exactly one message with
/// `w(e)` admissible delays.
fn cube_size(g: &WeightedGraph) -> u64 {
    let mut product: u64 = 1;
    for e in g.edges() {
        let w = e.weight().get();
        product = product
            .checked_mul(w.checked_mul(w).expect("w² fits"))
            .expect("delay cube fits in u64 for bench instances");
    }
    product
}

fn main() {
    let mut args = std::env::args().skip(1);
    let out_path = args.next().unwrap_or_else(|| "BENCH_dpor.json".to_string());
    let class_budget: usize = args
        .next()
        .map(|s| s.parse().expect("class_budget must be an integer"))
        .unwrap_or(4096);

    let cfg = SearchConfig::builder()
        .exhaustive(class_budget)
        .build()
        .expect("exhaustive bench config is statically valid");

    let mut rows = Vec::new();
    for (name, enumerate, g) in workloads() {
        let cube = cube_size(&g);
        let start = Instant::now();
        let out = explore_exhaustive(&g, make, &cfg);
        let dpor_secs = start.elapsed().as_secs_f64();

        let (naive_fields, naive_worst) = if enumerate {
            let start = Instant::now();
            let (leaves, worst) = enumerate_naive(&g, 1 << 22);
            let naive_secs = start.elapsed().as_secs_f64();
            assert_eq!(
                leaves, cube,
                "enumerated leaf count must match the computed cube"
            );
            assert_eq!(
                worst,
                out.best_time.get(),
                "{name}: DPOR worst must equal the fully enumerated worst"
            );
            (
                format!(
                    "\"naive_enumerated\": true, \"naive_worst_time\": {worst}, \
                     \"naive_secs\": {naive_secs:.3}, "
                ),
                Some(worst),
            )
        } else {
            ("\"naive_enumerated\": false, ".to_string(), None)
        };

        let reduction = cube as f64 / out.evaluations as f64;
        eprintln!(
            "{:<8} cube {:>9}  dpor: {} classes, {} evals, {} pruned, worst {} ({:.3}s)  naive worst {:?}  reduction {:.1}x",
            name,
            cube,
            out.classes_explored,
            out.evaluations,
            out.schedules_pruned,
            out.best_time,
            dpor_secs,
            naive_worst,
            reduction,
        );
        rows.push(format!(
            concat!(
                "    {{\"workload\": \"{}\", \"nodes\": {}, \"edges\": {}, ",
                "\"naive_schedules\": {}, {}\"dpor_worst_time\": {}, ",
                "\"classes_explored\": {}, \"dpor_evaluations\": {}, ",
                "\"schedules_pruned\": {}, \"dpor_secs\": {:.3}, ",
                "\"reduction\": {:.1}}}"
            ),
            name,
            g.node_count(),
            g.edge_count(),
            cube,
            naive_fields,
            out.best_time.get(),
            out.classes_explored,
            out.evaluations,
            out.schedules_pruned,
            dpor_secs,
            reduction,
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"dpor_schedule_reduction\",\n  \
         \"protocol\": \"Flood\",\n  \
         \"naive\": \"every delay assignment of the [1, w(e)] cube, enumerated adaptively\",\n  \
         \"class_budget\": {class_budget},\n  \"per_workload\": [\n{}\n  ]\n}}\n",
        rows.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("write bench JSON");
    eprintln!("wrote {out_path}");
}
