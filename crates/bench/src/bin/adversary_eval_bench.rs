//! Candidate-evaluation throughput of the adversary search: the cold
//! per-candidate evaluator the search shipped with (a fresh heap-core
//! simulator and recorder per schedule) against the current one (pooled
//! bucket-core simulator, candidates scored time-only by resuming from
//! the incumbent's checkpoint store).
//!
//! ```text
//! cargo run -p csp-bench --release --bin adversary_eval_bench \
//!     [-- out.json [candidates_per_stream]]
//! ```
//!
//! The workloads are the four committed `SPT_recur` witness instances
//! from `tests/adversary_suite.rs` — the graphs the searched beating
//! schedules live on. Two candidate streams are measured, mirroring the
//! two phases of `csp_adversary::find_worst_schedule`:
//!
//! * **polish** (the headline `speedup`): single-decision rush/stretch
//!   toggles swept from the schedule tail, exactly the candidate stream
//!   of the search's polish phase — the phase the incremental-replay
//!   machinery is built for. Resumes replay only the suffix past the
//!   toggled position.
//! * **hill** (`hill_speedup`): `flips`-decision random mutations, the
//!   global-exploration stream. Its first mutated index is uniform, so
//!   resume saves less; reported for transparency.
//!
//! Both evaluators run every candidate of both streams and must agree on
//! its completion time (asserted per candidate). The report (default
//! `BENCH_adversary_eval.json`) gives schedules evaluated per second
//! before/after per stream, per workload and aggregate. The one-time
//! cost of building the incumbent's checkpoint store — what the search
//! pays when it adopts an incumbent — is charged to the polish stream's
//! "after" timing.

use csp_adversary::{Fallback, Mutation, Recorder, Schedule, ScheduleOracle};
use csp_algo::spt::recur::SptRecur;
use csp_graph::{generators, NodeId, WeightedGraph};
use csp_sim::{Checkpoint, CoreKind, DelayModel, EvalPool, ModelOracle, SimTime, Simulator};
use std::hint::black_box;
use std::time::Instant;

/// Strip depth putting `SPT_recur` in its single-strip regime — the
/// chaotic Bellman–Ford mode the committed witnesses exercise.
const ONE_STRIP: u64 = 1 << 40;

/// Decisions re-randomized per hill candidate (the search default).
const FLIPS: usize = 4;

/// Untimed candidates evaluated by each path before its timed loop.
const WARMUP: usize = 4;

fn make_recur(v: NodeId, _: &WeightedGraph) -> SptRecur {
    SptRecur::new(v, NodeId::new(0), ONE_STRIP)
}

/// The committed witness instances of `tests/adversary_suite.rs`.
fn witness_instances() -> Vec<(&'static str, WeightedGraph)> {
    vec![
        (
            "gnp-n12",
            generators::connected_gnp(12, 0.3, generators::WeightDist::Uniform(1, 16), 42),
        ),
        (
            "gnp-n16",
            generators::connected_gnp(16, 0.25, generators::WeightDist::Uniform(1, 32), 7),
        ),
        ("heavy-chord-n12", generators::heavy_chord_cycle(12, 64)),
        (
            "sparse-heavy-n14",
            generators::sparse_heavy_path(14, 100, 3),
        ),
    ]
}

/// The evaluator the search launched with: a fresh simulator on the
/// binary-heap core and a fresh recorder per candidate, replayed from
/// message zero.
fn eval_cold_heap(g: &WeightedGraph, mutant: &Schedule) -> SimTime {
    let mut rec = Recorder::new(ScheduleOracle::new(mutant));
    let run = Simulator::new(g)
        .core(CoreKind::Heap)
        .run_with_oracle(&mut rec, make_recur)
        .expect("candidate must quiesce");
    black_box(rec.into_schedule(Fallback::WorstCase));
    run.cost.completion
}

/// The current scoring path: pooled bucket-core machine resumed from the
/// deepest incumbent checkpoint at or before the candidate's first
/// mutated decision, completion time only (mirrors
/// `csp_adversary::search`; winners there pay a separate recorded
/// re-evaluation, rare enough not to move throughput).
fn score_resumed(
    sim: &Simulator<'_>,
    pool: &mut EvalPool<SptRecur>,
    checkpoints: &[Checkpoint<SptRecur>],
    mutant: &Schedule,
    first_diff: u64,
) -> SimTime {
    let mut oracle = ScheduleOracle::new(mutant);
    match checkpoints
        .iter()
        .rev()
        .find(|cp| cp.messages() <= first_diff)
    {
        Some(cp) => sim.eval_resume(pool, cp, &mut oracle),
        None => sim.eval(pool, &mut oracle, make_recur),
    }
    .expect("candidate must quiesce")
    .completion
}

/// The polish-phase candidate stream for a fixed incumbent: rush/stretch
/// toggles at positions sweeping the final quarter of the schedule from
/// the tail, exactly the search's polish-pass shape. Whole passes repeat
/// until at least `budget` candidates exist. Each candidate carries its
/// first divergence index (the toggled position).
fn polish_candidates(incumbent: &Schedule, budget: usize) -> Vec<(u64, Schedule)> {
    let len = incumbent.decisions.len();
    let lo = len.saturating_sub((len / 4).max(1));
    let mut out = Vec::with_capacity(budget);
    while out.len() < budget {
        let produced = out.len();
        for k in (lo..len).rev() {
            let d = incumbent.decisions[k];
            for target in [d.weight, 1] {
                if target != d.delay {
                    out.push((k as u64, incumbent.clone()));
                    out.last_mut().unwrap().1.decisions[k].delay = target;
                }
            }
        }
        assert!(
            out.len() > produced,
            "incumbent admits no toggles in its tail (all weights 1?)"
        );
    }
    out
}

/// The hill-phase candidate stream: random `FLIPS`-decision mutations,
/// each carrying its first divergence index.
fn hill_candidates(incumbent: &Schedule, budget: usize) -> Vec<(u64, Schedule)> {
    (0..budget)
        .map(|i| {
            let m = Mutation::new()
                .delay_flips(FLIPS)
                .apply(incumbent, 0x5eed ^ i as u64);
            let fd = incumbent
                .decisions
                .iter()
                .zip(&m.decisions)
                .position(|(a, b)| a.delay != b.delay)
                .unwrap_or(m.decisions.len()) as u64;
            (fd, m)
        })
        .collect()
}

struct StreamRate {
    candidates: usize,
    before_secs: f64,
    after_secs: f64,
}

impl StreamRate {
    fn before_eps(&self) -> f64 {
        self.candidates as f64 / self.before_secs
    }
    fn after_eps(&self) -> f64 {
        self.candidates as f64 / self.after_secs
    }
    fn speedup(&self) -> f64 {
        self.after_eps() / self.before_eps()
    }
}

/// Times one candidate stream through both evaluators and asserts they
/// agree on every completion time. The two paths are interleaved in
/// chunks so machine drift during the run hits both sides equally.
/// `build_store` charges the checkpoint store construction to the
/// "after" timing (the search pays it when it adopts an incumbent).
#[allow(clippy::too_many_arguments)]
fn bench_stream(
    name: &str,
    g: &WeightedGraph,
    sim: &Simulator<'_>,
    pool: &mut EvalPool<SptRecur>,
    incumbent: &Schedule,
    cps: &mut Vec<Checkpoint<SptRecur>>,
    stream: &[(u64, Schedule)],
    build_store: bool,
) -> StreamRate {
    let (warm, timed) = stream.split_at(WARMUP.min(stream.len().saturating_sub(1)));

    let mut after_secs = 0.0f64;
    if build_store {
        let interval = (incumbent.decisions.len() as u64 / 32).max(8);
        let start = Instant::now();
        sim.run_with_checkpoints(
            &mut ScheduleOracle::new(incumbent),
            make_recur,
            interval,
            cps,
        )
        .expect("incumbent must quiesce");
        after_secs += start.elapsed().as_secs_f64();
    }
    for (fd, m) in warm {
        black_box(eval_cold_heap(g, m));
        black_box(score_resumed(sim, pool, cps, m, *fd));
    }

    let mut before_secs = 0.0f64;
    let mut before_times = Vec::with_capacity(timed.len());
    let mut after_times = Vec::with_capacity(timed.len());
    for chunk in timed.chunks(32) {
        let start = Instant::now();
        before_times.extend(chunk.iter().map(|(_, m)| black_box(eval_cold_heap(g, m))));
        before_secs += start.elapsed().as_secs_f64();
        let start = Instant::now();
        after_times.extend(
            chunk
                .iter()
                .map(|(fd, m)| black_box(score_resumed(sim, pool, cps, m, *fd))),
        );
        after_secs += start.elapsed().as_secs_f64();
    }

    for (i, (b, a)) in before_times.iter().zip(&after_times).enumerate() {
        assert_eq!(b, a, "{name}: candidate {i} diverged between evaluators");
    }

    StreamRate {
        candidates: timed.len(),
        before_secs,
        after_secs,
    }
}

struct WorkloadReport {
    name: &'static str,
    decisions: usize,
    polish: StreamRate,
    hill: StreamRate,
}

fn bench_workload(name: &'static str, g: &WeightedGraph, candidates: usize) -> WorkloadReport {
    // The incumbent a search phase would refine: a recorded
    // uniform-delay run (faithful recording, so replay never diverges).
    let mut rec = Recorder::new(ModelOracle::new(DelayModel::Uniform, 0));
    Simulator::new(g)
        .run_with_oracle(&mut rec, make_recur)
        .expect("incumbent must quiesce");
    let incumbent = rec.into_schedule(Fallback::WorstCase);

    let sim = Simulator::new(g);
    let mut pool = EvalPool::new();
    let mut cps: Vec<Checkpoint<SptRecur>> = Vec::new();

    let polish_stream = polish_candidates(&incumbent, candidates + WARMUP);
    let polish = bench_stream(
        name,
        g,
        &sim,
        &mut pool,
        &incumbent,
        &mut cps,
        &polish_stream,
        true,
    );
    let hill_stream = hill_candidates(&incumbent, candidates + WARMUP);
    let hill = bench_stream(
        name,
        g,
        &sim,
        &mut pool,
        &incumbent,
        &mut cps,
        &hill_stream,
        false,
    );

    WorkloadReport {
        name,
        decisions: incumbent.decisions.len(),
        polish,
        hill,
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let out_path = args
        .next()
        .unwrap_or_else(|| "BENCH_adversary_eval.json".to_string());
    let candidates: usize = args
        .next()
        .map(|s| s.parse().expect("candidate budget must be an integer"))
        .unwrap_or(400);

    let mut rows = Vec::new();
    let (mut p_n, mut p_before, mut p_after) = (0usize, 0.0f64, 0.0f64);
    let (mut h_n, mut h_before, mut h_after) = (0usize, 0.0f64, 0.0f64);
    for (name, g) in witness_instances() {
        let r = bench_workload(name, &g, candidates);
        eprintln!(
            "{:<18} decisions {:>5}  polish {:>8.0} -> {:>8.0} eval/s ({:.2}x)  hill {:>8.0} -> {:>8.0} eval/s ({:.2}x)",
            r.name,
            r.decisions,
            r.polish.before_eps(),
            r.polish.after_eps(),
            r.polish.speedup(),
            r.hill.before_eps(),
            r.hill.after_eps(),
            r.hill.speedup(),
        );
        p_n += r.polish.candidates;
        p_before += r.polish.before_secs;
        p_after += r.polish.after_secs;
        h_n += r.hill.candidates;
        h_before += r.hill.before_secs;
        h_after += r.hill.after_secs;
        rows.push(format!(
            concat!(
                "    {{\"workload\": \"{}\", \"decisions\": {}, \"candidates\": {}, ",
                "\"before_eval_per_s\": {:.1}, \"after_eval_per_s\": {:.1}, ",
                "\"speedup\": {:.3}, ",
                "\"hill_before_eval_per_s\": {:.1}, \"hill_after_eval_per_s\": {:.1}, ",
                "\"hill_speedup\": {:.3}}}"
            ),
            r.name,
            r.decisions,
            r.polish.candidates,
            r.polish.before_eps(),
            r.polish.after_eps(),
            r.polish.speedup(),
            r.hill.before_eps(),
            r.hill.after_eps(),
            r.hill.speedup(),
        ));
    }

    let before_eps = p_n as f64 / p_before;
    let after_eps = p_n as f64 / p_after;
    let speedup = after_eps / before_eps;
    let hill_before_eps = h_n as f64 / h_before;
    let hill_after_eps = h_n as f64 / h_after;
    let hill_speedup = hill_after_eps / hill_before_eps;
    eprintln!(
        "aggregate: polish {before_eps:.0} -> {after_eps:.0} eval/s ({speedup:.2}x), hill {hill_before_eps:.0} -> {hill_after_eps:.0} eval/s ({hill_speedup:.2}x)"
    );

    let json = format!(
        "{{\n  \"bench\": \"adversary_candidate_evaluations_per_second\",\n  \
         \"protocol\": \"SPT_recur (single strip)\",\n  \
         \"before\": \"cold heap-core replay, fresh simulator and recorder per candidate\",\n  \
         \"after\": \"pooled bucket core, checkpoint-resumed time-only scoring\",\n  \
         \"headline_stream\": \"polish (tail rush/stretch toggles)\",\n  \
         \"candidates_per_stream\": {candidates},\n  \"flips\": {FLIPS},\n  \
         \"before_eval_per_s\": {before_eps:.1},\n  \"after_eval_per_s\": {after_eps:.1},\n  \
         \"speedup\": {speedup:.3},\n  \
         \"hill_before_eval_per_s\": {hill_before_eps:.1},\n  \
         \"hill_after_eval_per_s\": {hill_after_eps:.1},\n  \
         \"hill_speedup\": {hill_speedup:.3},\n  \"per_workload\": [\n{}\n  ]\n}}\n",
        rows.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("write bench JSON");
    eprintln!("wrote {out_path}");
}
