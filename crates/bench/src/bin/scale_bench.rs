//! Million-node scale-tier benchmark: streaming generation rate, CSR
//! memory footprint, and event-core throughput as `n` grows.
//!
//! ```text
//! cargo run -p csp-bench --release --bin scale_bench [-- out.json [max_n_exp]]
//! ```
//!
//! For each `n = 10^e`, `e ∈ 3..=max_n_exp` (default 6), the bench
//! generates a connected `G(n, p)` workload at expected extra degree
//! `~8` through the streaming generator, records generation time and
//! the CSR graph's bytes-per-vertex, then drives the flat event core:
//! `Flood` at every size, and the chattier `SPT_recur` up to `n = 10⁴`
//! (its message complexity grows superlinearly, so the larger sizes
//! would measure the protocol, not the core). Writes a hand-rolled
//! JSON report (default `BENCH_scale.json`) with one row per
//! `(protocol, n, threads)`:
//!
//! ```text
//! {"protocol", "n", "edges", "gen_secs", "bytes_per_vertex",
//!  "events", "run_secs", "events_per_s", "threads", "lookahead"}
//! ```
//!
//! `threads = 1` rows run the sequential `Simulator` core; for every
//! `n ≥ 10⁴` the flood workload is re-run on the sharded
//! conservative-parallel core at 2, 4 and 8 shards (asserting
//! bit-identical costs against the sequential row). `lookahead` is the
//! derived partition's minimum cut-edge weight — the conservative
//! lookahead bound a cut-based windowing scheme would get (`null` on
//! sequential rows, and on sharded rows whose partition has no cut
//! edge). The `host_threads` header records the measuring machine's
//! available parallelism: sharded rows only show real speedup when it
//! exceeds 1.
//!
//! "Event" = one delivered message (`CostReport::messages`); delays are
//! `WorstCase` so runs are reproducible across machines up to timing.

use csp_algo::flood::{run_flood, run_flood_sharded};
use csp_algo::spt::recur::run_spt_recur;
use csp_graph::generators::{connected_gnp, WeightDist};
use csp_graph::{NodeId, ShardPlan, WeightedGraph};
use csp_sim::DelayModel;
use std::time::Instant;

/// Graph seed; one graph per size keeps the bench fast at `n = 10⁶`.
const SEED: u64 = 1;
/// Expected extra degree beyond the spanning-tree backbone.
const EXTRA_DEGREE: f64 = 8.0;
/// Weight distribution — spans the auto-sized bucket window without
/// engaging the overflow heap.
const DIST: WeightDist = WeightDist::Uniform(1, 64);
/// Largest size that runs `SPT_recur` (superlinear message count).
const SPT_MAX_N: usize = 10_000;
/// Smallest size worth sharding (below it the per-tick barriers beat
/// any partitioning gain) and the shard counts the curve samples.
const SHARD_MIN_N: usize = 10_000;
const SHARD_COUNTS: [usize; 3] = [2, 4, 8];

struct Row {
    protocol: &'static str,
    n: usize,
    edges: usize,
    gen_secs: f64,
    bytes_per_vertex: f64,
    events: u64,
    run_secs: f64,
    threads: usize,
    lookahead: Option<u64>,
}

impl Row {
    fn eps(&self) -> f64 {
        self.events as f64 / self.run_secs
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "    {{\"protocol\": \"{}\", \"n\": {}, \"edges\": {}, ",
                "\"gen_secs\": {:.4}, \"bytes_per_vertex\": {:.1}, ",
                "\"events\": {}, \"run_secs\": {:.4}, \"events_per_s\": {:.0}, ",
                "\"threads\": {}, \"lookahead\": {}}}"
            ),
            self.protocol,
            self.n,
            self.edges,
            self.gen_secs,
            self.bytes_per_vertex,
            self.events,
            self.run_secs,
            self.eps(),
            self.threads,
            self.lookahead
                .map_or_else(|| "null".to_string(), |l| l.to_string()),
        )
    }
}

fn generate(n: usize) -> (WeightedGraph, f64) {
    let p = (EXTRA_DEGREE / n as f64).min(1.0);
    let start = Instant::now();
    let g = connected_gnp(n, p, DIST, SEED);
    (g, start.elapsed().as_secs_f64())
}

fn main() {
    let mut args = std::env::args().skip(1);
    let out_path = args
        .next()
        .unwrap_or_else(|| "BENCH_scale.json".to_string());
    let max_exp: u32 = args
        .next()
        .map(|s| s.parse().expect("max_n_exp must be an integer"))
        .unwrap_or(6)
        .clamp(3, 6);

    let mut rows = Vec::new();
    for exp in 3..=max_exp {
        let n = 10usize.pow(exp);
        let (g, gen_secs) = generate(n);
        let bytes_per_vertex = g.memory_bytes() as f64 / n as f64;
        eprintln!(
            "n = {n:>8}: {} edges generated in {gen_secs:.3}s, {bytes_per_vertex:.1} B/vertex",
            g.edge_count(),
        );

        let start = Instant::now();
        let flood =
            run_flood(&g, NodeId::new(0), DelayModel::WorstCase, SEED).expect("flood run at scale");
        let run_secs = start.elapsed().as_secs_f64();
        assert!(flood.tree.is_spanning());
        rows.push(Row {
            protocol: "flood",
            n,
            edges: g.edge_count(),
            gen_secs,
            bytes_per_vertex,
            events: flood.cost.messages,
            run_secs,
            threads: 1,
            lookahead: None,
        });
        eprintln!(
            "n = {n:>8}: flood     {:>10} events in {run_secs:.3}s ({:.0} ev/s)",
            flood.cost.messages,
            rows.last().expect("just pushed").eps(),
        );

        if n >= SHARD_MIN_N {
            for k in SHARD_COUNTS {
                let plan = ShardPlan::derive(&g, k);
                let lookahead = plan.cut(&g).min_cut_weight.map(|w| w.get());
                let start = Instant::now();
                let sharded = run_flood_sharded(&g, NodeId::new(0), DelayModel::WorstCase, SEED, k)
                    .expect("sharded flood run at scale");
                let run_secs = start.elapsed().as_secs_f64();
                assert_eq!(
                    sharded.cost, flood.cost,
                    "sharded flood diverged from the sequential run"
                );
                rows.push(Row {
                    protocol: "flood",
                    n,
                    edges: g.edge_count(),
                    gen_secs,
                    bytes_per_vertex,
                    events: sharded.cost.messages,
                    run_secs,
                    threads: k,
                    lookahead,
                });
                eprintln!(
                    "n = {n:>8}: flood x{k} {:>10} events in {run_secs:.3}s ({:.0} ev/s)",
                    sharded.cost.messages,
                    rows.last().expect("just pushed").eps(),
                );
            }
        }

        if n <= SPT_MAX_N {
            let start = Instant::now();
            let spt = run_spt_recur(&g, NodeId::new(0), 16, DelayModel::WorstCase, SEED)
                .expect("SPT_recur run at scale");
            let run_secs = start.elapsed().as_secs_f64();
            rows.push(Row {
                protocol: "spt_recur",
                n,
                edges: g.edge_count(),
                gen_secs,
                bytes_per_vertex,
                events: spt.cost.messages,
                run_secs,
                threads: 1,
                lookahead: None,
            });
            eprintln!(
                "n = {n:>8}: spt_recur {:>10} events in {run_secs:.3}s ({:.0} ev/s)",
                spt.cost.messages,
                rows.last().expect("just pushed").eps(),
            );
        }
    }

    let host_threads = csp_sim::effective_threads(0);
    let json = format!(
        "{{\n  \"bench\": \"scale_tier\",\n  \"delay_model\": \"WorstCase\",\n  \
         \"weight_dist\": \"Uniform(1, 64)\",\n  \"extra_degree\": {EXTRA_DEGREE},\n  \
         \"seed\": {SEED},\n  \"max_n\": {},\n  \"host_threads\": {host_threads},\n  \
         \"rows\": [\n{}\n  ]\n}}\n",
        10u64.pow(max_exp),
        rows.iter().map(Row::json).collect::<Vec<_>>().join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("write bench JSON");
    eprintln!("wrote {out_path}");
}
