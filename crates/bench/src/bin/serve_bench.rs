//! Service-tier benchmark: prefix-sharing resubmission throughput.
//!
//! ```text
//! cargo run -p csp-bench --release --bin serve_bench [-- out.json]
//! ```
//!
//! Measures the scenario the `csp-serve` cache exists for: a client
//! iterating on a fault schedule — resubmitting tail-mutated variants
//! of one long drop/crash schedule. Each variant is evaluated twice:
//!
//! - **cold** — through a cache-disabled service (full replay);
//! - **warm** — through a caching service primed with the base
//!   schedule, so every variant resumes from the deepest shared
//!   checkpoint (INCREMENTAL).
//!
//! The bench asserts the two evaluations are **bit-identical** per
//! variant (cost report, final-state digest, trace digest) and writes a
//! hand-rolled JSON report (default `BENCH_serve.json`) with the
//! speedup, which the CI serve job schema-checks (`speedup >= 2`,
//! `bit_identical == true`).

use csp_adversary::{record, Fallback, Schedule};
use csp_algo::spt::recur::SptRecur;
use csp_graph::{NodeId, WeightedGraph};
use csp_serve::scenario::{Bound, GraphSpec, RunMode, Scenario, StackSpec};
use csp_serve::service::{Service, ServiceConfig};
use csp_serve::{CacheCaps, Json};
use csp_sim::{CrashOracle, DelayModel, DropOracle, SimTime};
use std::time::Instant;

/// Benchmark graph: large enough that one replay dominates per-request
/// overheads, small enough for CI.
const N: usize = 300;
const P: f64 = 0.05;
const GRAPH_SEED: u64 = 7;
/// Tail-mutated variants submitted against the warm cache.
const VARIANTS: usize = 32;
/// Messages between stored checkpoints on the caching service.
const CHECKPOINT_EVERY: u64 = 256;
/// Worker threads for both services (identical, so timings compare).
const THREADS: usize = 4;
/// Timed repetitions per tier; the fastest is reported, which is the
/// standard noise-robust estimator for a deterministic workload.
const REPS: usize = 3;

fn graph_spec() -> GraphSpec {
    GraphSpec::Gnp {
        n: N,
        p: P,
        w_min: 2,
        w_max: 9,
        seed: GRAPH_SEED,
    }
}

fn make_spt(v: NodeId, _: &WeightedGraph) -> SptRecur {
    SptRecur::new(v, NodeId::new(0), 1 << 40)
}

/// Records the base drop+crash schedule all variants share a prefix of.
fn base_schedule(g: &WeightedGraph) -> Schedule {
    let oracle = CrashOracle::new(
        DropOracle::new(DelayModel::Uniform, 0xBEEF_CAFE, 0.15, 4),
        vec![(NodeId::new(N - 1), SimTime::new(40))],
    );
    let (_, schedule) = record(g, make_spt, oracle, Fallback::WorstCase);
    assert!(schedule.has_faults(), "base schedule must carry faults");
    schedule
}

/// Variant `k`: rotate delays in the last ~5% of delivered decisions,
/// keeping every delay admissible in `[1, w]` and guaranteed distinct
/// from the base on at least one decision.
fn variant(base: &Schedule, k: usize) -> Schedule {
    let mut s = base.clone();
    let len = s.decisions.len();
    let from = len - len / 20 - 1;
    let mut changed = 0;
    for (i, d) in s.decisions[from..].iter_mut().enumerate() {
        if d.dropped || d.weight < 2 || !(i + k).is_multiple_of(3) {
            continue;
        }
        let rot = 1 + (k as u64 % (d.weight - 1));
        d.delay = 1 + (d.delay - 1 + rot) % d.weight;
        changed += 1;
    }
    assert!(changed > 0, "variant {k} did not diverge from the base");
    s
}

fn scenario(id: String, schedule: Schedule) -> Scenario {
    Scenario {
        id,
        graph: graph_spec(),
        stack: StackSpec::SptRecur { root: 0, delta: 0 },
        run: RunMode::Schedule(schedule),
        bound: Bound::default(),
        shards: 0,
    }
}

fn service(cache: bool) -> Service {
    Service::new(ServiceConfig {
        threads: THREADS,
        checkpoint_every: CHECKPOINT_EVERY,
        cache,
        caps: CacheCaps::default(),
        trace_cap: 1 << 15,
    })
}

/// The identity fields two evaluations of the same scenario must agree
/// on bit for bit.
fn identity(r: &Json) -> String {
    format!(
        "{}|{}|{}",
        r.get("report").expect("report").dump(),
        r.get("states_digest").and_then(Json::as_str).unwrap_or(""),
        r.get("trace_digest").and_then(Json::as_str).unwrap_or(""),
    )
}

fn cache_outcome(r: &Json) -> &str {
    r.get("cache").and_then(Json::as_str).unwrap_or("?")
}

/// Runs one tier once: a fresh service, primed with the base schedule
/// when caching, then the pre-built submissions one at a time — the
/// iterate-on-a-schedule client pattern the cache targets, so each
/// submission is its own batch. Only the submission loop is timed.
fn run_tier(base: &Schedule, variants: &[Schedule], cache: bool) -> (f64, Vec<Json>) {
    let mut svc = service(cache);
    if cache {
        let primed = svc.process_batch(vec![scenario("base".to_string(), base.clone())]);
        assert_eq!(cache_outcome(&primed[0]), "miss");
    }
    let label = if cache { "warm" } else { "cold" };
    let batches: Vec<Vec<Scenario>> = variants
        .iter()
        .enumerate()
        .map(|(k, s)| vec![scenario(format!("{label}-{k}"), s.clone())])
        .collect();
    let t = Instant::now();
    let responses: Vec<Json> = batches
        .into_iter()
        .flat_map(|b| svc.process_batch(b))
        .collect();
    (t.elapsed().as_secs_f64(), responses)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_serve.json".to_string());

    let g = graph_spec().build();
    let base = base_schedule(&g);
    let schedule_len = base.decisions.len();
    let variants: Vec<Schedule> = (0..VARIANTS).map(|k| variant(&base, k)).collect();
    eprintln!(
        "serve_bench: n={N} schedule_len={schedule_len} variants={VARIANTS}          threads={THREADS} reps={REPS}"
    );

    // Interleave cold/warm repetitions so frequency drift hits both
    // tiers alike; keep the fastest run of each and the first rep's
    // responses for the differential gate (results are deterministic,
    // only timings vary).
    let (mut cold_secs, mut warm_secs) = (f64::INFINITY, f64::INFINITY);
    let (mut cold_responses, mut warm_responses) = (Vec::new(), Vec::new());
    for rep in 0..REPS {
        let (cs, cr) = run_tier(&base, &variants, false);
        let (ws, wr) = run_tier(&base, &variants, true);
        eprintln!("  rep {rep}: cold={cs:.4}s warm={ws:.4}s");
        cold_secs = cold_secs.min(cs);
        warm_secs = warm_secs.min(ws);
        if rep == 0 {
            cold_responses = cr;
            warm_responses = wr;
        }
    }

    // Differential gate: warm must be bit-identical to cold, and every
    // variant must actually have resumed incrementally.
    let mut depth_sum = 0u64;
    for (k, (c, w)) in cold_responses.iter().zip(&warm_responses).enumerate() {
        assert_eq!(
            cache_outcome(w),
            "incremental",
            "variant {k} missed the cache: {}",
            w.dump()
        );
        assert_eq!(
            identity(c),
            identity(w),
            "variant {k}: warm result diverged from cold replay"
        );
        depth_sum += w.get("depth").and_then(Json::as_u64).unwrap_or(0);
    }
    let mean_depth = depth_sum as f64 / VARIANTS as f64;
    let speedup = cold_secs / warm_secs;
    eprintln!(
        "serve_bench: cold={cold_secs:.4}s warm={warm_secs:.4}s \
         speedup={speedup:.2}x mean_resume_depth={mean_depth:.0}"
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"serve_prefix_cache\",\n",
            "  \"graph\": \"{}\",\n",
            "  \"stack\": \"spt_recur:root=0:delta=0\",\n",
            "  \"schedule_len\": {},\n",
            "  \"variants\": {},\n",
            "  \"checkpoint_every\": {},\n",
            "  \"threads\": {},\n",
            "  \"cold_secs\": {:.4},\n",
            "  \"warm_secs\": {:.4},\n",
            "  \"speedup\": {:.2},\n",
            "  \"mean_resume_depth\": {:.0},\n",
            "  \"bit_identical\": true\n",
            "}}\n"
        ),
        graph_spec().key(),
        schedule_len,
        VARIANTS,
        CHECKPOINT_EVERY,
        THREADS,
        cold_secs,
        warm_secs,
        speedup,
        mean_depth,
    );
    std::fs::write(&out_path, json).expect("write bench report");
    eprintln!("serve_bench: wrote {out_path}");
}
