#![deny(missing_docs)]

//! Shared workloads and measurement helpers for the benchmark harness.
//!
//! The paper's evaluation is a set of bounds tables (Figures 1–4), a
//! construction (Figures 5–6), a lower-bound family (Figures 7–8) and
//! the strip method (Figure 9). `src/bin/report.rs` regenerates each of
//! them as measured tables; the Criterion benches in `benches/` track
//! the wall-clock performance of the same runs.

use csp_graph::params::CostParams;
use csp_graph::{generators, WeightedGraph};

/// A named workload graph with precomputed parameters.
pub struct Workload {
    /// Short label for tables.
    pub name: String,
    /// The graph.
    pub graph: WeightedGraph,
    /// Its cost parameters.
    pub params: CostParams,
}

impl Workload {
    /// Wraps a graph with its parameters.
    pub fn new(name: impl Into<String>, graph: WeightedGraph) -> Self {
        let params = CostParams::of(&graph);
        Workload {
            name: name.into(),
            graph,
            params,
        }
    }
}

/// Random connected graphs of increasing size (the generic sweep).
pub fn random_sweep(sizes: &[usize], seed: u64) -> Vec<Workload> {
    sizes
        .iter()
        .map(|&n| {
            Workload::new(
                format!("gnp n={n}"),
                generators::connected_gnp(n, 0.15, generators::WeightDist::Uniform(1, 32), seed),
            )
        })
        .collect()
}

/// Regime A: `Ê ≪ n·V̂` (flood/DFS/GHS territory).
pub fn regime_a(n: usize) -> Workload {
    Workload::new(
        format!("A: sparse-heavy n={n}"),
        generators::sparse_heavy_path(n, 100, 7),
    )
}

/// Regime B: `n·V̂ ≪ Ê` (full-information territory) — the Figure 7
/// family.
pub fn regime_b(n: usize, x: u64) -> Workload {
    Workload::new(
        format!("B: G_n n={n} x={x}"),
        generators::lower_bound_family(n, x),
    )
}

/// Clock-synchronization workload: `d ≪ W`.
pub fn clock_workload(n: usize, heavy: u64) -> Workload {
    Workload::new(
        format!("chords n={n} W={heavy}"),
        generators::heavy_chord_cycle(n, heavy),
    )
}

/// The Figure-3 MST workloads — shared by the Criterion bench
/// (`benches/fig3_mst.rs`), the report generator and the event-core
/// microbench (`src/bin/sim_core_bench.rs`) so they all measure the
/// same graphs.
pub fn fig3_workloads() -> Vec<Workload> {
    vec![
        regime_a(28),
        regime_b(20, 8),
        Workload::new(
            "gnp n=32",
            generators::connected_gnp(32, 0.15, generators::WeightDist::Uniform(1, 32), 5),
        ),
    ]
}

/// Ratio formatted for tables; `∞`-safe.
pub fn ratio(measured: u128, bound: u128) -> f64 {
    if bound == 0 {
        f64::INFINITY
    } else {
        measured as f64 / bound as f64
    }
}

/// Prints a right-aligned table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths.iter())
        .map(|(c, w)| format!("{c:>w$}"))
        .collect::<Vec<_>>()
        .join("  ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_build() {
        let w = regime_b(12, 5);
        assert_eq!(w.params.n, 12);
        assert!(w.params.total_weight > w.params.mst_weight);
        let sweep = random_sweep(&[8, 12], 1);
        assert_eq!(sweep.len(), 2);
    }

    #[test]
    fn ratio_handles_zero() {
        assert!(ratio(5, 0).is_infinite());
        assert_eq!(ratio(6, 3), 2.0);
    }
}
