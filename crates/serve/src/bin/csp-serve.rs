//! `csp-serve` — the scenario-evaluation service binary.
//!
//! Speaks line-delimited JSON on stdin/stdout: one request per line in,
//! one response per scenario out. `{"type":"shutdown"}` (or EOF) exits
//! cleanly.
//!
//! ```text
//! csp-serve [--threads N] [--checkpoint-every N] [--no-cache]
//!           [--metrics] [--trace-cap N]
//! ```
//!
//! - `--threads N`          worker threads (0 = one per core)
//! - `--checkpoint-every N` messages between stored checkpoints (default 16)
//! - `--no-cache`           disable the prefix-sharing cache (cold baseline)
//! - `--metrics`            emit one JSON metrics line per batch on stderr
//! - `--trace-cap N`        record up to N trace events per run and expose
//!   a trace digest in responses (differential testing)
//!
//! A submission may carry `"shards": k` to evaluate a model-mode run on
//! the sharded conservative-parallel core. The result is bit-identical
//! to the sequential core's, so the field is an execution hint only —
//! cached results are shared freely between sharded and sequential
//! submissions of the same scenario.

use csp_serve::json::Json;
use csp_serve::service::{Service, ServiceConfig};
use std::io::{BufRead, Write};

fn usage() -> ! {
    eprintln!(
        "usage: csp-serve [--threads N] [--checkpoint-every N] [--no-cache] \
         [--metrics] [--trace-cap N]"
    );
    std::process::exit(2)
}

fn parse_usize(args: &mut std::env::Args, flag: &str) -> usize {
    match args.next().map(|v| v.parse::<usize>()) {
        Some(Ok(v)) => v,
        _ => {
            eprintln!("csp-serve: {flag} needs a non-negative integer");
            usage()
        }
    }
}

fn main() {
    let mut cfg = ServiceConfig::default();
    let mut metrics_stream = false;
    let mut args = std::env::args();
    let _ = args.next();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => cfg.threads = parse_usize(&mut args, "--threads"),
            "--checkpoint-every" => {
                cfg.checkpoint_every = parse_usize(&mut args, "--checkpoint-every") as u64;
                if cfg.checkpoint_every == 0 {
                    eprintln!("csp-serve: --checkpoint-every must be >= 1");
                    usage()
                }
            }
            "--no-cache" => cfg.cache = false,
            "--metrics" => metrics_stream = true,
            "--trace-cap" => cfg.trace_cap = parse_usize(&mut args, "--trace-cap"),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("csp-serve: unknown flag {other:?}");
                usage()
            }
        }
    }

    let mut service = Service::new(cfg);
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let stderr = std::io::stderr();
    let mut out = stdout.lock();
    let mut err = stderr.lock();

    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let request = match Json::parse(line) {
            Ok(j) => j,
            Err(e) => {
                let resp = Json::obj(vec![
                    ("type", Json::str("error")),
                    ("id", Json::str("")),
                    (
                        "error",
                        Json::str(format!("bad JSON at byte {}: {}", e.pos, e.msg)),
                    ),
                ]);
                let _ = writeln!(out, "{}", resp.dump());
                let _ = out.flush();
                continue;
            }
        };
        if request.get("type").and_then(Json::as_str) == Some("shutdown") {
            let resp = Json::obj(vec![
                ("type", Json::str("shutdown")),
                ("ok", Json::Bool(true)),
            ]);
            let _ = writeln!(out, "{}", resp.dump());
            let _ = out.flush();
            break;
        }
        for resp in service.handle(&request) {
            let _ = writeln!(out, "{}", resp.dump());
        }
        let _ = out.flush();
        if metrics_stream {
            let _ = writeln!(err, "{}", service.metrics.to_json().dump());
            let _ = err.flush();
        }
    }
}
