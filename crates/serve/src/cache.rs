//! The prefix-sharing result cache: FULL hits, INCREMENTAL resumes.
//!
//! Scenarios are keyed by `(graph key, stack key, schedule prefix
//! hash)`. For every cold schedule run the service stores the
//! checkpoints [`run_with_checkpoints`](csp_sim::Simulator::run_with_checkpoints)
//! produced, each under the [`prefix_key`](csp_adversary::Schedule::prefix_key)
//! of the decisions baked into it. A resubmitted scenario probes its own
//! prefix hashes deepest-first: an exact full-schedule match is a
//! **FULL** hit (the stored report comes back without replaying
//! anything), a checkpoint match is an **INCREMENTAL** hit (the run
//! resumes from the deepest matching snapshot), and anything else is a
//! cold **MISS**.
//!
//! Soundness leans on two invariants pinned elsewhere in the workspace:
//! the checkpoint oracle-agreement contract (a resume is bit-identical
//! to a cold run when the oracle agrees on indices ≥
//! [`Checkpoint::messages`]) and the prefix-key construction (equal
//! keys ⟺ equal fault-and-churn sets + bitwise-equal decision
//! prefixes, the hash-collision caveat aside). Because a schedule's
//! crashes, rejoin chains **and** drift revisions are all folded into
//! every prefix key ([`Schedule::crash_key`](csp_adversary::Schedule::crash_key)),
//! schedules that crash different vertices — or churn the same vertex
//! differently, or revise an edge weight at a different instant — never
//! share a checkpoint.
//!
//! Eviction is LRU by a global access epoch with separate caps for
//! checkpoints (heavyweight: queue + slab + states) and results
//! (lightweight), so a long-running service holds its memory flat.

use csp_adversary::{PrefixHasher, Schedule};
use csp_sim::{Checkpoint, CostReport, Process};
use std::collections::HashMap;
use std::sync::Arc;

/// Capacity limits for one [`StackCache`].
#[derive(Clone, Copy, Debug)]
pub struct CacheCaps {
    /// Maximum retained checkpoints across all graphs and schedules.
    pub checkpoints: usize,
    /// Maximum retained exact results.
    pub results: usize,
}

impl Default for CacheCaps {
    fn default() -> Self {
        CacheCaps {
            checkpoints: 256,
            results: 1024,
        }
    }
}

/// What a cache probe found for a submitted schedule.
#[derive(Debug)]
pub enum Probe<P: Process> {
    /// The full schedule (and fallback) was evaluated before: the
    /// stored report, returned without any replay. Boxed: a
    /// `StoredResult` carries a full `CostReport`, far larger than the
    /// other variants.
    Full(Box<StoredResult>),
    /// A checkpoint covers a proper prefix: resume from it. Stored
    /// checkpoints are immutable, so the cache hands out an [`Arc`] —
    /// shipping one to a worker thread is a refcount bump, not a deep
    /// clone of queue + slab + states.
    Incremental {
        /// Snapshot to resume from.
        checkpoint: Arc<Checkpoint<P>>,
        /// Decisions baked into the snapshot (= its message count).
        depth: u64,
    },
    /// Nothing usable: run cold.
    Miss,
}

/// A cached exact result.
#[derive(Clone, Debug)]
pub struct StoredResult {
    /// The run's full cost report.
    pub report: CostReport,
    /// Structural digest of the final states, letting differential
    /// tests assert FULL hits describe the same run without storing
    /// every state vector.
    pub states_digest: u64,
    /// For search results: the worst schedule found, serialized.
    pub schedule_text: Option<String>,
    /// For search results: worst-case baseline completion.
    pub worst_case: Option<u64>,
    /// For exhaustive results: `(classes_explored, schedules_pruned)`
    /// from the DPOR explorer.
    pub reduction: Option<(u64, u64)>,
}

struct StoredCheckpoint<P: Process> {
    cp: Arc<Checkpoint<P>>,
    epoch: u64,
}

struct StoredExact {
    result: StoredResult,
    epoch: u64,
}

/// Cache for one protocol stack type `P`, covering every graph the
/// service has seen (graph and stack keys are folded into the map
/// keys).
pub struct StackCache<P: Process> {
    /// `(scenario key, prefix hash)` → checkpoint at that prefix.
    checkpoints: HashMap<(String, u64), StoredCheckpoint<P>>,
    /// Checkpoint depths (message marks) known per scenario key, sorted
    /// ascending. Probes walk this deepest-first.
    marks: HashMap<String, Vec<u64>>,
    /// `(scenario key, exact hash)` → stored result.
    results: HashMap<(String, u64), StoredExact>,
    caps: CacheCaps,
    epoch: u64,
    evictions: u64,
}

impl<P: Process + Clone> StackCache<P> {
    /// An empty cache with the given caps.
    pub fn new(caps: CacheCaps) -> Self {
        StackCache {
            checkpoints: HashMap::new(),
            marks: HashMap::new(),
            results: HashMap::new(),
            caps,
            epoch: 0,
            evictions: 0,
        }
    }

    /// Checkpoints + results currently held.
    pub fn len(&self) -> (usize, usize) {
        (self.checkpoints.len(), self.results.len())
    }

    /// Whether nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.checkpoints.is_empty() && self.results.is_empty()
    }

    /// Total evictions since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    fn tick(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }

    /// The exact-result key of a full schedule: its complete prefix key
    /// extended with the fallback policy (which *does* govern replays
    /// past the horizon, so it belongs in the exact key even though
    /// prefix keys exclude it).
    pub fn exact_schedule_hash(schedule: &Schedule) -> u64 {
        schedule.prefix_key(schedule.len()) ^ Self::fallback_salt(schedule.fallback)
    }

    /// Cheap distinct tweak per fallback; stays stable across runs.
    fn fallback_salt(fallback: csp_adversary::Fallback) -> u64 {
        match fallback {
            csp_adversary::Fallback::WorstCase => 0x9E37_79B9_7F4A_7C15,
            csp_adversary::Fallback::Rush => 0xC2B2_AE3D_27D4_EB4F,
        }
    }

    /// Probes for the best way to evaluate `schedule` under
    /// `scenario_key` (= `graph_key/stack_key`). Exact result first,
    /// then the deepest checkpoint whose prefix key matches, else miss.
    /// A hit bumps the entry's LRU epoch.
    ///
    /// Returns the schedule's [`StackCache::exact_schedule_hash`]
    /// alongside the probe outcome: the hash falls out of the same
    /// O(len) pass that computes the per-mark prefix keys, and the
    /// caller reuses it when storing the eventual result — hashing the
    /// full decision stream is the probe's dominant cost, so it is paid
    /// exactly once per submission.
    pub fn probe(&mut self, scenario_key: &str, schedule: &Schedule) -> (u64, Probe<P>) {
        let now = self.tick();
        // One O(len) pass computes the prefix key at every mark ≤ len
        // *and* the full-schedule key the exact-result hash extends.
        let usable: Vec<u64> = self
            .marks
            .get(scenario_key)
            .map(|marks| {
                marks
                    .iter()
                    .copied()
                    .filter(|&m| m <= schedule.len() as u64)
                    .collect()
            })
            .unwrap_or_default();
        let mut keys_at: Vec<(u64, u64)> = Vec::with_capacity(usable.len());
        let mut hasher = PrefixHasher::new(schedule);
        let mut mark_ix = 0;
        for (i, d) in schedule.decisions.iter().enumerate() {
            while mark_ix < usable.len() && usable[mark_ix] == i as u64 {
                keys_at.push((usable[mark_ix], hasher.key()));
                mark_ix += 1;
            }
            hasher.absorb(d);
        }
        while mark_ix < usable.len() {
            debug_assert_eq!(usable[mark_ix], schedule.len() as u64);
            keys_at.push((usable[mark_ix], hasher.key()));
            mark_ix += 1;
        }
        let exact = hasher.key() ^ Self::fallback_salt(schedule.fallback);
        debug_assert_eq!(exact, Self::exact_schedule_hash(schedule));
        if let Some(hit) = self.results.get_mut(&(scenario_key.to_string(), exact)) {
            hit.epoch = now;
            return (exact, Probe::Full(Box::new(hit.result.clone())));
        }
        for &(depth, key) in keys_at.iter().rev() {
            if let Some(hit) = self.checkpoints.get_mut(&(scenario_key.to_string(), key)) {
                hit.epoch = now;
                return (
                    exact,
                    Probe::Incremental {
                        checkpoint: Arc::clone(&hit.cp),
                        depth,
                    },
                );
            }
        }
        (exact, Probe::Miss)
    }

    /// Stores the checkpoints of a cold run of `schedule`, each keyed
    /// by the prefix it bakes in. Checkpoints whose message mark
    /// exceeds the schedule's recorded horizon are skipped: past the
    /// horizon the oracle was in fallback territory, and a different
    /// submitted schedule extending the same prefix could legitimately
    /// diverge there.
    pub fn insert_checkpoints(
        &mut self,
        scenario_key: &str,
        schedule: &Schedule,
        cps: &[Checkpoint<P>],
    ) {
        let now = self.tick();
        let mut hasher = PrefixHasher::new(schedule);
        let mut absorbed: u64 = 0;
        for cp in cps {
            let mark = cp.messages();
            if mark > schedule.len() as u64 {
                break;
            }
            while absorbed < mark {
                hasher.absorb(&schedule.decisions[absorbed as usize]);
                absorbed += 1;
            }
            let key = (scenario_key.to_string(), hasher.key());
            self.checkpoints.insert(
                key,
                StoredCheckpoint {
                    cp: Arc::new(cp.clone()),
                    epoch: now,
                },
            );
            let marks = self.marks.entry(scenario_key.to_string()).or_default();
            if let Err(ix) = marks.binary_search(&mark) {
                marks.insert(ix, mark);
            }
        }
        self.evict_checkpoints();
    }

    /// Stores an exact schedule result.
    pub fn insert_schedule_result(
        &mut self,
        scenario_key: &str,
        schedule: &Schedule,
        result: StoredResult,
    ) {
        let hash = Self::exact_schedule_hash(schedule);
        self.insert_exact(scenario_key, hash, result);
    }

    /// Looks up an exact (non-schedule) result by its canonical
    /// mode-key hash.
    pub fn get_exact(&mut self, scenario_key: &str, hash: u64) -> Option<StoredResult> {
        let now = self.tick();
        let hit = self.results.get_mut(&(scenario_key.to_string(), hash))?;
        hit.epoch = now;
        Some(hit.result.clone())
    }

    /// Stores an exact (non-schedule) result under a mode-key hash.
    pub fn insert_exact(&mut self, scenario_key: &str, hash: u64, result: StoredResult) {
        let now = self.tick();
        self.results.insert(
            (scenario_key.to_string(), hash),
            StoredExact { result, epoch: now },
        );
        while self.results.len() > self.caps.results {
            let victim = self
                .results
                .iter()
                .min_by_key(|(_, v)| v.epoch)
                .map(|(k, _)| k.clone())
                .expect("non-empty over cap");
            self.results.remove(&victim);
            self.evictions += 1;
        }
    }

    fn evict_checkpoints(&mut self) {
        while self.checkpoints.len() > self.caps.checkpoints {
            let victim = self
                .checkpoints
                .iter()
                .min_by_key(|(_, v)| v.epoch)
                .map(|(k, _)| k.clone())
                .expect("non-empty over cap");
            let evicted = self.checkpoints.remove(&victim).expect("victim exists");
            self.evictions += 1;
            // Drop the mark only when no other schedule's checkpoint at
            // the same depth survives for this scenario key.
            let mark = evicted.cp.messages();
            let still_used = self
                .checkpoints
                .iter()
                .any(|((k, _), v)| *k == victim.0 && v.cp.messages() == mark);
            if !still_used {
                if let Some(marks) = self.marks.get_mut(&victim.0) {
                    if let Ok(ix) = marks.binary_search(&mark) {
                        marks.remove(ix);
                    }
                    if marks.is_empty() {
                        self.marks.remove(&victim.0);
                    }
                }
            }
        }
    }
}

/// FNV-1a over a string — used for mode keys and state digests.
pub fn fnv1a(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_adversary::ScheduleOracle;
    use csp_algo::flood::Flood;
    use csp_graph::generators::{self, WeightDist};
    use csp_graph::NodeId;
    use csp_sim::{DelayModel, ModelOracle, Simulator};

    fn recorded_schedule(seed: u64) -> (csp_graph::WeightedGraph, Schedule) {
        let g = generators::connected_gnp(10, 0.4, WeightDist::Uniform(1, 9), seed);
        let (_, s) = csp_adversary::record(
            &g,
            |v, _| Flood::new(v == NodeId::new(0)),
            ModelOracle::new(DelayModel::Uniform, seed),
            csp_adversary::Fallback::WorstCase,
        );
        (g, s)
    }

    #[test]
    fn probe_finds_deepest_shared_prefix() {
        let (g, schedule) = recorded_schedule(3);
        let mut cache: StackCache<Flood> = StackCache::new(CacheCaps::default());
        let key = "g/s";

        let mut cps = Vec::new();
        let sim = Simulator::new(&g);
        let cold = sim
            .run_with_checkpoints(
                &mut ScheduleOracle::new(&schedule),
                |v, _| Flood::new(v == NodeId::new(0)),
                5,
                &mut cps,
            )
            .unwrap();
        assert!(cps.len() >= 2, "need several checkpoints for the test");
        cache.insert_checkpoints(key, &schedule, &cps);

        // A tail-mutated schedule shares every checkpointed prefix —
        // probe must return the deepest stored one.
        let mut tweaked = schedule.clone();
        let last = tweaked.decisions.len() - 1;
        tweaked.decisions[last].delay = tweaked.decisions[last].weight.max(1);
        let (exact, probe) = cache.probe(key, &tweaked);
        assert_eq!(exact, StackCache::<Flood>::exact_schedule_hash(&tweaked));
        match probe {
            Probe::Incremental { checkpoint, depth } => {
                let deepest = cps
                    .iter()
                    .map(|c| c.messages())
                    .filter(|&m| m <= last as u64)
                    .max()
                    .unwrap();
                assert_eq!(depth, deepest);
                assert_eq!(checkpoint.messages(), deepest);
                // And the resume reproduces the cold run of `tweaked`
                // exactly when the tails agree (here: tail of 1).
                let resumed = sim
                    .resume(&checkpoint, &mut ScheduleOracle::new(&tweaked))
                    .unwrap();
                let cold_tweaked = Simulator::new(&g)
                    .run_with_oracle(&mut ScheduleOracle::new(&tweaked), |v, _| {
                        Flood::new(v == NodeId::new(0))
                    })
                    .unwrap();
                assert_eq!(resumed.cost, cold_tweaked.cost);
            }
            other => panic!("expected incremental, got {other:?}"),
        }

        // A schedule that diverges at decision 0 misses entirely
        // (unless a mark-0 checkpoint exists, which `every=5` avoids).
        let mut diverged = schedule.clone();
        diverged.decisions[0].delay = if diverged.decisions[0].delay == 1 {
            diverged.decisions[0].weight
        } else {
            1
        };
        assert!(matches!(cache.probe(key, &diverged).1, Probe::Miss));
        // Different crash set: miss, even with identical decisions.
        let mut crashed = schedule.clone();
        crashed.crashes.push(csp_adversary::Crash {
            node: NodeId::new(1),
            at: 4,
        });
        assert!(matches!(cache.probe(key, &crashed).1, Probe::Miss));
        // Churn divergence: a rejoin of an already-crashed vertex, or a
        // mid-run weight revision, changes the fault key — miss, even
        // with identical decisions.
        let mut rejoined = crashed.clone();
        rejoined.rejoins.push(csp_adversary::Rejoin {
            node: NodeId::new(1),
            at: 9,
        });
        assert!(matches!(cache.probe(key, &rejoined).1, Probe::Miss));
        let mut drifted = schedule.clone();
        drifted.drifts.push(csp_adversary::Drift {
            edge: csp_graph::EdgeId::new(0),
            at: 3,
            weight: 5,
        });
        assert!(matches!(cache.probe(key, &drifted).1, Probe::Miss));
        // Wrong scenario key: miss.
        assert!(matches!(cache.probe("other/s", &tweaked).1, Probe::Miss));

        // Exact result round-trip.
        cache.insert_schedule_result(
            key,
            &schedule,
            StoredResult {
                report: cold.cost.clone(),
                states_digest: fnv1a(&format!("{:?}", cold.states)),
                schedule_text: None,
                worst_case: None,
                reduction: None,
            },
        );
        match cache.probe(key, &schedule).1 {
            Probe::Full(hit) => assert_eq!(hit.report, cold.cost),
            other => panic!("expected full hit, got {other:?}"),
        }
        // Same decisions, different fallback: not the same exact result.
        let mut refit = schedule.clone();
        refit.fallback = csp_adversary::Fallback::Rush;
        assert!(!matches!(cache.probe(key, &refit).1, Probe::Full(_)));
    }

    #[test]
    fn eviction_keeps_caps_and_counts() {
        let (_, schedule) = recorded_schedule(9);
        let mut cache: StackCache<Flood> = StackCache::new(CacheCaps {
            checkpoints: 4,
            results: 2,
        });
        // Results: insert 5 under distinct hashes, cap 2 holds.
        for i in 0..5u64 {
            cache.insert_exact(
                "k",
                i,
                StoredResult {
                    report: CostReport::new(0),
                    states_digest: 0,
                    schedule_text: None,
                    worst_case: None,
                    reduction: None,
                },
            );
        }
        assert_eq!(cache.len().1, 2);
        assert!(cache.evictions() >= 3);
        // The most recent insert must have survived LRU.
        assert!(cache.get_exact("k", 4).is_some());
        assert!(cache.get_exact("k", 0).is_none());
        let _ = schedule;
    }
}
