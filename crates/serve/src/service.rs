//! The service engine: request handling, batch scheduling, cache
//! integration.
//!
//! Requests flow **queue → scheduler → cache → workers**:
//!
//! 1. A batch of parsed [`Scenario`]s is partitioned by protocol stack
//!    (the cache is typed per stack).
//! 2. On the service thread, each scenario probes its
//!    [`StackCache`]: FULL hits are answered immediately, INCREMENTAL
//!    hits clone the deepest matching checkpoint into the job, misses
//!    stay cold.
//! 3. Remaining jobs fan out over [`csp_sim::sweep::par_map_with`] —
//!    the same order-preserving worker pool the sweep driver uses — and
//!    run replay / resume / model / search work.
//! 4. Back on the service thread, fresh checkpoints and results are
//!    folded into the cache and metrics, and responses are emitted in
//!    submission order.
//!
//! The cache layer never crosses a thread: workers only see cloned
//! checkpoints, which keeps the engine lock-free.

use crate::cache::{fnv1a, CacheCaps, Probe, StackCache, StoredResult};
use crate::json::Json;
use crate::metrics::{CacheOutcome, ServeMetrics};
use crate::scenario::{Bound, RunMode, Scenario, StackSpec};
use csp_adversary::{Fallback, Recorder, Schedule, ScheduleOracle, SearchConfig};
use csp_algo::flood::Flood;
use csp_algo::spt::recur::SptRecur;
use csp_graph::{NodeId, WeightedGraph};
use csp_sim::sweep::{effective_threads, par_map_with};
use csp_sim::{
    Checkpoint, CostReport, DelayModel, ModelOracle, Process, Run, ShardedSimulator, Simulator,
    Trace,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Service construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Worker threads (`0` = one per core, capped at the machine).
    pub threads: usize,
    /// Message interval between stored checkpoints on cold runs.
    pub checkpoint_every: u64,
    /// Whether the prefix-sharing cache is active. Off, every scenario
    /// runs cold — the baseline `serve_bench` measures against.
    pub cache: bool,
    /// Cache capacity limits.
    pub caps: CacheCaps,
    /// Trace events recorded per run (`0` records nothing). Traces are
    /// digested into responses, so differential consumers can pin
    /// cold ≡ incremental trace identity through the protocol.
    pub trace_cap: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            threads: 0,
            checkpoint_every: 16,
            cache: true,
            caps: CacheCaps::default(),
            trace_cap: 0,
        }
    }
}

/// A protocol stack the service can host: constructible per vertex from
/// its [`StackSpec`], and shippable to worker threads.
pub trait ServeStack: Process + Clone + Send + Sync + std::hash::Hash
where
    Self::Msg: Clone + Send + Sync,
{
    /// Builds the per-vertex process for `spec`.
    fn make(spec: StackSpec, v: NodeId, g: &WeightedGraph) -> Self;
}

impl ServeStack for Flood {
    fn make(spec: StackSpec, v: NodeId, _: &WeightedGraph) -> Flood {
        Flood::new(v == spec.root())
    }
}

impl ServeStack for SptRecur {
    fn make(spec: StackSpec, v: NodeId, _: &WeightedGraph) -> SptRecur {
        let delta = match spec {
            StackSpec::SptRecur { delta, .. } if delta > 0 => delta,
            // 0 = "one strip": effectively unbounded Δ.
            _ => 1 << 40,
        };
        SptRecur::new(v, spec.root(), delta)
    }
}

/// The long-running scenario-evaluation service.
pub struct Service {
    cfg: ServiceConfig,
    threads: usize,
    graphs: HashMap<String, WeightedGraph>,
    flood_cache: StackCache<Flood>,
    spt_cache: StackCache<SptRecur>,
    /// Aggregated counters, exported by `stats` and the metrics stream.
    pub metrics: ServeMetrics,
}

/// One scheduled unit of work, after cache probing.
struct Job<'g, P: Process> {
    ix: usize,
    graph: &'g WeightedGraph,
    spec: StackSpec,
    queued: Instant,
    work: Work<P>,
}

enum Work<P: Process> {
    Replay {
        schedule: Schedule,
        resume: Option<Arc<Checkpoint<P>>>,
        depth: u64,
        /// Precomputed exact-result hash of the submitted schedule
        /// (None with the cache off — nothing will be stored).
        exact: Option<u64>,
    },
    Model {
        delay: DelayModel,
        seed: u64,
        exact: u64,
        /// Shard count for the conservative-parallel core (`0` =
        /// sequential). Not part of `exact` — the cores are
        /// bit-identical, so results are interchangeable.
        shards: usize,
    },
    Search {
        budget: usize,
        seed: u64,
        exact: u64,
    },
    Exhaustive {
        class_budget: usize,
        exact: u64,
    },
}

/// What a worker hands back to the service thread.
struct JobOut<P: Process> {
    ix: usize,
    worker: usize,
    exec: Duration,
    queue_wait: Duration,
    outcome: CacheOutcome,
    depth: u64,
    result: Result<RunOut<P>, String>,
    /// Mode key this result should also be stored under (model/search).
    exact: Option<u64>,
}

struct RunOut<P: Process> {
    report: CostReport,
    states_digest: u64,
    trace_digest: u64,
    /// Checkpoints produced by a cold run, to be cached keyed by
    /// `cache_schedule`.
    checkpoints: Vec<Checkpoint<P>>,
    /// The schedule that deterministically describes the run (submitted
    /// for replays, recorded for model runs, found for searches).
    cache_schedule: Option<Schedule>,
    /// Search extras.
    worst_case: Option<u64>,
    schedule_text: Option<String>,
    /// Exhaustive extras: `(classes_explored, schedules_pruned)`.
    reduction: Option<(u64, u64)>,
}

impl Service {
    /// Creates a service with the given configuration.
    pub fn new(cfg: ServiceConfig) -> Service {
        let threads = effective_threads(cfg.threads);
        Service {
            cfg,
            threads,
            graphs: HashMap::new(),
            flood_cache: StackCache::new(cfg.caps),
            spt_cache: StackCache::new(cfg.caps),
            metrics: ServeMetrics::new(threads),
        }
    }

    /// Worker threads the pool runs with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Handles one JSON-lines request, returning the responses to
    /// write (one per line). `shutdown` is the caller's concern — the
    /// engine is transport-agnostic.
    pub fn handle(&mut self, request: &Json) -> Vec<Json> {
        match request.get("type").and_then(Json::as_str) {
            Some("submit") => {
                let id = request
                    .get("id")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string();
                match Scenario::from_json(request) {
                    Ok(s) => self.process_batch(vec![s]),
                    Err(e) => {
                        self.metrics.rejected += 1;
                        vec![error_response(&id, &e.msg)]
                    }
                }
            }
            Some("batch") => {
                let Some(items) = request.get("scenarios").and_then(Json::as_arr) else {
                    self.metrics.rejected += 1;
                    return vec![error_response("", "batch needs a \"scenarios\" array")];
                };
                let mut scenarios = Vec::new();
                let mut responses: Vec<Option<Json>> = Vec::new();
                for item in items {
                    match Scenario::from_json(item) {
                        Ok(s) => {
                            scenarios.push((responses.len(), s));
                            responses.push(None);
                        }
                        Err(e) => {
                            self.metrics.rejected += 1;
                            let id = item.get("id").and_then(Json::as_str).unwrap_or_default();
                            responses.push(Some(error_response(id, &e.msg)));
                        }
                    }
                }
                let ok: Vec<Scenario> = scenarios.iter().map(|(_, s)| s.clone()).collect();
                let answered = self.process_batch(ok);
                for ((slot, _), resp) in scenarios.into_iter().zip(answered) {
                    responses[slot] = Some(resp);
                }
                responses.into_iter().flatten().collect()
            }
            Some("stats") => {
                let id = request.get("id").and_then(Json::as_str).unwrap_or_default();
                vec![Json::obj(vec![
                    ("type", Json::str("stats")),
                    ("id", Json::str(id)),
                    ("stats", self.metrics.to_json()),
                ])]
            }
            Some(other) => {
                self.metrics.rejected += 1;
                vec![error_response(
                    "",
                    &format!("unknown request type {other:?} (submit, batch, stats, shutdown)"),
                )]
            }
            None => {
                self.metrics.rejected += 1;
                vec![error_response("", "request needs a string \"type\"")]
            }
        }
    }

    /// Evaluates a batch of parsed scenarios, returning one response
    /// per scenario in submission order.
    pub fn process_batch(&mut self, scenarios: Vec<Scenario>) -> Vec<Json> {
        self.metrics.batches += 1;
        self.metrics.submitted += scenarios.len() as u64;
        let queued = Instant::now();

        // Materialize every referenced graph first, so jobs can borrow
        // the store immutably for the whole parallel phase.
        for s in &scenarios {
            self.graphs
                .entry(s.graph.key())
                .or_insert_with(|| s.graph.build());
        }

        let mut responses: Vec<Option<Json>> = vec![None; scenarios.len()];

        // Partition by stack type; each partition runs through the
        // typed pipeline. Order within `responses` preserves submission
        // order regardless of partitioning.
        let mut flood_jobs: Vec<(usize, Scenario)> = Vec::new();
        let mut spt_jobs: Vec<(usize, Scenario)> = Vec::new();
        for (ix, s) in scenarios.into_iter().enumerate() {
            match s.stack {
                StackSpec::Flood { .. } => flood_jobs.push((ix, s)),
                StackSpec::SptRecur { .. } => spt_jobs.push((ix, s)),
            }
        }

        // The typed pipelines need simultaneous access to the graph
        // store (shared) and one cache (exclusive) — split the borrows
        // field by field.
        let Service {
            cfg,
            threads,
            graphs,
            flood_cache,
            spt_cache,
            metrics,
        } = self;
        run_stack_jobs(
            *cfg,
            *threads,
            graphs,
            flood_cache,
            metrics,
            flood_jobs,
            queued,
            &mut responses,
        );
        run_stack_jobs(
            *cfg,
            *threads,
            graphs,
            spt_cache,
            metrics,
            spt_jobs,
            queued,
            &mut responses,
        );

        let (fc, fr) = self.flood_cache.len();
        let (sc, sr) = self.spt_cache.len();
        self.metrics.checkpoints_stored = (fc + sc) as u64;
        self.metrics.results_stored = (fr + sr) as u64;
        self.metrics.evictions = self.flood_cache.evictions() + self.spt_cache.evictions();

        responses
            .into_iter()
            .map(|r| r.expect("every scenario answered"))
            .collect()
    }
}

/// Probes the cache, fans misses/resumes out to the worker pool, folds
/// results back into cache + metrics, and writes responses.
#[allow(clippy::too_many_arguments)]
fn run_stack_jobs<P: ServeStack>(
    cfg: ServiceConfig,
    threads: usize,
    graphs: &HashMap<String, WeightedGraph>,
    cache: &mut StackCache<P>,
    metrics: &mut ServeMetrics,
    scenarios: Vec<(usize, Scenario)>,
    queued: Instant,
    responses: &mut [Option<Json>],
) where
    P::Msg: Clone + Send + Sync,
{
    if scenarios.is_empty() {
        return;
    }
    let mut jobs: Vec<Job<'_, P>> = Vec::new();
    let mut ids: HashMap<usize, (String, Bound, String)> = HashMap::new();

    for (ix, s) in scenarios {
        let graph = graphs.get(&s.graph.key()).expect("graph materialized");
        let scenario_key = format!("{}/{}", s.graph.key(), s.stack.key());
        ids.insert(ix, (s.id.clone(), s.bound, scenario_key.clone()));
        let exact_hash = s
            .run
            .exact_key()
            .map(|suffix| fnv1a(&format!("{scenario_key}#{suffix}")));
        let work = match s.run {
            RunMode::Schedule(schedule) => {
                if cfg.cache {
                    // The probe's single O(len) pass also yields the
                    // exact hash reused at result-insertion time.
                    let (sched_exact, probe) = cache.probe(&scenario_key, &schedule);
                    match probe {
                        Probe::Full(stored) => {
                            metrics.cache_full_hits += 1;
                            responses[ix] = Some(result_response(
                                &s.id,
                                CacheOutcome::Full,
                                0,
                                &stored.report,
                                stored.states_digest,
                                None,
                                s.bound,
                                Duration::ZERO,
                                queued.elapsed(),
                                stored.worst_case,
                                stored.schedule_text.as_deref(),
                                stored.reduction,
                            ));
                            continue;
                        }
                        Probe::Incremental { checkpoint, depth } => Work::Replay {
                            schedule,
                            resume: Some(checkpoint),
                            depth,
                            exact: Some(sched_exact),
                        },
                        Probe::Miss => Work::Replay {
                            schedule,
                            resume: None,
                            depth: 0,
                            exact: Some(sched_exact),
                        },
                    }
                } else {
                    Work::Replay {
                        schedule,
                        resume: None,
                        depth: 0,
                        exact: None,
                    }
                }
            }
            RunMode::Model { delay, seed } => {
                let exact = exact_hash.expect("model mode is exact");
                if cfg.cache {
                    if let Some(stored) = cache.get_exact(&scenario_key, exact) {
                        metrics.cache_full_hits += 1;
                        responses[ix] = Some(result_response(
                            &s.id,
                            CacheOutcome::Full,
                            0,
                            &stored.report,
                            stored.states_digest,
                            None,
                            s.bound,
                            Duration::ZERO,
                            queued.elapsed(),
                            stored.worst_case,
                            stored.schedule_text.as_deref(),
                            stored.reduction,
                        ));
                        continue;
                    }
                }
                Work::Model {
                    delay,
                    seed,
                    exact,
                    shards: s.shards,
                }
            }
            RunMode::Search { budget, seed } => {
                let exact = exact_hash.expect("search mode is exact");
                if cfg.cache {
                    if let Some(stored) = cache.get_exact(&scenario_key, exact) {
                        metrics.cache_full_hits += 1;
                        responses[ix] = Some(result_response(
                            &s.id,
                            CacheOutcome::Full,
                            0,
                            &stored.report,
                            stored.states_digest,
                            None,
                            s.bound,
                            Duration::ZERO,
                            queued.elapsed(),
                            stored.worst_case,
                            stored.schedule_text.as_deref(),
                            stored.reduction,
                        ));
                        continue;
                    }
                }
                Work::Search {
                    budget,
                    seed,
                    exact,
                }
            }
            RunMode::Exhaustive { class_budget } => {
                let exact = exact_hash.expect("exhaustive mode is exact");
                if cfg.cache {
                    if let Some(stored) = cache.get_exact(&scenario_key, exact) {
                        metrics.cache_full_hits += 1;
                        responses[ix] = Some(result_response(
                            &s.id,
                            CacheOutcome::Full,
                            0,
                            &stored.report,
                            stored.states_digest,
                            None,
                            s.bound,
                            Duration::ZERO,
                            queued.elapsed(),
                            stored.worst_case,
                            stored.schedule_text.as_deref(),
                            stored.reduction,
                        ));
                        continue;
                    }
                }
                Work::Exhaustive {
                    class_budget,
                    exact,
                }
            }
        };
        jobs.push(Job {
            ix,
            graph,
            spec: s.stack,
            queued,
            work,
        });
    }

    // Fan out. Worker slots self-assign ids off an atomic so per-worker
    // meters survive the pool (par_map_with's state is per thread).
    let next_worker = AtomicUsize::new(0);
    let outs: Vec<JobOut<P>> = par_map_with(
        &jobs,
        threads,
        || next_worker.fetch_add(1, Ordering::Relaxed),
        |worker, job| run_job(cfg, *worker, job),
    );

    // Fold back: cache inserts, metrics, responses. Replay schedules
    // are recovered from the job list (moving, not cloning, the
    // decision stream a worker would otherwise have to copy).
    let replay_schedules: HashMap<usize, Schedule> = jobs
        .into_iter()
        .filter_map(|j| match j.work {
            Work::Replay { schedule, .. } => Some((j.ix, schedule)),
            _ => None,
        })
        .collect();
    for out in outs {
        let (id, bound, scenario_key) = ids.remove(&out.ix).expect("job bookkeeping");
        match out.result {
            Err(msg) => {
                responses[out.ix] = Some(error_response(&id, &msg));
            }
            Ok(run) => {
                if cfg.cache {
                    let stored = StoredResult {
                        report: run.report.clone(),
                        states_digest: run.states_digest,
                        schedule_text: run.schedule_text.clone(),
                        worst_case: run.worst_case,
                        reduction: run.reduction,
                    };
                    if !run.checkpoints.is_empty() {
                        // Cold replays key checkpoints by the submitted
                        // schedule; model/search runs by the schedule
                        // they recorded/found.
                        if let Some(schedule) = run
                            .cache_schedule
                            .as_ref()
                            .or_else(|| replay_schedules.get(&out.ix))
                        {
                            cache.insert_checkpoints(&scenario_key, schedule, &run.checkpoints);
                        }
                    }
                    if let Some(schedule) = &run.cache_schedule {
                        cache.insert_schedule_result(&scenario_key, schedule, stored.clone());
                    }
                    if let Some(exact) = out.exact {
                        cache.insert_exact(&scenario_key, exact, stored);
                    }
                }
                metrics.record_scenario(
                    out.outcome,
                    out.depth,
                    &run.report,
                    out.exec,
                    out.queue_wait,
                    out.worker,
                );
                responses[out.ix] = Some(result_response(
                    &id,
                    out.outcome,
                    out.depth,
                    &run.report,
                    run.states_digest,
                    Some(run.trace_digest),
                    bound,
                    out.exec,
                    out.queue_wait,
                    run.worst_case,
                    run.schedule_text.as_deref(),
                    run.reduction,
                ));
            }
        }
    }
}

impl<P: Process> JobOut<P> {
    fn new(ix: usize, worker: usize, outcome: CacheOutcome, depth: u64) -> Self {
        JobOut {
            ix,
            worker,
            exec: Duration::ZERO,
            queue_wait: Duration::ZERO,
            outcome,
            depth,
            result: Err("unset".to_string()),
            exact: None,
        }
    }
}

/// Evaluates one job on a worker thread.
fn run_job<P: ServeStack>(cfg: ServiceConfig, worker: usize, job: &Job<'_, P>) -> JobOut<P>
where
    P::Msg: Clone + Send + Sync,
{
    let started = Instant::now();
    let queue_wait = started.duration_since(job.queued);
    let g = job.graph;
    let spec = job.spec;
    let make = |v: NodeId, g: &WeightedGraph| P::make(spec, v, g);
    // With the cache off there is nobody to hand checkpoints to — run
    // with an unreachable cadence so the baseline pays no snapshot cost.
    let every = if cfg.cache {
        cfg.checkpoint_every
    } else {
        u64::MAX
    };

    let (outcome, depth, result, exact) = match &job.work {
        Work::Replay {
            schedule,
            resume: Some(cp),
            depth,
            exact,
        } => {
            let mut sim = Simulator::new(g);
            sim.record_trace(cfg.trace_cap);
            let res = sim
                .resume(cp, &mut ScheduleOracle::new(schedule))
                .map(|run| finish_run(run, Vec::new(), None, None, None, None))
                .map_err(|e| e.to_string());
            (CacheOutcome::Incremental, *depth, res, *exact)
        }
        Work::Replay {
            schedule,
            resume: None,
            exact,
            ..
        } => {
            let outcome = if cfg.cache {
                CacheOutcome::Miss
            } else {
                CacheOutcome::Uncached
            };
            let mut cps = Vec::new();
            let mut sim = Simulator::new(g);
            sim.record_trace(cfg.trace_cap);
            let res = sim
                .run_with_checkpoints(&mut ScheduleOracle::new(schedule), make, every, &mut cps)
                .map(|run| finish_run(run, cps, None, None, None, None))
                .map_err(|e| e.to_string());
            (outcome, 0, res, *exact)
        }
        Work::Model {
            delay,
            seed,
            exact,
            shards,
        } => {
            let outcome = if cfg.cache {
                CacheOutcome::Miss
            } else {
                CacheOutcome::Uncached
            };
            // Record the transcript while running: the recorded
            // schedule is the canonical key the checkpoints are cached
            // under, so later *schedule* submissions replaying a
            // variation of this run resume incrementally.
            let mut rec = Recorder::new(ModelOracle::new(*delay, *seed));
            if *shards > 0 {
                // Opt-in sharded evaluation: bit-identical to the
                // sequential path (same report, digests and recorded
                // schedule), but checkpointless — prefix snapshots are
                // a sequential-core artifact.
                let res = ShardedSimulator::new(g)
                    .threads(*shards)
                    .record_trace(cfg.trace_cap)
                    .run_with_oracle(&mut rec, make)
                    .map(|run| {
                        let schedule = rec.into_schedule(Fallback::WorstCase);
                        finish_run(run, Vec::new(), Some(schedule), None, None, None)
                    })
                    .map_err(|e| e.to_string());
                (outcome, 0, res, Some(*exact))
            } else {
                let mut cps = Vec::new();
                let mut sim = Simulator::new(g);
                sim.record_trace(cfg.trace_cap);
                let res = sim
                    .run_with_checkpoints(&mut rec, make, every, &mut cps)
                    .map(|run| {
                        let schedule = rec.into_schedule(Fallback::WorstCase);
                        finish_run(run, cps, Some(schedule), None, None, None)
                    })
                    .map_err(|e| e.to_string());
                (outcome, 0, res, Some(*exact))
            }
        }
        Work::Search {
            budget,
            seed,
            exact,
        } => {
            let outcome = if cfg.cache {
                CacheOutcome::Miss
            } else {
                CacheOutcome::Uncached
            };
            // The pool is already parallel — one thread per search
            // keeps total parallelism at the pool's width.
            let mut builder = SearchConfig::builder().seed(*seed).threads(1);
            if *budget > 0 {
                builder = builder.hill_rounds(*budget);
            }
            let search_cfg = builder
                .build()
                .expect("service search config is statically valid");
            let out = csp_adversary::find_worst_schedule(g, make, &search_cfg);
            // Replay the found schedule once with checkpoints: the full
            // report for the response, and cached prefixes for free.
            let mut cps = Vec::new();
            let mut sim = Simulator::new(g);
            sim.record_trace(cfg.trace_cap);
            let res = sim
                .run_with_checkpoints(
                    &mut ScheduleOracle::new(&out.schedule),
                    make,
                    every,
                    &mut cps,
                )
                .map(|run| {
                    finish_run(
                        run,
                        cps,
                        Some(out.schedule.clone()),
                        Some(out.worst_case.get()),
                        Some(out.schedule.to_text()),
                        None,
                    )
                })
                .map_err(|e| e.to_string());
            (outcome, 0, res, Some(*exact))
        }
        Work::Exhaustive {
            class_budget,
            exact,
        } => {
            let outcome = if cfg.cache {
                CacheOutcome::Miss
            } else {
                CacheOutcome::Uncached
            };
            let search_cfg = SearchConfig::builder()
                // The pool is already parallel — the explorer itself is
                // sequential, so one evaluator per job suffices.
                .threads(1)
                .exhaustive(*class_budget)
                .build()
                .expect("exhaustive service config is statically valid");
            let out = csp_adversary::explore_exhaustive(g, make, &search_cfg);
            // Replay the per-class representative that won, with
            // checkpoints — same shape as the heuristic search arm.
            let mut cps = Vec::new();
            let mut sim = Simulator::new(g);
            sim.record_trace(cfg.trace_cap);
            let res = sim
                .run_with_checkpoints(
                    &mut ScheduleOracle::new(&out.schedule),
                    make,
                    every,
                    &mut cps,
                )
                .map(|run| {
                    finish_run(
                        run,
                        cps,
                        Some(out.schedule.clone()),
                        Some(out.worst_case.get()),
                        Some(out.schedule.to_text()),
                        Some((out.classes_explored, out.schedules_pruned)),
                    )
                })
                .map_err(|e| e.to_string());
            (outcome, 0, res, Some(*exact))
        }
    };

    let mut out = JobOut::new(job.ix, worker, outcome, depth);
    out.exec = started.elapsed();
    out.queue_wait = queue_wait;
    out.result = result;
    out.exact = exact;
    out
}

fn finish_run<P: Process + std::hash::Hash>(
    run: Run<P>,
    checkpoints: Vec<Checkpoint<P>>,
    cache_schedule: Option<Schedule>,
    worst_case: Option<u64>,
    schedule_text: Option<String>,
    reduction: Option<(u64, u64)>,
) -> RunOut<P> {
    RunOut {
        states_digest: digest_states(&run.states),
        trace_digest: digest_trace(&run.trace),
        report: run.cost,
        checkpoints,
        cache_schedule,
        worst_case,
        schedule_text,
        reduction,
    }
}

/// Deterministic word-mixing [`std::hash::Hasher`] for state digests:
/// `DefaultHasher` is documented as unstable across releases, and
/// `Debug`-formatting the state vector costs more than the run itself
/// on warm paths.
struct WordHasher(u64);

impl WordHasher {
    fn mix(h: u64, word: u64) -> u64 {
        let mut x = (h ^ word).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x ^= x >> 32;
        x.wrapping_mul(0xff51_afd7_ed55_8ccd)
    }
}

impl std::hash::Hasher for WordHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn write_u8(&mut self, i: u8) {
        self.0 = Self::mix(self.0, u64::from(i));
    }
    fn write_u32(&mut self, i: u32) {
        self.0 = Self::mix(self.0, u64::from(i));
    }
    fn write_u64(&mut self, i: u64) {
        self.0 = Self::mix(self.0, i);
    }
    fn write_u128(&mut self, i: u128) {
        self.0 = Self::mix(Self::mix(self.0, i as u64), (i >> 64) as u64);
    }
    fn write_usize(&mut self, i: usize) {
        self.0 = Self::mix(self.0, i as u64);
    }
}

/// Structural digest of the final state vector.
fn digest_states<P: std::hash::Hash>(states: &[P]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = WordHasher(0xcbf2_9ce4_8422_2325);
    states.len().hash(&mut h);
    for s in states {
        s.hash(&mut h);
    }
    h.finish()
}

/// Structural hash of a trace — field-by-field, not via `Debug`
/// formatting, because traces run to tens of thousands of events and
/// this digest sits on every response's hot path.
fn digest_trace(trace: &Trace) -> u64 {
    fn mix(h: u64, word: u64) -> u64 {
        let mut x = (h ^ word).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x ^= x >> 32;
        x.wrapping_mul(0xff51_afd7_ed55_8ccd)
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for e in trace.events() {
        h = mix(h, e.from.index() as u64);
        h = mix(h, e.to.index() as u64);
        h = mix(h, e.edge.index() as u64);
        h = mix(h, e.sent.get());
        h = mix(h, e.delivered.get());
        h = mix(h, e.class as u64);
    }
    mix(mix(h, trace.events().len() as u64), trace.dropped())
}

fn error_response(id: &str, msg: &str) -> Json {
    Json::obj(vec![
        ("type", Json::str("error")),
        ("id", Json::str(id)),
        ("error", Json::str(msg)),
    ])
}

/// Renders a [`CostReport`] to the wire shape shared by results and
/// stored cache hits.
pub fn report_to_json(r: &CostReport) -> Json {
    Json::obj(vec![
        ("messages", Json::num(r.messages as f64)),
        ("weighted_comm", Json::num(r.weighted_comm.get() as f64)),
        ("completion", Json::num(r.completion.get() as f64)),
        ("drops", Json::num(r.drops as f64)),
        ("crashed_nodes", Json::num(r.crashed_nodes as f64)),
        ("dead_events", Json::num(r.dead_events as f64)),
        ("recoveries", Json::num(r.recoveries as f64)),
        ("weight_revisions", Json::num(r.weight_revisions as f64)),
        (
            "max_edge_congestion",
            Json::num(r.max_edge_congestion() as f64),
        ),
        ("overflow_pushes", Json::num(r.overflow_pushes as f64)),
        ("bucket_window", Json::num(r.bucket_window as f64)),
    ])
}

#[allow(clippy::too_many_arguments)]
fn result_response(
    id: &str,
    outcome: CacheOutcome,
    depth: u64,
    report: &CostReport,
    states_digest: u64,
    trace_digest: Option<u64>,
    bound: Bound,
    exec: Duration,
    queue_wait: Duration,
    worst_case: Option<u64>,
    schedule_text: Option<&str>,
    reduction: Option<(u64, u64)>,
) -> Json {
    let mut fields = vec![
        ("type", Json::str("result")),
        ("id", Json::str(id)),
        ("status", Json::str("ok")),
        ("cache", Json::str(outcome.name())),
        ("depth", Json::num(depth as f64)),
        ("report", report_to_json(report)),
        ("states_digest", Json::str(format!("{states_digest:016x}"))),
        ("exec_us", Json::num(exec.as_micros() as f64)),
        ("queue_wait_us", Json::num(queue_wait.as_micros() as f64)),
    ];
    if let Some(t) = trace_digest {
        fields.push(("trace_digest", Json::str(format!("{t:016x}"))));
    }
    if bound.time.is_some() || bound.comm.is_some() {
        let time_ok = bound.time.is_none_or(|t| report.completion.get() <= t);
        let comm_ok = bound
            .comm
            .is_none_or(|c| report.weighted_comm.get() <= u128::from(c));
        let mut b = vec![("holds", Json::Bool(time_ok && comm_ok))];
        if let Some(t) = bound.time {
            b.push(("time", Json::num(t as f64)));
        }
        if let Some(c) = bound.comm {
            b.push(("comm", Json::num(c as f64)));
        }
        fields.push(("bound", Json::obj(b)));
    }
    if let Some(w) = worst_case {
        fields.push(("worst_case", Json::num(w as f64)));
    }
    if let Some((classes, pruned)) = reduction {
        fields.push(("classes_explored", Json::num(classes as f64)));
        fields.push(("schedules_pruned", Json::num(pruned as f64)));
    }
    if let Some(s) = schedule_text {
        fields.push(("schedule", Json::str(s)));
    }
    Json::obj(fields)
}
