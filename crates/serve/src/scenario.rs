//! Scenario submissions: what a client asks the service to evaluate.
//!
//! A scenario names a **graph** (by generator family and parameters —
//! graphs are deterministic given the spec, so the spec *is* the
//! graph), a **protocol stack**, a **run mode** (replay a fault
//! schedule, run a delay model, or search for a worst-case schedule)
//! and optionally a **bound** to check the outcome against.
//!
//! Graph and stack specs canonicalise to key strings
//! ([`GraphSpec::key`], [`StackSpec::key`]); together with
//! `csp-adversary`'s schedule prefix hashes these form the cache keys
//! the service's prefix-sharing layer is built on.

use crate::json::Json;
use csp_adversary::Schedule;
use csp_graph::generators::{self, WeightDist};
use csp_graph::{NodeId, WeightedGraph};
use csp_sim::DelayModel;
use std::fmt;

/// A graph named by its generator parameters.
#[derive(Clone, Debug, PartialEq)]
pub enum GraphSpec {
    /// Connected G(n, p) with uniform weights in `[w_min, w_max]`.
    Gnp {
        /// Vertex count.
        n: usize,
        /// Edge probability.
        p: f64,
        /// Minimum edge weight.
        w_min: u64,
        /// Maximum edge weight.
        w_max: u64,
        /// Generator seed.
        seed: u64,
    },
    /// A cycle with constant weight.
    Cycle {
        /// Vertex count.
        n: usize,
        /// Every edge's weight.
        w: u64,
    },
    /// A path with constant weight.
    Path {
        /// Vertex count.
        n: usize,
        /// Every edge's weight.
        w: u64,
    },
    /// Dense unit-weight clusters joined by heavy bridges.
    Cluster {
        /// Number of clusters.
        clusters: usize,
        /// Vertices per cluster.
        size: usize,
        /// Bridge weight.
        heavy: u64,
        /// Generator seed.
        seed: u64,
    },
}

impl GraphSpec {
    /// Canonical cache-key string: distinct specs map to distinct keys
    /// and equal specs always render identically.
    pub fn key(&self) -> String {
        match self {
            GraphSpec::Gnp {
                n,
                p,
                w_min,
                w_max,
                seed,
            } => format!("gnp:n={n}:p={p}:w={w_min}-{w_max}:seed={seed}"),
            GraphSpec::Cycle { n, w } => format!("cycle:n={n}:w={w}"),
            GraphSpec::Path { n, w } => format!("path:n={n}:w={w}"),
            GraphSpec::Cluster {
                clusters,
                size,
                heavy,
                seed,
            } => format!("cluster:k={clusters}:size={size}:heavy={heavy}:seed={seed}"),
        }
    }

    /// Materializes the graph (deterministic given the spec).
    pub fn build(&self) -> WeightedGraph {
        match *self {
            GraphSpec::Gnp {
                n,
                p,
                w_min,
                w_max,
                seed,
            } => generators::connected_gnp(n, p, WeightDist::Uniform(w_min, w_max), seed),
            GraphSpec::Cycle { n, w } => generators::cycle(n, |_| w),
            GraphSpec::Path { n, w } => generators::path(n, |_| w),
            GraphSpec::Cluster {
                clusters,
                size,
                heavy,
                seed,
            } => generators::cluster_graph(clusters, size, heavy, seed),
        }
    }

    /// Parses the `"graph"` member of a submission.
    pub fn from_json(v: &Json) -> Result<GraphSpec, SpecError> {
        let family = req_str(v, "family")?;
        let spec = match family {
            "gnp" => GraphSpec::Gnp {
                n: req_u64(v, "n")? as usize,
                p: v.get("p")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| SpecError::new("graph.p must be a number"))?,
                w_min: opt_u64(v, "w_min", 1)?,
                w_max: opt_u64(v, "w_max", 9)?,
                seed: opt_u64(v, "seed", 0)?,
            },
            "cycle" => GraphSpec::Cycle {
                n: req_u64(v, "n")? as usize,
                w: opt_u64(v, "w", 1)?,
            },
            "path" => GraphSpec::Path {
                n: req_u64(v, "n")? as usize,
                w: opt_u64(v, "w", 1)?,
            },
            "cluster" => GraphSpec::Cluster {
                clusters: req_u64(v, "clusters")? as usize,
                size: req_u64(v, "size")? as usize,
                heavy: opt_u64(v, "heavy", 16)?,
                seed: opt_u64(v, "seed", 0)?,
            },
            other => {
                return Err(SpecError::new(&format!(
                    "unknown graph family {other:?} (gnp, cycle, path, cluster)"
                )))
            }
        };
        let n = match spec {
            GraphSpec::Gnp { n, .. } | GraphSpec::Cycle { n, .. } | GraphSpec::Path { n, .. } => n,
            GraphSpec::Cluster { clusters, size, .. } => clusters * size,
        };
        if n < 2 {
            return Err(SpecError::new("graph needs at least 2 vertices"));
        }
        if n > MAX_NODES {
            return Err(SpecError::new(&format!(
                "graph too large for the service tier (n={n} > {MAX_NODES})"
            )));
        }
        Ok(spec)
    }
}

/// Upper bound on submitted graph sizes: the service is an interactive
/// tier, and a hostile or fat-fingered `n` must not wedge every worker.
pub const MAX_NODES: usize = 100_000;

/// Upper bound on the per-scenario shard count: each shard is a real
/// worker thread, and a hostile request must not fork-bomb the host.
pub const MAX_SHARDS: usize = 64;

/// Upper bound on graph sizes admitted to the exhaustive
/// ([`RunMode::Exhaustive`]) mode: delivery-order class counts grow
/// combinatorially with the message count, so the interactive tier only
/// accepts instances small enough that the class budget is a real
/// coverage guarantee rather than an arbitrary truncation.
pub const MAX_EXHAUSTIVE_NODES: usize = 16;

/// The protocol stack a scenario runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StackSpec {
    /// Broadcast flood from `root`.
    Flood {
        /// The initiating vertex.
        root: usize,
    },
    /// Recursive-doubling SPT from `root` with strip parameter `delta`.
    SptRecur {
        /// The source vertex.
        root: usize,
        /// Strip width Δ (`0` means one strip covering everything).
        delta: u64,
    },
}

impl StackSpec {
    /// Canonical cache-key string.
    pub fn key(&self) -> String {
        match self {
            StackSpec::Flood { root } => format!("flood:root={root}"),
            StackSpec::SptRecur { root, delta } => format!("spt_recur:root={root}:delta={delta}"),
        }
    }

    /// The stack's root/source vertex.
    pub fn root(&self) -> NodeId {
        match self {
            StackSpec::Flood { root } | StackSpec::SptRecur { root, .. } => NodeId::new(*root),
        }
    }

    /// Parses the `"stack"` member of a submission.
    pub fn from_json(v: &Json) -> Result<StackSpec, SpecError> {
        let protocol = req_str(v, "protocol")?;
        match protocol {
            "flood" => Ok(StackSpec::Flood {
                root: opt_u64(v, "root", 0)? as usize,
            }),
            "spt_recur" => Ok(StackSpec::SptRecur {
                root: opt_u64(v, "root", 0)? as usize,
                delta: opt_u64(v, "delta", 0)?,
            }),
            other => Err(SpecError::new(&format!(
                "unknown protocol {other:?} (flood, spt_recur)"
            ))),
        }
    }
}

/// How the scenario's link behaviour is determined.
#[derive(Clone, Debug, PartialEq)]
pub enum RunMode {
    /// Replay a recorded fault schedule (the schedule's text format,
    /// embedded as a JSON string).
    Schedule(Schedule),
    /// Run a delay model with a seed — deterministic, so cacheable by
    /// `(model, seed)`.
    Model {
        /// The delay model.
        delay: DelayModel,
        /// Model seed (ignored by deterministic models).
        seed: u64,
    },
    /// Search for a worst-case schedule within a budget.
    Search {
        /// Hill-climbing rounds (`0` means the search default).
        budget: usize,
        /// Master search seed.
        seed: u64,
    },
    /// Exhaustively enumerate delivery-order classes with the
    /// sleep-set/DPOR explorer — one representative schedule per class.
    /// Only accepted for graphs of at most [`MAX_EXHAUSTIVE_NODES`]
    /// vertices (class counts grow combinatorially).
    Exhaustive {
        /// Cap on explored classes (`0` means the explorer default).
        class_budget: usize,
    },
}

impl RunMode {
    /// Parses the `"run"` member of a submission.
    pub fn from_json(v: &Json) -> Result<RunMode, SpecError> {
        match req_str(v, "mode")? {
            "schedule" => {
                let text = req_str(v, "schedule")?;
                let schedule = Schedule::from_text(text)
                    .map_err(|e| SpecError::new(&format!("bad schedule: {e}")))?;
                Ok(RunMode::Schedule(schedule))
            }
            "model" => {
                let delay = match opt_str(v, "delay", "worst-case")? {
                    "worst-case" => DelayModel::WorstCase,
                    "eager" => DelayModel::Eager,
                    "uniform" => DelayModel::Uniform,
                    other => {
                        return Err(SpecError::new(&format!(
                            "unknown delay model {other:?} (worst-case, eager, uniform)"
                        )))
                    }
                };
                Ok(RunMode::Model {
                    delay,
                    seed: opt_u64(v, "seed", 0)?,
                })
            }
            "search" => Ok(RunMode::Search {
                budget: opt_u64(v, "budget", 0)? as usize,
                seed: opt_u64(v, "seed", 0)?,
            }),
            "exhaustive" => Ok(RunMode::Exhaustive {
                class_budget: opt_u64(v, "class_budget", 0)? as usize,
            }),
            other => Err(SpecError::new(&format!(
                "unknown run mode {other:?} (schedule, model, search, exhaustive)"
            ))),
        }
    }

    /// Canonical key suffix for modes cacheable as exact results.
    pub fn exact_key(&self) -> Option<String> {
        match self {
            // Schedules are keyed by prefix hash, not by this path.
            RunMode::Schedule(_) => None,
            RunMode::Model { delay, seed } => {
                let name = match delay {
                    DelayModel::WorstCase => "worst-case".to_string(),
                    DelayModel::Eager => "eager".to_string(),
                    DelayModel::Uniform => "uniform".to_string(),
                    // Not reachable from the wire (the parser only
                    // accepts the three names above), but programmatic
                    // scenarios may carry it.
                    DelayModel::Proportional { num, den } => format!("proportional:{num}/{den}"),
                };
                Some(format!("model:{name}:seed={seed}"))
            }
            RunMode::Search { budget, seed } => Some(format!("search:budget={budget}:seed={seed}")),
            RunMode::Exhaustive { class_budget } => {
                Some(format!("exhaustive:classes={class_budget}"))
            }
        }
    }
}

/// An optional bound the result is checked against.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Bound {
    /// Maximum admissible completion time.
    pub time: Option<u64>,
    /// Maximum admissible weighted communication.
    pub comm: Option<u64>,
}

impl Bound {
    /// Parses the optional `"bound"` member of a submission.
    pub fn from_json(v: Option<&Json>) -> Result<Bound, SpecError> {
        let Some(v) = v else {
            return Ok(Bound::default());
        };
        Ok(Bound {
            time: v.get("time").map(|t| t.as_u64()).map_or(Ok(None), |t| {
                t.map(Some)
                    .ok_or_else(|| SpecError::new("bound.time must be a non-negative integer"))
            })?,
            comm: v.get("comm").map(|c| c.as_u64()).map_or(Ok(None), |c| {
                c.map(Some)
                    .ok_or_else(|| SpecError::new("bound.comm must be a non-negative integer"))
            })?,
        })
    }
}

/// One fully parsed scenario submission.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Client-chosen request id, echoed on the response.
    pub id: String,
    /// The graph to run on.
    pub graph: GraphSpec,
    /// The protocol stack.
    pub stack: StackSpec,
    /// Link behaviour.
    pub run: RunMode,
    /// Optional bound to check.
    pub bound: Bound,
    /// Shard count for the conservative-parallel core (`0` = the
    /// sequential core). A pure *execution hint*: the sharded core is
    /// bit-identical to the sequential one, so this is deliberately not
    /// part of any cache key — a sharded run can hit a sequential run's
    /// cached result and vice versa. Only model-mode runs honour it
    /// (replay and search are built on sequential prefix checkpoints).
    pub shards: usize,
}

impl Scenario {
    /// Parses one `submit` object.
    pub fn from_json(v: &Json) -> Result<Scenario, SpecError> {
        let graph = GraphSpec::from_json(
            v.get("graph")
                .ok_or_else(|| SpecError::new("missing \"graph\""))?,
        )?;
        let stack = StackSpec::from_json(
            v.get("stack")
                .ok_or_else(|| SpecError::new("missing \"stack\""))?,
        )?;
        let run = RunMode::from_json(
            v.get("run")
                .ok_or_else(|| SpecError::new("missing \"run\""))?,
        )?;
        let scenario = Scenario {
            id: opt_str(v, "id", "")?.to_string(),
            graph,
            stack,
            run,
            bound: Bound::from_json(v.get("bound"))?,
            shards: opt_u64(v, "shards", 0)? as usize,
        };
        if scenario.shards > MAX_SHARDS {
            return Err(SpecError::new(&format!(
                "shards {} too large (max {MAX_SHARDS})",
                scenario.shards
            )));
        }
        // The root must exist in the spec'd graph; checking here keeps
        // worker code panic-free on hostile input.
        let n = match scenario.graph {
            GraphSpec::Gnp { n, .. } | GraphSpec::Cycle { n, .. } | GraphSpec::Path { n, .. } => n,
            GraphSpec::Cluster { clusters, size, .. } => clusters * size,
        };
        if scenario.stack.root().index() >= n {
            return Err(SpecError::new(&format!(
                "stack root {} out of range for a {n}-vertex graph",
                scenario.stack.root().index()
            )));
        }
        if matches!(scenario.run, RunMode::Exhaustive { .. }) && n > MAX_EXHAUSTIVE_NODES {
            return Err(SpecError::new(&format!(
                "exhaustive mode is limited to {MAX_EXHAUSTIVE_NODES} vertices \
                 (got n={n}); use \"mode\": \"search\" for larger instances"
            )));
        }
        Ok(scenario)
    }
}

/// A rejected submission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError {
    /// Human-readable cause, returned verbatim on the error response.
    pub msg: String,
}

impl SpecError {
    pub(crate) fn new(msg: &str) -> SpecError {
        SpecError {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for SpecError {}

fn req_str<'a>(v: &'a Json, key: &str) -> Result<&'a str, SpecError> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| SpecError::new(&format!("missing or non-string \"{key}\"")))
}

fn opt_str<'a>(v: &'a Json, key: &str, default: &'static str) -> Result<&'a str, SpecError> {
    match v.get(key) {
        None => Ok(default),
        Some(s) => s
            .as_str()
            .ok_or_else(|| SpecError::new(&format!("\"{key}\" must be a string"))),
    }
}

fn req_u64(v: &Json, key: &str) -> Result<u64, SpecError> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| SpecError::new(&format!("missing or non-integer \"{key}\"")))
}

fn opt_u64(v: &Json, key: &str, default: u64) -> Result<u64, SpecError> {
    match v.get(key) {
        None => Ok(default),
        Some(n) => n
            .as_u64()
            .ok_or_else(|| SpecError::new(&format!("\"{key}\" must be a non-negative integer"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(doc: &str) -> Json {
        Json::parse(doc).unwrap()
    }

    #[test]
    fn graph_keys_are_canonical_and_buildable() {
        let v = parse(r#"{"family":"gnp","n":10,"p":0.3,"seed":7}"#);
        let spec = GraphSpec::from_json(&v).unwrap();
        assert_eq!(spec.key(), "gnp:n=10:p=0.3:w=1-9:seed=7");
        let g = spec.build();
        assert_eq!(g.node_count(), 10);
        // Same spec, differently-ordered JSON → same key.
        let v2 = parse(r#"{"seed":7,"p":0.3,"n":10,"family":"gnp"}"#);
        assert_eq!(GraphSpec::from_json(&v2).unwrap().key(), spec.key());
    }

    #[test]
    fn stack_and_mode_parse() {
        let s =
            StackSpec::from_json(&parse(r#"{"protocol":"spt_recur","root":2,"delta":8}"#)).unwrap();
        assert_eq!(s.key(), "spt_recur:root=2:delta=8");
        let m = RunMode::from_json(&parse(r#"{"mode":"model","delay":"eager"}"#)).unwrap();
        assert_eq!(m.exact_key().as_deref(), Some("model:eager:seed=0"));
        let m = RunMode::from_json(&parse(
            r#"{"mode":"schedule","schedule":"csp-adversary-schedule v1\nfallback rush\n"}"#,
        ))
        .unwrap();
        assert!(matches!(m, RunMode::Schedule(s) if s.is_empty()));
    }

    #[test]
    fn exhaustive_mode_parses_and_is_size_gated() {
        let m = RunMode::from_json(&parse(r#"{"mode":"exhaustive","class_budget":512}"#)).unwrap();
        assert_eq!(m.exact_key().as_deref(), Some("exhaustive:classes=512"));
        assert_eq!(m, RunMode::Exhaustive { class_budget: 512 });
        // Within the cap: accepted.
        let ok = parse(
            r#"{"graph":{"family":"gnp","n":8,"p":0.4},"stack":{"protocol":"flood"},"run":{"mode":"exhaustive"}}"#,
        );
        assert!(Scenario::from_json(&ok).is_ok());
        // Above the cap: a structured rejection naming the limit, not a
        // wedged worker.
        let big = parse(
            r#"{"graph":{"family":"gnp","n":40,"p":0.4},"stack":{"protocol":"flood"},"run":{"mode":"exhaustive"}}"#,
        );
        let err = Scenario::from_json(&big).unwrap_err();
        assert!(err.msg.contains("exhaustive mode is limited"), "{err}");
        // The same graph is fine under the heuristic search.
        let search = parse(
            r#"{"graph":{"family":"gnp","n":40,"p":0.4},"stack":{"protocol":"flood"},"run":{"mode":"search"}}"#,
        );
        assert!(Scenario::from_json(&search).is_ok());
    }

    #[test]
    fn hostile_submissions_are_rejected_not_panicked() {
        for bad in [
            r#"{"graph":{"family":"torus"},"stack":{"protocol":"flood"},"run":{"mode":"model"}}"#,
            r#"{"graph":{"family":"gnp","n":1,"p":0.5},"stack":{"protocol":"flood"},"run":{"mode":"model"}}"#,
            r#"{"graph":{"family":"gnp","n":200000,"p":0.5},"stack":{"protocol":"flood"},"run":{"mode":"model"}}"#,
            r#"{"graph":{"family":"path","n":4},"stack":{"protocol":"flood","root":9},"run":{"mode":"model"}}"#,
            r#"{"graph":{"family":"path","n":4},"stack":{"protocol":"flood"},"run":{"mode":"schedule","schedule":"garbage"}}"#,
            r#"{"graph":{"family":"path","n":4},"stack":{"protocol":"flood"},"run":{"mode":"model"},"bound":{"time":-3}}"#,
        ] {
            assert!(
                Scenario::from_json(&parse(bad)).is_err(),
                "{bad} must be rejected"
            );
        }
    }

    #[test]
    fn minimal_submission_defaults() {
        let v = parse(
            r#"{"id":"a","graph":{"family":"path","n":4},"stack":{"protocol":"flood"},"run":{"mode":"model"}}"#,
        );
        let s = Scenario::from_json(&v).unwrap();
        assert_eq!(s.id, "a");
        assert_eq!(s.bound, Bound::default());
        assert!(matches!(
            s.run,
            RunMode::Model {
                delay: DelayModel::WorstCase,
                seed: 0
            }
        ));
    }
}
