//! `csp-serve`: a long-running scenario-evaluation service for the
//! cost-sensitive protocol workbench.
//!
//! The service accepts scenario submissions — a graph spec, a protocol
//! stack, a run mode (explicit adversary schedule, delay model, or
//! worst-case search budget), and an optional bound to check — over a
//! line-delimited JSON protocol on stdin/stdout (no network
//! dependencies; it builds and runs fully offline). Scenarios fan out
//! over a worker pool built on [`csp_sim::sweep`]'s threading, and
//! results come back as structured cost reports or bound refutations.
//!
//! The performance core is a **prefix-sharing result cache**: every
//! evaluated schedule leaves a trail of simulator checkpoints keyed by
//! `(graph key, stack key, schedule-prefix hash)`. A resubmitted
//! scenario whose schedule shares a prefix with anything previously
//! evaluated resumes from the deepest matching checkpoint
//! (INCREMENTAL) instead of replaying from scratch; an exact match
//! returns the stored result (FULL). Resumed runs are bit-identical to
//! cold runs — costs, traces, and fault meters — which the crate's
//! differential tests pin.
//!
//! Modules:
//! - [`json`] — dependency-free JSON parsing/serialisation.
//! - [`scenario`] — wire-format scenario specs and validation.
//! - [`cache`] — the prefix-sharing checkpoint/result cache.
//! - [`service`] — the batch engine: probe, fan out, fold back.
//! - [`metrics`] — per-scenario and per-worker observability.

pub mod cache;
pub mod json;
pub mod metrics;
pub mod scenario;
pub mod service;

pub use cache::{CacheCaps, Probe, StackCache, StoredResult};
pub use json::{Json, JsonError};
pub use metrics::{CacheOutcome, ServeMetrics, WorkerMetrics};
pub use scenario::{Bound, GraphSpec, RunMode, Scenario, SpecError, StackSpec};
pub use service::{Service, ServiceConfig};
