//! A small self-contained JSON value type with a parser and writer.
//!
//! The service speaks JSON-lines over stdin/stdout and the workspace
//! builds offline, so this module implements the subset of JSON the
//! protocol needs (RFC 8259 syntax; numbers are `f64`, escapes cover
//! the protocol's needs including `\uXXXX` for BMP code points) with no
//! external dependencies — the same policy the bench writers follow,
//! plus the parsing half they never needed.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value. Object keys are kept in a [`BTreeMap`] so
/// serialization is canonical (sorted keys) — stable output for tests
/// and for hashing request bodies.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish integer from float).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with sorted keys.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience number constructor for unsigned counters.
    ///
    /// `u64` counters above 2^53 would lose precision in an `f64`; the
    /// service's meters (messages, cache hits, nanosecond sums) stay
    /// far below that in any real session, and the writer prints
    /// integral values without a fraction so round-trips are exact.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Member lookup on an object, `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an in-range `u64` (rejects negatives,
    /// fractions and anything past 2^53 where `f64` goes lossy).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && (0.0..=9_007_199_254_740_992.0).contains(&n) {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes to a single line (no pretty-printing — the protocol
    /// is line-delimited).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document, requiring it to span the whole input
    /// (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A malformed JSON document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            // The scanned span is valid UTF-8 (the input is a &str and
            // we only stop on ASCII boundaries).
            s.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are rejected rather than paired:
                            // the protocol never emits astral escapes.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("surrogate \\u escape"))?;
                            s.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structures() {
        let doc = r#"{"a":[1,2.5,-3],"b":{"nested":true,"s":"hi\nthere"},"n":null}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(Json::parse(&v.dump()).unwrap(), v);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("b").unwrap().get("s").unwrap().as_str(),
            Some("hi\nthere")
        );
    }

    #[test]
    fn keys_serialize_sorted() {
        let v = Json::obj(vec![("z", Json::num(1u32)), ("a", Json::num(2u32))]);
        assert_eq!(v.dump(), r#"{"a":2,"z":1}"#);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::num(42u32).dump(), "42");
        assert_eq!(Json::Num(2.5).dump(), "2.5");
    }

    #[test]
    fn u64_accessor_rejects_lossy_values() {
        assert_eq!(Json::Num(12.0).as_u64(), Some(12));
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(0.5).as_u64(), None);
    }

    #[test]
    fn control_and_unicode_escapes() {
        let v = Json::Str("tab\t nul\u{1} ünïcode".to_string());
        let parsed = Json::parse(&v.dump()).unwrap();
        assert_eq!(parsed, v);
        assert_eq!(Json::parse(r#""ü""#).unwrap().as_str(), Some("ü"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "\"unterminated",
            "01x",
            "{} {}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }
}
