//! Service observability: per-scenario and per-worker counters.
//!
//! Counters accumulate in plain structs on the service thread (workers
//! report per-scenario measurements back with their results, so no
//! atomics or locks sit on the hot path) and export two ways: the
//! `stats` request type returns a snapshot as a JSON object, and with
//! `--metrics` the binary emits one JSON line per batch on stderr —
//! pollable by anything that reads line-delimited JSON.

use crate::json::Json;
use csp_sim::CostReport;
use std::time::Duration;

/// How one scenario was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Stored result returned, nothing replayed.
    Full,
    /// Resumed from a checkpoint at some depth.
    Incremental,
    /// Cold evaluation.
    Miss,
    /// Modes that bypass the cache (e.g. cache disabled).
    Uncached,
}

impl CacheOutcome {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            CacheOutcome::Full => "full",
            CacheOutcome::Incremental => "incremental",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Uncached => "uncached",
        }
    }
}

/// One worker's accumulated meters (index = worker slot in the pool).
#[derive(Clone, Debug, Default)]
pub struct WorkerMetrics {
    /// Scenarios this worker evaluated.
    pub evals: u64,
    /// Messages metered across those evaluations.
    pub messages: u64,
    /// Wall-clock time spent evaluating.
    pub busy: Duration,
}

impl WorkerMetrics {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("evals", Json::num(self.evals as f64)),
            ("messages", Json::num(self.messages as f64)),
            ("busy_us", Json::num(self.busy.as_micros() as f64)),
            ("msgs_per_sec", Json::num(rate(self.messages, self.busy))),
        ])
    }
}

/// Service-wide meters.
#[derive(Clone, Debug, Default)]
pub struct ServeMetrics {
    /// Submissions accepted (parse errors excluded).
    pub submitted: u64,
    /// Submissions rejected at parse/validation time.
    pub rejected: u64,
    /// Batches processed.
    pub batches: u64,
    /// FULL cache hits.
    pub cache_full_hits: u64,
    /// INCREMENTAL cache hits (checkpoint resumes).
    pub cache_incremental_hits: u64,
    /// Cold evaluations.
    pub cache_misses: u64,
    /// Sum of checkpoint depths used by incremental hits (messages
    /// skipped); divided by hits gives mean depth.
    pub checkpoint_depth_sum: u64,
    /// Checkpoints currently stored, updated after each batch.
    pub checkpoints_stored: u64,
    /// Exact results currently stored, updated after each batch.
    pub results_stored: u64,
    /// Cache evictions.
    pub evictions: u64,
    /// Total wall-clock spent inside worker evaluations.
    pub exec: Duration,
    /// Total time scenarios waited between acceptance and execution.
    pub queue_wait: Duration,
    /// Messages metered across all evaluations.
    pub messages: u64,
    /// Aggregated fault meters across all evaluated scenarios.
    pub drops: u64,
    /// Crashed vertices across all evaluated scenarios.
    pub crashed_nodes: u64,
    /// Crash-consumed events across all evaluated scenarios.
    pub dead_events: u64,
    /// Per-worker breakdown.
    pub workers: Vec<WorkerMetrics>,
}

impl ServeMetrics {
    /// Creates meters for a pool of `threads` workers.
    pub fn new(threads: usize) -> Self {
        ServeMetrics {
            workers: vec![WorkerMetrics::default(); threads],
            ..ServeMetrics::default()
        }
    }

    /// Records one completed scenario.
    pub fn record_scenario(
        &mut self,
        outcome: CacheOutcome,
        depth: u64,
        report: &CostReport,
        exec: Duration,
        queue_wait: Duration,
        worker: usize,
    ) {
        match outcome {
            CacheOutcome::Full => self.cache_full_hits += 1,
            CacheOutcome::Incremental => {
                self.cache_incremental_hits += 1;
                self.checkpoint_depth_sum += depth;
            }
            CacheOutcome::Miss => self.cache_misses += 1,
            CacheOutcome::Uncached => {}
        }
        self.exec += exec;
        self.queue_wait += queue_wait;
        self.messages += report.messages;
        self.drops += report.drops;
        self.crashed_nodes += report.crashed_nodes;
        self.dead_events += report.dead_events;
        if let Some(w) = self.workers.get_mut(worker) {
            w.evals += 1;
            w.messages += report.messages;
            w.busy += exec;
        }
    }

    /// Snapshot as a JSON object (the `stats` response body and the
    /// per-batch stderr metrics line share this shape).
    pub fn to_json(&self) -> Json {
        let hits = self.cache_incremental_hits.max(1);
        Json::obj(vec![
            ("submitted", Json::num(self.submitted as f64)),
            ("rejected", Json::num(self.rejected as f64)),
            ("batches", Json::num(self.batches as f64)),
            ("cache_full_hits", Json::num(self.cache_full_hits as f64)),
            (
                "cache_incremental_hits",
                Json::num(self.cache_incremental_hits as f64),
            ),
            ("cache_misses", Json::num(self.cache_misses as f64)),
            (
                "mean_checkpoint_depth",
                Json::num(if self.cache_incremental_hits == 0 {
                    0.0
                } else {
                    self.checkpoint_depth_sum as f64 / hits as f64
                }),
            ),
            (
                "checkpoints_stored",
                Json::num(self.checkpoints_stored as f64),
            ),
            ("results_stored", Json::num(self.results_stored as f64)),
            ("evictions", Json::num(self.evictions as f64)),
            ("exec_us", Json::num(self.exec.as_micros() as f64)),
            (
                "queue_wait_us",
                Json::num(self.queue_wait.as_micros() as f64),
            ),
            ("messages", Json::num(self.messages as f64)),
            ("msgs_per_sec", Json::num(rate(self.messages, self.exec))),
            ("drops", Json::num(self.drops as f64)),
            ("crashed_nodes", Json::num(self.crashed_nodes as f64)),
            ("dead_events", Json::num(self.dead_events as f64)),
            (
                "workers",
                Json::Arr(self.workers.iter().map(WorkerMetrics::to_json).collect()),
            ),
        ])
    }
}

fn rate(count: u64, d: Duration) -> f64 {
    let secs = d.as_secs_f64();
    if secs > 0.0 {
        count as f64 / secs
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_recording_routes_to_the_right_counters() {
        let mut m = ServeMetrics::new(2);
        let mut report = CostReport::new(1);
        report.messages = 10;
        report.drops = 2;
        m.record_scenario(
            CacheOutcome::Incremental,
            40,
            &report,
            Duration::from_micros(100),
            Duration::from_micros(7),
            1,
        );
        m.record_scenario(
            CacheOutcome::Miss,
            0,
            &report,
            Duration::from_micros(50),
            Duration::ZERO,
            0,
        );
        assert_eq!(m.cache_incremental_hits, 1);
        assert_eq!(m.cache_misses, 1);
        assert_eq!(m.checkpoint_depth_sum, 40);
        assert_eq!(m.messages, 20);
        assert_eq!(m.drops, 4);
        assert_eq!(m.workers[1].evals, 1);
        assert_eq!(m.workers[0].evals, 1);
        let j = m.to_json();
        assert_eq!(j.get("cache_incremental_hits").unwrap().as_u64(), Some(1));
        assert_eq!(j.get("mean_checkpoint_depth").unwrap().as_f64(), Some(40.0));
        assert_eq!(j.get("workers").unwrap().as_arr().unwrap().len(), 2);
    }
}
