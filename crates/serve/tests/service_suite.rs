//! End-to-end tests for the scenario-evaluation service: the JSON-lines
//! protocol, cache behaviour (FULL / INCREMENTAL / MISS), and the
//! differential guarantee the cache is allowed to exist by — resumed
//! and cached results are **bit-identical** to cold runs (costs, trace
//! digests, final-state digests, fault meters) across drop/crash
//! schedules.

use csp_adversary::{record, Fallback, Schedule};
use csp_algo::spt::recur::SptRecur;
use csp_graph::generators::{self, WeightDist};
use csp_graph::{EdgeId, NodeId, Weight};
use csp_serve::json::Json;
use csp_serve::service::{Service, ServiceConfig};
use csp_serve::CacheCaps;
use csp_sim::{ChurnOracle, CrashOracle, DelayModel, DropOracle, SimTime};

/// The gnp graph every test scenario here runs on. Weights start at 2
/// so every decision has at least two admissible delays (mutation can
/// always pick a different one).
fn graph_json() -> Json {
    Json::obj(vec![
        ("family", Json::str("gnp")),
        ("n", Json::num(10.0)),
        ("p", Json::num(0.35)),
        ("w_min", Json::num(2.0)),
        ("w_max", Json::num(9.0)),
        ("seed", Json::num(7.0)),
    ])
}

fn stack_json() -> Json {
    Json::obj(vec![
        ("protocol", Json::str("spt_recur")),
        ("root", Json::num(0.0)),
    ])
}

fn submit(id: &str, run: Json) -> Json {
    Json::obj(vec![
        ("type", Json::str("submit")),
        ("id", Json::str(id)),
        ("graph", graph_json()),
        ("stack", stack_json()),
        ("run", run),
    ])
}

fn schedule_run(s: &Schedule) -> Json {
    Json::obj(vec![
        ("mode", Json::str("schedule")),
        ("schedule", Json::str(s.to_text())),
    ])
}

/// Records a drop+crash schedule for the test graph's SPT scenario.
fn fault_schedule() -> Schedule {
    let g = generators::connected_gnp(10, 0.35, WeightDist::Uniform(2, 9), 7);
    let make = |v: NodeId, _: &csp_graph::WeightedGraph| SptRecur::new(v, NodeId::new(0), 1 << 40);
    let oracle = CrashOracle::new(
        DropOracle::new(DelayModel::Uniform, 0xFEED_BEEF, 0.2, 3),
        vec![(NodeId::new(7), SimTime::new(25))],
    );
    let (_, schedule) = record(&g, make, oracle, Fallback::WorstCase);
    assert!(
        schedule.has_faults(),
        "test premise: the recorded schedule must carry faults"
    );
    schedule
}

/// Mutates the tail of a schedule: different delay on the last ~10% of
/// delivered decisions, keeping every delay admissible in [1, w].
fn mutate_tail(base: &Schedule) -> Schedule {
    let mut s = base.clone();
    let len = s.decisions.len();
    assert!(len >= 10, "test premise: schedule long enough to mutate");
    let from = len - len / 10 - 1;
    let mut changed = 0;
    for d in &mut s.decisions[from..] {
        if !d.dropped && d.weight > 1 {
            d.delay = if d.delay == d.weight { 1 } else { d.delay + 1 };
            changed += 1;
        }
    }
    assert!(changed > 0, "test premise: tail mutation changed something");
    s
}

/// One response of type "result" with status ok, or panic with context.
fn expect_result(responses: &[Json]) -> &Json {
    assert_eq!(responses.len(), 1, "one response per submit");
    let r = &responses[0];
    assert_eq!(
        r.get("type").and_then(Json::as_str),
        Some("result"),
        "expected a result, got: {}",
        r.dump()
    );
    r
}

fn cache_of(r: &Json) -> &str {
    r.get("cache").and_then(Json::as_str).unwrap()
}

/// Every field a cold and a cached evaluation must agree on, pulled
/// into one comparable string.
fn identity_fields(r: &Json) -> String {
    let report = r.get("report").expect("report");
    format!(
        "report={} states={} trace={}",
        report.dump(),
        r.get("states_digest").and_then(Json::as_str).unwrap(),
        r.get("trace_digest").and_then(Json::as_str).unwrap(),
    )
}

fn caching_service() -> Service {
    Service::new(ServiceConfig {
        threads: 2,
        checkpoint_every: 8,
        cache: true,
        caps: CacheCaps::default(),
        trace_cap: 1 << 14,
    })
}

fn cold_service() -> Service {
    Service::new(ServiceConfig {
        threads: 2,
        checkpoint_every: 8,
        cache: false,
        caps: CacheCaps::default(),
        trace_cap: 1 << 14,
    })
}

#[test]
fn incremental_resume_is_bit_identical_to_cold_under_faults() {
    let base = fault_schedule();
    let variant = mutate_tail(&base);

    let mut warm = caching_service();
    let mut cold = cold_service();

    // Cold evaluation of the base schedule populates the checkpoint
    // tree.
    let r_base = warm.handle(&submit("base", schedule_run(&base)));
    let r_base = expect_result(&r_base);
    assert_eq!(cache_of(r_base), "miss");

    // The tail-mutated variant must resume from a checkpoint...
    let r_var = warm.handle(&submit("variant", schedule_run(&variant)));
    let r_var = expect_result(&r_var);
    assert_eq!(
        cache_of(r_var),
        "incremental",
        "tail mutation shares a prefix: {}",
        r_var.dump()
    );
    assert!(r_var.get("depth").and_then(Json::as_u64).unwrap() > 0);

    // ...and be bit-identical to a cold run of the same variant.
    let c_var = cold.handle(&submit("variant-cold", schedule_run(&variant)));
    let c_var = expect_result(&c_var);
    assert_eq!(cache_of(c_var), "uncached");
    assert_eq!(
        identity_fields(r_var),
        identity_fields(c_var),
        "incremental result must match cold run exactly"
    );

    // The cold base run and the warm base run agree too.
    let c_base = cold.handle(&submit("base-cold", schedule_run(&base)));
    assert_eq!(
        identity_fields(r_base),
        identity_fields(expect_result(&c_base))
    );

    // Exact resubmission is a FULL hit with the same identity.
    let r_full = warm.handle(&submit("base-again", schedule_run(&base)));
    let r_full = expect_result(&r_full);
    assert_eq!(cache_of(r_full), "full");
    let report_eq = |a: &Json, b: &Json| {
        assert_eq!(
            a.get("report").unwrap().dump(),
            b.get("report").unwrap().dump()
        );
        assert_eq!(
            a.get("states_digest").and_then(Json::as_str),
            b.get("states_digest").and_then(Json::as_str)
        );
    };
    report_eq(r_full, r_base);

    // Fault meters actually moved (the schedule carries drops and a
    // crash), so the equality above covered them.
    let report = r_var.get("report").unwrap();
    assert!(report.get("drops").and_then(Json::as_u64).unwrap() > 0);

    let stats = warm.handle(&Json::obj(vec![("type", Json::str("stats"))]));
    let stats = &stats[0].get("stats").cloned().unwrap();
    assert_eq!(stats.get("cache_full_hits").and_then(Json::as_u64), Some(1));
    assert_eq!(
        stats.get("cache_incremental_hits").and_then(Json::as_u64),
        Some(1)
    );
    assert_eq!(stats.get("cache_misses").and_then(Json::as_u64), Some(1));
    assert!(
        stats
            .get("mean_checkpoint_depth")
            .and_then(Json::as_f64)
            .unwrap()
            > 0.0
    );
}

#[test]
fn crash_set_divergence_prevents_prefix_reuse() {
    let base = fault_schedule();
    let mut other_crash = base.clone();
    other_crash.crashes[0].at += 1_000_000;

    let mut warm = caching_service();
    expect_result(&warm.handle(&submit("base", schedule_run(&base))));
    let r = warm.handle(&submit("other", schedule_run(&other_crash)));
    let r = expect_result(&r);
    assert_eq!(
        cache_of(r),
        "miss",
        "different crash set must not resume from base checkpoints"
    );
}

/// Records a churn schedule — bounded drops plus a crash–rejoin–recrash
/// chain of vertex 7 and one mid-run weight revision — for the same
/// scenario the other suites use.
fn churn_schedule() -> Schedule {
    let g = generators::connected_gnp(10, 0.35, WeightDist::Uniform(2, 9), 7);
    let make = |v: NodeId, _: &csp_graph::WeightedGraph| SptRecur::new(v, NodeId::new(0), 1 << 40);
    let oracle = ChurnOracle::new(
        DropOracle::new(DelayModel::Uniform, 0xFEED_BEEF, 0.2, 3),
        vec![(
            NodeId::new(7),
            vec![SimTime::new(25), SimTime::new(40), SimTime::new(55)],
        )],
        vec![(EdgeId::new(0), SimTime::new(12), Weight::new(4))],
    );
    let (_, schedule) = record(&g, make, oracle, Fallback::WorstCase);
    assert!(
        schedule.has_churn(),
        "test premise: the recorded schedule must churn"
    );
    assert!(
        schedule.to_text().starts_with("csp-adversary-schedule v3"),
        "churn schedules travel in the v3 dialect"
    );
    schedule
}

#[test]
fn churn_schedules_evaluate_warm_equals_cold() {
    let churn = churn_schedule();
    let mut warm = caching_service();
    let mut cold = cold_service();

    // Cold pass populates the cache; an identical resubmission is a
    // FULL hit — and both must be bit-identical to the cache-free
    // service's answer, fault and churn meters included.
    let first = warm.handle(&submit("churn", schedule_run(&churn)));
    let first = expect_result(&first);
    assert_eq!(cache_of(first), "miss");
    let again = warm.handle(&submit("churn-again", schedule_run(&churn)));
    let again = expect_result(&again);
    assert_eq!(cache_of(again), "full");
    let reference = cold.handle(&submit("churn-cold", schedule_run(&churn)));
    let reference = expect_result(&reference);
    assert_eq!(identity_fields(first), identity_fields(reference));
    // FULL hits come straight from the stored result (no trace replay,
    // so no trace digest): report and state digest must still agree.
    assert_eq!(
        again.get("report").unwrap().dump(),
        reference.get("report").unwrap().dump()
    );
    assert_eq!(
        again.get("states_digest").and_then(Json::as_str),
        reference.get("states_digest").and_then(Json::as_str)
    );

    // The wire report carries the churn meters.
    let report = first.get("report").unwrap();
    assert_eq!(report.get("recoveries").and_then(Json::as_u64), Some(1));
    assert_eq!(
        report.get("weight_revisions").and_then(Json::as_u64),
        Some(1)
    );
}

#[test]
fn churn_divergence_prevents_prefix_reuse() {
    let base = churn_schedule();
    let mut warm = caching_service();
    expect_result(&warm.handle(&submit("base", schedule_run(&base))));

    // Same decisions, same crash set — but the rejoin moves one tick.
    let mut moved = base.clone();
    moved.rejoins[0].at += 1;
    let r = warm.handle(&submit("moved", schedule_run(&moved)));
    assert_eq!(
        cache_of(expect_result(&r)),
        "miss",
        "a different rejoin time must not resume from base checkpoints"
    );

    // And a drift-only change diverges too.
    let mut drifted = base.clone();
    drifted.drifts[0].weight += 1;
    let r = warm.handle(&submit("drifted", schedule_run(&drifted)));
    assert_eq!(
        cache_of(expect_result(&r)),
        "miss",
        "a different weight revision must not resume from base checkpoints"
    );
}

#[test]
fn model_and_search_runs_cache_as_exact_results() {
    let mut svc = caching_service();

    let model = || {
        Json::obj(vec![
            ("mode", Json::str("model")),
            ("delay", Json::str("uniform")),
            ("seed", Json::num(11.0)),
        ])
    };
    let first = svc.handle(&submit("m1", model()));
    let first = expect_result(&first);
    assert_eq!(cache_of(first), "miss");
    let second = svc.handle(&submit("m2", model()));
    let second = expect_result(&second);
    assert_eq!(cache_of(second), "full");
    assert_eq!(
        first.get("report").unwrap().dump(),
        second.get("report").unwrap().dump()
    );

    // A schedule submission replaying the *recorded transcript* of the
    // model run hits the checkpoints that run left behind.
    let g = generators::connected_gnp(10, 0.35, WeightDist::Uniform(2, 9), 7);
    let make = |v: NodeId, _: &csp_graph::WeightedGraph| SptRecur::new(v, NodeId::new(0), 1 << 40);
    let (_, transcript) = record(
        &g,
        make,
        csp_sim::ModelOracle::new(DelayModel::Uniform, 11),
        Fallback::WorstCase,
    );
    let variant = mutate_tail(&transcript);
    let r = svc.handle(&submit("m3", schedule_run(&variant)));
    let r = expect_result(&r);
    assert_eq!(
        cache_of(r),
        "incremental",
        "model-run checkpoints serve schedule variants: {}",
        r.dump()
    );

    let search = || {
        Json::obj(vec![
            ("mode", Json::str("search")),
            ("budget", Json::num(2.0)),
            ("seed", Json::num(3.0)),
        ])
    };
    let s1 = svc.handle(&submit("s1", search()));
    let s1 = expect_result(&s1);
    assert_eq!(cache_of(s1), "miss");
    assert!(s1.get("worst_case").and_then(Json::as_u64).unwrap() > 0);
    assert!(s1.get("schedule").and_then(Json::as_str).is_some());
    let s2 = svc.handle(&submit("s2", search()));
    let s2 = expect_result(&s2);
    assert_eq!(cache_of(s2), "full");
    assert_eq!(
        s1.get("worst_case").and_then(Json::as_u64),
        s2.get("worst_case").and_then(Json::as_u64)
    );
}

#[test]
fn exhaustive_runs_report_reduction_and_cache_as_exact_results() {
    // Exhaustive mode answers with the explorer's reduction counters,
    // a replayable witness schedule, and caches like a search result.
    let submit_exhaustive = |id: &str| {
        Json::obj(vec![
            ("type", Json::str("submit")),
            ("id", Json::str(id)),
            (
                "graph",
                Json::obj(vec![
                    ("family", Json::str("gnp")),
                    ("n", Json::num(6.0)),
                    ("p", Json::num(0.5)),
                    ("w_min", Json::num(2.0)),
                    ("w_max", Json::num(4.0)),
                    ("seed", Json::num(3.0)),
                ]),
            ),
            (
                "stack",
                Json::obj(vec![
                    ("protocol", Json::str("flood")),
                    ("root", Json::num(0.0)),
                ]),
            ),
            (
                "run",
                Json::obj(vec![
                    ("mode", Json::str("exhaustive")),
                    ("class_budget", Json::num(64.0)),
                ]),
            ),
        ])
    };

    let mut svc = caching_service();
    let cold = svc.handle(&submit_exhaustive("x1"));
    let cold = expect_result(&cold);
    assert_eq!(cache_of(cold), "miss");
    let classes = cold
        .get("classes_explored")
        .and_then(Json::as_u64)
        .expect("exhaustive results carry classes_explored");
    assert!(classes >= 1, "{}", cold.dump());
    assert!(
        cold.get("schedules_pruned")
            .and_then(Json::as_u64)
            .is_some(),
        "{}",
        cold.dump()
    );
    // The winning representative is at least the worst-case anchor.
    let worst = cold.get("worst_case").and_then(Json::as_u64).unwrap();
    let completion = cold
        .get("report")
        .and_then(|r| r.get("completion"))
        .and_then(Json::as_u64)
        .unwrap();
    assert!(completion >= worst, "{}", cold.dump());
    assert!(cold.get("schedule").and_then(Json::as_str).is_some());

    // Resubmission is a FULL hit with identical counters.
    let warm = svc.handle(&submit_exhaustive("x2"));
    let warm = expect_result(&warm);
    assert_eq!(cache_of(warm), "full", "{}", warm.dump());
    assert_eq!(
        warm.get("classes_explored").and_then(Json::as_u64),
        Some(classes)
    );
    assert_eq!(
        cold.get("report").unwrap().dump(),
        warm.get("report").unwrap().dump()
    );

    // Heuristic searches keep their wire shape: no reduction counters.
    let s = svc.handle(&submit(
        "x3",
        Json::obj(vec![
            ("mode", Json::str("search")),
            ("budget", Json::num(1.0)),
            ("seed", Json::num(3.0)),
        ]),
    ));
    let s = expect_result(&s);
    assert!(s.get("classes_explored").is_none(), "{}", s.dump());
}

#[test]
fn sharded_model_runs_are_bit_identical_and_share_the_cache() {
    // Sequential and sharded evaluation of the same model scenario must
    // agree on every identity field, and since `shards` is an execution
    // hint rather than a cache key, each one's cold result must serve
    // the other's resubmission as a FULL hit.
    let submit_shards = |id: &str, shards: f64| {
        Json::obj(vec![
            ("type", Json::str("submit")),
            ("id", Json::str(id)),
            ("graph", graph_json()),
            ("stack", stack_json()),
            (
                "run",
                Json::obj(vec![
                    ("mode", Json::str("model")),
                    ("delay", Json::str("uniform")),
                    ("seed", Json::num(29.0)),
                ]),
            ),
            ("shards", Json::num(shards)),
        ])
    };

    // Cold sharded run vs cold sequential run (separate services, so
    // both really execute).
    let mut sharded_svc = caching_service();
    let sharded = sharded_svc.handle(&submit_shards("p1", 4.0));
    let sharded = expect_result(&sharded);
    assert_eq!(cache_of(sharded), "miss");
    let mut seq_svc = caching_service();
    let seq = seq_svc.handle(&submit_shards("q1", 0.0));
    let seq = expect_result(&seq);
    assert_eq!(cache_of(seq), "miss");
    assert_eq!(identity_fields(sharded), identity_fields(seq));

    // Cross-resubmission: the sequential twin FULL-hits the sharded
    // service's cache, and vice versa.
    let hit = sharded_svc.handle(&submit_shards("p2", 0.0));
    let hit = expect_result(&hit);
    assert_eq!(cache_of(hit), "full", "{}", hit.dump());
    let hit = seq_svc.handle(&submit_shards("q2", 8.0));
    let hit = expect_result(&hit);
    assert_eq!(cache_of(hit), "full", "{}", hit.dump());

    // A hostile shard count is rejected, not spawned.
    let r = sharded_svc.handle(&submit_shards("p3", 10_000.0));
    assert_eq!(r[0].get("type").and_then(Json::as_str), Some("error"));
}

#[test]
fn bounds_are_checked_against_the_report() {
    let mut svc = caching_service();
    let run = || {
        Json::obj(vec![
            ("mode", Json::str("model")),
            ("delay", Json::str("worst-case")),
        ])
    };
    let mut with_bound = submit("loose", run());
    if let Json::Obj(ref mut m) = with_bound {
        m.insert(
            "bound".to_string(),
            Json::obj(vec![("time", Json::num(1e12))]),
        );
    }
    let r = svc.handle(&with_bound);
    let r = expect_result(&r);
    assert_eq!(
        r.get("bound")
            .unwrap()
            .get("holds")
            .and_then(|b| b.as_bool()),
        Some(true)
    );

    let mut tight = submit("tight", run());
    if let Json::Obj(ref mut m) = tight {
        m.insert(
            "bound".to_string(),
            Json::obj(vec![("time", Json::num(1.0)), ("comm", Json::num(1.0))]),
        );
    }
    let r = svc.handle(&tight);
    let r = expect_result(&r);
    assert_eq!(
        r.get("bound")
            .unwrap()
            .get("holds")
            .and_then(|b| b.as_bool()),
        Some(false),
        "1 tick / 1 comm cannot hold: {}",
        r.dump()
    );
}

#[test]
fn batches_preserve_order_and_isolate_errors() {
    let mut svc = caching_service();
    let good = |id: &str| {
        Json::obj(vec![
            ("id", Json::str(id)),
            ("graph", graph_json()),
            ("stack", stack_json()),
            (
                "run",
                Json::obj(vec![
                    ("mode", Json::str("model")),
                    ("delay", Json::str("eager")),
                ]),
            ),
        ])
    };
    let bad = Json::obj(vec![
        ("id", Json::str("broken")),
        ("graph", Json::obj(vec![("family", Json::str("torus"))])),
        ("stack", stack_json()),
        (
            "run",
            Json::obj(vec![
                ("mode", Json::str("model")),
                ("delay", Json::str("eager")),
            ]),
        ),
    ]);
    let batch = Json::obj(vec![
        ("type", Json::str("batch")),
        ("scenarios", Json::Arr(vec![good("a"), bad, good("b")])),
    ]);
    let rs = svc.handle(&batch);
    assert_eq!(rs.len(), 3);
    assert_eq!(rs[0].get("id").and_then(Json::as_str), Some("a"));
    assert_eq!(rs[0].get("type").and_then(Json::as_str), Some("result"));
    assert_eq!(rs[1].get("id").and_then(Json::as_str), Some("broken"));
    assert_eq!(rs[1].get("type").and_then(Json::as_str), Some("error"));
    assert_eq!(rs[2].get("id").and_then(Json::as_str), Some("b"));
    assert_eq!(rs[2].get("type").and_then(Json::as_str), Some("result"));
    // Identical scenarios in one batch: first in wins the cache, the
    // duplicate is answered consistently (either outcome, same report).
    assert_eq!(
        rs[0].get("report").unwrap().dump(),
        rs[2].get("report").unwrap().dump()
    );
}

#[test]
fn hostile_requests_are_rejected_not_crashed() {
    let mut svc = caching_service();
    let cases = vec![
        Json::obj(vec![("type", Json::str("noop"))]),
        Json::obj(vec![("nope", Json::num(1.0))]),
        Json::obj(vec![("type", Json::str("submit")), ("graph", graph_json())]),
        submit(
            "root-oob",
            Json::obj(vec![
                ("mode", Json::str("model")),
                ("delay", Json::str("eager")),
            ]),
        ),
    ];
    // Patch the last case's stack root out of range.
    let mut cases = cases;
    if let Json::Obj(ref mut m) = cases[3] {
        m.insert(
            "stack".to_string(),
            Json::obj(vec![
                ("protocol", Json::str("flood")),
                ("root", Json::num(99.0)),
            ]),
        );
    }
    for case in &cases {
        let rs = svc.handle(case);
        assert_eq!(rs.len(), 1, "one error per bad request");
        assert_eq!(
            rs[0].get("type").and_then(Json::as_str),
            Some("error"),
            "expected rejection of {}",
            case.dump()
        );
    }
    let stats = svc.handle(&Json::obj(vec![("type", Json::str("stats"))]));
    assert_eq!(
        stats[0]
            .get("stats")
            .unwrap()
            .get("rejected")
            .and_then(Json::as_u64),
        Some(4)
    );
}
