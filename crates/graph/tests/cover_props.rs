//! Property coverage for `cover::coarsen` and the shard plans derived
//! from it. Coarsened covers are load-bearing for sharded simulation
//! (`csp_sim::shard`), so the structural invariants — every vertex
//! covered, every cluster connected in the induced subgraph — must
//! hold on arbitrary connected graphs, not just the curated families.

use std::collections::HashSet;

use csp_graph::cover::{coarsen, Cover};
use csp_graph::generators::{self, WeightDist};
use csp_graph::{NodeId, ShardPlan, WeightedGraph};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = WeightedGraph> {
    (3usize..=20, 0.0f64..0.5, 1u64..=64, any::<u64>()).prop_map(|(n, p, wmax, seed)| {
        generators::connected_gnp(n, p, WeightDist::Uniform(1, wmax), seed)
    })
}

/// BFS inside the vertex subset: true iff `members` induce a connected
/// subgraph of `g`.
fn connected_in_induced(g: &WeightedGraph, members: &[NodeId]) -> bool {
    let set: HashSet<NodeId> = members.iter().copied().collect();
    let Some(&start) = members.first() else {
        return false;
    };
    let mut seen = HashSet::new();
    seen.insert(start);
    let mut frontier = vec![start];
    while let Some(v) = frontier.pop() {
        for (u, _, _) in g.neighbors(v) {
            if set.contains(&u) && seen.insert(u) {
                frontier.push(u);
            }
        }
    }
    seen.len() == members.len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every vertex of the graph appears in at least one coarsened
    /// cluster, for any initial cover and growth parameter.
    #[test]
    fn coarsen_covers_every_vertex(g in arb_graph(), k in 1usize..=4) {
        let coarse = coarsen(&g, &Cover::singletons(&g), k);
        let mut covered = vec![false; g.node_count()];
        for c in coarse.clusters() {
            for &v in c.members() {
                covered[v.index()] = true;
            }
        }
        prop_assert!(covered.iter().all(|&c| c), "coarsen left a vertex uncovered");
    }

    /// Every coarsened cluster is connected in the subgraph its members
    /// induce — merging layers must never glue together vertex sets
    /// that only touch through outside vertices.
    #[test]
    fn coarsen_clusters_are_induced_connected(g in arb_graph(), k in 1usize..=4) {
        let coarse = coarsen(&g, &Cover::singletons(&g), k);
        for c in coarse.clusters() {
            prop_assert!(!c.members().is_empty(), "empty cluster");
            prop_assert!(
                connected_in_induced(&g, c.members()),
                "cluster {:?} is disconnected in its induced subgraph",
                c.members()
            );
        }
    }

    /// Same invariants starting from the neighbor-path cover, the other
    /// initial cover the paper uses.
    #[test]
    fn coarsen_from_neighbor_paths_keeps_invariants(g in arb_graph(), k in 1usize..=3) {
        let coarse = coarsen(&g, &Cover::neighbor_paths(&g), k);
        let mut covered = vec![false; g.node_count()];
        for c in coarse.clusters() {
            prop_assert!(connected_in_induced(&g, c.members()));
            for &v in c.members() {
                covered[v.index()] = true;
            }
        }
        prop_assert!(covered.iter().all(|&c| c));
    }

    /// Shard plans derived from covers are total, disjoint (one shard
    /// per vertex by construction) and deterministic.
    #[test]
    fn shard_plan_is_total_and_deterministic(g in arb_graph(), shards in 1usize..=8) {
        let a = ShardPlan::derive(&g, shards);
        let b = ShardPlan::derive(&g, shards);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.assignment().len(), g.node_count());
        prop_assert!(a.assignment().iter().all(|&s| (s as usize) < shards));
        // Every shard that can be populated is populated.
        let populated = a.shard_sizes().iter().filter(|&&s| s > 0).count();
        prop_assert_eq!(populated, shards.min(g.node_count()));
    }

    /// Cut stats agree with a direct recount over the edge list.
    #[test]
    fn cut_stats_match_direct_recount(g in arb_graph(), shards in 1usize..=8) {
        let plan = ShardPlan::derive(&g, shards);
        let cut = plan.cut(&g);
        let mut edges = 0usize;
        let mut min_w: Option<u64> = None;
        for e in g.edges() {
            if plan.shard_of(e.u()) != plan.shard_of(e.v()) {
                edges += 1;
                min_w = Some(min_w.map_or(e.weight().get(), |m| m.min(e.weight().get())));
            }
        }
        prop_assert_eq!(cut.cut_edges, edges);
        prop_assert_eq!(cut.min_cut_weight.map(|w| w.get()), min_w);
    }
}
