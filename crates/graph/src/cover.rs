//! Clusters, covers and the Awerbuch–Peleg cover coarsening.
//!
//! Section 1.2 of the paper defines: a *cluster* is a vertex set `S` whose
//! induced subgraph `G(S)` is connected; its *radius* is
//! `Rad(S) = min_{v∈S} max_{w∈S} dist(v, w, G(S))`; a *cover* is a
//! collection of clusters whose union is `V`; the *degree* of a vertex in
//! a cover is the number of clusters containing it.
//!
//! Theorem 1.1 (\[AP91]) takes an initial cover `S` and a parameter `k ≥ 1`
//! and produces a cover `T` that (1) subsumes `S`, (2) has
//! `Rad(T) ≤ (2k−1)·Rad(S)` and (3) has maximum degree
//! `Δ(T) = O(k·|S|^{1/k})`. [`coarsen`] implements the construction.
//!
//! [`tree_edge_cover`] instantiates it per Lemma 3.2: starting from the
//! cover of all neighbor shortest paths with `k = log n`, it yields the
//! collection of trees used by clock synchronizer γ\* (Definition 3.1).

use crate::algo::distances;
use crate::graph::WeightedGraph;
use crate::ids::NodeId;
use crate::tree::RootedTree;
use crate::weight::{Cost, Weight};
use std::collections::BTreeSet;
use std::fmt;

/// A cluster: a vertex set inducing a connected subgraph.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Cluster {
    /// Sorted member vertices.
    members: Vec<NodeId>,
}

impl Cluster {
    /// Creates a cluster from a vertex set.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty or the induced subgraph `G(S)` is
    /// disconnected.
    pub fn new(g: &WeightedGraph, members: impl IntoIterator<Item = NodeId>) -> Self {
        let set: BTreeSet<NodeId> = members.into_iter().collect();
        assert!(!set.is_empty(), "cluster must be nonempty");
        let members: Vec<NodeId> = set.into_iter().collect();
        let cluster = Cluster { members };
        assert!(
            cluster.is_connected(g),
            "cluster must induce a connected subgraph"
        );
        cluster
    }

    /// Member vertices in sorted order.
    #[inline]
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the cluster is a single vertex.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false // a cluster is never empty by construction
    }

    /// Whether `v` belongs to the cluster.
    pub fn contains(&self, v: NodeId) -> bool {
        self.members.binary_search(&v).is_ok()
    }

    /// Whether this cluster is a subset of `other`.
    pub fn is_subset_of(&self, other: &Cluster) -> bool {
        self.members.iter().all(|&v| other.contains(v))
    }

    /// The induced subgraph `G(S)` over the full vertex universe (vertices
    /// outside the cluster are isolated).
    pub fn induced_subgraph(&self, g: &WeightedGraph) -> WeightedGraph {
        let mut member = vec![false; g.node_count()];
        for &v in &self.members {
            member[v.index()] = true;
        }
        g.edge_subgraph(|_, e| member[e.u().index()] && member[e.v().index()])
    }

    fn is_connected(&self, g: &WeightedGraph) -> bool {
        let sub = self.induced_subgraph(g);
        let d = crate::algo::hop_distances(&sub, self.members[0]);
        self.members.iter().all(|&v| d[v.index()].is_some())
    }

    /// `Rad(S)` and a realizing center: the vertex minimizing eccentricity
    /// inside `G(S)`.
    pub fn radius_and_center(&self, g: &WeightedGraph) -> (Cost, NodeId) {
        let sub = self.induced_subgraph(g);
        let mut best = (Cost::INFINITY, self.members[0]);
        for &c in &self.members {
            let dist = distances(&sub, c);
            let ecc = self
                .members
                .iter()
                .map(|&v| dist[v.index()])
                .max()
                .expect("cluster nonempty");
            if ecc < best.0 {
                best = (ecc, c);
            }
        }
        best
    }

    /// A shortest-path spanning tree of `G(S)` rooted at the cluster
    /// center (used to build the trees of a tree edge-cover).
    pub fn center_tree(&self, g: &WeightedGraph) -> RootedTree {
        let (_, center) = self.radius_and_center(g);
        let sub = self.induced_subgraph(g);
        crate::algo::shortest_path_tree(&sub, center)
    }
}

impl fmt::Display for Cluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cluster({} vertices)", self.members.len())
    }
}

/// A cover: a collection of clusters whose union is the vertex set.
#[derive(Clone, Debug)]
pub struct Cover {
    clusters: Vec<Cluster>,
}

impl Cover {
    /// Creates a cover from clusters.
    ///
    /// # Panics
    ///
    /// Panics if the clusters do not jointly cover all `n` vertices of `g`.
    pub fn new(g: &WeightedGraph, clusters: Vec<Cluster>) -> Self {
        let mut covered = vec![false; g.node_count()];
        for c in &clusters {
            for &v in c.members() {
                covered[v.index()] = true;
            }
        }
        assert!(
            covered.iter().all(|&c| c),
            "clusters must cover every vertex"
        );
        Cover { clusters }
    }

    /// The clusters.
    #[inline]
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// Number of clusters `|S|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Whether the cover has no clusters (never true for a valid cover of
    /// a nonempty graph).
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// `Rad(S) = max_i Rad(S_i)`.
    pub fn radius(&self, g: &WeightedGraph) -> Cost {
        self.clusters
            .iter()
            .map(|c| c.radius_and_center(g).0)
            .max()
            .unwrap_or(Cost::ZERO)
    }

    /// `Δ(S) = max_v deg_S(v)`: the maximum number of clusters sharing a
    /// vertex.
    pub fn max_degree(&self, n: usize) -> usize {
        let mut deg = vec![0usize; n];
        for c in &self.clusters {
            for &v in c.members() {
                deg[v.index()] += 1;
            }
        }
        deg.into_iter().max().unwrap_or(0)
    }

    /// Whether `self` subsumes `other`: every cluster of `other` is
    /// contained in some cluster of `self`.
    pub fn subsumes(&self, other: &Cover) -> bool {
        other
            .clusters
            .iter()
            .all(|s| self.clusters.iter().any(|t| s.is_subset_of(t)))
    }

    /// The trivial cover of singletons.
    pub fn singletons(g: &WeightedGraph) -> Cover {
        let clusters = g.nodes().map(|v| Cluster { members: vec![v] }).collect();
        Cover { clusters }
    }

    /// The cover `{Path(u, v, G) : (u, v) ∈ E}` of all neighbor shortest
    /// paths — the initial cover of Lemma 3.2. Its radius is at most `d`,
    /// the maximum distance between neighbors.
    ///
    /// # Panics
    ///
    /// Panics if `g` is disconnected (a shortest path between some edge's
    /// endpoints would be undefined) or has no edges.
    pub fn neighbor_paths(g: &WeightedGraph) -> Cover {
        assert!(g.edge_count() > 0, "neighbor-path cover needs edges");
        let mut clusters = Vec::with_capacity(g.edge_count());
        for e in g.edges() {
            let (u, v) = e.endpoints();
            let path = crate::algo::shortest_path(g, u, v)
                .expect("graph must be connected for the neighbor-path cover");
            clusters.push(Cluster::new(g, path));
        }
        Cover { clusters }
    }
}

impl fmt::Display for Cover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cover({} clusters)", self.clusters.len())
    }
}

/// Cover coarsening — Theorem 1.1 of the paper (\[AP91]).
///
/// Given an initial cover `S` and `k ≥ 1`, constructs a cover `T` with
///
/// 1. `T` subsumes `S`,
/// 2. `Rad(T) ≤ (2k + 1)·Rad(S)`, and
/// 3. small maximum degree — `Δ(T) = O(k·|S|^{1/k})` in the regimes the
///    paper uses (`k = log n`), and never more than `Δ(S)`.
///
/// The construction repeatedly picks an unprocessed cluster and grows a
/// merged cluster around it layer by layer (each layer absorbs every
/// remaining cluster intersecting the current kernel), stopping as soon as
/// a layer fails to multiply the kernel size by `|S|^{1/k}`; the merged
/// clusters are retired and their union emitted.
///
/// The paper quotes the radius constant `(2k − 1)` from \[AP91]; the
/// published layer-growing construction implemented here provably achieves
/// `(2k + 1)` — the kernel grows at most `k − 1` times (each growth
/// multiplies its size by more than `|S|^{1/k}`), adding `2·Rad(S)` per
/// layer plus a final boundary layer. The two-unit constant gap is
/// immaterial to every asymptotic statement in the paper, and the tests
/// additionally record that measured radii sit well below either bound.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn coarsen(g: &WeightedGraph, initial: &Cover, k: usize) -> Cover {
    assert!(k >= 1, "coarsening parameter k must be at least 1");
    let s_total = initial.len();
    let growth = (s_total.max(1) as f64).powf(1.0 / k as f64);
    let n = g.node_count();

    // remaining[i]: cluster i not yet retired.
    let mut remaining: Vec<bool> = vec![true; s_total];
    // For the intersection queries: vertex -> clusters containing it.
    let mut clusters_of: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, c) in initial.clusters().iter().enumerate() {
        for &v in c.members() {
            clusters_of[v.index()].push(i);
        }
    }

    let mut output: Vec<Cluster> = Vec::new();
    let mut remaining_count = s_total;
    let mut cursor = 0usize;
    while remaining_count > 0 {
        // Select an arbitrary remaining cluster.
        while !remaining[cursor] {
            cursor += 1;
        }
        let seed = cursor;

        // Kernel Y (cluster indices) and its vertex set.
        let mut kernel: Vec<usize> = vec![seed];
        let mut in_kernel_cluster = vec![false; s_total];
        in_kernel_cluster[seed] = true;
        let mut kernel_vertices = vec![false; n];
        for &v in initial.clusters()[seed].members() {
            kernel_vertices[v.index()] = true;
        }

        loop {
            // Z = all remaining clusters intersecting the kernel vertices.
            let mut layer: Vec<usize> = Vec::new();
            let mut in_layer = in_kernel_cluster.clone();
            for v in 0..n {
                if !kernel_vertices[v] {
                    continue;
                }
                for &ci in &clusters_of[v] {
                    if remaining[ci] && !in_layer[ci] {
                        in_layer[ci] = true;
                        layer.push(ci);
                    }
                }
            }
            let z_size = kernel.len() + layer.len();
            if (z_size as f64) <= growth * kernel.len() as f64 {
                // Growth stalled: emit union of Z = kernel ∪ layer and
                // retire every merged cluster (subsumption: each retired
                // cluster is inside the emitted union).
                let mut member_set = BTreeSet::new();
                for &ci in kernel.iter().chain(layer.iter()) {
                    member_set.extend(initial.clusters()[ci].members().iter().copied());
                }
                output.push(Cluster {
                    members: member_set.into_iter().collect(),
                });
                for &ci in kernel.iter().chain(layer.iter()) {
                    if remaining[ci] {
                        remaining[ci] = false;
                        remaining_count -= 1;
                    }
                }
                break;
            }
            // Absorb the layer into the kernel and grow again.
            for &ci in &layer {
                in_kernel_cluster[ci] = true;
                for &v in initial.clusters()[ci].members() {
                    kernel_vertices[v.index()] = true;
                }
            }
            kernel.extend(layer);
        }
    }
    Cover::new(g, output)
}

/// A tree edge-cover (Definition 3.1): a collection of trees such that
///
/// 1. every graph edge appears in at most `O(log n)` trees,
/// 2. every tree has weighted depth `O(d·log n)`, and
/// 3. for every graph edge, some tree contains both endpoints.
#[derive(Clone, Debug)]
pub struct TreeEdgeCover {
    /// The cluster trees (shortest-path trees of the coarsened clusters).
    pub trees: Vec<RootedTree>,
    /// For each graph edge, the index of one tree containing both
    /// endpoints.
    pub home_tree: Vec<usize>,
}

impl TreeEdgeCover {
    /// Maximum number of trees any single vertex belongs to.
    pub fn max_vertex_degree(&self) -> usize {
        let n = self.trees.first().map(RootedTree::universe).unwrap_or(0);
        let mut deg = vec![0usize; n];
        for t in &self.trees {
            for v in t.members() {
                deg[v.index()] += 1;
            }
        }
        deg.into_iter().max().unwrap_or(0)
    }

    /// Maximum weighted tree depth across the cover.
    pub fn max_depth(&self) -> Cost {
        self.trees
            .iter()
            .map(RootedTree::height)
            .max()
            .unwrap_or(Cost::ZERO)
    }
}

/// Builds a tree edge-cover per Lemma 3.2: coarsen the neighbor-path cover
/// with `k = ⌈log₂ n⌉` and take the center shortest-path tree of each
/// output cluster.
///
/// # Panics
///
/// Panics if `g` is disconnected or has no edges.
pub fn tree_edge_cover(g: &WeightedGraph) -> TreeEdgeCover {
    let initial = Cover::neighbor_paths(g);
    let k = (g.node_count().max(2) as f64).log2().ceil() as usize;
    let coarse = coarsen(g, &initial, k.max(1));
    let trees: Vec<RootedTree> = coarse.clusters().iter().map(|c| c.center_tree(g)).collect();
    let home_tree = g
        .edges()
        .map(|e| {
            let (u, v) = e.endpoints();
            trees
                .iter()
                .position(|t| t.contains(u) && t.contains(v))
                .expect("coarsened cover subsumes every neighbor path")
        })
        .collect();
    TreeEdgeCover { trees, home_tree }
}

/// A disjoint partition of (a subgraph's) vertices into clusters, with a
/// rooted spanning tree per cluster and one *preferred edge* between each
/// pair of adjacent clusters — the structure synchronizer γ of \[Awe85a]
/// runs on.
#[derive(Clone, Debug)]
pub struct Partition {
    /// Cluster index of each vertex.
    pub cluster_of: Vec<usize>,
    /// Member lists per cluster.
    pub clusters: Vec<Vec<NodeId>>,
    /// BFS spanning tree of each cluster (rooted at the cluster seed,
    /// which acts as the leader).
    pub trees: Vec<RootedTree>,
    /// One preferred edge per adjacent cluster pair:
    /// `(edge, cluster a, cluster b)`.
    pub preferred: Vec<(crate::ids::EdgeId, usize, usize)>,
}

impl Partition {
    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Whether the partition is empty (only for empty graphs).
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// The adjacent-cluster lists: `neighbors[c]` holds the clusters
    /// sharing a preferred edge with `c`.
    pub fn cluster_neighbors(&self) -> Vec<Vec<usize>> {
        let mut nbrs = vec![Vec::new(); self.clusters.len()];
        for &(_, a, b) in &self.preferred {
            nbrs[a].push(b);
            nbrs[b].push(a);
        }
        nbrs
    }

    /// Maximum hop depth over all cluster trees.
    pub fn max_tree_depth(&self) -> usize {
        self.trees
            .iter()
            .map(|t| t.members().map(|v| t.hop_depth(v)).max().unwrap_or(0))
            .max()
            .unwrap_or(0)
    }
}

/// Awerbuch's ball-growing partition (\[Awe85a], the preprocessing of
/// synchronizer γ), applied to `g` (typically a subgraph: vertices with
/// no edges become singleton clusters).
///
/// Repeatedly grows a BFS ball around an unassigned seed while the next
/// layer would multiply the ball's size by more than `k`; this bounds
/// every cluster tree's hop depth by `log_k n` while keeping the number
/// of inter-cluster edge *pairs* at most `k·n` — the communication/time
/// trade-off knob of the synchronizer.
///
/// # Panics
///
/// Panics if `k < 2`.
pub fn ball_partition(g: &WeightedGraph, k: usize) -> Partition {
    assert!(k >= 2, "partition parameter k must be at least 2");
    let n = g.node_count();
    let mut cluster_of = vec![usize::MAX; n];
    let mut clusters: Vec<Vec<NodeId>> = Vec::new();
    let mut trees: Vec<RootedTree> = Vec::new();

    for seed in 0..n {
        if cluster_of[seed] != usize::MAX {
            continue;
        }
        let c = clusters.len();
        let seed_id = NodeId::new(seed);
        let mut tree = RootedTree::new(n, seed_id);
        let mut ball = vec![seed_id];
        cluster_of[seed] = c;
        let mut frontier = vec![seed_id];
        loop {
            // Next BFS layer of unassigned vertices.
            let mut layer: Vec<(NodeId, NodeId, crate::ids::EdgeId, crate::weight::Weight)> =
                Vec::new();
            let mut in_layer = vec![false; n];
            for &v in &frontier {
                for (u, eid, w) in g.neighbors(v) {
                    if cluster_of[u.index()] == usize::MAX && !in_layer[u.index()] {
                        in_layer[u.index()] = true;
                        layer.push((u, v, eid, w));
                    }
                }
            }
            if layer.is_empty() || ball.len() + layer.len() <= k * ball.len() {
                // Growth stalled (or nothing left): absorb the final layer
                // and close the cluster.
                for &(u, p, eid, w) in &layer {
                    cluster_of[u.index()] = c;
                    tree.attach_via(u, p, eid, w);
                    ball.push(u);
                }
                break;
            }
            for &(u, p, eid, w) in &layer {
                cluster_of[u.index()] = c;
                tree.attach_via(u, p, eid, w);
                ball.push(u);
            }
            frontier = layer.into_iter().map(|(u, _, _, _)| u).collect();
        }
        clusters.push(ball);
        trees.push(tree);
    }

    // One preferred edge (smallest id) per adjacent cluster pair.
    let mut preferred_map: std::collections::HashMap<(usize, usize), crate::ids::EdgeId> =
        std::collections::HashMap::new();
    for e in g.edge_ids() {
        let (u, v) = g.edge(e).endpoints();
        let (a, b) = (cluster_of[u.index()], cluster_of[v.index()]);
        if a == b {
            continue;
        }
        let key = (a.min(b), a.max(b));
        preferred_map.entry(key).or_insert(e);
    }
    let mut preferred: Vec<(crate::ids::EdgeId, usize, usize)> = preferred_map
        .into_iter()
        .map(|((a, b), e)| (e, a, b))
        .collect();
    preferred.sort_by_key(|&(e, _, _)| e);

    Partition {
        cluster_of,
        clusters,
        trees,
        preferred,
    }
}

/// A disjoint assignment of every vertex to one of `shards` *shards* —
/// the unit of parallelism for `csp-sim`'s sharded executor. Unlike a
/// [`Cover`] (whose clusters overlap) and a [`Partition`] (whose cluster
/// count is emergent), a shard plan has a *fixed* shard count and every
/// vertex belongs to exactly one shard; empty shards are legal (they
/// simply idle).
///
/// The plan only affects *load balance*, never results: the sharded
/// executor is bit-identical to the sequential core under any
/// assignment, so all constructors here are deterministic, pure
/// functions of their inputs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    /// Shard index of each vertex.
    shard_of: Vec<u32>,
    /// Number of shards (≥ 1); indices in `shard_of` are `< shards`.
    shards: usize,
}

/// Inter-shard cut statistics of a [`ShardPlan`] over a graph — the
/// quantities the conservative-parallel executor reasons about: how many
/// edges cross shards (cross-shard traffic volume) and the minimum
/// crossing weight (the classic conservative-PDES lookahead bound under
/// worst-case delays, where a message over edge `e` takes exactly
/// `w(e)` ticks).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CutStats {
    /// Number of edges whose endpoints live in different shards.
    pub cut_edges: usize,
    /// Minimum weight over the cut edges (`None` when no edge crosses —
    /// the shards are fully independent).
    pub min_cut_weight: Option<Weight>,
}

impl CutStats {
    /// The worst-case-delay lookahead the cut admits: the minimum cut
    /// weight, or `u64::MAX` when nothing crosses. Under arbitrary
    /// (adversarial) delays the sound bound degrades to the 1-tick
    /// quantization floor — see the sharded executor's docs.
    pub fn worst_case_lookahead(&self) -> u64 {
        self.min_cut_weight.map_or(u64::MAX, Weight::get)
    }
}

impl ShardPlan {
    /// Largest vertex count for which [`ShardPlan::derive`] attempts the
    /// cover-coarsening partition; above it, building a cover is far more
    /// expensive than the simulation it would balance, so `derive` goes
    /// straight to contiguous CSR ranges.
    pub const COVER_DERIVE_MAX_N: usize = 4096;

    /// Number of shards (≥ 1).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Shard of vertex `v`.
    #[inline]
    pub fn shard_of(&self, v: NodeId) -> usize {
        self.shard_of[v.index()] as usize
    }

    /// The raw vertex→shard assignment, indexed by vertex.
    pub fn assignment(&self) -> &[u32] {
        &self.shard_of
    }

    /// Vertex count per shard.
    pub fn shard_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.shards];
        for &s in &self.shard_of {
            sizes[s as usize] += 1;
        }
        sizes
    }

    /// Wraps an explicit vertex→shard assignment. Any total assignment
    /// is a valid plan — balance affects only speed, never the simulated
    /// execution — so empty shards are allowed.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or any entry is out of range.
    pub fn from_assignment(assignment: Vec<u32>, shards: usize) -> ShardPlan {
        assert!(shards >= 1, "a shard plan needs at least one shard");
        assert!(
            assignment.iter().all(|&s| (s as usize) < shards),
            "assignment references a shard out of range"
        );
        ShardPlan {
            shard_of: assignment,
            shards,
        }
    }

    /// Balanced contiguous ranges over the CSR vertex order: vertex `v`
    /// goes to shard `⌊v·shards/n⌋`, so shard sizes differ by at most
    /// one. The degenerate-cover fallback, and the only constructor that
    /// stays O(n) at million-node scale.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn contiguous(n: usize, shards: usize) -> ShardPlan {
        assert!(shards >= 1, "a shard plan needs at least one shard");
        ShardPlan {
            shard_of: (0..n).map(|v| (v * shards / n.max(1)) as u32).collect(),
            shards,
        }
    }

    /// Derives a disjoint plan from an (overlapping) [`Cover`]:
    ///
    /// 1. **Tie-break**: each vertex is owned by the lowest-index cluster
    ///    containing it (covers guarantee at least one).
    /// 2. **Packing**: clusters are ordered by owned size (largest
    ///    first, index ascending on ties) and greedily assigned to the
    ///    currently lightest shard (lowest index on ties).
    ///
    /// Both steps are deterministic, so the same cover always yields the
    /// same plan. Clusters that own no vertex after the tie-break are
    /// skipped.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`, or if the cover misses a vertex of `g`
    /// (impossible for covers built through [`Cover::new`]).
    pub fn from_cover(g: &WeightedGraph, cover: &Cover, shards: usize) -> ShardPlan {
        assert!(shards >= 1, "a shard plan needs at least one shard");
        let n = g.node_count();
        let mut owner = vec![usize::MAX; n];
        let mut owned = vec![0u64; cover.len()];
        for (ci, c) in cover.clusters().iter().enumerate() {
            for &v in c.members() {
                if owner[v.index()] == usize::MAX {
                    owner[v.index()] = ci;
                    owned[ci] += 1;
                }
            }
        }
        assert!(
            owner.iter().all(|&c| c != usize::MAX),
            "cover must contain every vertex"
        );

        let mut order: Vec<usize> = (0..cover.len()).filter(|&ci| owned[ci] > 0).collect();
        order.sort_by_key(|&ci| (std::cmp::Reverse(owned[ci]), ci));
        let mut shard_of_cluster = vec![0u32; cover.len()];
        let mut load = vec![0u64; shards];
        for ci in order {
            let lightest = (0..shards)
                .min_by_key(|&s| (load[s], s))
                .expect("shards ≥ 1");
            shard_of_cluster[ci] = lightest as u32;
            load[lightest] += owned[ci];
        }
        ShardPlan {
            shard_of: owner.into_iter().map(|ci| shard_of_cluster[ci]).collect(),
            shards,
        }
    }

    /// The default derivation: coarsen the singleton cover (Theorem 1.1
    /// with `k = 2` — cheap, locality-preserving balls) and pack the
    /// resulting clusters, falling back to [`ShardPlan::contiguous`]
    /// when the cover route is degenerate — fewer distinct clusters than
    /// shards (some shard would idle while others split the whole
    /// graph), or `n` past [`ShardPlan::COVER_DERIVE_MAX_N`] where cover
    /// construction would dwarf the run itself.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn derive(g: &WeightedGraph, shards: usize) -> ShardPlan {
        assert!(shards >= 1, "a shard plan needs at least one shard");
        let n = g.node_count();
        if shards == 1 || n <= 1 {
            return ShardPlan {
                shard_of: vec![0; n],
                shards,
            };
        }
        if n > Self::COVER_DERIVE_MAX_N {
            return Self::contiguous(n, shards);
        }
        let cover = coarsen(g, &Cover::singletons(g), 2);
        let plan = Self::from_cover(g, &cover, shards);
        // Degenerate cover: fewer populated shards than requested while
        // vertices would suffice — fall back to contiguous ranges.
        let populated = plan.shard_sizes().iter().filter(|&&s| s > 0).count();
        if populated < shards.min(n) {
            return Self::contiguous(n, shards);
        }
        plan
    }

    /// Inter-shard cut statistics of this plan over `g`: crossing-edge
    /// count and minimum crossing weight (the worst-case lookahead).
    pub fn cut(&self, g: &WeightedGraph) -> CutStats {
        let mut cut_edges = 0usize;
        let mut min_cut_weight: Option<Weight> = None;
        for e in g.edges() {
            let (u, v) = e.endpoints();
            if self.shard_of[u.index()] != self.shard_of[v.index()] {
                cut_edges += 1;
                let w = e.weight();
                min_cut_weight = Some(min_cut_weight.map_or(w, |m| m.min(w)));
            }
        }
        CutStats {
            cut_edges,
            min_cut_weight,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn grid_graph() -> WeightedGraph {
        generators::grid(4, 4, generators::WeightDist::Uniform(1, 4), 9)
    }

    #[test]
    fn cluster_validation() {
        let g = grid_graph();
        let c = Cluster::new(&g, [NodeId::new(0), NodeId::new(1), NodeId::new(2)]);
        assert_eq!(c.len(), 3);
        assert!(c.contains(NodeId::new(1)));
        assert!(!c.contains(NodeId::new(5)));
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn disconnected_cluster_rejected() {
        let g = grid_graph();
        // 0 and 15 are opposite corners, not adjacent.
        let _ = Cluster::new(&g, [NodeId::new(0), NodeId::new(15)]);
    }

    #[test]
    fn singleton_cover_properties() {
        let g = grid_graph();
        let s = Cover::singletons(&g);
        assert_eq!(s.len(), 16);
        assert_eq!(s.max_degree(16), 1);
        assert_eq!(s.radius(&g), Cost::ZERO);
    }

    #[test]
    fn neighbor_path_cover_radius_at_most_d() {
        let g = grid_graph();
        let p = crate::params::CostParams::of(&g);
        let cover = Cover::neighbor_paths(&g);
        assert_eq!(cover.len(), g.edge_count());
        assert!(cover.radius(&g) <= p.max_neighbor_distance);
    }

    #[test]
    fn coarsening_satisfies_theorem_1_1() {
        let g = grid_graph();
        for k in 1..=4 {
            let initial = Cover::neighbor_paths(&g);
            let rad_s = initial.radius(&g).max(Cost::new(1));
            let coarse = coarsen(&g, &initial, k);
            // (1) subsumption
            assert!(coarse.subsumes(&initial), "k={k}: no subsumption");
            // (2) radius bound — (2k+1)·Rad(S), see the `coarsen` docs for
            // why the implementable constant is +1 rather than the paper's
            // −1.
            let rad_t = coarse.radius(&g);
            let bound = rad_s * (2 * k as u128 + 1);
            assert!(
                rad_t <= bound,
                "k={k}: Rad(T)={rad_t} > (2k+1)Rad(S)={bound}"
            );
            // (3) degree bound with a small constant
            let s = initial.len() as f64;
            let deg_bound = (4.0 * k as f64 * s.powf(1.0 / k as f64)).ceil() as usize;
            let deg = coarse.max_degree(g.node_count());
            assert!(
                deg <= deg_bound,
                "k={k}: Δ(T)={deg} > 4k|S|^(1/k)={deg_bound}"
            );
        }
    }

    #[test]
    fn coarsen_with_k1_stops_after_one_layer() {
        // k = 1: the growth threshold |S| is never exceeded, so every
        // output is a seed cluster plus the clusters touching it —
        // radius at most 3·Rad(S).
        let g = grid_graph();
        let initial = Cover::neighbor_paths(&g);
        let rad_s = initial.radius(&g);
        let coarse = coarsen(&g, &initial, 1);
        assert!(coarse.subsumes(&initial));
        assert!(coarse.radius(&g) <= rad_s * 3);
    }

    #[test]
    fn tree_edge_cover_satisfies_definition_3_1() {
        let g = generators::heavy_chord_cycle(12, 200);
        let p = crate::params::CostParams::of(&g);
        let n = g.node_count();
        let log_n = (n as f64).log2().ceil();
        let cover = tree_edge_cover(&g);
        // (3) every edge has a home tree containing both endpoints
        assert_eq!(cover.home_tree.len(), g.edge_count());
        for (i, e) in g.edges().enumerate() {
            let t = &cover.trees[cover.home_tree[i]];
            assert!(t.contains(e.u()) && t.contains(e.v()));
        }
        // (2) depth O(d log n): allow constant 4
        let d = p.max_neighbor_distance.max(Cost::new(1));
        let depth_bound = d * (4.0 * log_n).ceil() as u128;
        assert!(
            cover.max_depth() <= depth_bound,
            "depth {} > 4·d·log n = {depth_bound}",
            cover.max_depth()
        );
        // (1) vertex degree O(log n): allow constant 6 (vertex degree
        // bounds edge sharing).
        let deg_bound = (6.0 * log_n).ceil() as usize;
        assert!(
            cover.max_vertex_degree() <= deg_bound.max(2),
            "degree {} > {deg_bound}",
            cover.max_vertex_degree()
        );
    }

    #[test]
    fn cover_subsumes_itself() {
        let g = grid_graph();
        let s = Cover::neighbor_paths(&g);
        assert!(s.subsumes(&s));
    }

    #[test]
    fn ball_partition_covers_disjointly() {
        let g = generators::connected_gnp(40, 0.1, generators::WeightDist::Uniform(1, 9), 13);
        for k in [2, 3, 8] {
            let p = ball_partition(&g, k);
            // Every vertex in exactly one cluster.
            let mut seen = [false; 40];
            for (ci, cl) in p.clusters.iter().enumerate() {
                for &v in cl {
                    assert!(!seen[v.index()], "vertex {v} in two clusters");
                    seen[v.index()] = true;
                    assert_eq!(p.cluster_of[v.index()], ci);
                }
            }
            assert!(seen.iter().all(|&s| s));
            // Tree depth ≤ log_k n + 1.
            let bound = ((40f64).log2() / (k as f64).log2()).ceil() as usize + 1;
            assert!(
                p.max_tree_depth() <= bound,
                "k={k}: depth {} > {bound}",
                p.max_tree_depth()
            );
        }
    }

    #[test]
    fn ball_partition_preferred_edges_connect_adjacent_clusters() {
        let g = generators::grid(5, 5, generators::WeightDist::Constant(2), 0);
        let p = ball_partition(&g, 2);
        for &(e, a, b) in &p.preferred {
            let (u, v) = g.edge(e).endpoints();
            let cu = p.cluster_of[u.index()];
            let cv = p.cluster_of[v.index()];
            assert_ne!(a, b);
            assert_eq!((cu.min(cv), cu.max(cv)), (a.min(b), a.max(b)));
        }
        // Pair count bounded by k·n.
        assert!(p.preferred.len() <= 2 * 25);
    }

    #[test]
    fn ball_partition_isolated_vertices_are_singletons() {
        let mut b = crate::graph::GraphBuilder::new(5);
        b.edge(0, 1, 1);
        let g = b.build().unwrap();
        let p = ball_partition(&g, 2);
        assert_eq!(p.len(), 4); // {0,1} plus three singletons
        assert!(p.preferred.is_empty());
    }

    #[test]
    fn ball_partition_large_k_swallows_a_complete_graph() {
        let g = generators::complete(10, |_, _| 3);
        let p = ball_partition(&g, 16);
        assert_eq!(p.len(), 1);
        assert!(p.trees[0].is_spanning());
    }

    #[test]
    fn ball_partition_on_cycle_makes_radius_one_balls() {
        // On a cycle every layer has 2 vertices, so growth stalls after
        // the first layer for any k ≥ 3: clusters of 3 consecutive
        // vertices (the tail may be smaller).
        let g = generators::cycle(10, |_| 3);
        let p = ball_partition(&g, 4);
        assert!(p.len() >= 3);
        assert!(p.max_tree_depth() <= 1);
    }

    #[test]
    #[should_panic(expected = "cover every vertex")]
    fn partial_cover_rejected() {
        let g = grid_graph();
        let c = Cluster::new(&g, [NodeId::new(0)]);
        let _ = Cover::new(&g, vec![c]);
    }

    #[test]
    fn contiguous_plan_is_balanced_and_total() {
        for (n, k) in [(10, 4), (16, 1), (3, 8), (1000, 7)] {
            let plan = ShardPlan::contiguous(n, k);
            assert_eq!(plan.shards(), k);
            assert_eq!(plan.assignment().len(), n);
            let sizes = plan.shard_sizes();
            assert_eq!(sizes.iter().sum::<usize>(), n);
            let (min, max) = (
                sizes.iter().filter(|&&s| s > 0).min().copied().unwrap_or(0),
                sizes.iter().max().copied().unwrap_or(0),
            );
            assert!(max - min <= 1, "n={n} k={k}: sizes {sizes:?}");
            // Contiguity: assignment is non-decreasing in vertex order.
            assert!(plan.assignment().windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn from_cover_is_disjoint_deterministic_and_packed() {
        let g = grid_graph();
        let cover = coarsen(&g, &Cover::singletons(&g), 2);
        let a = ShardPlan::from_cover(&g, &cover, 3);
        let b = ShardPlan::from_cover(&g, &cover, 3);
        assert_eq!(a, b, "same cover must give the same plan");
        assert_eq!(a.assignment().len(), 16);
        assert!(a.assignment().iter().all(|&s| (s as usize) < 3));
        // Overlapping vertices go to the lowest-index cluster: every
        // vertex in cluster 0 that no earlier cluster claims (there is
        // none earlier) maps to cluster 0's shard.
        let c0_shard = a.shard_of(cover.clusters()[0].members()[0]);
        for &v in cover.clusters()[0].members() {
            let first_cluster = cover.clusters().iter().position(|c| c.contains(v)).unwrap();
            if first_cluster == 0 {
                assert_eq!(a.shard_of(v), c0_shard);
            }
        }
    }

    #[test]
    fn derive_covers_all_vertices_and_falls_back_when_degenerate() {
        let g = grid_graph();
        let plan = ShardPlan::derive(&g, 4);
        assert_eq!(plan.shard_sizes().iter().sum::<usize>(), 16);
        assert_eq!(plan.shard_sizes().iter().filter(|&&s| s > 0).count(), 4);

        // Above COVER_DERIVE_MAX_N the cover machinery is too expensive;
        // derive switches to contiguous CSR ranges.
        let n = ShardPlan::COVER_DERIVE_MAX_N + 1;
        let big = generators::path(n, |_| 1);
        assert_eq!(ShardPlan::derive(&big, 4), ShardPlan::contiguous(n, 4));

        // shards == 1 short-circuits to the trivial plan.
        let one = ShardPlan::derive(&g, 1);
        assert!(one.assignment().iter().all(|&s| s == 0));
    }

    #[test]
    fn cut_stats_report_min_crossing_weight() {
        // Path 0-1-2-3 with weights 5, 1, 7; split {0,1} | {2,3}: the
        // only crossing edge is the 1-weight middle edge.
        let mut b = crate::graph::GraphBuilder::new(4);
        b.edge(0, 1, 5).edge(1, 2, 1).edge(2, 3, 7);
        let g = b.build().unwrap();
        let plan = ShardPlan::contiguous(4, 2);
        let cut = plan.cut(&g);
        assert_eq!(cut.cut_edges, 1);
        assert_eq!(cut.min_cut_weight, Some(Weight::new(1)));
        assert_eq!(cut.worst_case_lookahead(), 1);

        let solo = ShardPlan::contiguous(4, 1);
        let no_cut = solo.cut(&g);
        assert_eq!(no_cut.cut_edges, 0);
        assert_eq!(no_cut.min_cut_weight, None);
        assert_eq!(no_cut.worst_case_lookahead(), u64::MAX);
    }
}
