//! Shallow-light trees (Section 2.2 of the paper).
//!
//! A spanning tree is *shallow-light* (SLT) if its diameter is `O(D̂)` and
//! its weight is `O(V̂)` — it approximates a shortest-path tree and a
//! minimum spanning tree simultaneously. Theorem 2.2 shows every graph has
//! one; the construction (Figure 5) walks the Euler tour of the MST,
//! placing *breakpoints* wherever the tour distance since the previous
//! breakpoint exceeds `q` times a shortest-path distance, and splices the
//! corresponding shortest paths into the MST before extracting a final
//! shortest-path tree.
//!
//! Guarantees, with breakpoint parameter `q ≥ 1` (Lemmas 2.4 and 2.5):
//!
//! * `w(T) ≤ (1 + 2/q) · V̂`,
//! * every vertex has depth ≤ `(q + 1) · D̂` (so `Diam(T) ≤ 2(q+1)·D̂`).
//!
//! Two breakpoint rules are provided:
//!
//! * [`BreakpointRule::RootPath`] (default) compares the accumulated tour
//!   distance against `q · dist(v₀, y, G)` and splices the *root* shortest
//!   path `Path(v₀, y, T_S)`; this variant carries the clean proof of both
//!   lemmas and is what the rest of the workspace uses.
//! * [`BreakpointRule::ConsecutivePairs`] is the verbatim Figure-5 rule:
//!   compare against `q · dist(v(X), v(Y), T_S)` between *consecutive*
//!   breakpoints and splice the SPT tree path between them. It satisfies
//!   the weight bound by the same argument; its depth is measured (and in
//!   practice comparable) but the (q+1)·D̂ proof in the memo is specific
//!   to the root-path reading, so the strict depth guarantee is only
//!   asserted for [`BreakpointRule::RootPath`].

use crate::algo::{distances, mst_line, prim_mst, shortest_path_tree};
use crate::graph::{GraphBuilder, WeightedGraph};
use crate::ids::NodeId;
use crate::tree::RootedTree;
use crate::weight::Cost;

/// Which breakpoint rule the SLT construction uses; see the module docs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum BreakpointRule {
    /// Compare tour distance to `q·dist(v₀, y, G)`; splice root paths.
    #[default]
    RootPath,
    /// The verbatim Figure-5 rule: compare to `q·dist(v(X), v(Y), T_S)`;
    /// splice consecutive-breakpoint tree paths.
    ConsecutivePairs,
}

/// Result of the SLT construction.
#[derive(Clone, Debug)]
pub struct ShallowLightTree {
    /// The shallow-light spanning tree, rooted at the construction root.
    pub tree: RootedTree,
    /// Line positions (mileage indices on the Euler tour) where
    /// breakpoints were placed.
    pub breakpoints: Vec<usize>,
    /// Total weight of the spliced shortest-path segments (the `1/q`
    /// overhead beyond the MST).
    pub spliced_weight: Cost,
}

impl ShallowLightTree {
    /// Weight `w(T)` of the resulting tree.
    pub fn weight(&self) -> Cost {
        self.tree.weight()
    }

    /// Height (maximum weighted root depth) of the resulting tree.
    pub fn height(&self) -> Cost {
        self.tree.height()
    }
}

/// Builds a shallow-light spanning tree with the default
/// ([`BreakpointRule::RootPath`]) rule.
///
/// # Example
///
/// ```
/// use csp_graph::{GraphBuilder, NodeId};
/// use csp_graph::slt::shallow_light_tree;
/// use csp_graph::params::CostParams;
///
/// let mut b = GraphBuilder::new(5);
/// b.edge(0, 1, 1).edge(1, 2, 1).edge(2, 3, 1).edge(3, 4, 1).edge(0, 4, 3);
/// let g = b.build()?;
/// let p = CostParams::of(&g);
/// let slt = shallow_light_tree(&g, NodeId::new(0), 2);
/// // w(T) ≤ (1 + 2/q)·V̂ and height ≤ (q+1)·D̂:
/// assert!(slt.weight().get() * 2 <= p.mst_weight.get() * 4);
/// assert!(slt.height().get() <= 3 * p.weighted_diameter.get());
/// # Ok::<(), csp_graph::GraphError>(())
/// ```
///
/// # Panics
///
/// Panics if `g` is disconnected, `root` is out of range, or `q == 0`.
pub fn shallow_light_tree(g: &WeightedGraph, root: NodeId, q: u64) -> ShallowLightTree {
    shallow_light_tree_with_rule(g, root, q, BreakpointRule::RootPath)
}

/// Builds a shallow-light spanning tree with an explicit breakpoint rule.
///
/// # Panics
///
/// Panics if `g` is disconnected, `root` is out of range, or `q == 0`.
pub fn shallow_light_tree_with_rule(
    g: &WeightedGraph,
    root: NodeId,
    q: u64,
    rule: BreakpointRule,
) -> ShallowLightTree {
    assert!(q >= 1, "breakpoint parameter q must be at least 1");
    g.check_node(root);

    // Step 1: MST and SPT rooted at v0.
    let mst = prim_mst(g, root);
    assert!(
        mst.is_spanning(),
        "graph must be connected to build a shallow-light tree"
    );
    let spt = shortest_path_tree(g, root);
    let dist_g = distances(g, root);

    // Steps 2–3: the line version L of the MST.
    let line = mst_line(&mst);

    // Step 4: scan for breakpoints; Step 5: collect spliced path edges.
    let mut breakpoints = vec![0usize];
    let mut splice: Vec<(NodeId, NodeId)> = Vec::new();
    let mut last_break = 0usize;
    for i in 1..line.len() {
        let y = line.node_at(i);
        let acc = line.line_distance(last_break, i);
        let (threshold, path): (Cost, Vec<NodeId>) = match rule {
            BreakpointRule::RootPath => (dist_g[y.index()], spt.path_between(root, y)),
            BreakpointRule::ConsecutivePairs => {
                let x = line.node_at(last_break);
                (spt.tree_distance(x, y), spt.path_between(x, y))
            }
        };
        if acc > threshold * q as u128 {
            for pair in path.windows(2) {
                splice.push((pair[0], pair[1]));
            }
            breakpoints.push(i);
            last_break = i;
        }
    }

    // Assemble G' = MST ∪ spliced paths.
    let mut b = GraphBuilder::new(g.node_count());
    let mut present = std::collections::HashSet::new();
    let mut spliced_weight = Cost::ZERO;
    for (child, parent, _, w) in mst.edges() {
        let key = (child.min(parent), child.max(parent));
        present.insert(key);
        b.edge(key.0.index(), key.1.index(), w.get());
    }
    for (x, y) in splice {
        let key = (x.min(y), x.max(y));
        if present.insert(key) {
            let eid = g
                .edge_between(x, y)
                .expect("spliced path segments are graph edges");
            let w = g.weight(eid);
            spliced_weight += w;
            b.edge(key.0.index(), key.1.index(), w.get());
        }
    }
    let g_prime = b.build().expect("G' assembled from graph edges");

    // Step 6: final SPT in G'.
    let tree = shortest_path_tree(&g_prime, root);
    ShallowLightTree {
        tree,
        breakpoints,
        spliced_weight,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::params::CostParams;

    /// Check both lemmas on one graph for a given rule. The depth bound is
    /// only asserted strictly for `RootPath`.
    fn check_bounds(g: &WeightedGraph, q: u64, rule: BreakpointRule) {
        let p = CostParams::of(g);
        let slt = shallow_light_tree_with_rule(g, NodeId::new(0), q, rule);
        assert!(slt.tree.is_spanning(), "SLT must span");
        // Lemma 2.4: q·w(T) ≤ (q + 2)·V̂.
        let lhs = slt.weight().get() * q as u128;
        let rhs = p.mst_weight.get() * (q as u128 + 2);
        assert!(
            lhs <= rhs,
            "weight bound violated: q·w(T)={lhs} > (q+2)·V̂={rhs}"
        );
        if rule == BreakpointRule::RootPath {
            // Lemma 2.5: height ≤ (q+1)·D̂.
            let bound = p.weighted_diameter * (q as u128 + 1);
            assert!(
                slt.height() <= bound,
                "depth bound violated: height={} > (q+1)·D̂={bound}",
                slt.height()
            );
        }
    }

    #[test]
    fn bounds_on_cycle_with_chord() {
        let mut b = GraphBuilder::new(6);
        b.edge(0, 1, 1)
            .edge(1, 2, 1)
            .edge(2, 3, 1)
            .edge(3, 4, 1)
            .edge(4, 5, 1)
            .edge(5, 0, 4);
        let g = b.build().unwrap();
        for q in [1, 2, 4] {
            check_bounds(&g, q, BreakpointRule::RootPath);
            check_bounds(&g, q, BreakpointRule::ConsecutivePairs);
        }
    }

    #[test]
    fn bounds_on_random_graphs() {
        for seed in 0..8 {
            let g =
                generators::connected_gnp(24, 0.15, generators::WeightDist::Uniform(1, 32), seed);
            for q in [1, 2, 3] {
                check_bounds(&g, q, BreakpointRule::RootPath);
                check_bounds(&g, q, BreakpointRule::ConsecutivePairs);
            }
        }
    }

    #[test]
    fn bounds_on_lower_bound_family() {
        let g = generators::lower_bound_family(12, 4);
        check_bounds(&g, 2, BreakpointRule::RootPath);
    }

    #[test]
    fn slt_on_a_star_is_the_star() {
        let g = generators::star(8, |i| i as u64 + 1);
        let slt = shallow_light_tree(&g, NodeId::new(0), 2);
        // the star is simultaneously the MST and the SPT
        assert_eq!(slt.weight(), g.total_weight());
        assert_eq!(slt.spliced_weight, Cost::ZERO);
    }

    #[test]
    fn larger_q_means_lighter_tree() {
        // On a wheel-like graph, growing q must not increase weight overhead.
        let g = generators::heavy_chord_cycle(20, 40);
        let w1 = shallow_light_tree(&g, NodeId::new(0), 1).weight();
        let w8 = shallow_light_tree(&g, NodeId::new(0), 8).weight();
        assert!(w8 <= w1, "q=8 weight {w8} should be ≤ q=1 weight {w1}");
    }

    #[test]
    fn breakpoint_zero_always_present() {
        let g = generators::connected_gnp(10, 0.3, generators::WeightDist::Uniform(1, 8), 3);
        let slt = shallow_light_tree(&g, NodeId::new(0), 2);
        assert_eq!(slt.breakpoints[0], 0);
    }

    #[test]
    #[should_panic(expected = "q must be at least 1")]
    fn zero_q_rejected() {
        let g = generators::path(3, |_| 1);
        let _ = shallow_light_tree(&g, NodeId::new(0), 0);
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn disconnected_rejected() {
        let mut b = GraphBuilder::new(3);
        b.edge(0, 1, 1);
        let g = b.build().unwrap();
        let _ = shallow_light_tree(&g, NodeId::new(0), 2);
    }

    #[test]
    fn roots_other_than_zero() {
        let g = generators::heavy_chord_cycle(12, 30);
        let p = CostParams::of(&g);
        for r in [3usize, 7, 11] {
            let slt = shallow_light_tree(&g, NodeId::new(r), 2);
            assert!(slt.tree.is_spanning());
            assert_eq!(slt.tree.root(), NodeId::new(r));
            assert!(slt.height() <= p.weighted_diameter * 3);
        }
    }
}
