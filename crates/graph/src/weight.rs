//! Edge weights and accumulated costs.
//!
//! The paper's model assigns every edge `e` a weight `w(e) ≥ 1` that serves
//! both as the *cost* of transmitting one message over `e` and as the
//! worst-case *delay* of `e`. [`Weight`] is the per-edge quantity;
//! [`Cost`] is a saturating accumulator for sums of weights (communication
//! complexity, tree weights, distances).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul};

/// Weight of a single edge: `w(e) ≥ 1`.
///
/// The paper assumes `W = max_e w(e) = poly(n)`; weights are plain `u64`s.
///
/// # Example
///
/// ```
/// use csp_graph::Weight;
/// let w = Weight::new(5);
/// assert_eq!(w.get(), 5);
/// assert_eq!(w.next_power_of_two().get(), 8); // `power(w)` of Definition 4.6
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Weight(u64);

impl Weight {
    /// The minimum legal weight.
    pub const ONE: Weight = Weight(1);

    /// Creates a weight.
    ///
    /// # Panics
    ///
    /// Panics if `w == 0`; the model requires `w(e) ≥ 1` (a zero-weight
    /// edge would allow free, instantaneous communication).
    #[inline]
    pub fn new(w: u64) -> Self {
        assert!(w >= 1, "edge weight must be at least 1, got 0");
        Weight(w)
    }

    /// Returns the raw weight value.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns `power(w)`, the smallest power of two `≥ w`
    /// (Definition 4.6 of the paper). Satisfies `w ≤ power(w) < 2w`.
    #[inline]
    pub fn next_power_of_two(self) -> Weight {
        Weight(self.0.next_power_of_two())
    }

    /// Whether this weight is a power of two (a *normalized* weight in the
    /// sense of Definition 4.3).
    #[inline]
    pub const fn is_power_of_two(self) -> bool {
        self.0.is_power_of_two()
    }

    /// Converts to a [`Cost`].
    #[inline]
    pub const fn to_cost(self) -> Cost {
        Cost(self.0 as u128)
    }
}

impl fmt::Display for Weight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

impl From<Weight> for u64 {
    fn from(w: Weight) -> u64 {
        w.0
    }
}

/// Accumulated cost: a sum of edge weights.
///
/// Used for communication complexity (Σ `w(e)` over transmitted messages),
/// tree weights, weighted distances and time bounds. Stored as `u128` so
/// that sums like `n · V̂` on large adversarial families cannot overflow;
/// arithmetic is checked in debug and saturating in release.
///
/// # Example
///
/// ```
/// use csp_graph::{Cost, Weight};
/// let c = Cost::ZERO + Weight::new(3).to_cost() + Weight::new(4).to_cost();
/// assert_eq!(c.get(), 7);
/// assert_eq!((c * 2).get(), 14);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Cost(u128);

impl Cost {
    /// The zero cost.
    pub const ZERO: Cost = Cost(0);

    /// A cost representing "unreachable" / "infinite".
    pub const INFINITY: Cost = Cost(u128::MAX);

    /// Creates a cost from a raw value.
    #[inline]
    pub const fn new(c: u128) -> Self {
        Cost(c)
    }

    /// Returns the raw cost value.
    ///
    /// # Panics
    ///
    /// Panics if the cost is [`Cost::INFINITY`]; use [`Cost::is_finite`]
    /// first when the value may be unreachable.
    #[inline]
    pub fn get(self) -> u128 {
        assert!(self.is_finite(), "cost is infinite");
        self.0
    }

    /// Returns the raw value without the finiteness check.
    #[inline]
    pub const fn raw(self) -> u128 {
        self.0
    }

    /// Whether this cost is finite (not [`Cost::INFINITY`]).
    #[inline]
    pub const fn is_finite(self) -> bool {
        self.0 != u128::MAX
    }

    /// Whether this cost is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating addition that preserves infinity.
    #[inline]
    pub fn saturating_add(self, rhs: Cost) -> Cost {
        if !self.is_finite() || !rhs.is_finite() {
            Cost::INFINITY
        } else {
            Cost(self.0.saturating_add(rhs.0))
        }
    }

    /// Cost as an `f64`, for ratio reporting in benches. Infinity maps to
    /// `f64::INFINITY`.
    #[inline]
    pub fn as_f64(self) -> f64 {
        if self.is_finite() {
            self.0 as f64
        } else {
            f64::INFINITY
        }
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_finite() {
            fmt::Display::fmt(&self.0, f)
        } else {
            f.write_str("∞")
        }
    }
}

impl Add for Cost {
    type Output = Cost;

    fn add(self, rhs: Cost) -> Cost {
        self.saturating_add(rhs)
    }
}

impl AddAssign for Cost {
    fn add_assign(&mut self, rhs: Cost) {
        *self = *self + rhs;
    }
}

impl Add<Weight> for Cost {
    type Output = Cost;

    fn add(self, rhs: Weight) -> Cost {
        self + rhs.to_cost()
    }
}

impl AddAssign<Weight> for Cost {
    fn add_assign(&mut self, rhs: Weight) {
        *self = *self + rhs;
    }
}

impl Mul<u128> for Cost {
    type Output = Cost;

    fn mul(self, rhs: u128) -> Cost {
        if !self.is_finite() {
            return Cost::INFINITY;
        }
        Cost(self.0.saturating_mul(rhs))
    }
}

impl Sum for Cost {
    fn sum<I: Iterator<Item = Cost>>(iter: I) -> Cost {
        iter.fold(Cost::ZERO, Add::add)
    }
}

impl From<Weight> for Cost {
    fn from(w: Weight) -> Cost {
        w.to_cost()
    }
}

impl From<u64> for Cost {
    fn from(c: u64) -> Cost {
        Cost(c as u128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "edge weight must be at least 1")]
    fn zero_weight_rejected() {
        let _ = Weight::new(0);
    }

    #[test]
    fn power_of_two_rounding_matches_definition_4_6() {
        // w <= power(w) < 2w for all w >= 1.
        for w in 1..=1000u64 {
            let p = Weight::new(w).next_power_of_two().get();
            assert!(w <= p, "power({w}) = {p} < {w}");
            assert!(p < 2 * w, "power({w}) = {p} >= 2*{w}");
            assert!(p.is_power_of_two());
        }
    }

    #[test]
    fn cost_sums() {
        let total: Cost = [1u64, 2, 3, 4].into_iter().map(Cost::from).sum();
        assert_eq!(total.get(), 10);
    }

    #[test]
    fn infinity_is_absorbing() {
        assert_eq!(Cost::INFINITY + Cost::new(5), Cost::INFINITY);
        assert_eq!(Cost::new(5) + Cost::INFINITY, Cost::INFINITY);
        assert_eq!(Cost::INFINITY * 3, Cost::INFINITY);
        assert!(!Cost::INFINITY.is_finite());
    }

    #[test]
    #[should_panic(expected = "cost is infinite")]
    fn get_on_infinity_panics() {
        let _ = Cost::INFINITY.get();
    }

    #[test]
    fn add_weight_to_cost() {
        let mut c = Cost::ZERO;
        c += Weight::new(7);
        assert_eq!(c, Cost::new(7));
        assert_eq!(c + Weight::new(3), Cost::new(10));
    }

    #[test]
    fn display() {
        assert_eq!(Cost::new(12).to_string(), "12");
        assert_eq!(Cost::INFINITY.to_string(), "∞");
        assert_eq!(Weight::new(9).to_string(), "9");
    }

    #[test]
    fn ordering_and_comparisons() {
        assert!(Cost::ZERO < Cost::new(1));
        assert!(Cost::new(10) < Cost::INFINITY);
        assert!(Weight::new(2) < Weight::new(3));
    }
}
