//! The paper's weighted complexity parameters `Ê`, `V̂`, `D̂`, `d`, `W`.
//!
//! Section 1.3 of the paper evaluates weighted protocols through the
//! weighted analogs of the classical parameters `E`, `V`, `D`:
//!
//! * `Ê = w(G)` — total edge weight: the cost of sending one message over
//!   every edge (analog of the edge count `E`);
//! * `V̂ = w(MST)` — MST weight: the minimal cost of reaching all vertices
//!   (analog of the vertex count `V`);
//! * `D̂ = Diam(G)` — weighted diameter: the maximal cost of transmitting
//!   a message between a pair of vertices (analog of the hop diameter `D`);
//!
//! plus the clock-synchronization parameters of Section 1.4.2:
//!
//! * `d = max_{(u,v)∈E} dist(u, v, G)` — the largest weighted distance
//!   between *neighbors* (always `d ≤ W`, and the interesting case for
//!   synchronizer γ\* is `d ≪ W`);
//! * `W = max_e w(e)` — the maximum edge weight.

use crate::algo::{distances, prim_mst};
use crate::graph::WeightedGraph;
use crate::ids::NodeId;
use crate::weight::{Cost, Weight};
use std::fmt;

/// All cost-sensitive parameters of a connected weighted graph.
///
/// # Example
///
/// ```
/// use csp_graph::GraphBuilder;
/// use csp_graph::params::CostParams;
///
/// // A triangle: heavy direct edge, light detour.
/// let mut b = GraphBuilder::new(3);
/// b.edge(0, 1, 1).edge(1, 2, 1).edge(0, 2, 8);
/// let g = b.build()?;
/// let p = CostParams::of(&g);
/// assert_eq!(p.total_weight.get(), 10);        // Ê
/// assert_eq!(p.mst_weight.get(), 2);           // V̂
/// assert_eq!(p.weighted_diameter.get(), 2);    // D̂
/// assert_eq!(p.max_neighbor_distance.get(), 2);// d: the 8-edge's endpoints
///                                              // are at distance 2
/// assert_eq!(p.max_weight.get(), 8);           // W
/// # Ok::<(), csp_graph::GraphError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CostParams {
    /// Number of vertices `n`.
    pub n: usize,
    /// Number of edges `m`.
    pub m: usize,
    /// `Ê = w(G)`.
    pub total_weight: Cost,
    /// `V̂ = w(MST)`.
    pub mst_weight: Cost,
    /// `D̂ = Diam(G)` (weighted).
    pub weighted_diameter: Cost,
    /// Hop diameter `D` (unweighted).
    pub hop_diameter: usize,
    /// `d = max_{(u,v)∈E} dist(u, v, G)`.
    pub max_neighbor_distance: Cost,
    /// `W = max_e w(e)`.
    pub max_weight: Weight,
    /// `Diam(MST)` — weighted diameter of the canonical MST
    /// (Fact 6.3: `Diam(MST) ≤ V̂ ≤ (n−1)·D̂`).
    pub mst_diameter: Cost,
}

impl CostParams {
    /// Computes every parameter of `g`.
    ///
    /// Runs `n` Dijkstra sweeps (`O(n·m·log n)`); intended for analysis and
    /// benchmarking, not inner loops.
    ///
    /// # Panics
    ///
    /// Panics if `g` is disconnected or has no vertices — the weighted
    /// diameter and `V̂` are undefined there.
    pub fn of(g: &WeightedGraph) -> CostParams {
        assert!(
            g.node_count() > 0,
            "parameters of the empty graph are undefined"
        );
        let n = g.node_count();
        let mst = prim_mst(g, NodeId::new(0));
        assert!(
            mst.is_spanning(),
            "graph must be connected to compute cost parameters"
        );
        let mut diameter = Cost::ZERO;
        let mut max_neighbor = Cost::ZERO;
        let mut hop_diam = 0usize;
        for v in g.nodes() {
            let dist = distances(g, v);
            for u in g.nodes() {
                let d = dist[u.index()];
                assert!(d.is_finite(), "graph must be connected");
                if d > diameter {
                    diameter = d;
                }
            }
            for (u, _, _) in g.neighbors(v) {
                let d = dist[u.index()];
                if d > max_neighbor {
                    max_neighbor = d;
                }
            }
            let hops = crate::algo::hop_distances(g, v);
            for u in g.nodes() {
                let h = hops[u.index()].expect("connected");
                if h > hop_diam {
                    hop_diam = h;
                }
            }
        }
        CostParams {
            n,
            m: g.edge_count(),
            total_weight: g.total_weight(),
            mst_weight: mst.weight(),
            weighted_diameter: diameter,
            hop_diameter: hop_diam,
            max_neighbor_distance: max_neighbor,
            max_weight: g.max_weight(),
            mst_diameter: mst.diameter(),
        }
    }

    /// The paper's connectivity/MST bound pivot `min{Ê, n·V̂}`.
    pub fn min_e_nv(&self) -> Cost {
        let nv = self.mst_weight * self.n as u128;
        self.total_weight.min(nv)
    }
}

impl fmt::Display for CostParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} m={} Ê={} V̂={} D̂={} D={} d={} W={}",
            self.n,
            self.m,
            self.total_weight,
            self.mst_weight,
            self.weighted_diameter,
            self.hop_diameter,
            self.max_neighbor_distance,
            self.max_weight
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn sample() -> WeightedGraph {
        // path 0-1-2-3 with weights 2,3,4 and a bypass 0-3 of weight 20.
        let mut b = GraphBuilder::new(4);
        b.edge(0, 1, 2).edge(1, 2, 3).edge(2, 3, 4).edge(0, 3, 20);
        b.build().unwrap()
    }

    #[test]
    fn parameters_of_sample() {
        let p = CostParams::of(&sample());
        assert_eq!(p.n, 4);
        assert_eq!(p.m, 4);
        assert_eq!(p.total_weight, Cost::new(29));
        assert_eq!(p.mst_weight, Cost::new(9)); // drops the 20-edge
        assert_eq!(p.weighted_diameter, Cost::new(9)); // 0 to 3 along the path
        assert_eq!(p.hop_diameter, 2); // e.g. 1 to 3 takes 2 hops
        assert_eq!(p.max_neighbor_distance, Cost::new(9)); // endpoints of the 20-edge
        assert_eq!(p.max_weight, Weight::new(20));
    }

    #[test]
    fn fact_6_3_mst_diameter_le_v_hat_le_n_times_d_hat() {
        let p = CostParams::of(&sample());
        assert!(p.mst_diameter <= p.mst_weight);
        assert!(p.mst_weight <= p.weighted_diameter * (p.n as u128 - 1));
    }

    #[test]
    fn d_le_w_always() {
        let p = CostParams::of(&sample());
        assert!(p.max_neighbor_distance <= p.max_weight.to_cost());
    }

    #[test]
    fn min_pivot() {
        let p = CostParams::of(&sample());
        // n·V̂ = 36 > Ê = 29
        assert_eq!(p.min_e_nv(), Cost::new(29));
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn disconnected_graph_panics() {
        let mut b = GraphBuilder::new(3);
        b.edge(0, 1, 1);
        let g = b.build().unwrap();
        let _ = CostParams::of(&g);
    }

    #[test]
    fn single_vertex_graph() {
        let g = GraphBuilder::new(1).build().unwrap();
        let p = CostParams::of(&g);
        assert_eq!(p.weighted_diameter, Cost::ZERO);
        assert_eq!(p.mst_weight, Cost::ZERO);
    }

    #[test]
    fn display_is_compact() {
        let p = CostParams::of(&sample());
        let s = p.to_string();
        assert!(s.contains("Ê=29"));
        assert!(s.contains("V̂=9"));
    }
}
