//! Plain-text edge-list serialization.
//!
//! A minimal, dependency-free interchange format so workloads can be
//! saved, diffed and replayed:
//!
//! ```text
//! # comment lines start with '#'
//! n 5            # vertex count
//! e 0 1 3        # edge u v weight
//! e 1 2 7
//! ```

use crate::graph::{GraphBuilder, WeightedGraph};
use std::error::Error;
use std::fmt;

/// Errors raised while parsing an edge list.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ParseGraphError {
    /// A line could not be interpreted.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// What was expected.
        reason: String,
    },
    /// The `n` header is missing or appears after edges.
    MissingHeader,
    /// The edge set failed graph validation.
    Invalid(crate::graph::GraphError),
}

impl fmt::Display for ParseGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseGraphError::BadLine { line, reason } => {
                write!(f, "line {line}: {reason}")
            }
            ParseGraphError::MissingHeader => {
                f.write_str("missing 'n <count>' header before the first edge")
            }
            ParseGraphError::Invalid(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl Error for ParseGraphError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseGraphError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<crate::graph::GraphError> for ParseGraphError {
    fn from(e: crate::graph::GraphError) -> Self {
        ParseGraphError::Invalid(e)
    }
}

/// Serializes a graph as an edge list.
///
/// # Example
///
/// ```
/// use csp_graph::GraphBuilder;
/// use csp_graph::io::{parse_edge_list, to_edge_list};
///
/// let mut b = GraphBuilder::new(3);
/// b.edge(0, 1, 2).edge(1, 2, 5);
/// let g = b.build()?;
/// let text = to_edge_list(&g);
/// let back = parse_edge_list(&text)?;
/// assert_eq!(back.total_weight(), g.total_weight());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn to_edge_list(g: &WeightedGraph) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    writeln!(out, "n {}", g.node_count()).expect("write to String");
    for e in g.edges() {
        writeln!(
            out,
            "e {} {} {}",
            e.u().index(),
            e.v().index(),
            e.weight().get()
        )
        .expect("write to String");
    }
    out
}

/// Parses an edge list produced by [`to_edge_list`] (comments and blank
/// lines allowed).
///
/// # Errors
///
/// Returns [`ParseGraphError`] on malformed lines, a missing header, or
/// an invalid edge set.
pub fn parse_edge_list(text: &str) -> Result<WeightedGraph, ParseGraphError> {
    let mut builder: Option<GraphBuilder> = None;
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        match parts.next() {
            Some("n") => {
                let n: usize = parts.next().and_then(|t| t.parse().ok()).ok_or_else(|| {
                    ParseGraphError::BadLine {
                        line,
                        reason: "expected 'n <count>'".into(),
                    }
                })?;
                builder = Some(GraphBuilder::new(n));
            }
            Some("e") => {
                let b = builder.as_mut().ok_or(ParseGraphError::MissingHeader)?;
                let mut next_num = |what: &str| -> Result<u64, ParseGraphError> {
                    parts.next().and_then(|t| t.parse().ok()).ok_or_else(|| {
                        ParseGraphError::BadLine {
                            line,
                            reason: format!("expected {what} in 'e <u> <v> <w>'"),
                        }
                    })
                };
                let u = next_num("u")? as usize;
                let v = next_num("v")? as usize;
                let w = next_num("w")?;
                if w == 0 {
                    return Err(ParseGraphError::BadLine {
                        line,
                        reason: "edge weight must be ≥ 1".into(),
                    });
                }
                b.edge(u, v, w);
            }
            Some(other) => {
                return Err(ParseGraphError::BadLine {
                    line,
                    reason: format!("unknown directive '{other}'"),
                })
            }
            None => unreachable!("empty lines are skipped"),
        }
    }
    let b = builder.ok_or(ParseGraphError::MissingHeader)?;
    Ok(b.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn round_trip_preserves_everything() {
        let g = generators::connected_gnp(25, 0.2, generators::WeightDist::Uniform(1, 50), 3);
        let text = to_edge_list(&g);
        let back = parse_edge_list(&text).unwrap();
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.edge_count(), g.edge_count());
        let orig: Vec<_> = g.edges().map(|e| (e.u(), e.v(), e.weight())).collect();
        let parsed: Vec<_> = back.edges().map(|e| (e.u(), e.v(), e.weight())).collect();
        assert_eq!(orig, parsed);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "# a workload\n\nn 3\n# the edges\ne 0 1 4\n\ne 1 2 1\n";
        let g = parse_edge_list(text).unwrap();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn missing_header_is_reported() {
        assert_eq!(
            parse_edge_list("e 0 1 1").unwrap_err(),
            ParseGraphError::MissingHeader
        );
    }

    #[test]
    fn bad_lines_carry_line_numbers() {
        let err = parse_edge_list("n 3\ne 0 1\n").unwrap_err();
        assert!(matches!(err, ParseGraphError::BadLine { line: 2, .. }));
        let err = parse_edge_list("n 3\nx 1 2 3\n").unwrap_err();
        assert!(matches!(err, ParseGraphError::BadLine { line: 2, .. }));
    }

    #[test]
    fn zero_weight_rejected() {
        let err = parse_edge_list("n 2\ne 0 1 0\n").unwrap_err();
        assert!(matches!(err, ParseGraphError::BadLine { line: 2, .. }));
    }

    #[test]
    fn invalid_graphs_are_rejected() {
        let err = parse_edge_list("n 2\ne 0 5 1\n").unwrap_err();
        assert!(matches!(err, ParseGraphError::Invalid(_)));
        assert!(err.to_string().contains("out of range"));
    }
}
