//! Rooted spanning trees and tree measurements.
//!
//! Protocols in the paper constantly manipulate rooted trees — spanning
//! trees, MSTs, shortest-path trees, shallow-light trees, cluster trees.
//! [`RootedTree`] stores the parent structure over a subset of a graph's
//! vertices, together with the connecting edge weights, and offers the
//! measurements the analysis needs: total weight, weighted depth and
//! weighted diameter.

use crate::graph::WeightedGraph;
use crate::ids::{EdgeId, NodeId};
use crate::weight::{Cost, Weight};
use std::fmt;

/// A rooted tree over (a subset of) the vertices of a graph.
///
/// Each non-root member vertex records its parent and the weight of the
/// connecting edge. Vertices outside the tree have no parent and are not
/// [members](RootedTree::contains).
///
/// # Example
///
/// ```
/// use csp_graph::{GraphBuilder, NodeId, RootedTree};
///
/// let mut b = GraphBuilder::new(3);
/// b.edge(0, 1, 2).edge(1, 2, 3);
/// let g = b.build()?;
/// let mut t = RootedTree::new(g.node_count(), NodeId::new(0));
/// t.attach(NodeId::new(1), NodeId::new(0), &g);
/// t.attach(NodeId::new(2), NodeId::new(1), &g);
/// assert_eq!(t.weight().get(), 5);
/// assert_eq!(t.depth(NodeId::new(2)).get(), 5);
/// # Ok::<(), csp_graph::GraphError>(())
/// ```
#[derive(Clone, Debug)]
pub struct RootedTree {
    root: NodeId,
    /// `parent[v]` is `Some((parent, edge id, weight))` for non-root members.
    parent: Vec<Option<(NodeId, EdgeId, Weight)>>,
    /// Membership flags (the root is always a member).
    member: Vec<bool>,
}

impl RootedTree {
    /// Creates a tree containing only `root`, over a vertex universe of
    /// size `n`.
    ///
    /// # Panics
    ///
    /// Panics if `root.index() >= n`.
    pub fn new(n: usize, root: NodeId) -> Self {
        assert!(root.index() < n, "root {root} out of range for {n} nodes");
        let mut member = vec![false; n];
        member[root.index()] = true;
        RootedTree {
            root,
            parent: vec![None; n],
            member,
        }
    }

    /// The root vertex.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Size of the vertex universe (not the member count).
    #[inline]
    pub fn universe(&self) -> usize {
        self.member.len()
    }

    /// Whether `v` belongs to the tree.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        self.member[v.index()]
    }

    /// Number of member vertices.
    pub fn len(&self) -> usize {
        self.member.iter().filter(|&&m| m).count()
    }

    /// Whether the tree contains only the root.
    pub fn is_empty(&self) -> bool {
        self.len() == 1
    }

    /// Whether the tree spans all `n` universe vertices.
    pub fn is_spanning(&self) -> bool {
        self.member.iter().all(|&m| m)
    }

    /// Parent link of `v`: `(parent, edge, weight)`, or `None` for the root
    /// and for non-members.
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<(NodeId, EdgeId, Weight)> {
        self.parent[v.index()]
    }

    /// Attaches non-member `child` under member `parent` using the graph
    /// edge between them.
    ///
    /// # Panics
    ///
    /// Panics if `child` is already a member, `parent` is not a member, or
    /// the graph has no edge `{parent, child}`.
    pub fn attach(&mut self, child: NodeId, parent: NodeId, g: &WeightedGraph) {
        let eid = g
            .edge_between(parent, child)
            .unwrap_or_else(|| panic!("no edge between {parent} and {child}"));
        self.attach_via(child, parent, eid, g.weight(eid));
    }

    /// Attaches non-member `child` under member `parent` via a known edge.
    ///
    /// # Panics
    ///
    /// Panics if `child` is already a member or `parent` is not a member.
    pub fn attach_via(&mut self, child: NodeId, parent: NodeId, edge: EdgeId, w: Weight) {
        assert!(
            !self.member[child.index()],
            "{child} is already in the tree"
        );
        assert!(self.member[parent.index()], "{parent} is not in the tree");
        self.member[child.index()] = true;
        self.parent[child.index()] = Some((parent, edge, w));
    }

    /// Iterates over member vertices.
    pub fn members(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.member
            .iter()
            .enumerate()
            .filter(|&(_, &m)| m)
            .map(|(i, _)| NodeId::new(i))
    }

    /// Iterates over tree edges as `(child, parent, edge id, weight)`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, EdgeId, Weight)> + '_ {
        self.parent
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.map(|(parent, eid, w)| (NodeId::new(i), parent, eid, w)))
    }

    /// Total weight `w(T)` of the tree.
    pub fn weight(&self) -> Cost {
        self.edges().map(|(_, _, _, w)| w.to_cost()).sum()
    }

    /// Weighted depth of `v`: the length of the tree path from the root.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a member.
    pub fn depth(&self, v: NodeId) -> Cost {
        assert!(self.member[v.index()], "{v} is not in the tree");
        let mut depth = Cost::ZERO;
        let mut cur = v;
        while let Some((p, _, w)) = self.parent[cur.index()] {
            depth += w;
            cur = p;
        }
        depth
    }

    /// Hop depth of `v`: number of tree edges from the root.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a member.
    pub fn hop_depth(&self, v: NodeId) -> usize {
        assert!(self.member[v.index()], "{v} is not in the tree");
        let mut hops = 0;
        let mut cur = v;
        while let Some((p, _, _)) = self.parent[cur.index()] {
            hops += 1;
            cur = p;
        }
        hops
    }

    /// Maximum weighted depth over all members (the tree's *height*).
    pub fn height(&self) -> Cost {
        self.depths()
            .into_iter()
            .flatten()
            .max()
            .unwrap_or(Cost::ZERO)
    }

    /// Weighted depths of all vertices (`None` for non-members), computed
    /// in one pass.
    pub fn depths(&self) -> Vec<Option<Cost>> {
        let n = self.member.len();
        let mut depth: Vec<Option<Cost>> = vec![None; n];
        depth[self.root.index()] = Some(Cost::ZERO);
        // Children lists give a top-down order without recursion.
        let children = self.children_lists();
        let mut stack = vec![self.root];
        while let Some(v) = stack.pop() {
            let dv = depth[v.index()].expect("parent depth set before child");
            for &(c, w) in &children[v.index()] {
                depth[c.index()] = Some(dv + w);
                stack.push(c);
            }
        }
        depth
    }

    /// Weighted diameter of the tree: the maximum weighted distance between
    /// two members along tree paths.
    ///
    /// Computed with two sweeps (farthest-from-root, then farthest from
    /// that), which is exact on trees.
    pub fn diameter(&self) -> Cost {
        let far = match self.farthest_from(self.root) {
            Some((v, _)) => v,
            None => return Cost::ZERO,
        };
        self.farthest_from(far)
            .map(|(_, d)| d)
            .unwrap_or(Cost::ZERO)
    }

    /// The member farthest (in weighted tree distance) from `start`, and
    /// that distance. Returns `None` when the tree has a single member.
    fn farthest_from(&self, start: NodeId) -> Option<(NodeId, Cost)> {
        let n = self.member.len();
        let children = self.children_lists();
        let mut dist: Vec<Option<Cost>> = vec![None; n];
        dist[start.index()] = Some(Cost::ZERO);
        let mut stack = vec![start];
        let mut best: Option<(NodeId, Cost)> = None;
        while let Some(v) = stack.pop() {
            let dv = dist[v.index()].expect("visited with distance");
            if v != start && best.is_none_or(|(_, b)| dv > b) {
                best = Some((v, dv));
            }
            // Tree neighbors: parent plus children.
            let mut push = |u: NodeId, w: Weight| {
                if dist[u.index()].is_none() {
                    dist[u.index()] = Some(dv + w);
                    stack.push(u);
                }
            };
            if let Some((p, _, w)) = self.parent[v.index()] {
                push(p, w);
            }
            for &(c, w) in &children[v.index()] {
                push(c, w);
            }
        }
        best
    }

    /// Builds, for each vertex, the list of `(child, weight)` pairs.
    pub fn children_lists(&self) -> Vec<Vec<(NodeId, Weight)>> {
        let mut children = vec![Vec::new(); self.member.len()];
        for (i, p) in self.parent.iter().enumerate() {
            if let Some((parent, _, w)) = p {
                children[parent.index()].push((NodeId::new(i), *w));
            }
        }
        children
    }

    /// The tree path from `v` up to the root, inclusive of both ends.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a member.
    pub fn path_to_root(&self, v: NodeId) -> Vec<NodeId> {
        assert!(self.member[v.index()], "{v} is not in the tree");
        let mut path = vec![v];
        let mut cur = v;
        while let Some((p, _, _)) = self.parent[cur.index()] {
            path.push(p);
            cur = p;
        }
        path
    }

    /// The tree path `Path(x, y, T)` between two members, as a vertex
    /// sequence from `x` to `y` (inclusive), through their lowest common
    /// ancestor.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` is not a member.
    pub fn path_between(&self, x: NodeId, y: NodeId) -> Vec<NodeId> {
        assert!(self.member[x.index()], "{x} is not in the tree");
        assert!(self.member[y.index()], "{y} is not in the tree");
        // Climb the deeper endpoint until both are at the same hop depth,
        // then climb together to the LCA.
        let mut up_x = vec![x];
        let mut up_y = vec![y];
        let (mut hx, mut hy) = (self.hop_depth(x), self.hop_depth(y));
        let (mut cx, mut cy) = (x, y);
        while hx > hy {
            cx = self.parent[cx.index()].expect("deeper vertex has parent").0;
            up_x.push(cx);
            hx -= 1;
        }
        while hy > hx {
            cy = self.parent[cy.index()].expect("deeper vertex has parent").0;
            up_y.push(cy);
            hy -= 1;
        }
        while cx != cy {
            cx = self.parent[cx.index()].expect("non-root has parent").0;
            cy = self.parent[cy.index()].expect("non-root has parent").0;
            up_x.push(cx);
            up_y.push(cy);
        }
        // up_x ends at the LCA; append up_y reversed, skipping its LCA.
        up_y.pop();
        up_x.extend(up_y.into_iter().rev());
        up_x
    }

    /// Weighted length of the tree path between two members,
    /// `dist(x, y, T)`.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` is not a member.
    pub fn tree_distance(&self, x: NodeId, y: NodeId) -> Cost {
        let path = self.path_between(x, y);
        let mut total = Cost::ZERO;
        for pair in path.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            let w = match self.parent[a.index()] {
                Some((p, _, w)) if p == b => w,
                _ => match self.parent[b.index()] {
                    Some((p, _, w)) if p == a => w,
                    _ => unreachable!("consecutive path vertices are tree neighbors"),
                },
            };
            total += w;
        }
        total
    }

    /// Converts the tree into a standalone [`WeightedGraph`] over the same
    /// vertex universe (useful for re-running graph algorithms on a tree).
    pub fn to_graph(&self) -> WeightedGraph {
        let mut b = crate::graph::GraphBuilder::new(self.member.len());
        for (child, parent, _, w) in self.edges() {
            b.edge(child.index(), parent.index(), w.get());
        }
        b.build().expect("tree edges form a valid graph")
    }
}

impl fmt::Display for RootedTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RootedTree(root={}, members={}, w={})",
            self.root,
            self.len(),
            self.weight()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn path_graph() -> WeightedGraph {
        // 0 -2- 1 -3- 2 -1- 3
        let mut b = GraphBuilder::new(4);
        b.edge(0, 1, 2).edge(1, 2, 3).edge(2, 3, 1);
        b.build().unwrap()
    }

    fn path_tree(g: &WeightedGraph) -> RootedTree {
        let mut t = RootedTree::new(4, NodeId::new(0));
        t.attach(NodeId::new(1), NodeId::new(0), g);
        t.attach(NodeId::new(2), NodeId::new(1), g);
        t.attach(NodeId::new(3), NodeId::new(2), g);
        t
    }

    #[test]
    fn membership_and_counts() {
        let g = path_graph();
        let t = path_tree(&g);
        assert!(t.is_spanning());
        assert_eq!(t.len(), 4);
        assert!(t.contains(NodeId::new(3)));
    }

    #[test]
    fn weight_depth_height() {
        let g = path_graph();
        let t = path_tree(&g);
        assert_eq!(t.weight(), Cost::new(6));
        assert_eq!(t.depth(NodeId::new(0)), Cost::ZERO);
        assert_eq!(t.depth(NodeId::new(2)), Cost::new(5));
        assert_eq!(t.depth(NodeId::new(3)), Cost::new(6));
        assert_eq!(t.height(), Cost::new(6));
        assert_eq!(t.hop_depth(NodeId::new(3)), 3);
    }

    #[test]
    fn diameter_of_path_equals_height_from_end() {
        let g = path_graph();
        let t = path_tree(&g);
        assert_eq!(t.diameter(), Cost::new(6));
    }

    #[test]
    fn diameter_of_star_is_two_longest_arms() {
        // star rooted at 0 with arms 5, 3, 2
        let mut b = GraphBuilder::new(4);
        b.edge(0, 1, 5).edge(0, 2, 3).edge(0, 3, 2);
        let g = b.build().unwrap();
        let mut t = RootedTree::new(4, NodeId::new(0));
        for v in 1..4 {
            t.attach(NodeId::new(v), NodeId::new(0), &g);
        }
        assert_eq!(t.diameter(), Cost::new(8)); // 5 + 3
        assert_eq!(t.height(), Cost::new(5));
    }

    #[test]
    fn singleton_tree() {
        let t = RootedTree::new(3, NodeId::new(1));
        assert!(t.is_empty());
        assert_eq!(t.weight(), Cost::ZERO);
        assert_eq!(t.diameter(), Cost::ZERO);
        assert_eq!(t.height(), Cost::ZERO);
        assert!(!t.is_spanning());
    }

    #[test]
    fn path_to_root() {
        let g = path_graph();
        let t = path_tree(&g);
        let p = t.path_to_root(NodeId::new(3));
        assert_eq!(
            p,
            vec![
                NodeId::new(3),
                NodeId::new(2),
                NodeId::new(1),
                NodeId::new(0)
            ]
        );
    }

    #[test]
    #[should_panic(expected = "is already in the tree")]
    fn double_attach_panics() {
        let g = path_graph();
        let mut t = RootedTree::new(4, NodeId::new(0));
        t.attach(NodeId::new(1), NodeId::new(0), &g);
        t.attach(NodeId::new(1), NodeId::new(0), &g);
    }

    #[test]
    #[should_panic(expected = "is not in the tree")]
    fn attach_to_non_member_panics() {
        let g = path_graph();
        let mut t = RootedTree::new(4, NodeId::new(0));
        t.attach(NodeId::new(2), NodeId::new(1), &g);
    }

    #[test]
    fn depths_bulk_matches_pointwise() {
        let g = path_graph();
        let t = path_tree(&g);
        let depths = t.depths();
        for v in t.members() {
            assert_eq!(depths[v.index()], Some(t.depth(v)));
        }
    }

    #[test]
    fn path_between_through_lca() {
        // star-ish tree: 0 -> {1, 2}; 2 -> 3
        let mut b = GraphBuilder::new(4);
        b.edge(0, 1, 5).edge(0, 2, 3).edge(2, 3, 2);
        let g = b.build().unwrap();
        let mut t = RootedTree::new(4, NodeId::new(0));
        t.attach(NodeId::new(1), NodeId::new(0), &g);
        t.attach(NodeId::new(2), NodeId::new(0), &g);
        t.attach(NodeId::new(3), NodeId::new(2), &g);
        let p = t.path_between(NodeId::new(1), NodeId::new(3));
        assert_eq!(
            p,
            vec![
                NodeId::new(1),
                NodeId::new(0),
                NodeId::new(2),
                NodeId::new(3)
            ]
        );
        assert_eq!(
            t.tree_distance(NodeId::new(1), NodeId::new(3)),
            Cost::new(10)
        );
        assert_eq!(
            t.tree_distance(NodeId::new(3), NodeId::new(1)),
            Cost::new(10)
        );
        assert_eq!(t.tree_distance(NodeId::new(3), NodeId::new(3)), Cost::ZERO);
        assert_eq!(
            t.path_between(NodeId::new(0), NodeId::new(3)),
            vec![NodeId::new(0), NodeId::new(2), NodeId::new(3)]
        );
    }

    #[test]
    fn to_graph_round_trip() {
        let g = path_graph();
        let t = path_tree(&g);
        let tg = t.to_graph();
        assert_eq!(tg.edge_count(), 3);
        assert_eq!(tg.total_weight(), Cost::new(6));
    }
}
