//! Typed identifiers for vertices and edges.
//!
//! Raw `usize` indices are easy to mix up between node and edge index
//! spaces; these newtypes keep the distinction static ([C-NEWTYPE]).
//!
//! Both identifiers are **u32-backed**: a vertex or edge index is a
//! dense `0..n` value well below 2³², and halving the id width halves
//! the CSR adjacency arrays and every id-carrying payload on the
//! million-node tier. The public API stays `usize`-shaped; the cap
//! ([`MAX_INDEX`]) is asserted at construction.

use std::fmt;

/// Largest admissible dense index for either id space: `u32::MAX` is
/// reserved as an internal sentinel, so indices run `0..=MAX_INDEX`.
pub const MAX_INDEX: usize = u32::MAX as usize - 1;

/// Identifier of a vertex in a [`WeightedGraph`](crate::WeightedGraph).
///
/// Node identifiers are dense indices `0..n`, stored compactly as
/// `u32`.
///
/// # Example
///
/// ```
/// use csp_graph::NodeId;
/// let v = NodeId::new(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(format!("{v}"), "v3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node identifier from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index > MAX_INDEX` (indices are stored as `u32`).
    #[inline]
    pub const fn new(index: usize) -> Self {
        assert!(index <= MAX_INDEX, "node index exceeds the u32 id space");
        NodeId(index as u32)
    }

    /// Returns the dense index of this node.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(index: usize) -> Self {
        NodeId::new(index)
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> usize {
        id.index()
    }
}

/// Identifier of an undirected edge in a
/// [`WeightedGraph`](crate::WeightedGraph).
///
/// Edge identifiers are dense indices `0..m` in insertion order,
/// stored compactly as `u32`.
///
/// # Example
///
/// ```
/// use csp_graph::EdgeId;
/// let e = EdgeId::new(7);
/// assert_eq!(e.index(), 7);
/// assert_eq!(format!("{e}"), "e7");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct EdgeId(u32);

impl EdgeId {
    /// Creates an edge identifier from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index > MAX_INDEX` (indices are stored as `u32`).
    #[inline]
    pub const fn new(index: usize) -> Self {
        assert!(index <= MAX_INDEX, "edge index exceeds the u32 id space");
        EdgeId(index as u32)
    }

    /// Returns the dense index of this edge.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<usize> for EdgeId {
    fn from(index: usize) -> Self {
        EdgeId::new(index)
    }
}

impl From<EdgeId> for usize {
    fn from(id: EdgeId) -> usize {
        id.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn node_id_round_trip() {
        for i in [0usize, 1, 17, super::MAX_INDEX] {
            assert_eq!(NodeId::new(i).index(), i);
            assert_eq!(usize::from(NodeId::from(i)), i);
        }
    }

    #[test]
    fn edge_id_round_trip() {
        for i in [0usize, 1, 17, super::MAX_INDEX] {
            assert_eq!(EdgeId::new(i).index(), i);
            assert_eq!(usize::from(EdgeId::from(i)), i);
        }
    }

    #[test]
    #[should_panic(expected = "u32 id space")]
    fn node_id_rejects_indices_past_u32() {
        let _ = NodeId::new(super::MAX_INDEX + 1);
    }

    #[test]
    #[should_panic(expected = "u32 id space")]
    fn edge_id_rejects_indices_past_u32() {
        let _ = EdgeId::new(super::MAX_INDEX + 1);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(EdgeId::new(1) < EdgeId::new(2));
        let set: HashSet<NodeId> = [NodeId::new(1), NodeId::new(1), NodeId::new(2)]
            .into_iter()
            .collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId::new(0).to_string(), "v0");
        assert_eq!(EdgeId::new(42).to_string(), "e42");
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(NodeId::default(), NodeId::new(0));
        assert_eq!(EdgeId::default(), EdgeId::new(0));
    }
}
