//! Typed identifiers for vertices and edges.
//!
//! Raw `usize` indices are easy to mix up between node and edge index
//! spaces; these newtypes keep the distinction static ([C-NEWTYPE]).

use std::fmt;

/// Identifier of a vertex in a [`WeightedGraph`](crate::WeightedGraph).
///
/// Node identifiers are dense indices `0..n`.
///
/// # Example
///
/// ```
/// use csp_graph::NodeId;
/// let v = NodeId::new(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(format!("{v}"), "v3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(usize);

impl NodeId {
    /// Creates a node identifier from a dense index.
    #[inline]
    pub const fn new(index: usize) -> Self {
        NodeId(index)
    }

    /// Returns the dense index of this node.
    #[inline]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(index: usize) -> Self {
        NodeId(index)
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> usize {
        id.0
    }
}

/// Identifier of an undirected edge in a
/// [`WeightedGraph`](crate::WeightedGraph).
///
/// Edge identifiers are dense indices `0..m` in insertion order.
///
/// # Example
///
/// ```
/// use csp_graph::EdgeId;
/// let e = EdgeId::new(7);
/// assert_eq!(e.index(), 7);
/// assert_eq!(format!("{e}"), "e7");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct EdgeId(usize);

impl EdgeId {
    /// Creates an edge identifier from a dense index.
    #[inline]
    pub const fn new(index: usize) -> Self {
        EdgeId(index)
    }

    /// Returns the dense index of this edge.
    #[inline]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<usize> for EdgeId {
    fn from(index: usize) -> Self {
        EdgeId(index)
    }
}

impl From<EdgeId> for usize {
    fn from(id: EdgeId) -> usize {
        id.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn node_id_round_trip() {
        for i in [0usize, 1, 17, usize::MAX] {
            assert_eq!(NodeId::new(i).index(), i);
            assert_eq!(usize::from(NodeId::from(i)), i);
        }
    }

    #[test]
    fn edge_id_round_trip() {
        for i in [0usize, 1, 17, usize::MAX] {
            assert_eq!(EdgeId::new(i).index(), i);
            assert_eq!(usize::from(EdgeId::from(i)), i);
        }
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(EdgeId::new(1) < EdgeId::new(2));
        let set: HashSet<NodeId> = [NodeId::new(1), NodeId::new(1), NodeId::new(2)]
            .into_iter()
            .collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId::new(0).to_string(), "v0");
        assert_eq!(EdgeId::new(42).to_string(), "e42");
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(NodeId::default(), NodeId::new(0));
        assert_eq!(EdgeId::default(), EdgeId::new(0));
    }
}
