//! Breadth-first search: hop distances and BFS trees.
//!
//! BFS ignores weights — it measures the classical (hop-based) quantities
//! `D` that the weighted parameters `D̂` generalize.

use crate::graph::WeightedGraph;
use crate::ids::NodeId;
use crate::tree::RootedTree;
use std::collections::VecDeque;

/// Hop distances from `s` (`None` for unreachable vertices).
///
/// # Panics
///
/// Panics if `s` is out of range.
pub fn hop_distances(g: &WeightedGraph, s: NodeId) -> Vec<Option<usize>> {
    g.check_node(s);
    let mut dist = vec![None; g.node_count()];
    dist[s.index()] = Some(0);
    let mut queue = VecDeque::from([s]);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v.index()].expect("queued with distance");
        for (u, _, _) in g.neighbors(v) {
            if dist[u.index()].is_none() {
                dist[u.index()] = Some(dv + 1);
                queue.push_back(u);
            }
        }
    }
    dist
}

/// BFS spanning tree of the component of `s` (minimum *hop* depth).
///
/// # Panics
///
/// Panics if `s` is out of range.
pub fn bfs_tree(g: &WeightedGraph, s: NodeId) -> RootedTree {
    g.check_node(s);
    let mut tree = RootedTree::new(g.node_count(), s);
    let mut queue = VecDeque::from([s]);
    while let Some(v) = queue.pop_front() {
        for (u, eid, w) in g.neighbors(v) {
            if !tree.contains(u) {
                tree.attach_via(u, v, eid, w);
                queue.push_back(u);
            }
        }
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    #[test]
    fn hop_distance_ignores_weights() {
        // heavy direct edge vs light two-hop path: BFS prefers fewer hops.
        let mut b = GraphBuilder::new(3);
        b.edge(0, 2, 100).edge(0, 1, 1).edge(1, 2, 1);
        let g = b.build().unwrap();
        let d = hop_distances(&g, NodeId::new(0));
        assert_eq!(d[2], Some(1));
    }

    #[test]
    fn unreachable_is_none() {
        let mut b = GraphBuilder::new(3);
        b.edge(0, 1, 1);
        let g = b.build().unwrap();
        let d = hop_distances(&g, NodeId::new(0));
        assert_eq!(d[2], None);
    }

    #[test]
    fn bfs_tree_has_min_hop_depths() {
        let mut b = GraphBuilder::new(5);
        b.edge(0, 1, 1)
            .edge(1, 2, 1)
            .edge(2, 3, 1)
            .edge(3, 4, 1)
            .edge(0, 4, 9);
        let g = b.build().unwrap();
        let t = bfs_tree(&g, NodeId::new(0));
        let d = hop_distances(&g, NodeId::new(0));
        for v in g.nodes() {
            assert_eq!(t.hop_depth(v), d[v.index()].unwrap());
        }
        assert_eq!(t.hop_depth(NodeId::new(4)), 1); // via the heavy shortcut
    }
}
