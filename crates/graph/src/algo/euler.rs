//! Euler tours of rooted trees and the "line version" of an MST.
//!
//! The SLT algorithm (Section 2.2, step 2–3 of the paper) traverses the
//! MST `T_M` depth-first with a token; `v(i)` is the token's position at
//! mileage `i` (`0 ≤ i ≤ 2(n−1)`). The *line version* `L` of `T_M` is the
//! weighted path graph on vertices `0..=2(n−1)` in which edge `(i, i+1)`
//! inherits the weight of the tree edge `(v(i), v(i+1))`. Its total weight
//! is at most `2·w(T_M) ≤ 2·V̂`.

use crate::ids::NodeId;
use crate::tree::RootedTree;
use crate::weight::{Cost, Weight};

/// One position on the DFS line `L`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LineVertex {
    /// Mileage index `i` on the line.
    pub index: usize,
    /// The graph vertex `v(i)` the token occupies at mileage `i`.
    pub node: NodeId,
}

/// The line version `L` of a tree: the Euler tour as a weighted path.
#[derive(Clone, Debug)]
pub struct MstLine {
    /// `tour[i]` = `v(i)`; `tour.len() == 2(n−1) + 1` and
    /// `tour[0] == tour[2(n−1)] ==` the DFS source.
    tour: Vec<NodeId>,
    /// `step_weight[i]` = weight of the tree edge `(v(i), v(i+1))`.
    step_weight: Vec<Weight>,
    /// Prefix sums: `prefix[i]` = weighted distance from line vertex 0 to i.
    prefix: Vec<Cost>,
}

impl MstLine {
    /// Number of line vertices (`2(n−1) + 1` for a tree on `n` members).
    #[inline]
    pub fn len(&self) -> usize {
        self.tour.len()
    }

    /// Whether the line is a single point (tree with one member).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tour.len() <= 1
    }

    /// The graph vertex `v(i)` at line position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn node_at(&self, i: usize) -> NodeId {
        self.tour[i]
    }

    /// Iterates over the line positions.
    pub fn iter(&self) -> impl Iterator<Item = LineVertex> + '_ {
        self.tour
            .iter()
            .enumerate()
            .map(|(index, &node)| LineVertex { index, node })
    }

    /// Weight of the line edge `(i, i+1)` — the weight of the traversed
    /// tree edge `(v(i), v(i+1))`.
    ///
    /// # Panics
    ///
    /// Panics if `i + 1` is out of range.
    #[inline]
    pub fn step_weight(&self, i: usize) -> Weight {
        self.step_weight[i]
    }

    /// Weighted distance `dist(i, j, L)` along the line.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn line_distance(&self, i: usize, j: usize) -> Cost {
        let (lo, hi) = (i.min(j), i.max(j));
        Cost::new(self.prefix[hi].get() - self.prefix[lo].get())
    }

    /// Total weight `w(L)` of the line (≤ `2·w(T)`).
    pub fn total_weight(&self) -> Cost {
        *self.prefix.last().unwrap_or(&Cost::ZERO)
    }
}

/// The Euler tour of `tree` as a vertex sequence starting and ending at the
/// root; each tree edge is traversed exactly twice.
///
/// Children are visited in ascending vertex order, making the tour
/// deterministic.
pub fn euler_tour(tree: &RootedTree) -> Vec<NodeId> {
    let mut children = tree.children_lists();
    for c in &mut children {
        c.sort_by_key(|&(v, _)| v);
    }
    let mut tour = vec![tree.root()];
    // Explicit stack of (vertex, next-child-index) to avoid recursion on
    // deep trees.
    let mut stack: Vec<(NodeId, usize)> = vec![(tree.root(), 0)];
    while let Some(&mut (v, ref mut next)) = stack.last_mut() {
        if *next < children[v.index()].len() {
            let (c, _) = children[v.index()][*next];
            *next += 1;
            tour.push(c);
            stack.push((c, 0));
        } else {
            stack.pop();
            if let Some(&(p, _)) = stack.last() {
                tour.push(p);
            }
        }
    }
    tour
}

/// Builds the line version `L` of `tree` (step 3 of the SLT algorithm).
pub fn mst_line(tree: &RootedTree) -> MstLine {
    let tour = euler_tour(tree);
    let mut step_weight = Vec::with_capacity(tour.len().saturating_sub(1));
    let mut prefix = Vec::with_capacity(tour.len());
    let mut acc = Cost::ZERO;
    prefix.push(acc);
    for pair in tour.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        // One of a, b is the parent of the other in the tree.
        let w = match tree.parent(a) {
            Some((p, _, w)) if p == b => w,
            _ => match tree.parent(b) {
                Some((p, _, w)) if p == a => w,
                _ => unreachable!("consecutive tour vertices are tree neighbors"),
            },
        };
        step_weight.push(w);
        acc += w;
        prefix.push(acc);
    }
    MstLine {
        tour,
        step_weight,
        prefix,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{GraphBuilder, WeightedGraph};

    fn spider() -> (WeightedGraph, RootedTree) {
        // root 0 with children 1 (w 2) and 2 (w 3); 2 has child 3 (w 5).
        let mut b = GraphBuilder::new(4);
        b.edge(0, 1, 2).edge(0, 2, 3).edge(2, 3, 5);
        let g = b.build().unwrap();
        let mut t = RootedTree::new(4, NodeId::new(0));
        t.attach(NodeId::new(1), NodeId::new(0), &g);
        t.attach(NodeId::new(2), NodeId::new(0), &g);
        t.attach(NodeId::new(3), NodeId::new(2), &g);
        (g, t)
    }

    #[test]
    fn tour_visits_each_edge_twice() {
        let (_, t) = spider();
        let tour = euler_tour(&t);
        assert_eq!(tour.len(), 2 * 3 + 1); // 2(n-1)+1 with n=4
        assert_eq!(tour.first(), tour.last());
        // expected order with ascending children: 0 1 0 2 3 2 0
        let ids: Vec<usize> = tour.iter().map(|v| v.index()).collect();
        assert_eq!(ids, vec![0, 1, 0, 2, 3, 2, 0]);
    }

    #[test]
    fn line_weight_is_twice_tree_weight() {
        let (_, t) = spider();
        let line = mst_line(&t);
        assert_eq!(line.total_weight(), Cost::new(2 * 10));
        assert_eq!(line.len(), 7);
    }

    #[test]
    fn line_distances_are_prefix_differences() {
        let (_, t) = spider();
        let line = mst_line(&t);
        // steps: 0-1 (2), 1-0 (2), 0-2 (3), 2-3 (5), 3-2 (5), 2-0 (3)
        assert_eq!(line.line_distance(0, 1), Cost::new(2));
        assert_eq!(line.line_distance(0, 3), Cost::new(7));
        assert_eq!(line.line_distance(3, 0), Cost::new(7));
        assert_eq!(line.line_distance(2, 4), Cost::new(8));
        assert_eq!(line.line_distance(5, 5), Cost::ZERO);
    }

    #[test]
    fn singleton_tree_gives_point_line() {
        let t = RootedTree::new(1, NodeId::new(0));
        let line = mst_line(&t);
        assert!(line.is_empty());
        assert_eq!(line.total_weight(), Cost::ZERO);
        assert_eq!(line.node_at(0), NodeId::new(0));
    }

    #[test]
    fn line_vertices_iterate_in_order() {
        let (_, t) = spider();
        let line = mst_line(&t);
        let indices: Vec<usize> = line.iter().map(|lv| lv.index).collect();
        assert_eq!(indices, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn deep_path_does_not_overflow_stack() {
        let n = 50_000;
        let mut b = GraphBuilder::new(n);
        for i in 0..n - 1 {
            b.edge(i, i + 1, 1);
        }
        let g = b.build().unwrap();
        let mut t = RootedTree::new(n, NodeId::new(0));
        for i in 1..n {
            t.attach(NodeId::new(i), NodeId::new(i - 1), &g);
        }
        let tour = euler_tour(&t);
        assert_eq!(tour.len(), 2 * (n - 1) + 1);
    }
}
