//! Weighted eccentricities and graph centers.
//!
//! The pulse delay of clock synchronizer β* and the depth of every
//! root-path structure depend on which vertex anchors the tree; the
//! *center* — the vertex of minimum weighted eccentricity — is the
//! optimal anchor.

use crate::algo::distances;
use crate::graph::WeightedGraph;
use crate::ids::NodeId;
use crate::weight::Cost;

/// Weighted eccentricity of every vertex: `ecc(v) = max_u dist(v, u)`.
///
/// # Panics
///
/// Panics if `g` is disconnected or empty.
pub fn eccentricities(g: &WeightedGraph) -> Vec<Cost> {
    assert!(g.node_count() > 0, "eccentricities of the empty graph");
    g.nodes()
        .map(|v| {
            let dist = distances(g, v);
            let ecc = dist.into_iter().max().expect("nonempty");
            assert!(ecc.is_finite(), "graph must be connected");
            ecc
        })
        .collect()
}

/// The weighted center: the vertex minimizing eccentricity (smallest id
/// on ties), with its eccentricity (the weighted *radius* of `G`).
///
/// # Example
///
/// ```
/// use csp_graph::generators;
/// use csp_graph::algo::weighted_center;
///
/// // On a path, the center is the middle vertex.
/// let g = generators::path(5, |_| 2);
/// let (center, radius) = weighted_center(&g);
/// assert_eq!(center.index(), 2);
/// assert_eq!(radius.get(), 4);
/// ```
///
/// # Panics
///
/// Panics if `g` is disconnected or empty.
pub fn weighted_center(g: &WeightedGraph) -> (NodeId, Cost) {
    let eccs = eccentricities(g);
    let (idx, ecc) = eccs
        .into_iter()
        .enumerate()
        .min_by_key(|&(i, e)| (e, i))
        .expect("nonempty");
    (NodeId::new(idx), ecc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn center_of_a_star_is_the_hub() {
        let g = generators::star(7, |_| 3);
        let (c, r) = weighted_center(&g);
        assert_eq!(c, NodeId::new(0));
        assert_eq!(r, Cost::new(3));
    }

    #[test]
    fn eccentricities_are_bounded_by_diameter() {
        let g = generators::connected_gnp(15, 0.25, generators::WeightDist::Uniform(1, 9), 4);
        let eccs = eccentricities(&g);
        let diam = eccs.iter().copied().max().unwrap();
        let radius = eccs.iter().copied().min().unwrap();
        // radius ≤ diameter ≤ 2·radius on any connected graph.
        assert!(radius <= diam);
        assert!(diam <= radius * 2);
    }

    #[test]
    fn center_anchors_a_shallower_spt_than_the_corner() {
        let g = generators::path(9, |_| 5);
        let (c, r) = weighted_center(&g);
        let corner_ecc = eccentricities(&g)[0];
        assert!(r < corner_ecc);
        assert_eq!(c.index(), 4);
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn disconnected_rejected() {
        let mut b = crate::graph::GraphBuilder::new(3);
        b.edge(0, 1, 1);
        let _ = eccentricities(&b.build().unwrap());
    }
}
