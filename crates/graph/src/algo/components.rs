//! Connected components.

use crate::graph::WeightedGraph;
use crate::ids::NodeId;

/// The partition of `V` into connected components.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Components {
    /// `label[v]` = component index of vertex `v` (dense, `0..count`).
    label: Vec<usize>,
    count: usize,
}

impl Components {
    /// Number of components.
    #[inline]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Component index of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn component_of(&self, v: NodeId) -> usize {
        self.label[v.index()]
    }

    /// Whether `u` and `v` are in the same component.
    #[inline]
    pub fn same(&self, u: NodeId, v: NodeId) -> bool {
        self.label[u.index()] == self.label[v.index()]
    }

    /// The members of each component.
    pub fn groups(&self) -> Vec<Vec<NodeId>> {
        let mut groups = vec![Vec::new(); self.count];
        for (i, &c) in self.label.iter().enumerate() {
            groups[c].push(NodeId::new(i));
        }
        groups
    }
}

/// Computes connected components by repeated DFS.
///
/// Component indices are assigned in order of their smallest vertex.
///
/// # Example
///
/// ```
/// use csp_graph::{GraphBuilder, NodeId};
/// use csp_graph::algo::connected_components;
///
/// let mut b = GraphBuilder::new(4);
/// b.edge(0, 1, 1).edge(2, 3, 1);
/// let g = b.build()?;
/// let cc = connected_components(&g);
/// assert_eq!(cc.count(), 2);
/// assert!(cc.same(NodeId::new(0), NodeId::new(1)));
/// assert!(!cc.same(NodeId::new(1), NodeId::new(2)));
/// # Ok::<(), csp_graph::GraphError>(())
/// ```
pub fn connected_components(g: &WeightedGraph) -> Components {
    let n = g.node_count();
    let mut label = vec![usize::MAX; n];
    let mut count = 0;
    for start in 0..n {
        if label[start] != usize::MAX {
            continue;
        }
        let mut stack = vec![NodeId::new(start)];
        label[start] = count;
        while let Some(v) = stack.pop() {
            for (u, _, _) in g.neighbors(v) {
                if label[u.index()] == usize::MAX {
                    label[u.index()] = count;
                    stack.push(u);
                }
            }
        }
        count += 1;
    }
    Components { label, count }
}

/// Whether `G` is connected. The empty graph counts as connected.
pub fn is_connected(g: &WeightedGraph) -> bool {
    connected_components(g).count() <= 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    #[test]
    fn single_component() {
        let mut b = GraphBuilder::new(3);
        b.edge(0, 1, 1).edge(1, 2, 1);
        let g = b.build().unwrap();
        assert!(is_connected(&g));
        assert_eq!(connected_components(&g).count(), 1);
    }

    #[test]
    fn isolated_vertices_are_own_components() {
        let g = GraphBuilder::new(3).build().unwrap();
        let cc = connected_components(&g);
        assert_eq!(cc.count(), 3);
        assert!(!cc.same(NodeId::new(0), NodeId::new(1)));
    }

    #[test]
    fn groups_partition_vertices() {
        let mut b = GraphBuilder::new(5);
        b.edge(0, 2, 1).edge(1, 3, 1);
        let g = b.build().unwrap();
        let cc = connected_components(&g);
        let groups = cc.groups();
        assert_eq!(groups.len(), 3);
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, 5);
        assert_eq!(groups[0], vec![NodeId::new(0), NodeId::new(2)]);
    }

    #[test]
    fn empty_graph_is_connected() {
        let g = GraphBuilder::new(0).build().unwrap();
        assert!(is_connected(&g));
    }
}
