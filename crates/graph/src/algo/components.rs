//! Connected components, including components of crash-induced
//! subgraphs.

use crate::graph::WeightedGraph;
use crate::ids::NodeId;
use crate::weight::Cost;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The partition of `V` into connected components.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Components {
    /// `label[v]` = component index of vertex `v` (dense, `0..count`).
    label: Vec<usize>,
    count: usize,
}

impl Components {
    /// Number of components.
    #[inline]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Component index of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn component_of(&self, v: NodeId) -> usize {
        self.label[v.index()]
    }

    /// Whether `u` and `v` are in the same component.
    #[inline]
    pub fn same(&self, u: NodeId, v: NodeId) -> bool {
        self.label[u.index()] == self.label[v.index()]
    }

    /// The members of each component.
    pub fn groups(&self) -> Vec<Vec<NodeId>> {
        let mut groups = vec![Vec::new(); self.count];
        for (i, &c) in self.label.iter().enumerate() {
            groups[c].push(NodeId::new(i));
        }
        groups
    }
}

/// Computes connected components by repeated DFS.
///
/// Component indices are assigned in order of their smallest vertex.
///
/// # Example
///
/// ```
/// use csp_graph::{GraphBuilder, NodeId};
/// use csp_graph::algo::connected_components;
///
/// let mut b = GraphBuilder::new(4);
/// b.edge(0, 1, 1).edge(2, 3, 1);
/// let g = b.build()?;
/// let cc = connected_components(&g);
/// assert_eq!(cc.count(), 2);
/// assert!(cc.same(NodeId::new(0), NodeId::new(1)));
/// assert!(!cc.same(NodeId::new(1), NodeId::new(2)));
/// # Ok::<(), csp_graph::GraphError>(())
/// ```
pub fn connected_components(g: &WeightedGraph) -> Components {
    let n = g.node_count();
    let mut label = vec![usize::MAX; n];
    let mut count = 0;
    for start in 0..n {
        if label[start] != usize::MAX {
            continue;
        }
        let mut stack = vec![NodeId::new(start)];
        label[start] = count;
        while let Some(v) = stack.pop() {
            for (u, _, _) in g.neighbors(v) {
                if label[u.index()] == usize::MAX {
                    label[u.index()] = count;
                    stack.push(u);
                }
            }
        }
        count += 1;
    }
    Components { label, count }
}

/// Whether `G` is connected. The empty graph counts as connected.
pub fn is_connected(g: &WeightedGraph) -> bool {
    connected_components(g).count() <= 1
}

/// Membership mask of the *surviving component* of `source`: the set of
/// vertices reachable from `source` in the subgraph induced by the
/// vertices with `dead[v] == false`.
///
/// This is the reference notion behind the self-healing protocols'
/// correctness contract ("every live vertex in the source's surviving
/// component terminates with the right answer"). When `source` itself is
/// dead the mask is all-`false` — the contract is vacuous.
///
/// # Panics
///
/// Panics if `source` is out of range or `dead.len() != n`.
pub fn surviving_component(g: &WeightedGraph, source: NodeId, dead: &[bool]) -> Vec<bool> {
    g.check_node(source);
    assert_eq!(dead.len(), g.node_count(), "dead mask must cover V");
    let mut alive = vec![false; g.node_count()];
    if dead[source.index()] {
        return alive;
    }
    alive[source.index()] = true;
    let mut stack = vec![source];
    while let Some(v) = stack.pop() {
        for (u, _, _) in g.neighbors(v) {
            if !dead[u.index()] && !alive[u.index()] {
                alive[u.index()] = true;
                stack.push(u);
            }
        }
    }
    alive
}

/// Weighted distances from `s` restricted to the subgraph induced by the
/// vertices with `dead[v] == false` — `None` for dead vertices and for
/// live vertices cut off from `s` by the crashes.
///
/// The reference answer a crash-tolerant SPT protocol must converge to
/// on the surviving component.
///
/// # Panics
///
/// Panics if `s` is out of range or `dead.len() != n`.
pub fn surviving_distances(g: &WeightedGraph, s: NodeId, dead: &[bool]) -> Vec<Option<Cost>> {
    g.check_node(s);
    assert_eq!(dead.len(), g.node_count(), "dead mask must cover V");
    let mut dist = vec![None; g.node_count()];
    if dead[s.index()] {
        return dist;
    }
    dist[s.index()] = Some(Cost::ZERO);
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((Cost::ZERO, s)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if dist[v.index()].is_some_and(|b| d > b) {
            continue; // stale entry
        }
        for (u, _, w) in g.neighbors(v) {
            if dead[u.index()] {
                continue;
            }
            let nd = d + w;
            if dist[u.index()].is_none_or(|b| nd < b) {
                dist[u.index()] = Some(nd);
                heap.push(Reverse((nd, u)));
            }
        }
    }
    dist
}

/// Hop distances from `s` restricted to the live-induced subgraph — the
/// reference answer for a crash-tolerant flood.
///
/// # Panics
///
/// Panics if `s` is out of range or `dead.len() != n`.
pub fn surviving_hop_distances(g: &WeightedGraph, s: NodeId, dead: &[bool]) -> Vec<Option<usize>> {
    g.check_node(s);
    assert_eq!(dead.len(), g.node_count(), "dead mask must cover V");
    let mut dist = vec![None; g.node_count()];
    if dead[s.index()] {
        return dist;
    }
    dist[s.index()] = Some(0);
    let mut queue = std::collections::VecDeque::from([s]);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v.index()].expect("queued with distance");
        for (u, _, _) in g.neighbors(v) {
            if !dead[u.index()] && dist[u.index()].is_none() {
                dist[u.index()] = Some(dv + 1);
                queue.push_back(u);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    #[test]
    fn single_component() {
        let mut b = GraphBuilder::new(3);
        b.edge(0, 1, 1).edge(1, 2, 1);
        let g = b.build().unwrap();
        assert!(is_connected(&g));
        assert_eq!(connected_components(&g).count(), 1);
    }

    #[test]
    fn isolated_vertices_are_own_components() {
        let g = GraphBuilder::new(3).build().unwrap();
        let cc = connected_components(&g);
        assert_eq!(cc.count(), 3);
        assert!(!cc.same(NodeId::new(0), NodeId::new(1)));
    }

    #[test]
    fn groups_partition_vertices() {
        let mut b = GraphBuilder::new(5);
        b.edge(0, 2, 1).edge(1, 3, 1);
        let g = b.build().unwrap();
        let cc = connected_components(&g);
        let groups = cc.groups();
        assert_eq!(groups.len(), 3);
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, 5);
        assert_eq!(groups[0], vec![NodeId::new(0), NodeId::new(2)]);
    }

    #[test]
    fn empty_graph_is_connected() {
        let g = GraphBuilder::new(0).build().unwrap();
        assert!(is_connected(&g));
    }

    /// Path 0-1-2-3 with a 2-weight shortcut 0-3; killing vertex 1 cuts
    /// the cheap route but leaves everyone reachable via the shortcut.
    fn shortcut_path() -> WeightedGraph {
        let mut b = GraphBuilder::new(4);
        b.edge(0, 1, 1).edge(1, 2, 1).edge(2, 3, 1).edge(0, 3, 2);
        b.build().unwrap()
    }

    #[test]
    fn surviving_component_excludes_cut_off_vertices() {
        let mut b = GraphBuilder::new(4);
        b.edge(0, 1, 1).edge(1, 2, 1).edge(2, 3, 1);
        let g = b.build().unwrap();
        let mut dead = vec![false; 4];
        dead[1] = true;
        let alive = surviving_component(&g, NodeId::new(0), &dead);
        assert_eq!(alive, vec![true, false, false, false]);
    }

    #[test]
    fn surviving_component_is_empty_when_the_source_is_dead() {
        let g = shortcut_path();
        let mut dead = vec![false; 4];
        dead[0] = true;
        let alive = surviving_component(&g, NodeId::new(0), &dead);
        assert!(alive.iter().all(|&a| !a));
    }

    #[test]
    fn surviving_distances_reroute_around_the_crash() {
        let g = shortcut_path();
        let mut dead = vec![false; 4];
        dead[1] = true;
        let d = surviving_distances(&g, NodeId::new(0), &dead);
        assert_eq!(d[0], Some(Cost::ZERO));
        assert_eq!(d[1], None);
        assert_eq!(d[3], Some(Cost::new(2))); // via the shortcut
        assert_eq!(d[2], Some(Cost::new(3))); // 0-3-2 now that 1 is gone
    }

    #[test]
    fn surviving_hop_distances_match_a_bfs_on_the_live_subgraph() {
        let g = shortcut_path();
        let mut dead = vec![false; 4];
        dead[2] = true;
        let d = surviving_hop_distances(&g, NodeId::new(0), &dead);
        assert_eq!(d, vec![Some(0), Some(1), None, Some(1)]);
    }
}
