//! Sequential reference algorithms on weighted graphs.
//!
//! These are the centralized counterparts of the distributed protocols in
//! `csp-algo`: the distributed implementations are tested against them, and
//! the paper's parameters (`V̂`, `D̂`) are defined through them.

mod bfs;
mod center;
mod components;
mod dijkstra;
mod euler;
mod mst;

pub use bfs::{bfs_tree, hop_distances};
pub use center::{eccentricities, weighted_center};
pub use components::{
    connected_components, is_connected, surviving_component, surviving_distances,
    surviving_hop_distances, Components,
};
pub use dijkstra::{distances, shortest_path, shortest_path_tree};
pub use euler::{euler_tour, mst_line, LineVertex, MstLine};
pub use mst::{kruskal_mst, prim_mst};
