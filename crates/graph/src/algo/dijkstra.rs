//! Dijkstra's algorithm: weighted distances and shortest-path trees.

use crate::graph::WeightedGraph;
use crate::ids::NodeId;
use crate::tree::RootedTree;
use crate::weight::Cost;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Weighted distances `dist(s, v, G)` from `s` to every vertex.
///
/// Unreachable vertices get [`Cost::INFINITY`].
///
/// # Example
///
/// ```
/// use csp_graph::{GraphBuilder, NodeId};
/// use csp_graph::algo::distances;
///
/// let mut b = GraphBuilder::new(3);
/// b.edge(0, 1, 2).edge(1, 2, 3).edge(0, 2, 10);
/// let g = b.build()?;
/// let d = distances(&g, NodeId::new(0));
/// assert_eq!(d[2].get(), 5); // via vertex 1, not the direct 10-edge
/// # Ok::<(), csp_graph::GraphError>(())
/// ```
///
/// # Panics
///
/// Panics if `s` is out of range.
pub fn distances(g: &WeightedGraph, s: NodeId) -> Vec<Cost> {
    g.check_node(s);
    let mut dist = vec![Cost::INFINITY; g.node_count()];
    dist[s.index()] = Cost::ZERO;
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((Cost::ZERO, s)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v.index()] {
            continue; // stale entry
        }
        for (u, _, w) in g.neighbors(v) {
            let nd = d + w;
            if nd < dist[u.index()] {
                dist[u.index()] = nd;
                heap.push(Reverse((nd, u)));
            }
        }
    }
    dist
}

/// Shortest-path tree (SPT) of `G` rooted at `s` — the tree `T_S` of the
/// paper, defined by the collection of shortest paths from `s`.
///
/// Ties are broken toward the neighbor discovered first, making the result
/// deterministic. Only the connected component of `s` is spanned.
///
/// # Panics
///
/// Panics if `s` is out of range.
pub fn shortest_path_tree(g: &WeightedGraph, s: NodeId) -> RootedTree {
    g.check_node(s);
    let mut dist = vec![Cost::INFINITY; g.node_count()];
    dist[s.index()] = Cost::ZERO;
    let mut tree = RootedTree::new(g.node_count(), s);
    let mut parent: Vec<Option<NodeId>> = vec![None; g.node_count()];
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((Cost::ZERO, s)));
    let mut settled = vec![false; g.node_count()];
    while let Some(Reverse((d, v))) = heap.pop() {
        if settled[v.index()] {
            continue;
        }
        settled[v.index()] = true;
        if let Some(p) = parent[v.index()] {
            tree.attach(v, p, g);
        }
        for (u, _, w) in g.neighbors(v) {
            let nd = d + w;
            if nd < dist[u.index()] {
                dist[u.index()] = nd;
                parent[u.index()] = Some(v);
                heap.push(Reverse((nd, u)));
            }
        }
    }
    tree
}

/// One shortest path `Path(u, v, G)` as a vertex sequence (inclusive), or
/// `None` if `v` is unreachable from `u`.
///
/// # Panics
///
/// Panics if `u` or `v` is out of range.
pub fn shortest_path(g: &WeightedGraph, u: NodeId, v: NodeId) -> Option<Vec<NodeId>> {
    g.check_node(u);
    g.check_node(v);
    let tree = shortest_path_tree(g, u);
    if !tree.contains(v) {
        return None;
    }
    let mut path = tree.path_to_root(v);
    path.reverse();
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn diamond() -> WeightedGraph {
        // 0 -1- 1 -1- 3, 0 -3- 2 -1- 3
        let mut b = GraphBuilder::new(4);
        b.edge(0, 1, 1).edge(1, 3, 1).edge(0, 2, 3).edge(2, 3, 1);
        b.build().unwrap()
    }

    #[test]
    fn distances_pick_cheapest_route() {
        let g = diamond();
        let d = distances(&g, NodeId::new(0));
        assert_eq!(d[0], Cost::ZERO);
        assert_eq!(d[1], Cost::new(1));
        assert_eq!(d[3], Cost::new(2));
        assert_eq!(d[2], Cost::new(3)); // direct edge beats 0-1-3-2 (cost 3 too, tie)
    }

    #[test]
    fn unreachable_is_infinite() {
        let mut b = GraphBuilder::new(3);
        b.edge(0, 1, 1);
        let g = b.build().unwrap();
        let d = distances(&g, NodeId::new(0));
        assert_eq!(d[2], Cost::INFINITY);
    }

    #[test]
    fn spt_depths_equal_distances() {
        let g = diamond();
        let s = NodeId::new(0);
        let t = shortest_path_tree(&g, s);
        let d = distances(&g, s);
        for v in g.nodes() {
            assert_eq!(t.depth(v), d[v.index()], "depth mismatch at {v}");
        }
        assert!(t.is_spanning());
    }

    #[test]
    fn spt_skips_unreachable() {
        let mut b = GraphBuilder::new(3);
        b.edge(0, 1, 4);
        let g = b.build().unwrap();
        let t = shortest_path_tree(&g, NodeId::new(0));
        assert!(t.contains(NodeId::new(1)));
        assert!(!t.contains(NodeId::new(2)));
    }

    #[test]
    fn shortest_path_vertices() {
        let g = diamond();
        let p = shortest_path(&g, NodeId::new(0), NodeId::new(3)).unwrap();
        assert_eq!(p, vec![NodeId::new(0), NodeId::new(1), NodeId::new(3)]);
    }

    #[test]
    fn shortest_path_none_when_disconnected() {
        let mut b = GraphBuilder::new(2);
        let g = b.edges([]).build().unwrap();
        assert!(shortest_path(&g, NodeId::new(0), NodeId::new(1)).is_none());
    }

    #[test]
    fn path_to_self_is_singleton() {
        let g = diamond();
        let p = shortest_path(&g, NodeId::new(2), NodeId::new(2)).unwrap();
        assert_eq!(p, vec![NodeId::new(2)]);
    }
}
