//! Minimum spanning trees: Prim and Kruskal.
//!
//! Ties between equal-weight edges are broken by `(weight, edge id)` so
//! that all MST routines in the workspace agree on a *unique* canonical
//! MST — this is the same trick the GHS algorithm relies on (distinct
//! weights), realized by the lexicographic key.

use crate::graph::WeightedGraph;
use crate::ids::{EdgeId, NodeId};
use crate::tree::RootedTree;
use crate::weight::Weight;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Canonical comparison key making every edge weight distinct.
#[inline]
pub(crate) fn edge_key(g: &WeightedGraph, e: EdgeId) -> (Weight, EdgeId) {
    (g.weight(e), e)
}

/// Prim's algorithm: the canonical MST of `G` rooted at `root`.
///
/// Spans the connected component of `root`. This is the sequential analog
/// of the paper's full-information algorithm `MST_centr` (Section 6.3).
///
/// # Example
///
/// ```
/// use csp_graph::{GraphBuilder, NodeId};
/// use csp_graph::algo::prim_mst;
///
/// let mut b = GraphBuilder::new(3);
/// b.edge(0, 1, 1).edge(1, 2, 2).edge(0, 2, 10);
/// let g = b.build()?;
/// let t = prim_mst(&g, NodeId::new(0));
/// assert_eq!(t.weight().get(), 3); // V̂
/// # Ok::<(), csp_graph::GraphError>(())
/// ```
///
/// # Panics
///
/// Panics if `root` is out of range.
pub fn prim_mst(g: &WeightedGraph, root: NodeId) -> RootedTree {
    g.check_node(root);
    let mut tree = RootedTree::new(g.node_count(), root);
    // Key first so `Reverse` yields a min-heap on (weight, edge id).
    type PrimEntry = Reverse<((Weight, EdgeId), NodeId, NodeId)>;
    let mut heap: BinaryHeap<PrimEntry> = BinaryHeap::new();
    let push_edges = |heap: &mut BinaryHeap<_>, v: NodeId| {
        for (u, eid, _) in g.neighbors(v) {
            heap.push(Reverse((edge_key(g, eid), u, v)));
        }
    };
    push_edges(&mut heap, root);
    while let Some(Reverse(((w, eid), u, v))) = heap.pop() {
        if tree.contains(u) {
            continue;
        }
        tree.attach_via(u, v, eid, w);
        push_edges(&mut heap, u);
    }
    tree
}

/// Kruskal's algorithm: the set of canonical-MST edge ids of `G`
/// (a minimum spanning *forest* if `G` is disconnected).
///
/// Agrees with [`prim_mst`] on connected graphs: both select exactly the
/// edges of the unique canonical MST under the `(weight, id)` order.
pub fn kruskal_mst(g: &WeightedGraph) -> Vec<EdgeId> {
    let mut edges: Vec<EdgeId> = g.edge_ids().collect();
    edges.sort_by_key(|&e| edge_key(g, e));
    let mut dsu = DisjointSets::new(g.node_count());
    let mut chosen = Vec::new();
    for e in edges {
        let (u, v) = g.edge(e).endpoints();
        if dsu.union(u.index(), v.index()) {
            chosen.push(e);
        }
    }
    chosen
}

/// Union–find with path halving and union by size.
#[derive(Clone, Debug)]
pub(crate) struct DisjointSets {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl DisjointSets {
    pub(crate) fn new(n: usize) -> Self {
        DisjointSets {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    pub(crate) fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Unions the sets of `a` and `b`; returns `false` if already joined.
    pub(crate) fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::weight::Cost;

    fn square_with_diagonal() -> WeightedGraph {
        let mut b = GraphBuilder::new(4);
        b.edge(0, 1, 1)
            .edge(1, 2, 2)
            .edge(2, 3, 3)
            .edge(3, 0, 4)
            .edge(0, 2, 5);
        b.build().unwrap()
    }

    #[test]
    fn prim_picks_lightest_spanning_set() {
        let g = square_with_diagonal();
        let t = prim_mst(&g, NodeId::new(0));
        assert!(t.is_spanning());
        assert_eq!(t.weight(), Cost::new(6)); // 1 + 2 + 3
    }

    #[test]
    fn prim_and_kruskal_agree() {
        let g = square_with_diagonal();
        let t = prim_mst(&g, NodeId::new(2));
        let mut prim_edges: Vec<EdgeId> = t.edges().map(|(_, _, e, _)| e).collect();
        prim_edges.sort();
        let mut kruskal_edges = kruskal_mst(&g);
        kruskal_edges.sort();
        assert_eq!(prim_edges, kruskal_edges);
    }

    #[test]
    fn ties_break_deterministically() {
        // all weights equal: canonical MST must be the first n-1 edges
        // that don't close a cycle, in id order.
        let mut b = GraphBuilder::new(4);
        b.edge(0, 1, 7).edge(1, 2, 7).edge(2, 0, 7).edge(2, 3, 7);
        let g = b.build().unwrap();
        let chosen = kruskal_mst(&g);
        assert_eq!(chosen, vec![EdgeId::new(0), EdgeId::new(1), EdgeId::new(3)]);
        let t = prim_mst(&g, NodeId::new(3));
        let mut prim_edges: Vec<EdgeId> = t.edges().map(|(_, _, e, _)| e).collect();
        prim_edges.sort();
        assert_eq!(prim_edges, chosen);
    }

    #[test]
    fn kruskal_on_disconnected_graph_builds_forest() {
        let mut b = GraphBuilder::new(4);
        b.edge(0, 1, 1).edge(2, 3, 2);
        let g = b.build().unwrap();
        assert_eq!(kruskal_mst(&g).len(), 2);
    }

    #[test]
    fn prim_spans_only_component_of_root() {
        let mut b = GraphBuilder::new(4);
        b.edge(0, 1, 1).edge(2, 3, 2);
        let g = b.build().unwrap();
        let t = prim_mst(&g, NodeId::new(0));
        assert!(t.contains(NodeId::new(1)));
        assert!(!t.contains(NodeId::new(2)));
    }

    #[test]
    fn disjoint_sets_basics() {
        let mut d = DisjointSets::new(4);
        assert!(d.union(0, 1));
        assert!(!d.union(1, 0));
        assert!(d.union(2, 3));
        assert_ne!(d.find(0), d.find(2));
        assert!(d.union(1, 3));
        assert_eq!(d.find(0), d.find(2));
    }
}
