//! The weighted communication graph `G = (V, E, w)`.
//!
//! [`WeightedGraph`] is an immutable undirected multigraph-free graph with
//! positive integer edge weights, stored in **CSR (compressed sparse
//! row)** form: one dense edge table plus two flat adjacency arrays —
//! `adj_off` (`n + 1` offsets) and `adj` (`2m` u32 edge ids) — instead
//! of a `Vec<Vec<EdgeId>>` per vertex. The struct-of-arrays layout costs
//! 4 bytes per vertex and 4 bytes per directed edge, makes construction
//! two counting-sort passes with no per-vertex allocation, and keeps
//! neighbor scans on one contiguous cache stream — the layout the
//! million-node tier depends on. Per-vertex incident lists keep exact
//! edge-insertion order, so iteration order (and therefore every
//! simulated protocol trace) is identical to the historical per-vertex
//! `Vec` representation.
//!
//! Construction goes through [`GraphBuilder`], which validates endpoints
//! and rejects duplicate edges and self-loops. Generators whose edge
//! streams are duplicate-free by construction can skip the duplicate
//! scan with [`GraphBuilder::build_unchecked`].

use crate::ids::{EdgeId, NodeId};
use crate::weight::{Cost, Weight};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// An undirected weighted edge.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Edge {
    /// Lower-indexed endpoint.
    u: NodeId,
    /// Higher-indexed endpoint.
    v: NodeId,
    /// Positive weight `w(e)`.
    weight: Weight,
}

impl Edge {
    /// The endpoint with the smaller index.
    #[inline]
    pub fn u(&self) -> NodeId {
        self.u
    }

    /// The endpoint with the larger index.
    #[inline]
    pub fn v(&self) -> NodeId {
        self.v
    }

    /// Both endpoints as a pair `(u, v)` with `u < v`.
    #[inline]
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        (self.u, self.v)
    }

    /// The weight `w(e)`.
    #[inline]
    pub fn weight(&self) -> Weight {
        self.weight
    }

    /// Given one endpoint, returns the other.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not an endpoint of this edge.
    #[inline]
    pub fn other(&self, x: NodeId) -> NodeId {
        if x == self.u {
            self.v
        } else if x == self.v {
            self.u
        } else {
            panic!("{x} is not an endpoint of edge ({}, {})", self.u, self.v)
        }
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}; w={})", self.u, self.v, self.weight)
    }
}

/// Errors raised while building a [`WeightedGraph`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GraphError {
    /// An edge endpoint is `>= n`.
    NodeOutOfRange {
        /// The offending endpoint index.
        node: usize,
        /// The number of nodes in the graph.
        n: usize,
    },
    /// An edge connects a vertex to itself.
    SelfLoop {
        /// The vertex with the self-loop.
        node: usize,
    },
    /// The same vertex pair was connected twice.
    DuplicateEdge {
        /// First endpoint.
        u: usize,
        /// Second endpoint.
        v: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "edge endpoint {node} out of range for {n} nodes")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
            GraphError::DuplicateEdge { u, v } => {
                write!(f, "duplicate edge between {u} and {v}")
            }
        }
    }
}

impl Error for GraphError {}

/// Builder for [`WeightedGraph`] ([C-BUILDER]).
///
/// # Example
///
/// ```
/// use csp_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.edge(0, 1, 2).edge(1, 2, 5);
/// let g = b.build()?;
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.edge_count(), 2);
/// # Ok::<(), csp_graph::GraphError>(())
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(usize, usize, u64)>,
}

impl GraphBuilder {
    /// Starts a builder for a graph on `n` vertices `0..n`.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Starts a builder with room reserved for `m` edges — the
    /// streaming generators know their edge count (or a tight bound) up
    /// front, and one reservation avoids the doubling re-allocations a
    /// million-edge push sequence would otherwise pay.
    pub fn with_edge_capacity(n: usize, m: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::with_capacity(m),
        }
    }

    /// Adds an undirected edge `{u, v}` with weight `w`.
    ///
    /// Validation is deferred to [`GraphBuilder::build`], except the weight:
    ///
    /// # Panics
    ///
    /// Panics if `w == 0`.
    pub fn edge(&mut self, u: usize, v: usize, w: u64) -> &mut Self {
        let _ = Weight::new(w); // validate eagerly for a clear panic site
        self.edges.push((u, v, w));
        self
    }

    /// Adds every edge of an iterator of `(u, v, w)` triples.
    pub fn edges<I: IntoIterator<Item = (usize, usize, u64)>>(&mut self, iter: I) -> &mut Self {
        for (u, v, w) in iter {
            self.edge(u, v, w);
        }
        self
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if an endpoint is out of range, an edge is a
    /// self-loop, or the same vertex pair appears twice.
    pub fn build(&self) -> Result<WeightedGraph, GraphError> {
        self.build_inner(true)
    }

    /// Finalizes the graph **without the duplicate-pair scan** — for
    /// edge streams that are duplicate-free by construction (every
    /// generator in [`crate::generators`] qualifies). Endpoint range and
    /// self-loop checks still run; debug builds additionally re-run the
    /// full duplicate scan, so a generator bug cannot silently produce
    /// a multigraph in tests.
    ///
    /// On a million-edge graph this skips the hash table that otherwise
    /// dominates construction time and transient memory.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if an endpoint is out of range or an edge
    /// is a self-loop.
    pub fn build_unchecked(&self) -> Result<WeightedGraph, GraphError> {
        self.build_inner(cfg!(debug_assertions))
    }

    fn build_inner(&self, check_dups: bool) -> Result<WeightedGraph, GraphError> {
        let n = self.n;
        let mut seen: HashMap<(usize, usize), ()> = if check_dups {
            HashMap::with_capacity(self.edges.len())
        } else {
            HashMap::new()
        };
        let mut edges = Vec::with_capacity(self.edges.len());
        for &(u, v, w) in &self.edges {
            if u >= n {
                return Err(GraphError::NodeOutOfRange { node: u, n });
            }
            if v >= n {
                return Err(GraphError::NodeOutOfRange { node: v, n });
            }
            if u == v {
                return Err(GraphError::SelfLoop { node: u });
            }
            let key = (u.min(v), u.max(v));
            if check_dups && seen.insert(key, ()).is_some() {
                return Err(GraphError::DuplicateEdge { u: key.0, v: key.1 });
            }
            edges.push(Edge {
                u: NodeId::new(key.0),
                v: NodeId::new(key.1),
                weight: Weight::new(w),
            });
        }
        // Directed-edge positions are u32 offsets: 2m must fit.
        assert!(
            edges.len() <= (u32::MAX / 2) as usize,
            "edge count {} exceeds the u32 CSR offset space",
            edges.len()
        );
        // CSR in two counting-sort passes: degree count + prefix sum,
        // then a stable fill in edge-insertion order (so per-vertex
        // incident order matches the historical Vec-per-vertex layout).
        let mut adj_off = vec![0u32; n + 1];
        for e in &edges {
            adj_off[e.u.index() + 1] += 1;
            adj_off[e.v.index() + 1] += 1;
        }
        for i in 0..n {
            adj_off[i + 1] += adj_off[i];
        }
        let mut cursor: Vec<u32> = adj_off[..n].to_vec();
        let mut adj = vec![EdgeId::new(0); 2 * edges.len()];
        for (i, e) in edges.iter().enumerate() {
            let eid = EdgeId::new(i);
            for v in [e.u, e.v] {
                let c = &mut cursor[v.index()];
                adj[*c as usize] = eid;
                *c += 1;
            }
        }
        Ok(WeightedGraph {
            n,
            edges,
            adj_off,
            adj,
        })
    }
}

/// An immutable undirected weighted graph `G = (V, E, w)`.
///
/// Vertices are the dense range `0..n`; edges carry positive integer
/// weights. This is the communication-graph model of the paper: the weight
/// of an edge is simultaneously the *cost* of sending one message across it
/// and its worst-case *delay*.
///
/// Adjacency is CSR: `adj[adj_off[v]..adj_off[v+1]]` are the edge ids
/// incident to `v`, in edge-insertion order (see the [module
/// docs](self) for the layout and its limits).
#[derive(Clone, Debug)]
pub struct WeightedGraph {
    n: usize,
    edges: Vec<Edge>,
    /// `n + 1` prefix offsets into [`WeightedGraph::adj`].
    adj_off: Vec<u32>,
    /// `2m` incident edge ids, grouped by vertex.
    adj: Vec<EdgeId>,
}

impl WeightedGraph {
    /// Number of vertices `n = |V|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of edges `m = |E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterates over all vertices.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n).map(NodeId::new)
    }

    /// Iterates over all edge identifiers.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len()).map(EdgeId::new)
    }

    /// Iterates over all edges.
    pub fn edges(&self) -> impl Iterator<Item = &Edge> + '_ {
        self.edges.iter()
    }

    /// The edge with the given identifier.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e.index()]
    }

    /// The weight of edge `e`.
    #[inline]
    pub fn weight(&self, e: EdgeId) -> Weight {
        self.edges[e.index()].weight
    }

    /// Edges incident to `v`, in edge-insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn incident(&self, v: NodeId) -> &[EdgeId] {
        let i = v.index();
        &self.adj[self.adj_off[i] as usize..self.adj_off[i + 1] as usize]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let i = v.index();
        (self.adj_off[i + 1] - self.adj_off[i]) as usize
    }

    /// Iterates over `(neighbor, edge id, weight)` triples around `v`.
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = (NodeId, EdgeId, Weight)> + '_ {
        self.incident(v).iter().map(move |&eid| {
            let e = &self.edges[eid.index()];
            (e.other(v), eid, e.weight)
        })
    }

    /// Looks up the edge between `u` and `v`, if any.
    pub fn edge_between(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.incident(a)
            .iter()
            .copied()
            .find(|&eid| self.edges[eid.index()].other(a) == b)
    }

    /// Heap bytes of the graph's three flat arrays (edge table, CSR
    /// offsets, CSR incident ids) — the `bytes/vertex` numerator
    /// reported by `scale_bench`. Capacity slack is excluded: this is
    /// the steady-state footprint of the layout, not of the builder.
    pub fn memory_bytes(&self) -> usize {
        self.edges.len() * std::mem::size_of::<Edge>()
            + self.adj_off.len() * std::mem::size_of::<u32>()
            + self.adj.len() * std::mem::size_of::<EdgeId>()
    }

    /// Total weight `w(G) = Σ_e w(e)` — the paper's `Ê`.
    pub fn total_weight(&self) -> Cost {
        self.edges.iter().map(|e| e.weight.to_cost()).sum()
    }

    /// Maximum edge weight `W`.
    ///
    /// Returns [`Weight::ONE`] for an edgeless graph.
    pub fn max_weight(&self) -> Weight {
        self.edges
            .iter()
            .map(|e| e.weight)
            .max()
            .unwrap_or(Weight::ONE)
    }

    /// Whether all edge weights are powers of two — a *normalized* network
    /// in the sense of Definition 4.3.
    pub fn is_normalized(&self) -> bool {
        self.edges.iter().all(|e| e.weight.is_power_of_two())
    }

    /// Returns the normalized network `Ĝ(V, E, ŵ)` of Lemma 4.5 Step 2:
    /// every weight replaced by `power(w)`, the smallest power of two ≥ w.
    pub fn normalized(&self) -> WeightedGraph {
        let mut g = self.clone();
        for e in &mut g.edges {
            e.weight = e.weight.next_power_of_two();
        }
        g
    }

    /// Builds the subgraph induced by keeping only edges satisfying `keep`,
    /// over the same vertex set.
    pub fn edge_subgraph<F: FnMut(EdgeId, &Edge) -> bool>(&self, mut keep: F) -> WeightedGraph {
        let mut b = GraphBuilder::new(self.n);
        for (i, e) in self.edges.iter().enumerate() {
            let eid = EdgeId::new(i);
            if keep(eid, e) {
                b.edge(e.u.index(), e.v.index(), e.weight.get());
            }
        }
        b.build().expect("edge subgraph of a valid graph is valid")
    }

    /// Renders the graph in Graphviz DOT format, optionally highlighting
    /// a set of edges (e.g. a spanning tree) with bold strokes.
    ///
    /// # Example
    ///
    /// ```
    /// use csp_graph::GraphBuilder;
    /// let mut b = GraphBuilder::new(2);
    /// b.edge(0, 1, 3);
    /// let g = b.build()?;
    /// let dot = g.to_dot(&[]);
    /// assert!(dot.contains("v0 -- v1"));
    /// # Ok::<(), csp_graph::GraphError>(())
    /// ```
    pub fn to_dot(&self, highlight: &[EdgeId]) -> String {
        use std::fmt::Write as _;
        let bold: std::collections::HashSet<EdgeId> = highlight.iter().copied().collect();
        let mut out = String::from("graph G {\n  node [shape=circle];\n");
        for (i, e) in self.edges.iter().enumerate() {
            let eid = EdgeId::new(i);
            let style = if bold.contains(&eid) {
                ", penwidth=3, color=black"
            } else {
                ", color=gray"
            };
            writeln!(
                out,
                "  v{} -- v{} [label=\"{}\"{}];",
                e.u.index(),
                e.v.index(),
                e.weight,
                style
            )
            .expect("writing to a String cannot fail");
        }
        out.push_str("}\n");
        out
    }

    /// Asserts that `v` is a vertex of this graph.
    ///
    /// # Panics
    ///
    /// Panics if `v.index() >= n`.
    #[inline]
    pub fn check_node(&self, v: NodeId) {
        assert!(
            v.index() < self.n,
            "{v} out of range for graph with {} nodes",
            self.n
        );
    }
}

impl fmt::Display for WeightedGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "WeightedGraph(n={}, m={}, Ê={})",
            self.n,
            self.edges.len(),
            self.total_weight()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> WeightedGraph {
        let mut b = GraphBuilder::new(3);
        b.edge(0, 1, 1).edge(1, 2, 2).edge(2, 0, 4);
        b.build().unwrap()
    }

    #[test]
    fn counts_and_weights() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.total_weight(), Cost::new(7));
        assert_eq!(g.max_weight(), Weight::new(4));
    }

    #[test]
    fn adjacency_is_symmetric() {
        let g = triangle();
        for e in g.edges() {
            let (u, v) = e.endpoints();
            assert!(g.neighbors(u).any(|(x, _, _)| x == v));
            assert!(g.neighbors(v).any(|(x, _, _)| x == u));
        }
    }

    #[test]
    fn edge_between_finds_and_misses() {
        let mut b = GraphBuilder::new(4);
        b.edge(0, 1, 1).edge(2, 3, 1);
        let g = b.build().unwrap();
        assert!(g.edge_between(NodeId::new(0), NodeId::new(1)).is_some());
        assert!(g.edge_between(NodeId::new(1), NodeId::new(0)).is_some());
        assert!(g.edge_between(NodeId::new(0), NodeId::new(2)).is_none());
    }

    #[test]
    fn builder_rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        b.edge(0, 5, 1);
        assert_eq!(
            b.build().unwrap_err(),
            GraphError::NodeOutOfRange { node: 5, n: 2 }
        );
    }

    #[test]
    fn builder_rejects_self_loop() {
        let mut b = GraphBuilder::new(2);
        b.edge(1, 1, 1);
        assert_eq!(b.build().unwrap_err(), GraphError::SelfLoop { node: 1 });
    }

    #[test]
    fn builder_rejects_duplicate_even_reversed() {
        let mut b = GraphBuilder::new(3);
        b.edge(0, 1, 1).edge(1, 0, 9);
        assert_eq!(
            b.build().unwrap_err(),
            GraphError::DuplicateEdge { u: 0, v: 1 }
        );
    }

    #[test]
    fn normalization_rounds_to_powers_of_two() {
        let mut b = GraphBuilder::new(2);
        b.edge(0, 1, 5);
        let g = b.build().unwrap();
        assert!(!g.is_normalized());
        let gn = g.normalized();
        assert!(gn.is_normalized());
        assert_eq!(gn.weight(EdgeId::new(0)), Weight::new(8));
    }

    #[test]
    fn triangle_is_already_normalized() {
        // 1, 2, 4 are all powers of two.
        assert!(triangle().is_normalized());
    }

    #[test]
    fn edge_subgraph_filters() {
        let g = triangle();
        let sub = g.edge_subgraph(|_, e| e.weight() <= Weight::new(2));
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.edge_count(), 2);
        assert_eq!(sub.total_weight(), Cost::new(3));
    }

    #[test]
    fn edge_other_endpoint() {
        let g = triangle();
        let e = g.edge(EdgeId::new(0));
        assert_eq!(e.other(NodeId::new(0)), NodeId::new(1));
        assert_eq!(e.other(NodeId::new(1)), NodeId::new(0));
    }

    #[test]
    #[should_panic(expected = "is not an endpoint")]
    fn edge_other_panics_for_non_endpoint() {
        let g = triangle();
        let _ = g.edge(EdgeId::new(0)).other(NodeId::new(2));
    }

    #[test]
    fn display_summary() {
        let g = triangle();
        assert_eq!(g.to_string(), "WeightedGraph(n=3, m=3, Ê=7)");
    }

    #[test]
    fn dot_export_highlights() {
        let g = triangle();
        let dot = g.to_dot(&[EdgeId::new(1)]);
        assert!(dot.starts_with("graph G {"));
        assert_eq!(dot.matches("penwidth=3").count(), 1);
        assert_eq!(dot.matches(" -- ").count(), 3);
        assert!(dot.contains("label=\"2\""));
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build().unwrap();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.total_weight(), Cost::ZERO);
    }

    #[test]
    fn csr_incident_order_matches_insertion_order() {
        // The CSR fill must be stable: each vertex's incident list is
        // its edges in insertion order, exactly like the historical
        // Vec-per-vertex layout (protocol traces depend on this order).
        let mut b = GraphBuilder::new(5);
        b.edge(0, 1, 1)
            .edge(2, 0, 2)
            .edge(3, 4, 3)
            .edge(0, 3, 4)
            .edge(1, 2, 5);
        let g = b.build().unwrap();
        let mut reference = vec![Vec::new(); 5];
        for (i, e) in g.edges().enumerate() {
            reference[e.u().index()].push(EdgeId::new(i));
            reference[e.v().index()].push(EdgeId::new(i));
        }
        for v in g.nodes() {
            assert_eq!(g.incident(v), reference[v.index()].as_slice(), "{v}");
            assert_eq!(g.degree(v), reference[v.index()].len());
        }
    }

    #[test]
    fn build_unchecked_matches_checked_build() {
        let mut b = GraphBuilder::new(4);
        b.edge(0, 1, 3).edge(1, 2, 1).edge(2, 3, 2).edge(3, 0, 9);
        let checked = b.build().unwrap();
        let fast = b.build_unchecked().unwrap();
        assert_eq!(fast.node_count(), checked.node_count());
        assert_eq!(fast.edge_count(), checked.edge_count());
        for v in fast.nodes() {
            assert_eq!(fast.incident(v), checked.incident(v));
        }
    }

    #[test]
    fn build_unchecked_still_validates_range_and_loops() {
        let mut b = GraphBuilder::new(2);
        b.edge(0, 7, 1);
        assert_eq!(
            b.build_unchecked().unwrap_err(),
            GraphError::NodeOutOfRange { node: 7, n: 2 }
        );
        let mut b = GraphBuilder::new(2);
        b.edge(1, 1, 1);
        assert_eq!(
            b.build_unchecked().unwrap_err(),
            GraphError::SelfLoop { node: 1 }
        );
    }

    #[test]
    fn memory_bytes_counts_the_flat_arrays() {
        let g = triangle();
        // 3 edges × 16 B + 4 offsets × 4 B + 6 incident ids × 4 B.
        let expected = 3 * std::mem::size_of::<Edge>() + 4 * 4 + 6 * 4;
        assert_eq!(g.memory_bytes(), expected);
    }
}
