#![deny(missing_docs)]

//! Weighted-graph substrate for cost-sensitive protocol analysis.
//!
//! This crate provides everything the distributed layer (`csp-sim`,
//! `csp-sync`, `csp-algo`) needs from graph theory:
//!
//! * [`WeightedGraph`] — an undirected weighted communication graph
//!   `G = (V, E, w)` with integer weights, built through [`GraphBuilder`];
//! * [`generators`] — deterministic and seeded workload families, including
//!   the lower-bound family `G_n` of the paper's Figure 7;
//! * [`algo`] — sequential reference algorithms (Dijkstra, Prim, Kruskal,
//!   BFS, connected components, Euler tours);
//! * [`params`] — the paper's weighted complexity parameters
//!   `Ê` (total weight), `V̂` (MST weight), `D̂` (weighted diameter),
//!   `d` (max neighbor distance) and `W` (max weight);
//! * [`cover`] — clusters, covers and the cover-coarsening construction of
//!   Awerbuch–Peleg (Theorem 1.1 of the paper), plus tree edge-covers
//!   (Definition 3.1);
//! * [`slt`] — the shallow-light tree construction of Section 2.2.
//!
//! # Example
//!
//! ```
//! use csp_graph::GraphBuilder;
//! use csp_graph::params::CostParams;
//!
//! let mut b = GraphBuilder::new(4);
//! b.edge(0, 1, 3).edge(1, 2, 1).edge(2, 3, 2).edge(3, 0, 10);
//! let g = b.build().expect("valid graph");
//! let params = CostParams::of(&g);
//! assert_eq!(params.total_weight.get(), 16);   // Ê
//! assert_eq!(params.mst_weight.get(), 6);      // V̂ (drops the 10-edge)
//! ```

pub mod algo;
pub mod cover;
pub mod generators;
pub mod graph;
pub mod ids;
pub mod io;
pub mod params;
pub mod slt;
pub mod tree;
pub mod weight;

pub use cover::{CutStats, ShardPlan};
pub use graph::{Edge, GraphBuilder, GraphError, WeightedGraph};
pub use ids::{EdgeId, NodeId, MAX_INDEX};
pub use tree::RootedTree;
pub use weight::{Cost, Weight};
