//! Workload graph families.
//!
//! Deterministic constructions (paths, cycles, grids, the paper's
//! lower-bound family of Figure 7) plus seeded random families. Every
//! random generator takes an explicit seed, so benchmark workloads are
//! reproducible.
//!
//! # The million-node tier
//!
//! The random families come in two regimes:
//!
//! * **Dense** (small `n`): the historical per-pair loops, kept
//!   bit-stable because committed adversary schedules and witnesses
//!   reference graphs by `(n, p, dist, seed)`.
//! * **Streaming** (large `n`): [`connected_gnp_streaming`] draws the
//!   sparse `G(n, p)` edge set by *geometric skip sampling* — one
//!   uniform draw per accepted edge instead of one coin per vertex
//!   pair — so generation is `O(n + m)` rather than `O(n²)`, and the
//!   edge stream goes straight into a pre-reserved
//!   [`GraphBuilder::build_unchecked`] build (the stream is
//!   duplicate-free by construction). `n = 10⁶` at expected degree 8
//!   generates in about a second.
//!
//! [`connected_gnp`] dispatches between the two on
//! [`GNP_STREAMING_THRESHOLD`]; below it the dense loop runs
//! unchanged, which `tests/generator_streaming.rs` pins seed-for-seed
//! against the retained [`connected_gnp_dense`] reference.

use crate::graph::{GraphBuilder, WeightedGraph};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashSet;

/// How edge weights are drawn in random generators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WeightDist {
    /// Every edge gets the same weight.
    Constant(u64),
    /// Uniform in `lo..=hi`.
    Uniform(u64, u64),
    /// `2^k` with `k` uniform in `0..=max_exp` (normalized networks).
    PowerOfTwo(u32),
}

impl WeightDist {
    fn sample(self, rng: &mut StdRng) -> u64 {
        match self {
            WeightDist::Constant(w) => w.max(1),
            WeightDist::Uniform(lo, hi) => rng.random_range(lo.max(1)..=hi.max(lo.max(1))),
            WeightDist::PowerOfTwo(max_exp) => 1u64 << rng.random_range(0..=max_exp),
        }
    }
}

/// Path `0 − 1 − … − (n−1)` with the given weights per position.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn path(n: usize, weight: impl Fn(usize) -> u64) -> WeightedGraph {
    assert!(n > 0, "path needs at least one vertex");
    let mut b = GraphBuilder::new(n);
    for i in 0..n.saturating_sub(1) {
        b.edge(i, i + 1, weight(i));
    }
    b.build().expect("path construction is valid")
}

/// Cycle on `n ≥ 3` vertices.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize, weight: impl Fn(usize) -> u64) -> WeightedGraph {
    assert!(n >= 3, "cycle needs at least three vertices");
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        b.edge(i, (i + 1) % n, weight(i));
    }
    b.build().expect("cycle construction is valid")
}

/// Star with center `0` and `n−1` leaves.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn star(n: usize, weight: impl Fn(usize) -> u64) -> WeightedGraph {
    assert!(n > 0, "star needs at least one vertex");
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.edge(0, i, weight(i));
    }
    b.build().expect("star construction is valid")
}

/// Complete graph `K_n`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn complete(n: usize, weight: impl Fn(usize, usize) -> u64) -> WeightedGraph {
    assert!(n > 0, "complete graph needs at least one vertex");
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            b.edge(i, j, weight(i, j));
        }
    }
    b.build().expect("complete construction is valid")
}

/// `rows × cols` grid with seeded random weights.
///
/// # Panics
///
/// Panics if `rows == 0 || cols == 0`.
pub fn grid(rows: usize, cols: usize, dist: WeightDist, seed: u64) -> WeightedGraph {
    assert!(rows > 0 && cols > 0, "grid needs positive dimensions");
    let mut rng = StdRng::seed_from_u64(seed);
    let id = |r: usize, c: usize| r * cols + c;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.edge(id(r, c), id(r, c + 1), dist.sample(&mut rng));
            }
            if r + 1 < rows {
                b.edge(id(r, c), id(r + 1, c), dist.sample(&mut rng));
            }
        }
    }
    b.build().expect("grid construction is valid")
}

/// Largest `n` for which [`connected_gnp`] still runs the dense
/// per-pair loop. Committed schedules and witnesses all live far below
/// this bound, so their graphs are bit-stable; anything above it takes
/// the `O(n + m)` streaming path.
pub const GNP_STREAMING_THRESHOLD: usize = 2048;

/// The shared backbone of both gnp regimes: a uniform-attachment random
/// spanning tree, drawn with exactly the legacy draw order (parent
/// index, then weight, per vertex) so the two regimes consume an
/// identical RNG prefix. Returns the tree's vertex pairs.
fn attach_random_tree(
    b: &mut GraphBuilder,
    n: usize,
    dist: WeightDist,
    rng: &mut StdRng,
) -> HashSet<(usize, usize)> {
    let mut tree_pairs = HashSet::new();
    let mut in_tree = vec![0usize]; // random attachment tree
    for v in 1..n {
        let parent = in_tree[rng.random_range(0..in_tree.len())];
        b.edge(v, parent, dist.sample(rng));
        tree_pairs.insert((parent.min(v), parent.max(v)));
        in_tree.push(v);
    }
    tree_pairs
}

/// Connected Erdős–Rényi-style graph: a random spanning tree plus each
/// remaining pair independently with probability `p`.
///
/// The random-tree backbone guarantees connectivity (the paper's protocols
/// assume a connected network).
///
/// Dispatches on [`GNP_STREAMING_THRESHOLD`]: up to it, the historical
/// dense loop ([`connected_gnp_dense`]) runs bit-for-bit, keeping every
/// committed schedule and witness valid; above it, the `O(n + m)`
/// streaming sampler ([`connected_gnp_streaming`]) takes over.
///
/// # Panics
///
/// Panics if `n == 0` or `p` is not in `[0, 1]`.
pub fn connected_gnp(n: usize, p: f64, dist: WeightDist, seed: u64) -> WeightedGraph {
    if n <= GNP_STREAMING_THRESHOLD {
        connected_gnp_dense(n, p, dist, seed)
    } else {
        connected_gnp_streaming(n, p, dist, seed)
    }
}

/// The legacy dense `G(n, p)` generator: one coin flip per non-tree
/// vertex pair, `O(n²)` time. Retained verbatim as the seed-for-seed
/// reference the dispatching [`connected_gnp`] is differentially tested
/// against — use [`connected_gnp`] everywhere else.
///
/// # Panics
///
/// Panics if `n == 0` or `p` is not in `[0, 1]`.
pub fn connected_gnp_dense(n: usize, p: f64, dist: WeightDist, seed: u64) -> WeightedGraph {
    assert!(n > 0, "connected_gnp needs at least one vertex");
    assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    let tree_pairs = attach_random_tree(&mut b, n, dist, &mut rng);
    for u in 0..n {
        for v in (u + 1)..n {
            if tree_pairs.contains(&(u, v)) {
                continue;
            }
            if rng.random_bool(p) {
                b.edge(u, v, dist.sample(&mut rng));
            }
        }
    }
    b.build().expect("gnp construction is valid")
}

/// The lexicographic rank of pair `(i, j)`, `i < j`, in the strictly
/// upper triangle of an `n × n` matrix: row `i` starts at
/// `i·(2n − i − 1)/2`.
#[inline]
fn pair_rank_start(i: u64, n: u64) -> u64 {
    i * (2 * n - i - 1) / 2
}

/// Inverse of [`pair_rank_start`]: the pair at rank `k`. The row index
/// comes from the quadratic formula in `f64` (exact well past n = 10⁸
/// since ranks stay below 2⁵³), then two correction loops absorb any
/// last-bit rounding.
fn unrank_pair(k: u64, n: u64) -> (usize, usize) {
    let nf = n as f64 - 0.5;
    let mut i = (nf - (nf * nf - 2.0 * k as f64).max(0.0).sqrt()) as u64;
    i = i.min(n - 2);
    while i > 0 && pair_rank_start(i, n) > k {
        i -= 1;
    }
    while i < n - 2 && pair_rank_start(i + 1, n) <= k {
        i += 1;
    }
    let j = i + 1 + (k - pair_rank_start(i, n));
    (i as usize, j as usize)
}

/// Streaming `G(n, p)` over the random-tree backbone: instead of one
/// coin per pair, draws the *gap* to the next present edge from the
/// geometric distribution (inverse-CDF on one uniform), touching only
/// the `≈ p·n(n−1)/2` accepted pairs. Tree pairs hit by the skip chain
/// are discarded, which leaves every non-tree pair at probability `p`
/// exactly as in the dense loop (tree pairs flip no coin there either).
///
/// Same distribution as [`connected_gnp_dense`], different realization
/// for a given seed (the two consume the RNG stream differently past
/// the shared tree prefix). The tree phase *is* seed-for-seed identical
/// — the first `n − 1` edges of both generators agree bit for bit.
///
/// # Panics
///
/// Panics if `n == 0` or `p` is not in `[0, 1]`.
pub fn connected_gnp_streaming(n: usize, p: f64, dist: WeightDist, seed: u64) -> WeightedGraph {
    assert!(n > 0, "connected_gnp needs at least one vertex");
    assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let total_pairs = if n < 2 {
        0
    } else {
        pair_rank_start(n as u64 - 1, n as u64)
    };
    let expected_extra = (p * total_pairs as f64).ceil() as usize;
    let mut b = GraphBuilder::with_edge_capacity(n, n - 1 + expected_extra);
    let tree_pairs = attach_random_tree(&mut b, n, dist, &mut rng);
    if p >= 1.0 {
        // Degenerate complete graph: every pair is present anyway.
        for u in 0..n {
            for v in (u + 1)..n {
                if !tree_pairs.contains(&(u, v)) {
                    b.edge(u, v, dist.sample(&mut rng));
                }
            }
        }
    } else if p > 0.0 {
        let ln_q = (1.0 - p).ln(); // < 0
        let mut k = 0u64; // rank of the next candidate pair
        while k < total_pairs {
            // Geometric gap: failures before the next success.
            let skip = ((1.0 - rng.random_unit_f64()).ln() / ln_q).floor();
            if !skip.is_finite() || skip >= (total_pairs - k) as f64 {
                break;
            }
            k += skip as u64;
            let (u, v) = unrank_pair(k, n as u64);
            if !tree_pairs.contains(&(u, v)) {
                b.edge(u, v, dist.sample(&mut rng));
            }
            k += 1;
        }
    }
    b.build_unchecked().expect("gnp construction is valid")
}

/// The lower-bound family `G_n` of Figure 7 (Section 7.1).
///
/// Vertices `0..n` (the paper's `1..=n` shifted down). Edges:
///
/// * the *path* `E_p = {(i, i+1)}` with weight `x`,
/// * the *bypassing* edges `E_b = {(i, n−1−i) : i < n/2}` with weight
///   `x⁴` (the paper's `X` vs `X⁴` with `X > n`).
///
/// The MST is the path alone, so `V̂ = (n−1)·x`, while using even one
/// bypass edge costs `x⁴`. Any correct spanning-tree algorithm must spend
/// `Ω(n·V̂)` communication on this family.
///
/// # Panics
///
/// Panics if `n < 4` or `x < 2`, where the construction degenerates,
/// or if `x⁴` overflows `u64` (`x ≥ 2¹⁶` — see [`heavy_bypass_weight`]).
pub fn lower_bound_family(n: usize, x: u64) -> WeightedGraph {
    assert!(n >= 4, "lower-bound family needs n >= 4");
    assert!(x >= 2, "lower-bound family needs x >= 2");
    let heavy = heavy_bypass_weight(x);
    let mut b = GraphBuilder::with_edge_capacity(n, n - 1 + n / 2);
    for i in 0..n - 1 {
        b.edge(i, i + 1, x);
    }
    for i in 0..n / 2 {
        let j = n - 1 - i;
        if j != i && j != i + 1 && (i == 0 || j != i - 1) {
            b.edge(i, j, heavy);
        }
    }
    b.build_unchecked()
        .expect("lower-bound construction is valid")
}

/// The bypass weight `x⁴` of the lower-bound family, with overflow
/// checked: `saturating_mul` here used to silently flatten every bypass
/// to `u64::MAX` for `x ≥ 2¹⁶`, which breaks the family's
/// `V̂ = (n−1)·x ≪ x⁴` cost separation without any signal.
///
/// # Panics
///
/// Panics if `x⁴ > u64::MAX`, i.e. `x ≥ 2¹⁶ = 65536`.
pub fn heavy_bypass_weight(x: u64) -> u64 {
    x.checked_pow(4).unwrap_or_else(|| {
        panic!(
            "lower-bound family weight x⁴ overflows u64 for x = {x}; \
             the largest admissible x is 65535"
        )
    })
}

/// The adversarial split `G'_{n,i}` of Figure 8: `G_n` with bypass edge
/// `(i, n−1−i)` replaced by two pendant edges `(i, v)` and `(n−1−i, w)` to
/// fresh vertices `v = n`, `w = n+1`, with the same heavy weight.
///
/// In the paper's indistinguishability argument, a protocol that never
/// communicates across bypass edges cannot tell `G_n` from `G'_{n,i}`
/// and therefore strands `v` and `w` outside the spanning tree.
///
/// # Panics
///
/// Panics if `n < 4`, `x < 2`, `i ≥ n/2` (no such bypass edge), or if
/// `x⁴` overflows `u64`.
pub fn lower_bound_split(n: usize, x: u64, i: usize) -> WeightedGraph {
    assert!(n >= 4 && x >= 2, "invalid lower-bound parameters");
    assert!(i < n / 2, "bypass index out of range");
    let heavy = heavy_bypass_weight(x);
    let j = n - 1 - i;
    let mut b = GraphBuilder::new(n + 2);
    for k in 0..n - 1 {
        b.edge(k, k + 1, x);
    }
    for k in 0..n / 2 {
        let l = n - 1 - k;
        if l == k || l == k + 1 || (k > 0 && l == k - 1) {
            continue;
        }
        if k == i {
            b.edge(i, n, heavy); // (i, v)
            b.edge(j, n + 1, heavy); // (n−1−i, w)
        } else {
            b.edge(k, l, heavy);
        }
    }
    b.build().expect("split construction is valid")
}

/// A family where `d ≪ W`: a light cycle (weight 1 edges) plus heavy
/// chords of weight `heavy` connecting antipodal vertices.
///
/// Every chord's endpoints are at light-cycle distance `≤ n/2`, so
/// `d ≤ n/2` while `W = heavy` can be arbitrarily larger — the regime
/// where clock synchronizer γ\* beats α\* (Section 3).
///
/// # Panics
///
/// Panics if `n < 4`.
pub fn heavy_chord_cycle(n: usize, heavy: u64) -> WeightedGraph {
    assert!(n >= 4, "heavy_chord_cycle needs n >= 4");
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        b.edge(i, (i + 1) % n, 1);
    }
    for i in 0..n / 2 {
        let j = i + n / 2;
        if j < n && j != (i + 1) % n && (i + n - 1) % n != j {
            b.edge(i, j, heavy.max(1));
        }
    }
    b.build().expect("heavy chord construction is valid")
}

/// A family where `Ê ≪ n·V̂`: a heavy spanning path plus a few light
/// chords. Here flooding/DFS (cost `O(Ê)`) beats the full-information
/// algorithms (cost `O(n·V̂)`).
///
/// # Panics
///
/// Panics if `n < 4`.
pub fn sparse_heavy_path(n: usize, heavy: u64, seed: u64) -> WeightedGraph {
    assert!(n >= 4, "sparse_heavy_path needs n >= 4");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for i in 0..n - 1 {
        b.edge(i, i + 1, heavy.max(2));
    }
    // a handful of light chords (n/4 of them)
    let mut used = std::collections::HashSet::new();
    let mut added = 0;
    while added < n / 4 {
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u == v || u.abs_diff(v) == 1 {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if used.insert(key) {
            b.edge(key.0, key.1, 1);
            added += 1;
        }
    }
    b.build().expect("sparse heavy path construction is valid")
}

/// The `dim`-dimensional hypercube `Q_dim` (`2^dim` vertices) — the
/// topology of the Peleg–Ullman optimal synchronizer \[PU89], cited in
/// Section 1.4.3. Edge weights drawn from `dist`.
///
/// # Panics
///
/// Panics if `dim == 0` or `dim > 16`.
pub fn hypercube(dim: u32, dist: WeightDist, seed: u64) -> WeightedGraph {
    assert!(
        (1..=16).contains(&dim),
        "hypercube dimension must be 1..=16"
    );
    let n = 1usize << dim;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for bit in 0..dim {
            let u = v ^ (1 << bit);
            if v < u {
                b.edge(v, u, dist.sample(&mut rng));
            }
        }
    }
    b.build().expect("hypercube construction is valid")
}

/// A `rows × cols` torus (grid with wraparound) — every vertex has
/// degree 4, the classic low-diameter mesh.
///
/// # Panics
///
/// Panics if `rows < 3 || cols < 3` (smaller wraps create duplicate
/// edges).
pub fn torus(rows: usize, cols: usize, dist: WeightDist, seed: u64) -> WeightedGraph {
    assert!(rows >= 3 && cols >= 3, "torus needs at least 3×3");
    let mut rng = StdRng::seed_from_u64(seed);
    let id = |r: usize, c: usize| r * cols + c;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            b.edge(id(r, c), id(r, (c + 1) % cols), dist.sample(&mut rng));
            b.edge(id(r, c), id((r + 1) % rows, c), dist.sample(&mut rng));
        }
    }
    b.build().expect("torus construction is valid")
}

/// A random tree on `n` vertices (uniform attachment), the minimal
/// connected workload: `Ê = V̂` and every algorithm's frugal path.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_tree(n: usize, dist: WeightDist, seed: u64) -> WeightedGraph {
    assert!(n > 0, "random tree needs at least one vertex");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        let parent = rng.random_range(0..v);
        b.edge(v, parent, dist.sample(&mut rng));
    }
    b.build().expect("random tree construction is valid")
}

/// Clustered graph: `k` dense clusters of `size` vertices with light
/// intra-cluster edges, connected by a sparse ring of heavy inter-cluster
/// edges. Exercises cover/partition quality.
///
/// Already `O(n)` per vertex, so the large-`n` tier only needed the
/// chunked build: the edge stream is duplicate-free by construction and
/// pre-sized, so it takes [`GraphBuilder::build_unchecked`] straight
/// through (output is bit-identical to the historical checked build).
///
/// # Panics
///
/// Panics if `clusters == 0 || size == 0`.
pub fn cluster_graph(clusters: usize, size: usize, heavy: u64, seed: u64) -> WeightedGraph {
    assert!(
        clusters > 0 && size > 0,
        "cluster graph needs positive sizes"
    );
    let n = clusters * size;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_edge_capacity(n, n + 2 * clusters);
    for c in 0..clusters {
        let base = c * size;
        // intra-cluster: ring + random chords, weight 1..=3
        for i in 0..size.saturating_sub(1) {
            b.edge(base + i, base + i + 1, rng.random_range(1..=3));
        }
        if size >= 3 {
            b.edge(base, base + size - 1, rng.random_range(1..=3));
        }
    }
    if clusters > 1 {
        for c in 0..clusters {
            let next = (c + 1) % clusters;
            if clusters == 2 && c == 1 {
                break; // avoid duplicating the single connecting edge
            }
            b.edge(c * size, next * size, heavy.max(1));
        }
    }
    b.build_unchecked().expect("cluster construction is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::is_connected;
    use crate::params::CostParams;
    use crate::weight::Cost;

    #[test]
    fn path_cycle_star_complete_shapes() {
        assert_eq!(path(5, |_| 2).edge_count(), 4);
        assert_eq!(cycle(5, |_| 2).edge_count(), 5);
        assert_eq!(star(5, |_| 2).edge_count(), 4);
        assert_eq!(complete(5, |_, _| 2).edge_count(), 10);
    }

    #[test]
    fn grid_is_connected() {
        let g = grid(4, 5, WeightDist::Uniform(1, 9), 7);
        assert_eq!(g.node_count(), 20);
        assert_eq!(g.edge_count(), 4 * 4 + 3 * 5); // rows*(cols-1) + (rows-1)*cols
        assert!(is_connected(&g));
    }

    #[test]
    fn gnp_is_connected_and_deterministic() {
        let g1 = connected_gnp(30, 0.1, WeightDist::Uniform(1, 16), 42);
        let g2 = connected_gnp(30, 0.1, WeightDist::Uniform(1, 16), 42);
        assert!(is_connected(&g1));
        assert_eq!(g1.edge_count(), g2.edge_count());
        let w1: Vec<u64> = g1.edges().map(|e| e.weight().get()).collect();
        let w2: Vec<u64> = g2.edges().map(|e| e.weight().get()).collect();
        assert_eq!(w1, w2);
    }

    #[test]
    fn gnp_different_seeds_differ() {
        let g1 = connected_gnp(30, 0.3, WeightDist::Uniform(1, 1000), 1);
        let g2 = connected_gnp(30, 0.3, WeightDist::Uniform(1, 1000), 2);
        let w1: Vec<u64> = g1.edges().map(|e| e.weight().get()).collect();
        let w2: Vec<u64> = g2.edges().map(|e| e.weight().get()).collect();
        assert_ne!(w1, w2);
    }

    #[test]
    fn power_of_two_dist_is_normalized() {
        let g = connected_gnp(20, 0.2, WeightDist::PowerOfTwo(6), 5);
        assert!(g.is_normalized());
    }

    #[test]
    fn lower_bound_family_matches_figure_7() {
        // Figure 7: n = 9 — path of 8 edges + bypasses (1,9),(2,8),(3,7)
        // (1-indexed); (4,6) is skipped because 6 = 4+2... in 0-indexed
        // terms bypass (i, 8-i) for i in 0..4 subject to adjacency rules.
        let g = lower_bound_family(9, 3);
        let p = CostParams::of(&g);
        // MST is the path alone: V̂ = 8 * 3 = 24.
        assert_eq!(p.mst_weight, Cost::new(24));
        // every bypass edge has weight 81*... x^4 = 81
        assert_eq!(p.max_weight.get(), 81);
        assert!(is_connected(&g));
    }

    #[test]
    fn lower_bound_mst_is_the_path() {
        let g = lower_bound_family(12, 5);
        let mst = crate::algo::prim_mst(&g, crate::NodeId::new(0));
        assert!(mst.is_spanning());
        assert_eq!(mst.weight(), Cost::new(11 * 5));
        // all MST edges are path edges (weight 5)
        for (_, _, _, w) in mst.edges() {
            assert_eq!(w.get(), 5);
        }
    }

    #[test]
    fn lower_bound_split_adds_two_pendants() {
        let g = lower_bound_family(10, 3);
        let gs = lower_bound_split(10, 3, 1);
        assert_eq!(gs.node_count(), 12);
        assert_eq!(gs.edge_count(), g.edge_count() + 1); // one bypass became two pendants
        assert!(is_connected(&gs));
    }

    #[test]
    fn heavy_chord_cycle_has_small_d_large_w() {
        let g = heavy_chord_cycle(16, 1_000);
        let p = CostParams::of(&g);
        assert_eq!(p.max_weight.get(), 1_000);
        assert!(p.max_neighbor_distance <= Cost::new(8)); // around the light cycle
    }

    #[test]
    fn sparse_heavy_path_regime() {
        let g = sparse_heavy_path(32, 1_000, 3);
        let p = CostParams::of(&g);
        // Ê ≈ 31 heavy + few light; n·V̂ ≥ 32 * 31 * ~1 — need Ê < n·V̂.
        let nv = p.mst_weight * p.n as u128;
        assert!(
            p.total_weight < nv,
            "expected Ê ({}) < n·V̂ ({nv})",
            p.total_weight
        );
    }

    #[test]
    fn cluster_graph_is_connected() {
        let g = cluster_graph(4, 6, 50, 11);
        assert_eq!(g.node_count(), 24);
        assert!(is_connected(&g));
    }

    #[test]
    #[should_panic(expected = "n >= 4")]
    fn lower_bound_rejects_tiny_n() {
        let _ = lower_bound_family(3, 5);
    }

    #[test]
    #[should_panic(expected = "overflows u64 for x = 65536")]
    fn lower_bound_family_panics_on_x4_overflow() {
        // saturating_mul used to flatten this silently to u64::MAX.
        let _ = lower_bound_family(8, 1 << 16);
    }

    #[test]
    #[should_panic(expected = "overflows u64")]
    fn lower_bound_split_panics_on_x4_overflow() {
        let _ = lower_bound_split(8, 1 << 16, 1);
    }

    #[test]
    fn heavy_bypass_weight_admits_the_largest_x() {
        // 65535⁴ is the largest representable bypass weight.
        assert_eq!(heavy_bypass_weight(65535), 65535u64.pow(4));
        assert_eq!(heavy_bypass_weight(10), 10_000);
    }

    #[test]
    fn unrank_pair_inverts_the_rank_everywhere() {
        for n in [2u64, 3, 5, 17, 100] {
            let mut k = 0;
            for i in 0..n - 1 {
                for j in i + 1..n {
                    assert_eq!(
                        unrank_pair(k, n),
                        (i as usize, j as usize),
                        "rank {k} of n={n}"
                    );
                    k += 1;
                }
            }
            assert_eq!(k, pair_rank_start(n - 1, n));
        }
        // Spot-check the f64 row inversion at million-node scale.
        let n = 1_000_000u64;
        for k in [0, 1, 999_998, 999_999, pair_rank_start(n - 1, n) - 1] {
            let (i, j) = unrank_pair(k, n);
            assert!(i < j && j < n as usize);
            let back = pair_rank_start(i as u64, n) + (j as u64 - i as u64 - 1);
            assert_eq!(back, k);
        }
    }

    #[test]
    fn streaming_gnp_shares_the_tree_backbone_with_dense() {
        // Identical RNG prefix: the first n−1 edges (the attachment
        // tree) of both regimes agree bit for bit for the same seed.
        let (n, p, dist, seed) = (64, 0.1, WeightDist::Uniform(1, 50), 17);
        let dense = connected_gnp_dense(n, p, dist, seed);
        let streaming = connected_gnp_streaming(n, p, dist, seed);
        let tree = |g: &WeightedGraph| {
            g.edges()
                .take(n - 1)
                .map(|e| (e.u(), e.v(), e.weight()))
                .collect::<Vec<_>>()
        };
        assert_eq!(tree(&dense), tree(&streaming));
    }

    #[test]
    fn streaming_gnp_is_connected_and_deterministic() {
        let g1 = connected_gnp_streaming(500, 0.01, WeightDist::Uniform(1, 16), 42);
        let g2 = connected_gnp_streaming(500, 0.01, WeightDist::Uniform(1, 16), 42);
        assert!(is_connected(&g1));
        assert_eq!(g1.edge_count(), g2.edge_count());
        let w1: Vec<u64> = g1.edges().map(|e| e.weight().get()).collect();
        let w2: Vec<u64> = g2.edges().map(|e| e.weight().get()).collect();
        assert_eq!(w1, w2);
        // Expected extras ≈ p·n(n−1)/2 ≈ 1248; allow a wide band.
        let extras = g1.edge_count() - 499;
        assert!((600..2200).contains(&extras), "extras = {extras}");
    }

    #[test]
    fn streaming_gnp_handles_probability_extremes() {
        let g0 = connected_gnp_streaming(40, 0.0, WeightDist::Constant(2), 3);
        assert_eq!(g0.edge_count(), 39); // tree only
        let g1 = connected_gnp_streaming(10, 1.0, WeightDist::Constant(2), 3);
        assert_eq!(g1.edge_count(), 45); // complete
        assert!(is_connected(&g1));
    }

    #[test]
    fn dispatching_gnp_is_bit_identical_to_dense_below_threshold() {
        for seed in 0..4 {
            let a = connected_gnp(33, 0.2, WeightDist::Uniform(1, 9), seed);
            let b = connected_gnp_dense(33, 0.2, WeightDist::Uniform(1, 9), seed);
            let ea: Vec<_> = a.edges().map(|e| (e.u(), e.v(), e.weight())).collect();
            let eb: Vec<_> = b.edges().map(|e| (e.u(), e.v(), e.weight())).collect();
            assert_eq!(ea, eb);
        }
    }

    #[test]
    fn hypercube_has_the_right_shape() {
        let g = hypercube(4, WeightDist::Constant(2), 0);
        assert_eq!(g.node_count(), 16);
        assert_eq!(g.edge_count(), 4 * 16 / 2);
        assert!(is_connected(&g));
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4);
        }
    }

    #[test]
    fn torus_is_four_regular_and_connected() {
        let g = torus(4, 5, WeightDist::Uniform(1, 7), 3);
        assert_eq!(g.node_count(), 20);
        assert_eq!(g.edge_count(), 2 * 20);
        assert!(is_connected(&g));
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4);
        }
    }

    #[test]
    fn random_tree_has_n_minus_one_edges() {
        let g = random_tree(30, WeightDist::Uniform(1, 9), 5);
        assert_eq!(g.edge_count(), 29);
        assert!(is_connected(&g));
        let p = CostParams::of(&g);
        assert_eq!(p.total_weight, p.mst_weight); // a tree is its own MST
    }

    #[test]
    fn hypercube_diameter_is_dimension_for_unit_weights() {
        let g = hypercube(5, WeightDist::Constant(1), 0);
        let p = CostParams::of(&g);
        assert_eq!(p.hop_diameter, 5);
        assert_eq!(p.weighted_diameter, Cost::new(5));
    }
}
