//! Fault-injection suite: committed drop-schedule witnesses, the
//! retransmission layer's differential guarantee under bounded loss,
//! and deadlock *detection* (rather than a hang) when loss hits an
//! unprotected protocol.
//!
//! The committed schedules under the workspace's `tests/schedules/`
//! were produced by `cargo run --release --example fault_injection`
//! (see that example for the construction); this suite replays them
//! and pins the delay-vs-drop gap.

use csp_adversary::{replay, replay_report, Schedule, ScheduleOracle};
use csp_algo::flood::Flood;
use csp_algo::resilient::{contract_violation, Metric, Resilient, ResilientOutcome};
use csp_algo::spt::recur::SptRecur;
use csp_algo::termination::Detector;
use csp_graph::generators::{self, WeightDist};
use csp_graph::{EdgeId, NodeId, Weight, WeightedGraph};
use csp_sim::{
    ChurnOracle, CoreKind, CrashOracle, DelayModel, Detect, DetectConfig, DropOracle, ModelOracle,
    Reliable, Run, ShardedSimulator, SimTime, Simulator,
};
use proptest::prelude::*;
use std::path::PathBuf;

fn schedule_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/schedules")
}

/// The instance both committed witnesses run on.
fn gnp_n12() -> WeightedGraph {
    generators::connected_gnp(12, 0.3, WeightDist::Uniform(1, 16), 42)
}

fn make_reliable_spt(v: NodeId, _: &WeightedGraph) -> Reliable<SptRecur> {
    Reliable::new(SptRecur::new(v, NodeId::new(0), 1 << 40), 3)
}

#[test]
fn committed_drop_witness_beats_the_best_delay_only_schedule() {
    let g = gnp_n12();
    let delay_only =
        Schedule::load(&schedule_dir().join("reliable-spt-recur-gnp-n12.schedule")).unwrap();
    let faulty = Schedule::load(&schedule_dir().join("fault-spt-recur-gnp-n12.schedule")).unwrap();
    assert_eq!(delay_only.dropped_count(), 0);
    assert!(faulty.dropped_count() > 0, "the fault witness must drop");

    let clean: Run<Reliable<SptRecur>> = replay(&g, make_reliable_spt, &delay_only);
    let (lossy, report) = replay_report::<Reliable<SptRecur>, _>(&g, make_reliable_spt, &faulty);
    assert!(
        lossy.cost.completion > clean.cost.completion,
        "injected drops must strictly increase weighted completion \
         ({} vs {})",
        lossy.cost.completion,
        clean.cost.completion
    );
    // Both witnesses are faithful recordings: replay never leaves them.
    assert_eq!(report.divergences, 0, "{report:?}");
    // And the wrapper still delivered everywhere.
    assert!(lossy.states.iter().all(|s| s.inner().dist().is_some()));
}

#[test]
fn committed_witnesses_replay_identically_on_bucket_and_heap_cores() {
    let g = gnp_n12();
    for file in [
        "reliable-spt-recur-gnp-n12.schedule",
        "fault-spt-recur-gnp-n12.schedule",
    ] {
        let schedule = Schedule::load(&schedule_dir().join(file)).unwrap();
        let run_on = |kind: CoreKind| {
            let mut oracle = ScheduleOracle::new(&schedule);
            let mut sim = Simulator::new(&g);
            sim.core(kind).record_trace(1 << 14);
            sim.run_with_oracle(&mut oracle, make_reliable_spt).unwrap()
        };
        let b = run_on(CoreKind::Bucket);
        let h = run_on(CoreKind::Heap);
        assert_eq!(b.cost, h.cost, "{file}: cost reports must match");
        assert_eq!(
            b.trace.events(),
            h.trace.events(),
            "{file}: traces must be bit-identical"
        );
        assert_eq!(
            format!("{:?}", b.states),
            format!("{:?}", h.states),
            "{file}: final states must match"
        );
    }
}

#[test]
fn committed_fault_witness_round_trips_in_the_v2_dialect() {
    let path = schedule_dir().join("fault-spt-recur-gnp-n12.schedule");
    let schedule = Schedule::load(&path).unwrap();
    assert!(schedule.has_faults());
    let text = schedule.to_text();
    assert!(text.starts_with("csp-adversary-schedule v2"));
    assert_eq!(Schedule::from_text(&text).unwrap(), schedule);
    // The delay-only companion stays in the v1 dialect byte-for-byte.
    let delay_only =
        Schedule::load(&schedule_dir().join("reliable-spt-recur-gnp-n12.schedule")).unwrap();
    assert!(!delay_only.has_faults());
    assert!(delay_only
        .to_text()
        .starts_with("csp-adversary-schedule v1"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The retransmission layer's guarantee, differentially: under any
    /// bounded-loss oracle, `Reliable<Flood>` reaches exactly the
    /// vertices bare flooding reaches with no faults at all — everyone.
    #[test]
    fn reliable_flood_under_bounded_drops_matches_fault_free_flood(
        seed in any::<u64>(),
        drop_rate in 0.0f64..0.9,
        n in 6usize..14,
    ) {
        let g = generators::connected_gnp(n, 0.35, WeightDist::Uniform(1, 9), seed);
        let root = NodeId::new(0);

        let mut eager = ModelOracle::new(DelayModel::Eager, 0);
        let bare: Run<Flood> = Simulator::new(&g)
            .run_with_oracle(&mut eager, |v, _| Flood::new(v == root))
            .unwrap();

        // Budget 4 < max_retries 6: delivery is guaranteed, not lucky.
        let mut lossy = DropOracle::new(DelayModel::Uniform, seed ^ 0xD15EA5E, drop_rate, 4);
        let wrapped: Run<Reliable<Flood>> = Simulator::new(&g)
            .run_with_oracle(&mut lossy, |v, _| Reliable::new(Flood::new(v == root), 6))
            .unwrap();

        for v in g.nodes() {
            prop_assert!(
                wrapped.states[v.index()].inner().reached()
                    == bare.states[v.index()].reached(),
                "vertex {} reachability must survive bounded loss", v
            );
        }
        prop_assert!(wrapped.states.iter().all(|s| s.inner().reached()));
    }

    /// The self-healing contract under a *combined* adversary: arbitrary
    /// bounded drops plus a crash of a random victim at a random time
    /// within the detection horizon. Every vertex of the surviving
    /// connected component must terminate with the exact subgraph answer
    /// (hop or weighted distance), everyone cut off must retract to
    /// `None` — and the whole monitored run must be bit-identical on the
    /// bucket and heap event cores.
    #[test]
    fn resilient_protocols_heal_arbitrary_drop_plus_crash_schedules(
        seed in any::<u64>(),
        drop_rate in 0.0f64..0.5,
        n in 6usize..12,
        victim_ix in 0usize..12,
        crash_at in 0u64..180,
        weighted in any::<bool>(),
    ) {
        let g = generators::connected_gnp(n, 0.35, WeightDist::Uniform(1, 9), seed);
        let root = NodeId::new(0);
        let victim = NodeId::new(victim_ix % n);
        let metric = if weighted { Metric::Weighted } else { Metric::Hops };
        // Horizon ≥ (60-1-3)·4 - 8 = 216 > 180: every sampled crash time
        // is inside the guaranteed-detection window, and loss tolerance 3
        // matches the drop oracle's budget so suspicion stays accurate.
        let cfg = DetectConfig::new(4, 60, 3);

        let run_on = |kind: CoreKind| {
            let lossy = DropOracle::new(DelayModel::Uniform, seed ^ 0x5E1F_4EA1, drop_rate, 3);
            let mut oracle = CrashOracle::new(lossy, vec![(victim, SimTime::new(crash_at))]);
            let mut sim = Simulator::new(&g);
            sim.core(kind);
            sim.run_with_oracle(&mut oracle, |v, g| {
                // Generous retry limit: the drop budget bounds
                // *consecutive* losses per channel, but heartbeats
                // interleave on the same channels and can absorb the
                // forced-delivery slots, so a data message's retries are
                // not consecutive channel sends — 8 retries can starve
                // under an unlucky seed and falsely fail a live channel.
                Detect::new(Reliable::new(Resilient::new(v, root, metric, g), 64), cfg)
            })
            .unwrap()
        };
        let bucket: Run<Detect<Reliable<Resilient>>> = run_on(CoreKind::Bucket);
        let heap = run_on(CoreKind::Heap);
        prop_assert_eq!(&bucket.cost, &heap.cost);
        prop_assert_eq!(
            format!("{:?}", bucket.states),
            format!("{:?}", heap.states)
        );
        prop_assert_eq!(bucket.cost.crashed_nodes, 1);

        let peel = |s: &Detect<Reliable<Resilient>>| -> Resilient { s.inner().inner().clone() };
        let out = ResilientOutcome {
            dists: bucket.states.iter().map(|s| peel(s).dist()).collect(),
            parents: bucket.states.iter().map(|s| peel(s).parent()).collect(),
            suspected_links: bucket
                .states
                .iter()
                .map(|s| peel(s).dead_neighbor_count())
                .sum(),
            restored_links: bucket
                .states
                .iter()
                .map(|s| peel(s).restored_count())
                .sum(),
            retransmissions: bucket.states.iter().map(|s| s.inner().retransmissions()).sum(),
            failed_channels: bucket
                .states
                .iter()
                .map(|s| s.inner().failed_channel_count())
                .sum(),
            cost: bucket.cost.clone(),
        };
        let mut dead = vec![false; g.node_count()];
        dead[victim.index()] = true;
        prop_assert_eq!(contract_violation(&g, root, metric, &dead, &out), None);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Churn beyond crash-stop, differentially: a soak-style
    /// crash–rejoin chain of arbitrary length (the vertex may die and
    /// resurrect with fresh state many times over the detector's whole
    /// lifetime) plus a random mid-run weight revision must replay
    /// bit-identically — costs including the churn meters, traces and
    /// final states — across the bucket and heap event cores *and* the
    /// sharded simulator at 2 and 4 shards.
    #[test]
    fn churn_schedules_replay_identically_across_cores_and_shards(
        seed in any::<u64>(),
        n in 6usize..12,
        victim_ix in 0usize..12,
        start in 1u64..40,
        chain_len in 1usize..8,
        gap_seed in any::<u64>(),
        drift_ix in 0usize..64,
        drift_at in 1u64..120,
        drift_w in 1u64..9,
    ) {
        let g = generators::connected_gnp(n, 0.35, WeightDist::Uniform(1, 9), seed);
        let root = NodeId::new(0);
        // Keep the root out of the chain: the source's fresh incarnation
        // would re-seed the whole computation, which is legal but makes
        // the run long without adding coverage here.
        let victim = NodeId::new(1 + victim_ix % (n - 1));
        let mut chain = vec![SimTime::new(start)];
        let mut lcg = gap_seed;
        for _ in 1..chain_len {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let gap = 1 + (lcg >> 33) % 29;
            let last = chain.last().unwrap().get();
            chain.push(SimTime::new(last + gap));
        }
        let drift = (
            EdgeId::new(drift_ix % g.edge_count()),
            SimTime::new(drift_at),
            Weight::new(drift_w),
        );
        let cfg = DetectConfig::new(4, 60, 0);
        let expected_recoveries = (chain.len() / 2) as u64;

        let oracle = || {
            ChurnOracle::new(
                ModelOracle::new(DelayModel::Uniform, seed ^ 0xC0_FFEE),
                vec![(victim, chain.clone())],
                vec![drift],
            )
        };
        let make = |v: NodeId, g: &WeightedGraph| {
            Detect::new(Resilient::new(v, root, Metric::Weighted, g), cfg)
        };
        let run_seq = |kind: CoreKind| {
            let mut sim = Simulator::new(&g);
            sim.core(kind).record_trace(1 << 14);
            sim.run_with_oracle(&mut oracle(), make).unwrap()
        };
        let bucket: Run<Detect<Resilient>> = run_seq(CoreKind::Bucket);
        let heap = run_seq(CoreKind::Heap);
        prop_assert_eq!(&bucket.cost, &heap.cost);
        prop_assert_eq!(bucket.trace.events(), heap.trace.events());
        prop_assert_eq!(
            format!("{:?}", bucket.states),
            format!("{:?}", heap.states)
        );
        prop_assert_eq!(bucket.cost.recoveries, expected_recoveries);
        prop_assert_eq!(bucket.cost.weight_revisions, 1);

        for threads in [2usize, 4] {
            for kind in [CoreKind::Bucket, CoreKind::Heap] {
                let par: Run<Detect<Resilient>> = ShardedSimulator::new(&g)
                    .threads(threads)
                    .core(kind)
                    .record_trace(1 << 14)
                    .run_with_oracle(&mut oracle(), make)
                    .unwrap();
                prop_assert_eq!(&bucket.cost, &par.cost);
                prop_assert_eq!(bucket.trace.events(), par.trace.events());
                prop_assert_eq!(
                    format!("{:?}", bucket.states),
                    format!("{:?}", par.states)
                );
            }
        }
    }

    /// The invariant the incremental-evaluation cache rests on, under
    /// *fault* schedules rather than delay-only ones: resuming a run
    /// from any prefix checkpoint under the same drop+crash schedule is
    /// bit-identical to the cold run — costs including every fault
    /// meter, traces, and final states. Both the full `resume` path and
    /// the pooled `eval_resume` path are pinned, the latter through one
    /// shared pool so buffer reuse across checkpoints is exercised too.
    #[test]
    fn checkpoint_resume_matches_cold_run_under_drop_crash_schedules(
        seed in any::<u64>(),
        drop_rate in 0.05f64..0.6,
        n in 6usize..12,
        victim_ix in 1usize..12,
        crash_at in 0u64..60,
        every in 3u64..9,
    ) {
        let g = generators::connected_gnp(n, 0.35, WeightDist::Uniform(1, 9), seed);
        let victim = NodeId::new(victim_ix % n);

        // Record a faithful fault schedule: bounded drops plus one
        // crash, over the retransmission-wrapped SPT (timers included).
        let lossy = DropOracle::new(DelayModel::Uniform, seed ^ 0xCAFE_F00D, drop_rate, 3);
        let oracle = CrashOracle::new(lossy, vec![(victim, SimTime::new(crash_at))]);
        let (_, schedule) =
            csp_adversary::record(&g, make_reliable_spt, oracle, csp_adversary::Fallback::WorstCase);
        prop_assert!(!schedule.crashes.is_empty());

        // Cold reference run, checkpointed, with the trace recorded.
        let mut cps = Vec::new();
        let mut sim = Simulator::new(&g);
        sim.record_trace(1 << 14);
        let cold = sim
            .run_with_checkpoints(
                &mut ScheduleOracle::new(&schedule),
                make_reliable_spt,
                every,
                &mut cps,
            )
            .unwrap();
        prop_assert!(!cps.is_empty(), "workload too small to checkpoint");

        let mut pool = csp_sim::EvalPool::new();
        for cp in &cps {
            let resumed = sim
                .resume(cp, &mut ScheduleOracle::new(&schedule))
                .unwrap();
            prop_assert_eq!(&resumed.cost, &cold.cost);
            prop_assert_eq!(resumed.cost.drops, cold.cost.drops);
            prop_assert_eq!(resumed.cost.crashed_nodes, cold.cost.crashed_nodes);
            prop_assert_eq!(resumed.cost.dead_events, cold.cost.dead_events);
            prop_assert_eq!(resumed.trace.events(), cold.trace.events());
            prop_assert_eq!(
                format!("{:?}", resumed.states),
                format!("{:?}", cold.states)
            );

            let summary = sim
                .eval_resume(&mut pool, cp, &mut ScheduleOracle::new(&schedule))
                .unwrap();
            prop_assert_eq!(summary.completion, cold.cost.completion);
            prop_assert_eq!(summary.messages, cold.cost.messages);
            prop_assert_eq!(summary.weighted_comm, cold.cost.weighted_comm);
            prop_assert!(!summary.truncated);
        }
    }
}

#[test]
fn unprotected_flood_under_loss_is_detected_as_deadlocked_not_hung() {
    // Cut the flood's very first token on a path graph: downstream
    // vertices are unreachable, the run quiesces (it does NOT hang), and
    // Dijkstra–Scholten correctly never announces termination.
    struct DropFirst;
    impl csp_sim::LinkOracle for DropFirst {
        fn decide(&mut self, msg: &csp_sim::MsgInfo) -> csp_sim::LinkDecision {
            if msg.index == 0 {
                csp_sim::LinkDecision::Drop
            } else {
                csp_sim::LinkDecision::Deliver { delay: 1 }
            }
        }
    }

    let g = generators::path(4, |_| 3);
    let root = NodeId::new(0);
    let mut oracle = DropFirst;
    let run: Run<Detector<Flood>> = Simulator::new(&g)
        .run_with_oracle(&mut oracle, |v, _| {
            Detector::new(v, root, Flood::new(v == root))
        })
        .unwrap();
    assert_eq!(
        run.states[root.index()].detected_at(),
        None,
        "termination must not be announced after a lost message"
    );
    assert!(
        run.states[1..].iter().all(|s| !s.hosted().reached()),
        "the dropped token never went anywhere"
    );
}
