//! Churn suite: replays the committed crash–rejoin–recrash witness
//! against the `Detect<Resilient>` SPT stack and pins what the
//! `self_healing` example established — churning a vertex (crash,
//! rejoin with fresh state, recrash at the detection-horizon boundary)
//! strictly out-bills the best *single*-crash witness on weighted
//! announcement traffic, the healed run still satisfies the
//! reconvergence contract within the detection horizon of the last
//! churn event, and the replay is bit-identical across the bucket and
//! heap cores and the sharded simulator.
//!
//! The committed schedules under the workspace's `tests/schedules/`
//! were produced by `cargo run --release --example self_healing`.

use csp_adversary::{replay_report, Schedule, ScheduleOracle};
use csp_algo::resilient::{reconvergence_violation, Metric, Resilient, ResilientOutcome};
use csp_graph::generators::{self, WeightDist};
use csp_graph::{NodeId, WeightedGraph};
use csp_sim::{
    CoreKind, CostClass, Detect, DetectConfig, Run, ShardedSimulator, SimTime, Simulator,
};
use std::path::PathBuf;

fn schedule_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/schedules")
}

/// The instance both committed witnesses run on.
fn gnp_n12() -> WeightedGraph {
    generators::connected_gnp(12, 0.3, WeightDist::Uniform(1, 16), 42)
}

/// The stack the witnesses were recorded against (see the example for
/// the detector tuning).
fn detector() -> DetectConfig {
    DetectConfig::new(8, 30, 0)
}

fn make(v: NodeId, g: &WeightedGraph) -> Detect<Resilient> {
    Detect::new(
        Resilient::new(v, NodeId::new(0), Metric::Weighted, g),
        detector(),
    )
}

fn load(name: &str) -> Schedule {
    Schedule::load(&schedule_dir().join(name)).unwrap()
}

#[test]
fn committed_churn_witness_out_bills_the_best_single_crash() {
    let g = gnp_n12();
    let single = load("crash-resilient-spt-gnp-n12.schedule");
    let churn = load("churn-resilient-spt-gnp-n12.schedule");

    // Shape: the chain crashes, rejoins and recrashes the *same* vertex
    // the single-crash witness attacks, and ends dead.
    assert_eq!(single.crashes.len(), 1);
    let victim = single.crashes[0].node;
    let chain = churn.churn_of(victim);
    assert_eq!(chain.len(), 3, "crash-rejoin-recrash, exactly: {chain:?}");
    assert_eq!(churn.rejoins.len(), 1, "one rejoin, of the witness victim");
    assert_eq!(churn.rejoins[0].node, victim);

    // The recrash honours the detector's guarantee on every channel of
    // the victim, like the clamped single-crash witness does.
    let horizon = g
        .neighbors(victim)
        .map(|(_, _, w)| detector().detection_horizon(w.get()))
        .min()
        .unwrap();
    assert!(
        *chain.last().unwrap() <= horizon,
        "the recrash must stay inside the guaranteed-detection window"
    );

    // Both witnesses replay faithfully; only the chain churns.
    let (single_run, single_report) = replay_report::<Detect<Resilient>, _>(&g, make, &single);
    let (churn_run, churn_report) = replay_report::<Detect<Resilient>, _>(&g, make, &churn);
    assert_eq!(single_report.divergences, 0, "{single_report:?}");
    assert_eq!(churn_report.divergences, 0, "{churn_report:?}");
    assert!(!single_report.has_churn());
    assert!(churn_report.has_churn());
    assert_eq!(churn_report.recoveries, 1);

    // The inequality the witness exists for: the first heal, the
    // rejoin-era re-synchronisation and the second heal bill strictly
    // more weighted announcement traffic than the best single crash.
    assert!(
        churn_run.cost.comm_of(CostClass::Protocol) > single_run.cost.comm_of(CostClass::Protocol),
        "crash-rejoin-recrash must out-bill the single-crash witness \
         ({} vs {})",
        churn_run.cost.comm_of(CostClass::Protocol),
        single_run.cost.comm_of(CostClass::Protocol)
    );
}

#[test]
fn committed_churn_witness_reconverges_within_the_detection_horizon() {
    let g = gnp_n12();
    let churn = load("churn-resilient-spt-gnp-n12.schedule");
    let (run, report) = replay_report::<Detect<Resilient>, _>(&g, make, &churn);
    assert_eq!(report.divergences, 0, "{report:?}");

    // The chain ends with a crash, so the victim is dead in the final
    // configuration; everyone else must hold exact surviving-component
    // routes, settled within the detection horizon of the *last* churn
    // event.
    let victim = churn.rejoins[0].node;
    let chain = churn.churn_of(victim);
    assert_eq!(chain.len() % 2, 1, "the chain ends dead: {chain:?}");
    let mut dead = vec![false; g.node_count()];
    dead[victim.index()] = true;
    let out = ResilientOutcome {
        dists: run.states.iter().map(|s| s.inner().dist()).collect(),
        parents: run.states.iter().map(|s| s.inner().parent()).collect(),
        suspected_links: run
            .states
            .iter()
            .map(|s| s.inner().dead_neighbor_count())
            .sum(),
        restored_links: run.states.iter().map(|s| s.inner().restored_count()).sum(),
        retransmissions: 0,
        failed_channels: 0,
        cost: run.cost.clone(),
    };
    assert_eq!(
        reconvergence_violation(
            &g,
            NodeId::new(0),
            Metric::Weighted,
            &dead,
            SimTime::new(*chain.last().unwrap()),
            detector().detection_horizon(g.max_weight().get()),
            &out
        ),
        None,
        "the churned run must reconverge to exact surviving-component \
         routes within the detection horizon of the last churn event"
    );
}

#[test]
fn committed_churn_witness_replays_identically_on_all_cores_and_shards() {
    let g = gnp_n12();
    let churn = load("churn-resilient-spt-gnp-n12.schedule");
    let run_on = |kind: CoreKind| -> Run<Detect<Resilient>> {
        let mut oracle = ScheduleOracle::new(&churn);
        let mut sim = Simulator::new(&g);
        sim.core(kind).record_trace(1 << 14);
        sim.run_with_oracle(&mut oracle, make).unwrap()
    };
    let b = run_on(CoreKind::Bucket);
    let h = run_on(CoreKind::Heap);
    assert_eq!(b.cost, h.cost, "cost reports must match across cores");
    assert_eq!(b.trace.events(), h.trace.events());
    assert_eq!(format!("{:?}", b.states), format!("{:?}", h.states));

    for threads in [2usize, 4] {
        for kind in [CoreKind::Bucket, CoreKind::Heap] {
            let mut oracle = ScheduleOracle::new(&churn);
            let par: Run<Detect<Resilient>> = ShardedSimulator::new(&g)
                .threads(threads)
                .core(kind)
                .record_trace(1 << 14)
                .run_with_oracle(&mut oracle, make)
                .unwrap();
            assert_eq!(
                b.cost, par.cost,
                "sharded ({threads} threads, {kind:?}): cost must match"
            );
            assert_eq!(b.trace.events(), par.trace.events());
            assert_eq!(format!("{:?}", b.states), format!("{:?}", par.states));
        }
    }
}
