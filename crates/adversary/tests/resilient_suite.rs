//! Self-healing suite: replays the committed crash-time witness against
//! the `Detect<Resilient>` SPT stack and pins the inequalities the
//! `self_healing` example established — a well-timed crash strictly
//! beats both the best delay-only schedule and a time-0 crash of the
//! same victim on weighted completion, and forces measurably more
//! weighted recovery (announcement) traffic.
//!
//! The committed schedules under the workspace's `tests/schedules/`
//! were produced by `cargo run --release --example self_healing`.

use csp_adversary::{replay, replay_report, Crash, Fallback, Schedule, ScheduleOracle};
use csp_algo::resilient::{contract_violation, Metric, Resilient, ResilientOutcome};
use csp_graph::generators::{self, WeightDist};
use csp_graph::{NodeId, WeightedGraph};
use csp_sim::{CoreKind, CostClass, Detect, DetectConfig, Run, Simulator};
use std::path::PathBuf;

fn schedule_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/schedules")
}

/// The instance both committed witnesses run on.
fn gnp_n12() -> WeightedGraph {
    generators::connected_gnp(12, 0.3, WeightDist::Uniform(1, 16), 42)
}

/// The stack the witnesses were recorded against (see the example for
/// the detector tuning).
fn make(v: NodeId, g: &WeightedGraph) -> Detect<Resilient> {
    Detect::new(
        Resilient::new(v, NodeId::new(0), Metric::Weighted, g),
        DetectConfig::new(8, 30, 0),
    )
}

fn load(name: &str) -> Schedule {
    Schedule::load(&schedule_dir().join(name)).unwrap()
}

#[test]
fn committed_crash_witness_beats_delay_only_and_a_time_zero_crash() {
    let g = gnp_n12();
    let delay_only = load("resilient-spt-gnp-n12.schedule");
    let witness = load("crash-resilient-spt-gnp-n12.schedule");
    assert!(delay_only.crashes.is_empty());
    assert_eq!(witness.crashes.len(), 1, "the witness crashes one vertex");
    let victim = witness.crashes[0].node;
    assert_ne!(victim, NodeId::new(0), "the witness victim is interior");
    assert!(witness.crashes[0].at > 0, "the crash is *timed*, not at 0");

    let clean: Run<Detect<Resilient>> = replay(&g, make, &delay_only);
    let (late, report) = replay_report::<Detect<Resilient>, _>(&g, make, &witness);
    // Faithful recordings: neither replay ever leaves its schedule.
    assert_eq!(report.divergences, 0, "{report:?}");
    assert!(report.has_faults() && report.crashed_nodes == 1);

    // The same transcript with the crash moved to time 0: the victim
    // never participates, so the survivors pay no recovery.
    let mut zeroed = witness.clone();
    zeroed.crashes = vec![Crash {
        node: victim,
        at: 0,
    }];
    zeroed.fallback = Fallback::WorstCase;
    let mut oracle = ScheduleOracle::new(&zeroed);
    let zero: Run<Detect<Resilient>> = Simulator::new(&g)
        .run_with_oracle(&mut oracle, make)
        .unwrap();

    assert!(
        late.cost.completion > clean.cost.completion,
        "the timed crash must out-delay the best delay-only schedule \
         ({} vs {})",
        late.cost.completion,
        clean.cost.completion
    );
    assert!(
        late.cost.completion > zero.cost.completion,
        "the timed crash must out-delay a time-0 crash of the same \
         victim ({} vs {})",
        late.cost.completion,
        zero.cost.completion
    );
    assert!(
        late.cost.comm_of(CostClass::Protocol) > zero.cost.comm_of(CostClass::Protocol),
        "healing mid-run must cost strictly more weighted announcement \
         traffic than never having met the victim ({} vs {})",
        late.cost.comm_of(CostClass::Protocol),
        zero.cost.comm_of(CostClass::Protocol)
    );
}

#[test]
fn committed_crash_witness_still_satisfies_the_surviving_component_contract() {
    let g = gnp_n12();
    let witness = load("crash-resilient-spt-gnp-n12.schedule");
    let (run, report) = replay_report::<Detect<Resilient>, _>(&g, make, &witness);
    assert_eq!(report.divergences, 0, "{report:?}");

    let mut dead = vec![false; g.node_count()];
    for c in &witness.crashes {
        dead[c.node.index()] = true;
    }
    let out = ResilientOutcome {
        dists: run.states.iter().map(|s| s.inner().dist()).collect(),
        parents: run.states.iter().map(|s| s.inner().parent()).collect(),
        suspected_links: run
            .states
            .iter()
            .map(|s| s.inner().dead_neighbor_count())
            .sum(),
        restored_links: run.states.iter().map(|s| s.inner().restored_count()).sum(),
        retransmissions: 0,
        failed_channels: 0,
        cost: run.cost.clone(),
    };
    assert_eq!(
        contract_violation(&g, NodeId::new(0), Metric::Weighted, &dead, &out),
        None,
        "even the adversarial witness must leave exact subgraph answers"
    );
}

#[test]
fn committed_resilient_witnesses_replay_identically_on_bucket_and_heap_cores() {
    let g = gnp_n12();
    for file in [
        "resilient-spt-gnp-n12.schedule",
        "crash-resilient-spt-gnp-n12.schedule",
    ] {
        let schedule = load(file);
        let run_on = |kind: CoreKind| {
            let mut oracle = ScheduleOracle::new(&schedule);
            let mut sim = Simulator::new(&g);
            sim.core(kind).record_trace(1 << 14);
            sim.run_with_oracle(&mut oracle, make).unwrap()
        };
        let b = run_on(CoreKind::Bucket);
        let h = run_on(CoreKind::Heap);
        assert_eq!(b.cost, h.cost, "{file}: cost reports must match");
        assert_eq!(
            b.trace.events(),
            h.trace.events(),
            "{file}: traces must be bit-identical"
        );
        assert_eq!(
            format!("{:?}", b.states),
            format!("{:?}", h.states),
            "{file}: final states must match"
        );
    }
}
