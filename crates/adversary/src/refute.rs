//! Bound refutation: search a protocol × graph-family grid for schedules
//! violating a stated time bound, and shrink any violation to a minimal
//! replayable counterexample.
//!
//! The shrinker is proptest-style: a violation witnessed by a searched
//! schedule usually rushes many messages, most of them irrelevant.
//! [`shrink`] first discards churn the violation does not need — whole
//! crash/rejoin chains per vertex, then trailing toggles of surviving
//! chains (a crash–rejoin–recrash that only needs its first crash
//! shrinks back to plain crash-stop), then weight-drift revisions one
//! at a time — then pushes each surviving crash's *time* as late as the
//! violation permits (a later crash leaves a longer fault-free prefix,
//! so later is simpler — and a crash after quiescence is the removal
//! already rejected; on a churn chain the push stays strictly below the
//! next toggle), then reverts interesting decisions — rushed
//! (`delay < weight`) or dropped — toward fault-free
//! [`DelayModel::WorstCase`](csp_sim::DelayModel::WorstCase) in
//! halving-size chunks while the violation persists, down to a
//! 1-minimal schedule: reverting any single remaining interesting
//! decision, removing any remaining chain, truncating it by one toggle,
//! dropping any remaining drift, or delaying any remaining crash by one
//! more tick makes the violation disappear. The minimal schedule is
//! re-recorded after every accepted step, so the file written to disk
//! replays to exactly the reported completion time.

use crate::oracle::{Recorder, ScheduleOracle};
use crate::schedule::{Fallback, Schedule};
use crate::search::{find_worst_schedule, SearchConfig, SearchOutcome};
use csp_graph::{NodeId, WeightedGraph};
use csp_sim::{Process, SimTime, Simulator};
use std::path::{Path, PathBuf};

/// One instance of the grid [`check_time_bound`] sweeps.
#[derive(Clone, Debug)]
pub struct GridPoint {
    /// Human-readable instance name, e.g. `"gnp-n24"` — also the stem of
    /// the counterexample file if the bound falls here.
    pub label: String,
    /// The instance itself.
    pub graph: WeightedGraph,
}

/// A refuted bound on one grid point: a minimal schedule whose replay
/// completes later than the claimed bound.
#[derive(Clone, Debug)]
pub struct Refutation {
    /// Which grid point the bound fell on.
    pub label: String,
    /// The claimed bound, evaluated on that instance.
    pub bound: u64,
    /// Completion time of the (shrunk) counterexample schedule.
    pub observed: SimTime,
    /// The 1-minimal counterexample; replaying it reproduces
    /// [`Refutation::observed`].
    pub schedule: Schedule,
    /// Where the counterexample was written, if an output directory was
    /// given.
    pub path: Option<PathBuf>,
    /// Decisions the final replay requested beyond the recorded horizon
    /// (served by the schedule's [`Fallback`]). Non-zero means the
    /// witness relies on the fallback policy, not only on recorded
    /// decisions — worth knowing before trusting it across simulator
    /// versions.
    pub past_horizon: u64,
}

/// Replays `schedule` and re-records what was actually taken.
fn replay_recorded<P, F>(g: &WeightedGraph, make: &F, schedule: &Schedule) -> (SimTime, Schedule)
where
    P: Process,
    F: Fn(NodeId, &WeightedGraph) -> P,
{
    let mut rec = Recorder::new(ScheduleOracle::new(schedule));
    let run = Simulator::new(g)
        .run_with_oracle(&mut rec, |v, g| make(v, g))
        .expect("protocol must quiesce under an admissible schedule");
    (run.cost.completion, rec.into_schedule(Fallback::WorstCase))
}

/// Shrinks `schedule` to a 1-minimal violation of `violates`.
///
/// Churn is tried for removal first: each vertex's whole crash/rejoin
/// chain (a chain stands or falls together — removing an inner toggle
/// would break the alternation discipline), then trailing toggles of
/// surviving chains one at a time, then drift revisions one at a time,
/// until every remaining churn event is load-bearing. Each surviving
/// crash's time is then pushed to the latest tick still violating (so
/// the final witness says: *this* vertex must die, and no later than
/// *this* moment; on a chain the push stays strictly below the next
/// toggle). Then interesting decisions — rushed (`delay < weight`) or
/// dropped — are reverted to fault-free full edge weight in chunks,
/// halving the chunk size whenever no chunk at the current size can be
/// reverted, until no single interesting decision can be reverted
/// without losing the violation. The returned schedule is a fresh
/// recording of its own replay, so it is internally consistent even
/// when reverting steered the protocol down a different path.
///
/// Returns the input re-recorded (unshrunk) if its replay does not
/// satisfy `violates` in the first place.
pub fn shrink<P, F>(
    g: &WeightedGraph,
    make: &F,
    schedule: &Schedule,
    violates: impl Fn(SimTime) -> bool,
) -> (SimTime, Schedule)
where
    P: Process,
    F: Fn(NodeId, &WeightedGraph) -> P,
{
    let (mut time, mut current) = replay_recorded(g, make, schedule);
    if !violates(time) {
        return (time, current);
    }

    // Churn removal first: a crash silences a vertex for the rest of the
    // run (and a rejoin resurrects it), warping the whole transcript, so
    // deciding what churn is needed before touching per-message
    // decisions keeps the decision phase shrinking a stable run.
    let chain_vertices = |s: &Schedule| -> Vec<NodeId> {
        let mut vs: Vec<NodeId> = s.crashes.iter().map(|c| c.node).collect();
        vs.sort_unstable_by_key(|n| n.index());
        vs.dedup();
        vs
    };

    // Whole-chain removal, one vertex at a time.
    let mut v = 0;
    loop {
        let vs = chain_vertices(&current);
        let Some(&victim) = vs.get(v) else { break };
        let mut candidate = current.clone();
        candidate.crashes.retain(|c| c.node != victim);
        candidate.rejoins.retain(|r| r.node != victim);
        let (t, recorded) = replay_recorded(g, make, &candidate);
        if violates(t) {
            time = t;
            current = recorded;
        } else {
            v += 1;
        }
    }

    // Chain truncation: drop the last toggle of each surviving chain
    // while the violation persists — a crash–rejoin–recrash that only
    // needs its opening crash shrinks back to plain crash-stop.
    let mut v = 0;
    loop {
        let vs = chain_vertices(&current);
        let Some(&victim) = vs.get(v) else { break };
        let chain = current.churn_of(victim);
        if chain.len() <= 1 {
            v += 1;
            continue;
        }
        let last = *chain.last().expect("chain is non-empty");
        let mut candidate = current.clone();
        if chain.len() % 2 == 0 {
            candidate
                .rejoins
                .retain(|r| !(r.node == victim && r.at == last));
        } else {
            candidate
                .crashes
                .retain(|c| !(c.node == victim && c.at == last));
        }
        let (t, recorded) = replay_recorded(g, make, &candidate);
        if violates(t) {
            time = t;
            current = recorded; // same vertex again: keep truncating
        } else {
            v += 1;
        }
    }

    // Drift removal: weight revisions are independent events; each is
    // tried alone until every survivor is load-bearing.
    let mut d = 0;
    while d < current.drifts.len() {
        let mut candidate = current.clone();
        candidate.drifts.remove(d);
        let (t, recorded) = replay_recorded(g, make, &candidate);
        if violates(t) {
            time = t;
            current = recorded;
        } else {
            d += 1;
        }
    }

    // Crash-time reverts: push every load-bearing crash as late as the
    // violation allows. "Later" is the simpler direction — the run is
    // fault-free for longer, and a crash after quiescence is exactly the
    // removal the previous phase rejected. Pushed once here so the
    // decision phase shrinks the simplest transcript, and once more
    // after it, because reverting a decision can slow the run down and
    // re-loosen a crash's deadline — only the final pass's times are
    // 1-minimal against the witness actually returned.
    let push_crash_times = |time: &mut SimTime, current: &mut Schedule| {
        for c in 0..current.crashes.len() {
            let replay_at = |at: u64, from: &Schedule| {
                let mut candidate = from.clone();
                candidate.crashes[c].at = at;
                replay_recorded(g, make, &candidate)
            };
            // Boundary search keeping `lo` violating and `hi` not; `hi`
            // climbs exponentially first because a well-timed crash can
            // violate *more* strongly than an earlier one (recovery
            // traffic lands later). The invariant makes the final time
            // 1-minimal regardless of monotonicity: `lo + 1` is a tested
            // non-violation whenever the search moved at all. On a churn
            // chain the crash must stay strictly below the vertex's next
            // toggle, so the climb is capped there.
            let mut lo = current.crashes[c].at;
            let chain = current.churn_of(current.crashes[c].node);
            let pos = chain
                .iter()
                .position(|&t| t == lo)
                .expect("crash time is on its own chain");
            let cap = chain.get(pos + 1).map_or(u64::MAX, |&t| t - 1);
            let mut hi = time.get().max(lo).saturating_add(1).min(cap);
            if hi <= lo {
                continue; // the next toggle leaves no room to push
            }
            loop {
                let (t, _) = replay_at(hi, current);
                if !violates(t) {
                    break;
                }
                lo = hi;
                if hi == cap {
                    break; // violating at the cap: can push no later
                }
                hi = hi.saturating_mul(2).min(cap);
            }
            while hi - lo > 1 {
                let mid = lo + (hi - lo) / 2;
                let (t, _) = replay_at(mid, current);
                if violates(t) {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            if lo != current.crashes[c].at {
                let (t, recorded) = replay_at(lo, current);
                debug_assert!(violates(t), "boundary search kept `lo` violating");
                *time = t;
                *current = recorded;
            }
        }
    };
    push_crash_times(&mut time, &mut current);

    let interesting_positions = |s: &Schedule| -> Vec<usize> {
        (0..s.decisions.len())
            .filter(|&i| s.decisions[i].delay < s.decisions[i].weight || s.decisions[i].dropped)
            .collect()
    };

    let mut chunk = interesting_positions(&current).len().div_ceil(2).max(1);
    loop {
        let interesting = interesting_positions(&current);
        if interesting.is_empty() {
            break;
        }
        chunk = chunk.min(interesting.len());
        let mut reverted = false;
        for block in interesting.chunks(chunk) {
            let mut candidate = current.clone();
            for &i in block {
                candidate.decisions[i].delay = candidate.decisions[i].weight;
                candidate.decisions[i].dropped = false;
            }
            let (t, recorded) = replay_recorded(g, make, &candidate);
            if violates(t) {
                time = t;
                current = recorded;
                reverted = true;
                break;
            }
        }
        if !reverted {
            if chunk == 1 {
                break;
            }
            chunk = (chunk / 2).max(1);
        }
    }
    push_crash_times(&mut time, &mut current);
    (time, current)
}

/// Searches every grid point for a schedule whose completion time
/// exceeds `bound`, shrinking each violation to a minimal replayable
/// counterexample.
///
/// `bound` evaluates the claimed time bound on an instance (typically
/// the same formula `tests/paper_bounds.rs` asserts). Counterexamples
/// are written to `out_dir` (when given) as
/// `<label>.schedule`, with the claim and observation in the header.
/// An empty return vector means the search could not refute the bound
/// anywhere on the grid.
///
/// With [`SearchConfig::exhaustive`] set, each grid point runs the
/// sleep-set/DPOR explorer ([`crate::explore_exhaustive`]) instead of
/// the heuristic pipeline: a clean result then means *no reachable
/// delivery-order class* violates the bound (up to the class budget),
/// turning the heuristic hunt into a correctness tool on small
/// instances.
pub fn check_time_bound<P, F, B>(
    grid: &[GridPoint],
    make: F,
    bound: B,
    cfg: &SearchConfig,
    out_dir: Option<&Path>,
) -> Vec<Refutation>
where
    P: Process + Clone + Sync,
    P::Msg: Clone + Sync,
    F: Fn(NodeId, &WeightedGraph) -> P + Sync,
    B: Fn(&GridPoint) -> u64,
{
    let mut refutations = Vec::new();
    for point in grid {
        let claimed = bound(point);
        let outcome: SearchOutcome = if cfg.exhaustive {
            crate::trace::explore_exhaustive(&point.graph, &make, cfg)
        } else {
            find_worst_schedule(&point.graph, &make, cfg)
        };
        if outcome.best_time.get() <= claimed {
            continue;
        }
        let (observed, minimal) = shrink(&point.graph, &make, &outcome.schedule, |t| {
            t.get() > claimed
        });
        let (_, report) = crate::replay_report(&point.graph, &make, &minimal);
        let path = out_dir.map(|dir| {
            let file = dir.join(format!("{}.schedule", sanitize(&point.label)));
            minimal
                .save(
                    &file,
                    &[
                        format!("refuted time bound on {}", point.label),
                        format!("claimed <= {claimed}, observed {observed}"),
                        format!(
                            "found by {} after {} evaluations{}",
                            outcome.strategy,
                            outcome.evaluations,
                            if outcome.strategy == "exhaustive" {
                                format!(
                                    " ({} classes explored, {} schedules pruned)",
                                    outcome.classes_explored, outcome.schedules_pruned
                                )
                            } else {
                                String::new()
                            }
                        ),
                        format!(
                            "replay: {} drops, {} crashes, {} rejoins, {} drifts, \
                             {} past-horizon fallbacks",
                            minimal.dropped_count(),
                            minimal.crashes.len(),
                            minimal.rejoins.len(),
                            minimal.drifts.len(),
                            report.past_horizon
                        ),
                    ],
                )
                .expect("write counterexample schedule");
            file
        });
        refutations.push(Refutation {
            label: point.label.clone(),
            bound: claimed,
            observed,
            schedule: minimal,
            path,
            past_horizon: report.past_horizon,
        });
    }
    refutations
}

/// Keeps labels filesystem-safe.
fn sanitize(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '-'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_graph::generators;
    use csp_sim::{Context, DelayModel, ModelOracle};

    /// Token ring: node 0 sends a token once around the cycle.
    #[derive(Clone)]
    struct Ring {
        done: bool,
    }

    impl Process for Ring {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            if ctx.self_id() == NodeId::new(0) {
                let next = NodeId::new(1);
                ctx.send(next, 0);
            }
        }
        fn on_message(&mut self, _from: NodeId, hops: u32, ctx: &mut Context<'_, u32>) {
            let me = ctx.self_id().index();
            let n = ctx.node_count();
            if me != 0 {
                self.done = true;
                ctx.send(NodeId::new((me + 1) % n), hops + 1);
            }
        }
    }

    #[test]
    fn shrink_is_one_minimal() {
        // On a ring, completion is the sum of the token's six delays.
        // Record the all-rushed schedule (completion 6), then shrink
        // against the property "completes within 27 ticks": that needs
        // at least one rushed hop (all-worst-case completes at 30, one
        // rush gives 26), so the minimal schedule has exactly one.
        let g = generators::cycle(6, |_| 5);
        let make = |_: NodeId, _: &WeightedGraph| Ring { done: false };
        let mut rec = Recorder::new(ModelOracle::new(DelayModel::Eager, 0));
        let run = Simulator::new(&g).run_with_oracle(&mut rec, make).unwrap();
        assert_eq!(run.cost.completion, SimTime::new(6));
        let all_rushed = rec.into_schedule(Fallback::WorstCase);
        assert_eq!(all_rushed.rushed(), 6);
        let (t, minimal) = shrink(&g, &make, &all_rushed, |t| t.get() <= 27);
        assert_eq!(minimal.rushed(), 1);
        assert_eq!(t, SimTime::new(26));
    }

    #[test]
    fn shrink_discards_needless_faults_and_keeps_the_load_bearing_drop() {
        // Fault-free, the six-hop ring always completes at >= 6 ticks;
        // finishing earlier requires losing the token. Start from a
        // maximally faulty schedule — every hop rushed AND dropped, plus
        // a crash — and shrink against "completes before tick 6". The
        // crash and all but one drop are noise: 1-minimal keeps a single
        // dropped decision and nothing else interesting.
        let g = generators::cycle(6, |_| 5);
        let make = |_: NodeId, _: &WeightedGraph| Ring { done: false };
        let mut rec = Recorder::new(ModelOracle::new(DelayModel::Eager, 0));
        Simulator::new(&g).run_with_oracle(&mut rec, make).unwrap();
        let mut faulty = rec.into_schedule(Fallback::WorstCase);
        for d in &mut faulty.decisions {
            d.dropped = true;
        }
        faulty.crashes.push(crate::schedule::Crash {
            node: NodeId::new(3),
            at: 2,
        });
        let (t, minimal) = shrink(&g, &make, &faulty, |t| t.get() < 6);
        assert!(t.get() < 6);
        assert_eq!(minimal.dropped_count(), 1);
        assert_eq!(minimal.rushed(), 0);
        assert!(minimal.crashes.is_empty(), "the crash was not load-bearing");
    }

    #[test]
    fn shrink_pushes_the_crash_time_to_the_latest_violating_tick() {
        // An eager six-ring completes at tick 6; beheading the token at
        // vertex 3 is the only way to finish earlier, and only works
        // while the token has not passed. In the *final* shrunk witness
        // the first two hops stay rushed (completion must stay under 6)
        // but the third hop is reverted to its full weight 5, so the
        // token reaches the victim at t = 1+1+5 = 7 — and a crash at the
        // instant of delivery still consumes it. Shrinking a crash
        // planted at t=1 must therefore land on exactly t=7, 1-minimal
        // in the time coordinate against the witness's own transcript.
        let g = generators::cycle(6, |_| 5);
        let make = |_: NodeId, _: &WeightedGraph| Ring { done: false };
        let mut rec = Recorder::new(ModelOracle::new(DelayModel::Eager, 0));
        Simulator::new(&g).run_with_oracle(&mut rec, make).unwrap();
        let mut faulty = rec.into_schedule(Fallback::WorstCase);
        faulty.crashes.push(crate::schedule::Crash {
            node: NodeId::new(3),
            at: 1,
        });
        let (t, minimal) = shrink(&g, &make, &faulty, |t| t.get() < 6);
        assert!(t.get() < 6);
        assert_eq!(minimal.crashes.len(), 1, "the crash is load-bearing");
        assert_eq!(minimal.rushed(), 2, "only the completion-critical hops");
        assert_eq!(minimal.crashes[0].at, 7, "latest violating tick");
        // 1-minimality beyond what shrink itself claims: one more tick
        // (or removal) lets the token slip past and the refutation dies.
        let mut later = minimal.clone();
        later.crashes[0].at = 8;
        let run = crate::replay(&g, make, &later);
        assert!(run.cost.completion.get() >= 6, "t=8 must not violate");
        let mut removed = minimal.clone();
        removed.crashes.clear();
        let run = crate::replay(&g, make, &removed);
        assert!(run.cost.completion.get() >= 6, "removal must not violate");
    }

    #[test]
    fn shrink_truncates_churn_chains_and_discards_needless_drift() {
        // Beheading the token at vertex 3 (crash at t=2, before the
        // eager token arrives at t=3) is load-bearing for "completes
        // before tick 6". The rejoin at 50, the recrash at 60 and the
        // drift all land after quiescence — pure noise the shrinker
        // must strip, truncating the crash–rejoin–recrash chain back to
        // the plain crash.
        let g = generators::cycle(6, |_| 5);
        let make = |_: NodeId, _: &WeightedGraph| Ring { done: false };
        let mut rec = Recorder::new(ModelOracle::new(DelayModel::Eager, 0));
        Simulator::new(&g).run_with_oracle(&mut rec, make).unwrap();
        let mut faulty = rec.into_schedule(Fallback::WorstCase);
        faulty.crashes.push(crate::schedule::Crash {
            node: NodeId::new(3),
            at: 2,
        });
        faulty.rejoins.push(crate::schedule::Rejoin {
            node: NodeId::new(3),
            at: 50,
        });
        faulty.crashes.push(crate::schedule::Crash {
            node: NodeId::new(3),
            at: 60,
        });
        faulty.drifts.push(crate::schedule::Drift {
            edge: faulty.decisions[0].edge,
            at: 40,
            weight: 2,
        });
        let (t, minimal) = shrink(&g, &make, &faulty, |t| t.get() < 6);
        assert!(t.get() < 6);
        assert_eq!(minimal.crashes.len(), 1, "the opening crash survives");
        assert!(minimal.rejoins.is_empty(), "the rejoin was noise");
        assert!(minimal.drifts.is_empty(), "the drift was noise");
        assert!(!minimal.has_churn(), "back to plain crash-stop");
    }

    #[test]
    fn shrink_keeps_a_load_bearing_rejoin_and_pushes_the_crash_below_it() {
        // A rejoin restarts the vertex with fresh state, so `on_start`
        // runs again — and on the token ring only vertex 0 launches a
        // token from `on_start`. Crash vertex 0 at t=1 (its first token
        // is already in flight) and rejoin it at t=10: the restarted
        // incarnation launches a *second* lap, whose hops replay past
        // the recorded horizon at worst-case weight 5, completing around
        // t = 10 + 6·5 = 40. The violation "still running at t >= 35" is
        // achievable only through the rejoin: six hops at full weight
        // complete by t = 30, so no delay stretching reaches 35 without
        // the second lap. The crash time is then pushed as late as its chain
        // allows — any t in [1, 9] leaves the restart intact, so the
        // 1-minimal witness crashes at 9, strictly below the rejoin.
        let g = generators::cycle(6, |_| 5);
        let make = |_: NodeId, _: &WeightedGraph| Ring { done: false };
        let mut rec = Recorder::new(ModelOracle::new(DelayModel::Eager, 0));
        Simulator::new(&g).run_with_oracle(&mut rec, make).unwrap();
        let mut faulty = rec.into_schedule(Fallback::WorstCase);
        faulty.crashes.push(crate::schedule::Crash {
            node: NodeId::new(0),
            at: 1,
        });
        faulty.rejoins.push(crate::schedule::Rejoin {
            node: NodeId::new(0),
            at: 10,
        });
        let (t, minimal) = shrink(&g, &make, &faulty, |t| t.get() >= 35);
        assert!(t.get() >= 35);
        assert_eq!(
            minimal.churn_of(NodeId::new(0)),
            vec![9, 10],
            "crash and rejoin both survive; the crash sits just below \
             the rejoin"
        );
        assert!(minimal.has_churn());
        // Dropping the rejoin (the truncation the shrinker rejected)
        // kills the second lap and with it the violation.
        let mut truncated = minimal.clone();
        truncated.rejoins.clear();
        let run = crate::replay(&g, make, &truncated);
        assert!(run.cost.completion.get() < 35);
    }

    #[test]
    fn shrink_returns_input_when_not_violating() {
        let g = generators::cycle(4, |_| 3);
        let make = |_: NodeId, _: &WeightedGraph| Ring { done: false };
        let cfg = SearchConfig::builder()
            .random_probes(2)
            .hill_rounds(0)
            .candidates_per_round(1)
            .build()
            .unwrap();
        let outcome = find_worst_schedule(&g, make, &cfg);
        let (t, s) = shrink(&g, &make, &outcome.schedule, |t| t.get() > 10_000);
        assert!(t.get() <= 10_000);
        assert_eq!(s.decisions.len(), outcome.schedule.decisions.len());
    }

    #[test]
    fn check_time_bound_refutes_and_writes_counterexample() {
        let dir = std::env::temp_dir().join("csp-adversary-refute-test");
        std::fs::create_dir_all(&dir).unwrap();
        let grid = vec![GridPoint {
            label: "cycle n=5 w=4".to_string(),
            graph: generators::cycle(5, |_| 4),
        }];
        // The true worst case is 5·4 = 20; claiming 10 must be refuted.
        let refs = check_time_bound(
            &grid,
            |_: NodeId, _: &WeightedGraph| Ring { done: false },
            |_| 10,
            &SearchConfig::builder()
                .random_probes(2)
                .hill_rounds(0)
                .candidates_per_round(1)
                .build()
                .unwrap(),
            Some(&dir),
        );
        assert_eq!(refs.len(), 1);
        let r = &refs[0];
        assert!(r.observed.get() > 10);
        let path = r.path.as_ref().unwrap();
        assert_eq!(path.file_name().unwrap(), "cycle-n-5-w-4.schedule");
        let loaded = Schedule::load(path).unwrap();
        assert_eq!(loaded, r.schedule);
        // And an unrefutable bound stays unrefuted.
        let none = check_time_bound(
            &grid,
            |_: NodeId, _: &WeightedGraph| Ring { done: false },
            |_| 1_000_000,
            &SearchConfig::default(),
            None,
        );
        assert!(none.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn exhaustive_mode_refutes_through_the_explorer() {
        // On a cycle the token's path is a single dependent chain — every
        // delay vector realizes the same delivery-order class, so the
        // explorer evaluates exactly one class and its worst case is the
        // true worst case (5·4 = 20).
        let grid = vec![GridPoint {
            label: "cycle-n5-exhaustive".to_string(),
            graph: generators::cycle(5, |_| 4),
        }];
        let cfg = SearchConfig::builder().exhaustive(64).build().unwrap();
        let refs = check_time_bound(
            &grid,
            |_: NodeId, _: &WeightedGraph| Ring { done: false },
            |_| 10,
            &cfg,
            None,
        );
        assert_eq!(refs.len(), 1);
        assert_eq!(refs[0].observed, SimTime::new(20), "true worst case");
        // The same explorer run cannot refute the true bound.
        let none = check_time_bound(
            &grid,
            |_: NodeId, _: &WeightedGraph| Ring { done: false },
            |_| 20,
            &cfg,
            None,
        );
        assert!(none.is_empty());
    }
}
