//! Recorded delay schedules: the serializable unit of adversarial state.
//!
//! A [`Schedule`] is the complete transcript of one run's delay
//! decisions, one [`Decision`] per metered send in dispatch order.
//! Because the simulator is deterministic given an oracle, replaying a
//! schedule (see [`crate::ScheduleOracle`]) reproduces the run exactly —
//! same [`CostReport`](csp_sim::CostReport), same trace, same final
//! states. Mutated or truncated schedules may diverge from the run that
//! produced them; past the recorded prefix (or on an edge mismatch) the
//! replay oracle falls back to the schedule's [`Fallback`] policy.
//!
//! # Text format
//!
//! Schedules serialize to a line-oriented plain-text format (no external
//! dependencies):
//!
//! ```text
//! csp-adversary-schedule v1
//! fallback worst-case
//! # index edge dir weight delay
//! d 0 3 1 16 16
//! d 1 7 0 4 1
//! ```
//!
//! Blank lines and `#` comments are ignored anywhere, so counterexample
//! files can carry a human-readable header.

use csp_graph::EdgeId;
use std::error::Error;
use std::fmt;
use std::path::Path;

/// One recorded delay decision: the i-th metered send of the run took
/// `delay` ticks on `edge`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Decision {
    /// Global dispatch index (0-based send order) — matches
    /// [`MsgInfo::index`](csp_sim::MsgInfo::index).
    pub index: u64,
    /// The edge the message crossed.
    pub edge: EdgeId,
    /// Direction bit, as in [`MsgInfo::dir`](csp_sim::MsgInfo::dir).
    pub dir: u8,
    /// Weight of the edge at record time (delays live in `[1, weight]`).
    pub weight: u64,
    /// The delay taken, in ticks.
    pub delay: u64,
}

/// What the replay oracle does beyond the recorded prefix, or when the
/// run diverges from the recording (different edge or direction at some
/// index).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Fallback {
    /// Unrecorded messages take the full edge weight — reverting toward
    /// [`DelayModel::WorstCase`](csp_sim::DelayModel::WorstCase), the
    /// policy shrinking drives schedules to.
    #[default]
    WorstCase,
    /// Unrecorded messages take one tick.
    Rush,
}

/// A deterministic, serializable record of every delay decision of a run.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Schedule {
    /// Decisions in dispatch order; position `i` holds index `i`.
    pub decisions: Vec<Decision>,
    /// Policy for messages beyond (or diverging from) the recording.
    pub fallback: Fallback,
}

impl Schedule {
    /// Number of recorded decisions.
    pub fn len(&self) -> usize {
        self.decisions.len()
    }

    /// Whether the schedule records no decisions at all.
    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty()
    }

    /// Number of decisions strictly faster than the worst case
    /// (`delay < weight`) — the "interesting" part of an adversarial
    /// schedule, and the quantity shrinking minimizes.
    pub fn rushed(&self) -> usize {
        self.decisions.iter().filter(|d| d.delay < d.weight).count()
    }

    /// Serializes to the plain-text format described in the
    /// [module docs](self).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("csp-adversary-schedule v1\n");
        out.push_str(match self.fallback {
            Fallback::WorstCase => "fallback worst-case\n",
            Fallback::Rush => "fallback rush\n",
        });
        out.push_str("# index edge dir weight delay\n");
        for d in &self.decisions {
            out.push_str(&format!(
                "d {} {} {} {} {}\n",
                d.index,
                d.edge.index(),
                d.dir,
                d.weight,
                d.delay
            ));
        }
        out
    }

    /// Parses the plain-text format.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] naming the offending line on malformed
    /// input: wrong header, unknown fallback, non-contiguous indices or
    /// a delay outside `[1, weight]`.
    pub fn from_text(text: &str) -> Result<Schedule, ParseError> {
        let fail = |line: usize, msg: &str| ParseError {
            line,
            msg: msg.to_string(),
        };
        let mut lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.trim()))
            .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));

        let (ln, header) = lines.next().ok_or_else(|| fail(0, "empty schedule"))?;
        if header != "csp-adversary-schedule v1" {
            return Err(fail(ln, "expected header `csp-adversary-schedule v1`"));
        }
        let (ln, fb) = lines
            .next()
            .ok_or_else(|| fail(0, "missing `fallback` line"))?;
        let fallback = match fb {
            "fallback worst-case" => Fallback::WorstCase,
            "fallback rush" => Fallback::Rush,
            _ => {
                return Err(fail(
                    ln,
                    "expected `fallback worst-case` or `fallback rush`",
                ))
            }
        };

        let mut decisions = Vec::new();
        for (ln, line) in lines {
            let mut parts = line.split_ascii_whitespace();
            if parts.next() != Some("d") {
                return Err(fail(
                    ln,
                    "expected decision line `d <index> <edge> <dir> <weight> <delay>`",
                ));
            }
            let mut num = |what: &str| -> Result<u64, ParseError> {
                parts
                    .next()
                    .ok_or_else(|| fail(ln, &format!("missing {what}")))?
                    .parse::<u64>()
                    .map_err(|_| fail(ln, &format!("malformed {what}")))
            };
            let index = num("index")?;
            let edge = num("edge")?;
            let dir = num("dir")?;
            let weight = num("weight")?;
            let delay = num("delay")?;
            if parts.next().is_some() {
                return Err(fail(ln, "trailing tokens on decision line"));
            }
            if index != decisions.len() as u64 {
                return Err(fail(ln, "decision indices must be contiguous from 0"));
            }
            if dir > 1 {
                return Err(fail(ln, "dir must be 0 or 1"));
            }
            if weight == 0 || delay == 0 || delay > weight {
                return Err(fail(ln, "delay must lie in [1, weight]"));
            }
            decisions.push(Decision {
                index,
                edge: EdgeId::new(edge as usize),
                dir: dir as u8,
                weight,
                delay,
            });
        }
        Ok(Schedule {
            decisions,
            fallback,
        })
    }

    /// Writes the schedule to `path`, prefixing `header` lines as `#`
    /// comments (pass `&[]` for none). Decision lines stream through a
    /// [`BufWriter`](std::io::BufWriter), so large schedules (searched
    /// runs easily record tens of thousands of decisions) never
    /// materialize as one giant in-memory string.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn save(&self, path: &Path, header: &[String]) -> std::io::Result<()> {
        use std::io::Write;
        let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
        for h in header {
            writeln!(w, "# {h}")?;
        }
        writeln!(w, "csp-adversary-schedule v1")?;
        match self.fallback {
            Fallback::WorstCase => writeln!(w, "fallback worst-case")?,
            Fallback::Rush => writeln!(w, "fallback rush")?,
        }
        writeln!(w, "# index edge dir weight delay")?;
        for d in &self.decisions {
            writeln!(
                w,
                "d {} {} {} {} {}",
                d.index,
                d.edge.index(),
                d.dir,
                d.weight,
                d.delay
            )?;
        }
        w.flush()
    }

    /// Reads and parses a schedule from `path`, buffering the read.
    ///
    /// # Errors
    ///
    /// I/O errors pass through; parse failures surface as
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn load(path: &Path) -> std::io::Result<Schedule> {
        use std::io::Read;
        let mut text = String::new();
        std::io::BufReader::new(std::fs::File::open(path)?).read_to_string(&mut text)?;
        Schedule::from_text(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

/// A malformed schedule file.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// 1-based line number of the offending line (0 when the input ended
    /// early).
    pub line: usize,
    /// What was wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "schedule parse error at line {}: {}",
            self.line, self.msg
        )
    }
}

impl Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schedule {
        Schedule {
            decisions: vec![
                Decision {
                    index: 0,
                    edge: EdgeId::new(3),
                    dir: 1,
                    weight: 16,
                    delay: 16,
                },
                Decision {
                    index: 1,
                    edge: EdgeId::new(7),
                    dir: 0,
                    weight: 4,
                    delay: 1,
                },
            ],
            fallback: Fallback::Rush,
        }
    }

    #[test]
    fn text_round_trip() {
        let s = sample();
        assert_eq!(Schedule::from_text(&s.to_text()).unwrap(), s);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = format!("# counterexample\n\n{}\n# trailing\n", sample().to_text());
        assert_eq!(Schedule::from_text(&text).unwrap(), sample());
    }

    #[test]
    fn rushed_counts_sub_worst_case_decisions() {
        assert_eq!(sample().rushed(), 1);
    }

    #[test]
    fn save_load_round_trips_a_large_schedule() {
        // 10k+ decisions: exercises the buffered writer/reader paths on a
        // schedule the size the search actually records.
        let decisions: Vec<Decision> = (0..10_500u64)
            .map(|i| Decision {
                index: i,
                edge: EdgeId::new((i % 37) as usize),
                dir: (i % 2) as u8,
                weight: 1 + i % 50,
                delay: 1 + (i * 7) % (1 + i % 50),
            })
            .collect();
        let s = Schedule {
            decisions,
            fallback: Fallback::Rush,
        };
        let path = std::env::temp_dir().join("csp-adversary-large-roundtrip.schedule");
        s.save(&path, &["large round-trip".to_string()]).unwrap();
        let loaded = Schedule::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded, s);
    }

    #[test]
    fn parse_rejects_bad_input() {
        for (text, expect) in [
            ("", "empty"),
            ("wrong header", "header"),
            ("csp-adversary-schedule v1\nfallback maybe", "fallback"),
            (
                "csp-adversary-schedule v1\nfallback rush\nd 1 0 0 5 5",
                "contiguous",
            ),
            (
                "csp-adversary-schedule v1\nfallback rush\nd 0 0 0 5 9",
                "[1, weight]",
            ),
            (
                "csp-adversary-schedule v1\nfallback rush\nd 0 0 2 5 5",
                "dir",
            ),
            (
                "csp-adversary-schedule v1\nfallback rush\nd 0 0 0 5",
                "missing delay",
            ),
        ] {
            let err = Schedule::from_text(text).unwrap_err();
            assert!(
                err.msg.contains(expect) || err.to_string().contains(expect),
                "input {text:?} gave {err}"
            );
        }
    }
}
