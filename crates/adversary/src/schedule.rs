//! Recorded fault schedules: the serializable unit of adversarial state.
//!
//! A [`Schedule`] is the complete transcript of one run's link
//! decisions, one [`Decision`] per metered send in dispatch order —
//! its delay, or the fact that it was dropped — plus the run's
//! [`Crash`] assignment. Because the simulator is deterministic given
//! an oracle, replaying a schedule (see [`crate::ScheduleOracle`])
//! reproduces the run exactly — same
//! [`CostReport`](csp_sim::CostReport), same trace, same final states.
//! Mutated or truncated schedules may diverge from the run that
//! produced them; past the recorded prefix (or on an edge mismatch) the
//! replay oracle falls back to the schedule's [`Fallback`] policy.
//!
//! # Text format
//!
//! Schedules serialize to a line-oriented plain-text format (no external
//! dependencies). A delay-only schedule keeps the original `v1` dialect,
//! so previously committed witnesses parse and regenerate unchanged:
//!
//! ```text
//! csp-adversary-schedule v1
//! fallback worst-case
//! # index edge dir weight delay
//! d 0 3 1 16 16
//! d 1 7 0 4 1
//! ```
//!
//! A schedule carrying faults serializes as `v2`, which adds `x` lines
//! for dropped sends (no delay — the message never arrives) and `c`
//! lines for crashed vertices:
//!
//! ```text
//! csp-adversary-schedule v2
//! fallback worst-case
//! c 3 120
//! # index edge dir weight delay
//! d 0 3 1 16 16
//! x 1 7 0 4
//! ```
//!
//! A schedule carrying *churn* — rejoins or mid-run weight drift —
//! serializes as `v3`, which adds `r` lines for rejoined vertices and
//! `w` lines for weight revisions. Under `v3` a vertex may crash again
//! after a rejoin, so a node can own several `c` lines; per vertex the
//! merged crash/rejoin times must strictly increase and alternate
//! starting with a crash (the [`ChurnOracle`](csp_sim::ChurnOracle)
//! toggle discipline):
//!
//! ```text
//! csp-adversary-schedule v3
//! fallback worst-case
//! c 3 20
//! c 3 200
//! r 3 120
//! w 7 60 9
//! # index edge dir weight delay
//! d 0 3 1 16 16
//! x 1 7 0 4
//! ```
//!
//! All three dialects are accepted by [`Schedule::from_text`], and
//! emission always picks the *oldest* dialect that can express the
//! schedule (`v1` delay-only, `v2` faults, `v3` churn), so previously
//! committed witnesses parse and regenerate byte-identically. Blank
//! lines and `#` comments are ignored anywhere, so counterexample files
//! can carry a human-readable header.

use csp_graph::{EdgeId, NodeId};
use std::error::Error;
use std::fmt;
use std::path::Path;

/// One recorded link decision: what happened to the i-th metered send
/// of the run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Decision {
    /// Global dispatch index (0-based send order) — matches
    /// [`MsgInfo::index`](csp_sim::MsgInfo::index).
    pub index: u64,
    /// The edge the message crossed.
    pub edge: EdgeId,
    /// Direction bit, as in [`MsgInfo::dir`](csp_sim::MsgInfo::dir).
    pub dir: u8,
    /// Weight of the edge at record time (delays live in `[1, weight]`).
    pub weight: u64,
    /// The delay taken, in ticks. Meaningless when [`Decision::dropped`]
    /// is set (kept admissible so mutation can toggle the drop off).
    pub delay: u64,
    /// Whether the adversary dropped the message instead of delivering
    /// it: the send was metered but nothing arrived.
    pub dropped: bool,
}

impl Decision {
    /// The directed channel the message travelled: `2·edge + dir`.
    /// Per-directed-channel FIFO makes "the k-th decision on channel c"
    /// well defined independently of global interleaving — the key the
    /// trace machinery ([`crate::trace`]) replays and deduplicates by.
    pub fn channel(&self) -> usize {
        2 * self.edge.index() + self.dir as usize
    }
}

/// A crashed vertex: from `at` onward it silently consumes every
/// delivery and timer without reacting — until a matching [`Rejoin`],
/// if the schedule carries one.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Crash {
    /// The vertex that crashes.
    pub node: NodeId,
    /// The time it crashes (inclusive; `0` suppresses even `on_start`).
    pub at: u64,
}

/// A rejoined vertex: at `at` it restarts with fresh protocol state
/// (its `on_start` runs again). Every rejoin must pair with an earlier
/// [`Crash`] of the same vertex — per vertex the merged crash/rejoin
/// times alternate starting with a crash.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Rejoin {
    /// The vertex that recovers.
    pub node: NodeId,
    /// The time it restarts.
    pub at: u64,
}

/// A mid-run edge-weight revision: from `at` onward delays on the edge
/// clamp into the new `[1, weight]`, sends meter at the new weight, and
/// failure-detector horizons follow it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Drift {
    /// The revised edge.
    pub edge: EdgeId,
    /// The time the revision takes effect (inclusive).
    pub at: u64,
    /// The new weight (≥ 1).
    pub weight: u64,
}

/// What the replay oracle does beyond the recorded prefix, or when the
/// run diverges from the recording (different edge or direction at some
/// index).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Fallback {
    /// Unrecorded messages take the full edge weight — reverting toward
    /// [`DelayModel::WorstCase`](csp_sim::DelayModel::WorstCase), the
    /// policy shrinking drives schedules to.
    #[default]
    WorstCase,
    /// Unrecorded messages take one tick.
    Rush,
}

/// A deterministic, serializable record of every link decision of a run.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Schedule {
    /// Decisions in dispatch order; position `i` holds index `i`.
    pub decisions: Vec<Decision>,
    /// Policy for messages beyond (or diverging from) the recording.
    pub fallback: Fallback,
    /// Vertices the adversary crashes. Without churn, at most one entry
    /// per vertex; with rejoins a vertex may crash repeatedly, once per
    /// alternation cycle (see [`Schedule::churn_of`]).
    pub crashes: Vec<Crash>,
    /// Vertices the adversary restarts, each pairing with an earlier
    /// crash of the same vertex.
    pub rejoins: Vec<Rejoin>,
    /// Mid-run weight revisions, in plan order (the runtime applies
    /// same-instant revisions in plan order after a stable sort by
    /// time).
    pub drifts: Vec<Drift>,
}

impl Schedule {
    /// Number of recorded decisions.
    pub fn len(&self) -> usize {
        self.decisions.len()
    }

    /// Whether the schedule records no decisions at all.
    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty()
    }

    /// Number of delivered decisions strictly faster than the worst case
    /// (`delay < weight`) — together with [`Schedule::dropped_count`] the
    /// "interesting" part of an adversarial schedule, and the quantity
    /// shrinking minimizes.
    pub fn rushed(&self) -> usize {
        self.decisions
            .iter()
            .filter(|d| !d.dropped && d.delay < d.weight)
            .count()
    }

    /// Number of dropped decisions.
    pub fn dropped_count(&self) -> usize {
        self.decisions.iter().filter(|d| d.dropped).count()
    }

    /// Whether this schedule records faults (crashes or drops) beyond
    /// pure delays — the `v2` dialect threshold.
    pub fn has_faults(&self) -> bool {
        !self.crashes.is_empty() || self.decisions.iter().any(|d| d.dropped)
    }

    /// Whether this schedule records churn (rejoins or weight drift) —
    /// the `v3` dialect threshold.
    pub fn has_churn(&self) -> bool {
        !self.rejoins.is_empty() || !self.drifts.is_empty()
    }

    /// The header line of the oldest dialect that can express this
    /// schedule — churn-free schedules keep their historical dialect,
    /// so committed witnesses stay byte-stable.
    fn dialect(&self) -> &'static str {
        if self.has_churn() {
            "csp-adversary-schedule v3"
        } else if self.has_faults() {
            "csp-adversary-schedule v2"
        } else {
            "csp-adversary-schedule v1"
        }
    }

    /// The merged crash/rejoin toggle times of `node`, sorted — exactly
    /// the per-vertex plan [`csp_sim::LinkOracle::churn_plan`] serves
    /// (odd positions are crashes, even positions rejoins). Empty for a
    /// vertex the schedule never touches.
    pub fn churn_of(&self, node: NodeId) -> Vec<u64> {
        let mut plan: Vec<u64> = self
            .crashes
            .iter()
            .filter(|c| c.node == node)
            .map(|c| c.at)
            .chain(self.rejoins.iter().filter(|r| r.node == node).map(|r| r.at))
            .collect();
        plan.sort_unstable();
        plan
    }

    /// Validates the churn discipline: per vertex the merged
    /// crash/rejoin times must strictly increase and alternate starting
    /// with a crash, and no edge may be revised twice at one instant
    /// (the two revisions would race). Returns the offending vertex or
    /// edge description on failure.
    fn validate_churn(&self) -> Result<(), String> {
        let mut nodes: Vec<NodeId> = self
            .crashes
            .iter()
            .map(|c| c.node)
            .chain(self.rejoins.iter().map(|r| r.node))
            .collect();
        nodes.sort_unstable_by_key(|v| v.index());
        nodes.dedup();
        for v in nodes {
            // Kind 0 = crash, 1 = rejoin; crashes sort first at a tie so
            // the strictly-increase check reports equal-time pairs.
            let mut toggles: Vec<(u64, u8)> = self
                .crashes
                .iter()
                .filter(|c| c.node == v)
                .map(|c| (c.at, 0))
                .chain(
                    self.rejoins
                        .iter()
                        .filter(|r| r.node == v)
                        .map(|r| (r.at, 1)),
                )
                .collect();
            toggles.sort_unstable();
            for (i, &(at, kind)) in toggles.iter().enumerate() {
                if i > 0 && toggles[i - 1].0 >= at {
                    return Err(format!(
                        "churn times for vertex {} must strictly increase",
                        v.index()
                    ));
                }
                if kind != (i % 2) as u8 {
                    return Err(format!(
                        "churn for vertex {} must alternate crash/rejoin starting with a crash",
                        v.index()
                    ));
                }
            }
        }
        for (i, d) in self.drifts.iter().enumerate() {
            if self.drifts[..i]
                .iter()
                .any(|e| e.edge == d.edge && e.at == d.at)
            {
                return Err(format!(
                    "edge {} revised twice at time {}",
                    d.edge.index(),
                    d.at
                ));
            }
        }
        Ok(())
    }

    /// Serializes to the plain-text format described in the
    /// [module docs](self): `v1` when delay-only, `v2` when faults are
    /// present, `v3` when churn is present.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(self.dialect());
        out.push('\n');
        out.push_str(match self.fallback {
            Fallback::WorstCase => "fallback worst-case\n",
            Fallback::Rush => "fallback rush\n",
        });
        for c in &self.crashes {
            out.push_str(&format!("c {} {}\n", c.node.index(), c.at));
        }
        for r in &self.rejoins {
            out.push_str(&format!("r {} {}\n", r.node.index(), r.at));
        }
        for d in &self.drifts {
            out.push_str(&format!("w {} {} {}\n", d.edge.index(), d.at, d.weight));
        }
        out.push_str("# index edge dir weight delay\n");
        for d in &self.decisions {
            if d.dropped {
                out.push_str(&format!(
                    "x {} {} {} {}\n",
                    d.index,
                    d.edge.index(),
                    d.dir,
                    d.weight
                ));
            } else {
                out.push_str(&format!(
                    "d {} {} {} {} {}\n",
                    d.index,
                    d.edge.index(),
                    d.dir,
                    d.weight,
                    d.delay
                ));
            }
        }
        out
    }

    /// Parses the plain-text format, accepting the `v1` (delay-only),
    /// `v2` (faults) and `v3` (churn) dialects.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] naming the offending line on malformed
    /// input: wrong header, unknown fallback, non-contiguous indices, a
    /// delay outside `[1, weight]`, fault lines in a `v1` file, churn
    /// lines below `v3`, a vertex crashed twice without an intervening
    /// rejoin, or a churn discipline violation (see
    /// [`Schedule::churn_of`]).
    pub fn from_text(text: &str) -> Result<Schedule, ParseError> {
        let fail = |line: usize, msg: &str| ParseError {
            line,
            msg: msg.to_string(),
        };
        let mut lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.trim()))
            .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));

        let (ln, header) = lines.next().ok_or_else(|| fail(0, "empty schedule"))?;
        let version = match header {
            "csp-adversary-schedule v1" => 1,
            "csp-adversary-schedule v2" => 2,
            "csp-adversary-schedule v3" => 3,
            _ => {
                return Err(fail(
                    ln,
                    "expected header `csp-adversary-schedule v1`, `v2` or `v3`",
                ))
            }
        };
        let (ln, fb) = lines
            .next()
            .ok_or_else(|| fail(0, "missing `fallback` line"))?;
        let fallback = match fb {
            "fallback worst-case" => Fallback::WorstCase,
            "fallback rush" => Fallback::Rush,
            _ => {
                return Err(fail(
                    ln,
                    "expected `fallback worst-case` or `fallback rush`",
                ))
            }
        };

        let mut decisions = Vec::new();
        let mut crashes: Vec<Crash> = Vec::new();
        let mut rejoins: Vec<Rejoin> = Vec::new();
        let mut drifts: Vec<Drift> = Vec::new();
        for (ln, line) in lines {
            let mut parts = line.split_ascii_whitespace();
            let kind = parts.next().expect("non-empty line has a first token");
            if version < 2 && kind != "d" {
                return Err(fail(
                    ln,
                    "expected decision line `d <index> <edge> <dir> <weight> <delay>`",
                ));
            }
            if version < 3 && matches!(kind, "r" | "w") {
                return Err(fail(ln, "churn lines require the v3 dialect"));
            }
            let mut num = |what: &str| -> Result<u64, ParseError> {
                parts
                    .next()
                    .ok_or_else(|| fail(ln, &format!("missing {what}")))?
                    .parse::<u64>()
                    .map_err(|_| fail(ln, &format!("malformed {what}")))
            };
            match kind {
                "c" => {
                    let node = num("node")?;
                    let at = num("time")?;
                    if parts.next().is_some() {
                        return Err(fail(ln, "trailing tokens on crash line"));
                    }
                    let node = NodeId::new(node as usize);
                    // Below v3 a vertex crashes at most once; under v3
                    // recrashes are legal and the alternation check at
                    // the end enforces the intervening rejoin.
                    if version < 3 && crashes.iter().any(|c| c.node == node) {
                        return Err(fail(ln, "vertex crashed twice"));
                    }
                    crashes.push(Crash { node, at });
                    continue;
                }
                "r" => {
                    let node = num("node")?;
                    let at = num("time")?;
                    if parts.next().is_some() {
                        return Err(fail(ln, "trailing tokens on rejoin line"));
                    }
                    rejoins.push(Rejoin {
                        node: NodeId::new(node as usize),
                        at,
                    });
                    continue;
                }
                "w" => {
                    let edge = num("edge")?;
                    let at = num("time")?;
                    let weight = num("weight")?;
                    if parts.next().is_some() {
                        return Err(fail(ln, "trailing tokens on drift line"));
                    }
                    if weight == 0 {
                        return Err(fail(ln, "drift weight must be at least 1"));
                    }
                    drifts.push(Drift {
                        edge: EdgeId::new(edge as usize),
                        at,
                        weight,
                    });
                    continue;
                }
                "d" | "x" => {}
                _ => return Err(fail(ln, "expected a `d`, `x`, `c`, `r` or `w` line")),
            }
            let dropped = kind == "x";
            let index = num("index")?;
            let edge = num("edge")?;
            let dir = num("dir")?;
            let weight = num("weight")?;
            let delay = if dropped { weight } else { num("delay")? };
            if parts.next().is_some() {
                return Err(fail(ln, "trailing tokens on decision line"));
            }
            if index != decisions.len() as u64 {
                return Err(fail(ln, "decision indices must be contiguous from 0"));
            }
            if dir > 1 {
                return Err(fail(ln, "dir must be 0 or 1"));
            }
            if weight == 0 || delay == 0 || delay > weight {
                return Err(fail(ln, "delay must lie in [1, weight]"));
            }
            decisions.push(Decision {
                index,
                edge: EdgeId::new(edge as usize),
                dir: dir as u8,
                weight,
                delay,
                dropped,
            });
        }
        let schedule = Schedule {
            decisions,
            fallback,
            crashes,
            rejoins,
            drifts,
        };
        schedule.validate_churn().map_err(|msg| fail(0, &msg))?;
        Ok(schedule)
    }

    /// Canonical 64-bit key of the schedule's crash, rejoin and drift
    /// assignment, order independent: two schedules with the same churn
    /// however their vectors are ordered get the same key. Churn is
    /// baked into a run at start (the plans are queried once), so
    /// *every* prefix key ([`Schedule::prefix_key`]) folds this in —
    /// schedules with different churn share no resumable prefix, no
    /// matter how their decision streams compare.
    ///
    /// Rejoins and drifts fold in under distinct salts, gated on
    /// presence, so every churn-free schedule keeps its exact
    /// historical key (committed witnesses and warm caches survive the
    /// dialect extension).
    pub fn crash_key(&self) -> u64 {
        let mut crashes: Vec<&Crash> = self.crashes.iter().collect();
        crashes.sort_by_key(|c| (c.node.index(), c.at));
        let mut h = PrefixHasher::seed();
        for c in crashes {
            h = PrefixHasher::mix(h, c.node.index() as u64);
            h = PrefixHasher::mix(h, c.at);
        }
        if !self.rejoins.is_empty() {
            let mut rejoins: Vec<&Rejoin> = self.rejoins.iter().collect();
            rejoins.sort_by_key(|r| (r.node.index(), r.at));
            h = PrefixHasher::mix(h, Self::REJOIN_SALT);
            for r in rejoins {
                h = PrefixHasher::mix(h, r.node.index() as u64);
                h = PrefixHasher::mix(h, r.at);
            }
        }
        if !self.drifts.is_empty() {
            // (edge, at) pairs are unique (validate_churn), so sorting
            // canonicalizes without conflating conflicting revisions.
            let mut drifts: Vec<&Drift> = self.drifts.iter().collect();
            drifts.sort_by_key(|d| (d.at, d.edge.index()));
            h = PrefixHasher::mix(h, Self::DRIFT_SALT);
            for d in drifts {
                h = PrefixHasher::mix(h, d.edge.index() as u64);
                h = PrefixHasher::mix(h, d.at);
                h = PrefixHasher::mix(h, d.weight);
            }
        }
        h
    }

    /// Domain separators for the churn sections of the key: a rejoin of
    /// vertex `v` at `t` must never collide with a crash of `v` at `t`.
    const REJOIN_SALT: u64 = 0x7265_6a6f_696e_2e76;
    const DRIFT_SALT: u64 = 0x6472_6966_742e_7633;

    /// Canonical key of the first `len` decisions together with the
    /// crash assignment — the cache key an incremental evaluator uses to
    /// recognise that a submitted schedule extends a checkpointed one.
    ///
    /// The [`Fallback`] policy is deliberately excluded: it only governs
    /// sends *beyond* the recorded horizon, so it cannot affect the
    /// first `len` decisions of a replay. Equal keys ⟺ (with the usual
    /// 64-bit-hash caveat) equal crash sets and bitwise-equal decision
    /// prefixes, which is exactly the [`Checkpoint`](csp_sim::Checkpoint)
    /// oracle-agreement condition for indices below `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len > self.len()`.
    pub fn prefix_key(&self, len: usize) -> u64 {
        let mut h = PrefixHasher::new(self);
        for d in &self.decisions[..len] {
            h.absorb(d);
        }
        h.key()
    }

    /// Length of the longest shared decision prefix with `other`, or `0`
    /// when the crash assignments differ (crashes apply from time zero,
    /// so differing sets invalidate even the empty prefix — see
    /// [`Schedule::crash_key`]).
    pub fn common_prefix_len(&self, other: &Schedule) -> usize {
        if self.crash_key() != other.crash_key() {
            return 0;
        }
        self.decisions
            .iter()
            .zip(&other.decisions)
            .take_while(|(a, b)| a == b)
            .count()
    }

    /// Writes the schedule to `path`, prefixing `header` lines as `#`
    /// comments (pass `&[]` for none). Decision lines stream through a
    /// [`BufWriter`](std::io::BufWriter), so large schedules (searched
    /// runs easily record tens of thousands of decisions) never
    /// materialize as one giant in-memory string.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn save(&self, path: &Path, header: &[String]) -> std::io::Result<()> {
        use std::io::Write;
        let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
        for h in header {
            writeln!(w, "# {h}")?;
        }
        writeln!(w, "{}", self.dialect())?;
        match self.fallback {
            Fallback::WorstCase => writeln!(w, "fallback worst-case")?,
            Fallback::Rush => writeln!(w, "fallback rush")?,
        }
        for c in &self.crashes {
            writeln!(w, "c {} {}", c.node.index(), c.at)?;
        }
        for r in &self.rejoins {
            writeln!(w, "r {} {}", r.node.index(), r.at)?;
        }
        for d in &self.drifts {
            writeln!(w, "w {} {} {}", d.edge.index(), d.at, d.weight)?;
        }
        writeln!(w, "# index edge dir weight delay")?;
        for d in &self.decisions {
            if d.dropped {
                writeln!(w, "x {} {} {} {}", d.index, d.edge.index(), d.dir, d.weight)?;
            } else {
                writeln!(
                    w,
                    "d {} {} {} {} {}",
                    d.index,
                    d.edge.index(),
                    d.dir,
                    d.weight,
                    d.delay
                )?;
            }
        }
        w.flush()
    }

    /// Reads and parses a schedule from `path`, buffering the read.
    ///
    /// # Errors
    ///
    /// I/O errors pass through; parse failures surface as
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn load(path: &Path) -> std::io::Result<Schedule> {
        use std::io::Read;
        let mut text = String::new();
        std::io::BufReader::new(std::fs::File::open(path)?).read_to_string(&mut text)?;
        Schedule::from_text(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

/// Incrementally computes [`Schedule::prefix_key`] one decision at a
/// time, so a consumer hashing every prefix of an `n`-decision schedule
/// (a cache probing all checkpoint depths) pays O(n) total instead of
/// the O(n²) of calling `prefix_key` per depth.
///
/// ```
/// use csp_adversary::{PrefixHasher, Schedule};
/// let s = Schedule::default();
/// let mut h = PrefixHasher::new(&s);
/// assert_eq!(h.key(), s.prefix_key(0));
/// for (i, d) in s.decisions.iter().enumerate() {
///     h.absorb(d);
///     assert_eq!(h.key(), s.prefix_key(i + 1));
/// }
/// ```
#[derive(Clone, Copy, Debug)]
pub struct PrefixHasher {
    hash: u64,
    absorbed: u64,
}

impl PrefixHasher {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

    /// Starts a hasher seeded with `schedule`'s crash key (the decision
    /// stream itself is *not* consumed — absorb decisions explicitly).
    pub fn new(schedule: &Schedule) -> Self {
        PrefixHasher {
            hash: schedule.crash_key(),
            absorbed: 0,
        }
    }

    /// The state of a hasher over the empty input.
    fn seed() -> u64 {
        Self::OFFSET
    }

    /// Folds one 64-bit word into `h`. Word-at-a-time (multiply +
    /// xor-shift, murmur-style finalizer constants): the service probes
    /// hash every decision of every submitted schedule on its accept
    /// path, so per-word cost is what bounds probe latency.
    fn mix(h: u64, word: u64) -> u64 {
        let mut x = (h ^ word).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x ^= x >> 32;
        x.wrapping_mul(0xff51_afd7_ed55_8ccd)
    }

    /// Extends the running prefix by one decision.
    pub fn absorb(&mut self, d: &Decision) {
        let mut h = self.hash;
        h = Self::mix(h, d.index);
        h = Self::mix(h, d.edge.index() as u64);
        h = Self::mix(h, u64::from(d.dir));
        h = Self::mix(h, d.weight);
        // A dropped send has no meaningful delay, but `Decision` keeps
        // an admissible one for mutation — canonicalise it away so two
        // schedules dropping the same send hash alike.
        h = Self::mix(h, if d.dropped { u64::MAX } else { d.delay });
        h = Self::mix(h, u64::from(d.dropped));
        self.hash = h;
        self.absorbed += 1;
    }

    /// The key of the prefix absorbed so far (mixes in the length, so a
    /// prefix and its extension never collide trivially).
    pub fn key(&self) -> u64 {
        Self::mix(self.hash, self.absorbed)
    }

    /// How many decisions have been absorbed.
    pub fn absorbed(&self) -> u64 {
        self.absorbed
    }
}

/// A malformed schedule file.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// 1-based line number of the offending line (0 when the input ended
    /// early).
    pub line: usize,
    /// What was wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "schedule parse error at line {}: {}",
            self.line, self.msg
        )
    }
}

impl Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schedule {
        Schedule {
            decisions: vec![
                Decision {
                    index: 0,
                    edge: EdgeId::new(3),
                    dir: 1,
                    weight: 16,
                    delay: 16,
                    dropped: false,
                },
                Decision {
                    index: 1,
                    edge: EdgeId::new(7),
                    dir: 0,
                    weight: 4,
                    delay: 1,
                    dropped: false,
                },
            ],
            fallback: Fallback::Rush,
            ..Schedule::default()
        }
    }

    fn faulty_sample() -> Schedule {
        let mut s = sample();
        s.decisions[1].dropped = true;
        s.decisions[1].delay = s.decisions[1].weight;
        s.crashes.push(Crash {
            node: NodeId::new(4),
            at: 12,
        });
        s
    }

    #[test]
    fn text_round_trip() {
        let s = sample();
        assert_eq!(Schedule::from_text(&s.to_text()).unwrap(), s);
    }

    #[test]
    fn prefix_keys_distinguish_length_content_and_crashes() {
        let s = sample();
        // Distinct depths and distinct contents get distinct keys.
        let keys: Vec<u64> = (0..=s.len()).map(|i| s.prefix_key(i)).collect();
        for i in 0..keys.len() {
            for j in (i + 1)..keys.len() {
                assert_ne!(keys[i], keys[j], "depths {i} and {j} collided");
            }
        }
        let mut tweaked = s.clone();
        tweaked.decisions[1].delay = 2;
        assert_eq!(tweaked.prefix_key(1), s.prefix_key(1));
        assert_ne!(tweaked.prefix_key(2), s.prefix_key(2));
        // Fallback is excluded: it cannot affect the recorded prefix.
        let mut refit = s.clone();
        refit.fallback = Fallback::WorstCase;
        assert_eq!(refit.prefix_key(2), s.prefix_key(2));
        // Crashes poison every depth, including the empty prefix.
        let f = faulty_sample();
        assert_ne!(f.prefix_key(0), s.prefix_key(0));
        assert_ne!(f.crash_key(), s.crash_key());
    }

    #[test]
    fn crash_key_is_order_independent() {
        let mk = |order: &[(usize, u64)]| Schedule {
            crashes: order
                .iter()
                .map(|&(n, at)| Crash {
                    node: NodeId::new(n),
                    at,
                })
                .collect(),
            ..Schedule::default()
        };
        let a = mk(&[(1, 5), (3, 9)]);
        let b = mk(&[(3, 9), (1, 5)]);
        assert_eq!(a.crash_key(), b.crash_key());
        assert_ne!(a.crash_key(), mk(&[(1, 5), (3, 10)]).crash_key());
    }

    #[test]
    fn dropped_decisions_hash_canonically() {
        // The delay slot of a dropped decision is bookkeeping for
        // mutation; two drops of the same send must share a key.
        let mut a = faulty_sample();
        let mut b = faulty_sample();
        a.decisions[1].delay = 1;
        b.decisions[1].delay = 4;
        assert_eq!(a.prefix_key(2), b.prefix_key(2));
        // But a drop never collides with a delivery at any delay.
        let delivered = sample();
        for delay in 1..=4 {
            let mut d = delivered.clone();
            d.decisions[1].delay = delay;
            assert_ne!(a.crash_key(), d.crash_key()); // crash sets differ
            let mut crashless = a.clone();
            crashless.crashes.clear();
            assert_ne!(crashless.prefix_key(2), d.prefix_key(2));
        }
    }

    #[test]
    fn incremental_hasher_matches_prefix_key() {
        let s = faulty_sample();
        let mut h = PrefixHasher::new(&s);
        assert_eq!(h.key(), s.prefix_key(0));
        for (i, d) in s.decisions.iter().enumerate() {
            h.absorb(d);
            assert_eq!(h.absorbed(), (i + 1) as u64);
            assert_eq!(h.key(), s.prefix_key(i + 1));
        }
    }

    #[test]
    fn common_prefix_len_respects_crash_sets() {
        let s = sample();
        let mut longer = s.clone();
        longer.decisions.push(Decision {
            index: 2,
            edge: EdgeId::new(1),
            dir: 0,
            weight: 9,
            delay: 3,
            dropped: false,
        });
        assert_eq!(s.common_prefix_len(&longer), 2);
        assert_eq!(longer.common_prefix_len(&s), 2);
        let mut diverged = longer.clone();
        diverged.decisions[0].delay = 3;
        assert_eq!(s.common_prefix_len(&diverged), 0);
        assert_eq!(s.common_prefix_len(&faulty_sample()), 0, "crash gate");
    }

    #[test]
    fn delay_only_schedules_stay_v1() {
        // Stability guarantee: committed delay-only witnesses must keep
        // their exact on-disk dialect.
        assert!(sample()
            .to_text()
            .starts_with("csp-adversary-schedule v1\n"));
    }

    #[test]
    fn fault_round_trip_uses_v2() {
        let s = faulty_sample();
        let text = s.to_text();
        assert!(text.starts_with("csp-adversary-schedule v2\n"));
        assert!(text.contains("\nx 1 7 0 4\n"));
        assert!(text.contains("\nc 4 12\n"));
        assert_eq!(Schedule::from_text(&text).unwrap(), s);
        assert_eq!(s.dropped_count(), 1);
        assert_eq!(s.rushed(), 0, "a dropped decision is not rushed");
    }

    #[test]
    fn fault_save_load_round_trips() {
        let s = faulty_sample();
        let path = std::env::temp_dir().join("csp-adversary-fault-roundtrip.schedule");
        s.save(&path, &["fault round-trip".to_string()]).unwrap();
        let loaded = Schedule::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded, s);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = format!("# counterexample\n\n{}\n# trailing\n", sample().to_text());
        assert_eq!(Schedule::from_text(&text).unwrap(), sample());
    }

    #[test]
    fn rushed_counts_sub_worst_case_decisions() {
        assert_eq!(sample().rushed(), 1);
    }

    #[test]
    fn save_load_round_trips_a_large_schedule() {
        // 10k+ decisions: exercises the buffered writer/reader paths on a
        // schedule the size the search actually records.
        let decisions: Vec<Decision> = (0..10_500u64)
            .map(|i| Decision {
                index: i,
                edge: EdgeId::new((i % 37) as usize),
                dir: (i % 2) as u8,
                weight: 1 + i % 50,
                // Dropped entries re-parse with delay = weight, so give
                // them exactly that for the equality round-trip.
                delay: if i % 19 == 0 {
                    1 + i % 50
                } else {
                    1 + (i * 7) % (1 + i % 50)
                },
                dropped: i % 19 == 0,
            })
            .collect();
        let s = Schedule {
            decisions,
            fallback: Fallback::Rush,
            crashes: vec![Crash {
                node: NodeId::new(2),
                at: 77,
            }],
            ..Schedule::default()
        };
        let path = std::env::temp_dir().join("csp-adversary-large-roundtrip.schedule");
        s.save(&path, &["large round-trip".to_string()]).unwrap();
        let loaded = Schedule::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded, s);
    }

    fn churny_sample() -> Schedule {
        let mut s = faulty_sample();
        s.crashes = vec![
            Crash {
                node: NodeId::new(4),
                at: 12,
            },
            Crash {
                node: NodeId::new(4),
                at: 90,
            },
        ];
        s.rejoins.push(Rejoin {
            node: NodeId::new(4),
            at: 50,
        });
        s.drifts.push(Drift {
            edge: EdgeId::new(7),
            at: 33,
            weight: 9,
        });
        s
    }

    #[test]
    fn churn_round_trip_uses_v3() {
        let s = churny_sample();
        let text = s.to_text();
        assert!(text.starts_with("csp-adversary-schedule v3\n"));
        assert!(text.contains("\nc 4 12\n"));
        assert!(text.contains("\nc 4 90\n"));
        assert!(text.contains("\nr 4 50\n"));
        assert!(text.contains("\nw 7 33 9\n"));
        assert_eq!(Schedule::from_text(&text).unwrap(), s);
        assert!(s.has_churn());
        assert!(!faulty_sample().has_churn(), "fault-only stays below v3");
    }

    #[test]
    fn churn_save_load_round_trips() {
        let s = churny_sample();
        let path = std::env::temp_dir().join("csp-adversary-churn-roundtrip.schedule");
        s.save(&path, &["churn round-trip".to_string()]).unwrap();
        let loaded = Schedule::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded, s);
    }

    #[test]
    fn churn_of_merges_crashes_and_rejoins_sorted() {
        let s = churny_sample();
        assert_eq!(s.churn_of(NodeId::new(4)), vec![12, 50, 90]);
        assert_eq!(s.churn_of(NodeId::new(0)), Vec::<u64>::new());
    }

    #[test]
    fn churn_folds_into_crash_key_with_distinct_salts() {
        let base = faulty_sample();
        let churny = churny_sample();
        assert_ne!(base.crash_key(), churny.crash_key());
        // A rejoin at t must not hash like an extra crash at t.
        let mut rejoined = faulty_sample();
        rejoined.rejoins.push(Rejoin {
            node: NodeId::new(4),
            at: 50,
        });
        let mut recrashed = faulty_sample();
        recrashed.crashes.push(Crash {
            node: NodeId::new(4),
            at: 50,
        });
        assert_ne!(rejoined.crash_key(), recrashed.crash_key());
        // Rejoin order is canonicalized; drift sets are compared as
        // (edge, at, weight) sets.
        let mut a = churny_sample();
        let mut b = churny_sample();
        a.drifts.push(Drift {
            edge: EdgeId::new(2),
            at: 5,
            weight: 3,
        });
        b.drifts.insert(
            0,
            Drift {
                edge: EdgeId::new(2),
                at: 5,
                weight: 3,
            },
        );
        assert_eq!(a.crash_key(), b.crash_key());
        // Prefix keys inherit the gate: different churn, no shared
        // prefix at any depth.
        assert_ne!(churny.prefix_key(0), base.prefix_key(0));
        assert_eq!(base.common_prefix_len(&churny), 0);
    }

    #[test]
    fn parse_rejects_bad_churn() {
        for (text, expect) in [
            (
                // Churn lines below v3.
                "csp-adversary-schedule v2\nfallback rush\nc 1 5\nr 1 9",
                "require the v3 dialect",
            ),
            (
                "csp-adversary-schedule v2\nfallback rush\nw 0 5 3",
                "require the v3 dialect",
            ),
            (
                // Rejoin with no preceding crash.
                "csp-adversary-schedule v3\nfallback rush\nr 1 9",
                "starting with a crash",
            ),
            (
                // Recrash without an intervening rejoin.
                "csp-adversary-schedule v3\nfallback rush\nc 1 5\nc 1 9",
                "alternate crash/rejoin",
            ),
            (
                // Rejoin at the crash instant.
                "csp-adversary-schedule v3\nfallback rush\nc 1 5\nr 1 5",
                "strictly increase",
            ),
            (
                "csp-adversary-schedule v3\nfallback rush\nw 0 5 0",
                "at least 1",
            ),
            (
                // Two revisions of one edge at one instant race.
                "csp-adversary-schedule v3\nfallback rush\nw 0 5 3\nw 0 5 4",
                "revised twice",
            ),
            (
                "csp-adversary-schedule v3\nfallback rush\nr 1 9 7",
                "trailing tokens on rejoin line",
            ),
        ] {
            let err = Schedule::from_text(text).unwrap_err();
            assert!(err.msg.contains(expect), "input {text:?} gave {err}");
        }
        // v3 legitimizes a recrash when the rejoin intervenes.
        let ok = "csp-adversary-schedule v3\nfallback rush\nc 1 5\nr 1 9\nc 1 12";
        assert_eq!(
            Schedule::from_text(ok).unwrap().churn_of(NodeId::new(1)),
            vec![5, 9, 12]
        );
    }

    #[test]
    fn parse_rejects_bad_input() {
        for (text, expect) in [
            ("", "empty"),
            ("wrong header", "header"),
            (
                // v1 files must not carry fault lines.
                "csp-adversary-schedule v1\nfallback rush\nx 0 0 0 5",
                "expected decision line",
            ),
            (
                "csp-adversary-schedule v2\nfallback rush\nc 1 0\nc 1 9",
                "crashed twice",
            ),
            (
                "csp-adversary-schedule v2\nfallback rush\nq 0 0 0 5",
                "`d`, `x`, `c`, `r` or `w`",
            ),
            ("csp-adversary-schedule v1\nfallback maybe", "fallback"),
            (
                "csp-adversary-schedule v1\nfallback rush\nd 1 0 0 5 5",
                "contiguous",
            ),
            (
                "csp-adversary-schedule v1\nfallback rush\nd 0 0 0 5 9",
                "[1, weight]",
            ),
            (
                "csp-adversary-schedule v1\nfallback rush\nd 0 0 2 5 5",
                "dir",
            ),
            (
                "csp-adversary-schedule v1\nfallback rush\nd 0 0 0 5",
                "missing delay",
            ),
        ] {
            let err = Schedule::from_text(text).unwrap_err();
            assert!(
                err.msg.contains(expect) || err.to_string().contains(expect),
                "input {text:?} gave {err}"
            );
        }
    }
}
