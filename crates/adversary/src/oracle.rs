//! Delay oracles built on the [`csp_sim::DelayOracle`] hook: recording,
//! replay and the critical-path greedy adversary.

use crate::schedule::{Decision, Fallback, Schedule};
use csp_sim::{DelayOracle, MsgInfo};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Wraps any oracle and records every decision it makes, producing a
/// [`Schedule`] that replays the run exactly.
///
/// The recorded delay is the *effective* one — clamped into
/// `[1, w(e)]` exactly as the runtime clamps it — so a recording never
/// disagrees with the run it transcribed.
#[derive(Clone, Debug)]
pub struct Recorder<O> {
    inner: O,
    decisions: Vec<Decision>,
    /// Message index the recording starts at — non-zero when transcribing
    /// a run resumed from a [`csp_sim::Checkpoint`], whose first decision
    /// carries the checkpoint's message count as its index.
    offset: u64,
}

impl<O: DelayOracle> Recorder<O> {
    /// Starts recording on top of `inner`.
    pub fn new(inner: O) -> Self {
        Self::with_offset(inner, 0)
    }

    /// Starts recording a run that resumes mid-schedule: the first
    /// decision observed is expected to carry index `start_index`.
    /// [`Recorder::into_decisions`] then yields only the suffix, to be
    /// spliced after the prefix the checkpoint already covers.
    pub fn with_offset(inner: O, start_index: u64) -> Self {
        Recorder {
            inner,
            decisions: Vec::new(),
            offset: start_index,
        }
    }

    /// Finishes the recording into a schedule with the given fallback.
    ///
    /// Only meaningful for recordings started at index 0 ([`Recorder::new`]);
    /// offset recordings are a suffix, not a standalone schedule.
    pub fn into_schedule(self, fallback: Fallback) -> Schedule {
        debug_assert_eq!(self.offset, 0, "offset recordings are not full schedules");
        Schedule {
            decisions: self.decisions,
            fallback,
        }
    }

    /// The raw recorded decisions, in dispatch order, starting at the
    /// recorder's offset.
    pub fn into_decisions(self) -> Vec<Decision> {
        self.decisions
    }
}

impl<O: DelayOracle> DelayOracle for Recorder<O> {
    fn delay(&mut self, msg: &MsgInfo) -> u64 {
        let d = self.inner.delay(msg).clamp(1, msg.weight.get());
        debug_assert_eq!(msg.index, self.offset + self.decisions.len() as u64);
        self.decisions.push(Decision {
            index: msg.index,
            edge: msg.edge,
            dir: msg.dir,
            weight: msg.weight.get(),
            delay: d,
        });
        d
    }
}

/// Replays a [`Schedule`]: message `i` takes the recorded delay of
/// decision `i`, as long as the run still dispatches the same message
/// (same edge and direction) at that index.
///
/// Past the recorded prefix — or at any mismatching index, which happens
/// when a *mutated* schedule steers the protocol down a different path —
/// the oracle applies the schedule's [`Fallback`] and counts the event in
/// [`ScheduleOracle::divergences`]. A faithful replay of an unmodified
/// recording never diverges (asserted in the adversary test suite).
#[derive(Clone, Debug)]
pub struct ScheduleOracle<'s> {
    schedule: &'s Schedule,
    /// How many decisions fell through to the fallback policy.
    pub divergences: u64,
}

impl<'s> ScheduleOracle<'s> {
    /// Replays `schedule`.
    pub fn new(schedule: &'s Schedule) -> Self {
        ScheduleOracle {
            schedule,
            divergences: 0,
        }
    }
}

impl DelayOracle for ScheduleOracle<'_> {
    fn delay(&mut self, msg: &MsgInfo) -> u64 {
        if let Some(d) = self.schedule.decisions.get(msg.index as usize) {
            if d.index == msg.index && d.edge == msg.edge && d.dir == msg.dir {
                return d.delay;
            }
        }
        self.divergences += 1;
        match self.schedule.fallback {
            Fallback::WorstCase => msg.weight.get(),
            Fallback::Rush => 1,
        }
    }
}

/// The critical-path greedy adversary: stretch the message that would
/// otherwise complete the earliest pending event to its full `w(e)`, and
/// rush everything else.
///
/// The oracle only sees dispatch-time information, so it tracks its own
/// model of the in-flight set: a min-heap of the arrival times it has
/// assigned. At each decision it first retires arrivals at or before the
/// current send time, then asks whether *this* message, delivered as
/// fast as possible (`sent + 1`), would become the next event. If so the
/// message is on the critical path and gets stretched to `w(e)`;
/// otherwise some other message completes first, so rushing this one
/// costs the adversary nothing and may force extra protocol phases.
///
/// Deterministic and stateless across runs — recording it twice yields
/// identical schedules.
#[derive(Clone, Debug, Default)]
pub struct CriticalPathOracle {
    pending: BinaryHeap<Reverse<u64>>,
}

impl CriticalPathOracle {
    /// A fresh adversary with an empty in-flight model.
    pub fn new() -> Self {
        Self::default()
    }
}

impl DelayOracle for CriticalPathOracle {
    fn delay(&mut self, msg: &MsgInfo) -> u64 {
        let now = msg.sent.get();
        while self.pending.peek().is_some_and(|&Reverse(t)| t <= now) {
            self.pending.pop();
        }
        let w = msg.weight.get();
        let rushed_arrival = now + 1;
        let on_critical_path = match self.pending.peek() {
            None => true,
            Some(&Reverse(t)) => rushed_arrival < t,
        };
        let d = if on_critical_path { w } else { 1 };
        self.pending.push(Reverse(now + d));
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_graph::{EdgeId, NodeId, Weight};
    use csp_sim::SimTime;

    fn info(index: u64, w: u64, sent: u64) -> MsgInfo {
        MsgInfo {
            index,
            edge: EdgeId::new(index as usize),
            dir: 0,
            weight: Weight::new(w),
            from: NodeId::new(0),
            to: NodeId::new(1),
            sent: SimTime::new(sent),
        }
    }

    #[test]
    fn recorder_transcribes_and_clamps() {
        struct Wild;
        impl DelayOracle for Wild {
            fn delay(&mut self, _msg: &MsgInfo) -> u64 {
                u64::MAX
            }
        }
        let mut rec = Recorder::new(Wild);
        assert_eq!(rec.delay(&info(0, 7, 0)), 7);
        let s = rec.into_schedule(Fallback::Rush);
        assert_eq!(s.decisions.len(), 1);
        assert_eq!(s.decisions[0].delay, 7);
    }

    #[test]
    fn schedule_oracle_replays_then_falls_back() {
        let s = Schedule {
            decisions: vec![Decision {
                index: 0,
                edge: EdgeId::new(0),
                dir: 0,
                weight: 9,
                delay: 4,
            }],
            fallback: Fallback::WorstCase,
        };
        let mut o = ScheduleOracle::new(&s);
        assert_eq!(o.delay(&info(0, 9, 0)), 4); // recorded
        assert_eq!(o.delay(&info(1, 9, 0)), 9); // past prefix -> worst case
        assert_eq!(o.divergences, 1);
    }

    #[test]
    fn schedule_oracle_detects_edge_mismatch() {
        let s = Schedule {
            decisions: vec![Decision {
                index: 0,
                edge: EdgeId::new(5),
                dir: 0,
                weight: 9,
                delay: 4,
            }],
            fallback: Fallback::Rush,
        };
        let mut o = ScheduleOracle::new(&s);
        // Same index but a different edge: the run diverged.
        assert_eq!(o.delay(&info(0, 9, 0)), 1);
        assert_eq!(o.divergences, 1);
    }

    #[test]
    fn critical_path_stretches_the_gating_message_and_rushes_shadowed_ones() {
        let mut o = CriticalPathOracle::new();
        // First message: nothing else pending -> it gates progress.
        assert_eq!(o.delay(&info(0, 10, 0)), 10);
        // Sent at t=5: rushed it would arrive at t=6, before the pending
        // t=10 event -> it gates progress -> stretched to its weight.
        assert_eq!(o.delay(&info(1, 8, 5)), 8);
        // Sent at t=9: rushed it arrives at t=10, no earlier than the
        // pending t=10 event -> shadowed -> rushed.
        assert_eq!(o.delay(&info(2, 4, 9)), 1);
        // At t=20 everything has arrived; the next message gates again.
        assert_eq!(o.delay(&info(3, 6, 20)), 6);
    }
}
