//! Link oracles built on the [`csp_sim::LinkOracle`] hook: recording,
//! replay and the critical-path greedy adversary.

use crate::schedule::{Crash, Decision, Drift, Fallback, Rejoin, Schedule};
use csp_graph::{EdgeId, NodeId, Weight};
use csp_sim::{DelayOracle, LinkDecision, LinkOracle, MsgInfo, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Wraps any [`LinkOracle`] (every [`DelayOracle`] qualifies through the
/// blanket shim) and records every decision it makes — delays, drops,
/// churn plans (crashes and rejoins) and weight drift — producing a
/// [`Schedule`] that replays the run exactly.
///
/// The recorded delay is the *effective* one — clamped into
/// `[1, w(e)]` exactly as the runtime clamps it — so a recording never
/// disagrees with the run it transcribed. Churn is transcribed at the
/// [`churn_plan`](LinkOracle::churn_plan) /
/// [`drift_plan`](LinkOracle::drift_plan) hooks the executors actually
/// query (crash-stop oracles flow through the default
/// `crash_at → churn_plan` derivation), so a recorded crash-stop run
/// still yields a `v2` schedule, byte-identical to what the old
/// `crash_at` transcription produced.
#[derive(Clone, Debug)]
pub struct Recorder<O> {
    inner: O,
    decisions: Vec<Decision>,
    crashes: Vec<Crash>,
    rejoins: Vec<Rejoin>,
    drifts: Vec<Drift>,
    /// Message index the recording starts at — non-zero when transcribing
    /// a run resumed from a [`csp_sim::Checkpoint`], whose first decision
    /// carries the checkpoint's message count as its index.
    offset: u64,
}

impl<O: LinkOracle> Recorder<O> {
    /// Starts recording on top of `inner`.
    pub fn new(inner: O) -> Self {
        Self::with_offset(inner, 0)
    }

    /// Starts recording a run that resumes mid-schedule: the first
    /// decision observed is expected to carry index `start_index`.
    /// [`Recorder::into_decisions`] then yields only the suffix, to be
    /// spliced after the prefix the checkpoint already covers. (Resumed
    /// runs restore their crash assignment from the checkpoint and never
    /// re-query it, so an offset recording carries no crashes.)
    pub fn with_offset(inner: O, start_index: u64) -> Self {
        Recorder {
            inner,
            decisions: Vec::new(),
            crashes: Vec::new(),
            rejoins: Vec::new(),
            drifts: Vec::new(),
            offset: start_index,
        }
    }

    /// Finishes the recording into a schedule with the given fallback.
    ///
    /// Only meaningful for recordings started at index 0 ([`Recorder::new`]);
    /// offset recordings are a suffix, not a standalone schedule.
    pub fn into_schedule(self, fallback: Fallback) -> Schedule {
        debug_assert_eq!(self.offset, 0, "offset recordings are not full schedules");
        Schedule {
            decisions: self.decisions,
            fallback,
            crashes: self.crashes,
            rejoins: self.rejoins,
            drifts: self.drifts,
        }
    }

    /// The raw recorded decisions, in dispatch order, starting at the
    /// recorder's offset.
    pub fn into_decisions(self) -> Vec<Decision> {
        self.decisions
    }
}

impl<O: LinkOracle> LinkOracle for Recorder<O> {
    fn decide(&mut self, msg: &MsgInfo) -> LinkDecision {
        debug_assert_eq!(msg.index, self.offset + self.decisions.len() as u64);
        let w = msg.weight.get();
        let (decision, delay, dropped) = match self.inner.decide(msg) {
            LinkDecision::Drop => (LinkDecision::Drop, w, true),
            LinkDecision::Deliver { delay } => {
                let d = delay.clamp(1, w);
                (LinkDecision::Deliver { delay: d }, d, false)
            }
        };
        self.decisions.push(Decision {
            index: msg.index,
            edge: msg.edge,
            dir: msg.dir,
            weight: w,
            delay,
            dropped,
        });
        decision
    }

    fn churn_plan(&mut self, node: NodeId) -> Vec<SimTime> {
        let plan = self.inner.churn_plan(node);
        // Toggles alternate crash / rejoin / crash / …
        for (i, t) in plan.iter().enumerate() {
            if i % 2 == 0 {
                self.crashes.push(Crash { node, at: t.get() });
            } else {
                self.rejoins.push(Rejoin { node, at: t.get() });
            }
        }
        plan
    }

    fn drift_plan(&mut self) -> Vec<(EdgeId, SimTime, Weight)> {
        let plan = self.inner.drift_plan();
        self.drifts.extend(plan.iter().map(|&(edge, at, w)| Drift {
            edge,
            at: at.get(),
            weight: w.get(),
        }));
        plan
    }

    fn observe_arrival(&mut self, msg: &MsgInfo, arrival: SimTime) {
        self.inner.observe_arrival(msg, arrival);
    }
}

/// Replays a [`Schedule`]: message `i` takes the recorded fate of
/// decision `i` — its delay, or a drop — as long as the run still
/// dispatches the same message (same edge and direction) at that index;
/// crashed vertices come straight from the schedule's crash list.
///
/// Past the recorded prefix — or at any mismatching index, which happens
/// when a *mutated* schedule steers the protocol down a different path —
/// the oracle applies the schedule's [`Fallback`] and counts the event in
/// [`ScheduleOracle::divergences`]; the two causes are told apart by
/// [`ScheduleOracle::past_horizon`] and [`ScheduleOracle::mismatched`].
/// The fallback never drops: an unrecorded message is delivered, so
/// truncating a schedule degrades toward a fault-free run instead of a
/// silently lossy one. A faithful replay of an unmodified recording
/// never diverges (asserted in the adversary test suite).
#[derive(Clone, Debug)]
pub struct ScheduleOracle<'s> {
    schedule: &'s Schedule,
    /// How many decisions fell through to the fallback policy
    /// (`past_horizon + mismatched`).
    pub divergences: u64,
    /// Fallback decisions caused by running past the recorded horizon:
    /// the run dispatched more messages than the schedule records.
    pub past_horizon: u64,
    /// Fallback decisions caused by an edge/direction mismatch at a
    /// recorded index: the run took a different path than the recording.
    pub mismatched: u64,
}

impl<'s> ScheduleOracle<'s> {
    /// Replays `schedule`.
    pub fn new(schedule: &'s Schedule) -> Self {
        ScheduleOracle {
            schedule,
            divergences: 0,
            past_horizon: 0,
            mismatched: 0,
        }
    }
}

impl LinkOracle for ScheduleOracle<'_> {
    fn decide(&mut self, msg: &MsgInfo) -> LinkDecision {
        match self.schedule.decisions.get(msg.index as usize) {
            Some(d) if d.index == msg.index && d.edge == msg.edge && d.dir == msg.dir => {
                return if d.dropped {
                    LinkDecision::Drop
                } else {
                    LinkDecision::Deliver { delay: d.delay }
                };
            }
            Some(_) => self.mismatched += 1,
            None => self.past_horizon += 1,
        }
        self.divergences += 1;
        LinkDecision::Deliver {
            delay: match self.schedule.fallback {
                Fallback::WorstCase => msg.weight.get(),
                Fallback::Rush => 1,
            },
        }
    }

    fn crash_at(&mut self, node: NodeId) -> Option<SimTime> {
        // Earliest crash, for crash-stop-only consumers; with churn a
        // vertex may crash more than once and file order is free.
        self.schedule
            .crashes
            .iter()
            .filter(|c| c.node == node)
            .map(|c| SimTime::new(c.at))
            .min()
    }

    fn churn_plan(&mut self, node: NodeId) -> Vec<SimTime> {
        self.schedule
            .churn_of(node)
            .into_iter()
            .map(SimTime::new)
            .collect()
    }

    fn drift_plan(&mut self) -> Vec<(EdgeId, SimTime, Weight)> {
        self.schedule
            .drifts
            .iter()
            .map(|d| (d.edge, SimTime::new(d.at), Weight::new(d.weight)))
            .collect()
    }
}

/// The critical-path greedy adversary: stretch the message that would
/// otherwise complete the earliest pending event to its full `w(e)`, and
/// rush everything else.
///
/// The oracle only sees dispatch-time information, so it tracks its own
/// model of the in-flight set: a min-heap of the arrival times it has
/// assigned. At each decision it first retires arrivals at or before the
/// current send time, then asks whether *this* message, delivered as
/// fast as possible (`sent + 1`), would become the next event. If so the
/// message is on the critical path and gets stretched to `w(e)`;
/// otherwise some other message completes first, so rushing this one
/// costs the adversary nothing and may force extra protocol phases.
///
/// Deterministic and stateless across runs — recording it twice yields
/// identical schedules.
#[derive(Clone, Debug, Default)]
pub struct CriticalPathOracle {
    pending: BinaryHeap<Reverse<u64>>,
}

impl CriticalPathOracle {
    /// A fresh adversary with an empty in-flight model.
    pub fn new() -> Self {
        Self::default()
    }
}

impl DelayOracle for CriticalPathOracle {
    fn delay(&mut self, msg: &MsgInfo) -> u64 {
        let now = msg.sent.get();
        while self.pending.peek().is_some_and(|&Reverse(t)| t <= now) {
            self.pending.pop();
        }
        let w = msg.weight.get();
        let rushed_arrival = now + 1;
        let on_critical_path = match self.pending.peek() {
            None => true,
            Some(&Reverse(t)) => rushed_arrival < t,
        };
        let d = if on_critical_path { w } else { 1 };
        self.pending.push(Reverse(now + d));
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_graph::{EdgeId, NodeId, Weight};
    use csp_sim::SimTime;

    fn info(index: u64, w: u64, sent: u64) -> MsgInfo {
        MsgInfo {
            index,
            edge: EdgeId::new(index as usize),
            dir: 0,
            weight: Weight::new(w),
            from: NodeId::new(0),
            to: NodeId::new(1),
            sent: SimTime::new(sent),
        }
    }

    fn deliver(delay: u64) -> LinkDecision {
        LinkDecision::Deliver { delay }
    }

    #[test]
    fn recorder_transcribes_and_clamps() {
        struct Wild;
        impl DelayOracle for Wild {
            fn delay(&mut self, _msg: &MsgInfo) -> u64 {
                u64::MAX
            }
        }
        let mut rec = Recorder::new(Wild);
        assert_eq!(rec.decide(&info(0, 7, 0)), deliver(7));
        let s = rec.into_schedule(Fallback::Rush);
        assert_eq!(s.decisions.len(), 1);
        assert_eq!(s.decisions[0].delay, 7);
        assert!(!s.decisions[0].dropped);
    }

    #[test]
    fn recorder_transcribes_drops_and_crashes() {
        struct Hostile;
        impl LinkOracle for Hostile {
            fn decide(&mut self, msg: &MsgInfo) -> LinkDecision {
                if msg.index == 0 {
                    LinkDecision::Drop
                } else {
                    deliver(2)
                }
            }
            fn crash_at(&mut self, node: NodeId) -> Option<SimTime> {
                (node.index() == 1).then_some(SimTime::new(30))
            }
        }
        let mut rec = Recorder::new(Hostile);
        // Executors query churn through the churn_plan hook; crash-stop
        // oracles flow through the default crash_at derivation.
        assert!(rec.churn_plan(NodeId::new(0)).is_empty());
        assert_eq!(rec.churn_plan(NodeId::new(1)), vec![SimTime::new(30)]);
        assert_eq!(rec.decide(&info(0, 7, 0)), LinkDecision::Drop);
        assert_eq!(rec.decide(&info(1, 7, 0)), deliver(2));
        let s = rec.into_schedule(Fallback::WorstCase);
        assert_eq!(s.dropped_count(), 1);
        assert_eq!(
            s.crashes,
            vec![Crash {
                node: NodeId::new(1),
                at: 30
            }]
        );
        assert!(!s.has_churn(), "crash-stop recording stays v2");
        // Replaying the recording reproduces both fates and the crash.
        let mut o = ScheduleOracle::new(&s);
        assert_eq!(o.decide(&info(0, 7, 0)), LinkDecision::Drop);
        assert_eq!(o.decide(&info(1, 7, 0)), deliver(2));
        assert_eq!(o.crash_at(NodeId::new(1)), Some(SimTime::new(30)));
        assert_eq!(o.crash_at(NodeId::new(2)), None);
        assert_eq!(o.divergences, 0);
    }

    #[test]
    fn recorder_transcribes_churn_and_the_replay_serves_it() {
        use crate::schedule::{Drift, Rejoin};
        use csp_sim::{ChurnOracle, DelayModel, ModelOracle};
        let churny = ChurnOracle::new(
            ModelOracle::new(DelayModel::WorstCase, 0),
            vec![(
                NodeId::new(2),
                vec![SimTime::new(5), SimTime::new(9), SimTime::new(20)],
            )],
            vec![(EdgeId::new(1), SimTime::new(6), Weight::new(11))],
        );
        let mut rec = Recorder::new(churny);
        assert_eq!(
            rec.churn_plan(NodeId::new(2)),
            vec![SimTime::new(5), SimTime::new(9), SimTime::new(20)]
        );
        assert!(rec.churn_plan(NodeId::new(0)).is_empty());
        assert_eq!(
            rec.drift_plan(),
            vec![(EdgeId::new(1), SimTime::new(6), Weight::new(11))]
        );
        let s = rec.into_schedule(Fallback::WorstCase);
        assert_eq!(
            s.crashes,
            vec![
                Crash {
                    node: NodeId::new(2),
                    at: 5
                },
                Crash {
                    node: NodeId::new(2),
                    at: 20
                }
            ]
        );
        assert_eq!(
            s.rejoins,
            vec![Rejoin {
                node: NodeId::new(2),
                at: 9
            }]
        );
        assert_eq!(
            s.drifts,
            vec![Drift {
                edge: EdgeId::new(1),
                at: 6,
                weight: 11
            }]
        );
        assert!(s.has_churn());
        // The replay oracle serves the full plan back, and its
        // crash-stop view is the earliest crash.
        let mut o = ScheduleOracle::new(&s);
        assert_eq!(
            o.churn_plan(NodeId::new(2)),
            vec![SimTime::new(5), SimTime::new(9), SimTime::new(20)]
        );
        assert_eq!(o.crash_at(NodeId::new(2)), Some(SimTime::new(5)));
        assert_eq!(
            o.drift_plan(),
            vec![(EdgeId::new(1), SimTime::new(6), Weight::new(11))]
        );
        // Text round-trip preserves the plans exactly.
        assert_eq!(Schedule::from_text(&s.to_text()).unwrap(), s);
    }

    #[test]
    fn schedule_oracle_replays_then_falls_back() {
        let s = Schedule {
            decisions: vec![Decision {
                index: 0,
                edge: EdgeId::new(0),
                dir: 0,
                weight: 9,
                delay: 4,
                dropped: false,
            }],
            fallback: Fallback::WorstCase,
            ..Schedule::default()
        };
        let mut o = ScheduleOracle::new(&s);
        assert_eq!(o.decide(&info(0, 9, 0)), deliver(4)); // recorded
        assert_eq!(o.decide(&info(1, 9, 0)), deliver(9)); // past prefix -> worst case
        assert_eq!(o.divergences, 1);
        assert_eq!(o.past_horizon, 1);
        assert_eq!(o.mismatched, 0);
    }

    #[test]
    fn schedule_oracle_detects_edge_mismatch() {
        let s = Schedule {
            decisions: vec![Decision {
                index: 0,
                edge: EdgeId::new(5),
                dir: 0,
                weight: 9,
                delay: 4,
                dropped: false,
            }],
            fallback: Fallback::Rush,
            ..Schedule::default()
        };
        let mut o = ScheduleOracle::new(&s);
        // Same index but a different edge: the run diverged.
        assert_eq!(o.decide(&info(0, 9, 0)), deliver(1));
        assert_eq!(o.divergences, 1);
        assert_eq!(o.mismatched, 1);
        assert_eq!(o.past_horizon, 0);
    }

    #[test]
    fn critical_path_stretches_the_gating_message_and_rushes_shadowed_ones() {
        let mut o = CriticalPathOracle::new();
        // First message: nothing else pending -> it gates progress.
        assert_eq!(o.delay(&info(0, 10, 0)), 10);
        // Sent at t=5: rushed it would arrive at t=6, before the pending
        // t=10 event -> it gates progress -> stretched to its weight.
        assert_eq!(o.delay(&info(1, 8, 5)), 8);
        // Sent at t=9: rushed it arrives at t=10, no earlier than the
        // pending t=10 event -> shadowed -> rushed.
        assert_eq!(o.delay(&info(2, 4, 9)), 1);
        // At t=20 everything has arrived; the next message gates again.
        assert_eq!(o.delay(&info(3, 6, 20)), 6);
    }
}
