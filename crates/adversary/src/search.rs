//! Schedule-space search: seeded random probes, the critical-path
//! greedy, and hill-climbing mutation — all fanned out through
//! [`csp_sim::sweep::par_map`].
//!
//! Every strategy records the schedule it actually ran (via
//! [`Recorder`]), so [`SearchOutcome::schedule`] always replays to
//! exactly [`SearchOutcome::best_time`]. The whole search is
//! deterministic: fixed seeds, order-preserving parallel map, and
//! strict-improvement adoption, so two searches with the same config
//! find the same schedule regardless of thread count.

use crate::oracle::{CriticalPathOracle, Recorder, ScheduleOracle};
use crate::schedule::{Fallback, Schedule};
use csp_graph::{NodeId, WeightedGraph};
use csp_sim::sweep::par_map;
use csp_sim::{DelayModel, DelayOracle, ModelOracle, Process, SimTime, Simulator};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Search budget and seeding; the defaults complete in well under a
/// second on Figure-2/3/4-sized instances.
#[derive(Clone, Copy, Debug)]
pub struct SearchConfig {
    /// Uniform-delay random probes.
    pub random_probes: usize,
    /// Hill-climbing rounds mutating the incumbent schedule.
    pub hill_rounds: usize,
    /// Mutated candidates evaluated per round.
    pub candidates_per_round: usize,
    /// Decisions re-randomized per mutation.
    pub flips: usize,
    /// Master seed; every probe and mutation seed derives from it.
    pub seed: u64,
    /// Worker threads for the parallel fan-out (`0` = one per core).
    pub threads: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            random_probes: 32,
            hill_rounds: 12,
            candidates_per_round: 8,
            flips: 4,
            seed: 0,
            threads: 0,
        }
    }
}

impl SearchConfig {
    fn worker_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// The result of a schedule search on one protocol × graph instance.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// Completion time under [`DelayModel::WorstCase`] — the baseline the
    /// paper's time bounds are stated against.
    pub worst_case: SimTime,
    /// The latest completion time any searched schedule achieved
    /// (`>= worst_case` only if the search found a genuinely worse
    /// adversary; equal when uniform-delay stretching is already optimal,
    /// as it is for monotone protocols like flooding).
    pub best_time: SimTime,
    /// The recorded schedule achieving [`SearchOutcome::best_time`];
    /// replaying it reproduces that time exactly.
    pub schedule: Schedule,
    /// Which strategy found the best schedule: `"worst-case"`,
    /// `"critical-path"`, `"random"` or `"hill-climb"`.
    pub strategy: &'static str,
    /// Total simulator runs spent.
    pub evaluations: usize,
}

impl SearchOutcome {
    /// Whether the search beat the fixed worst-case delay model.
    pub fn beats_worst_case(&self) -> bool {
        self.best_time > self.worst_case
    }

    /// `best_time / worst_case` — how much the searched adversary
    /// out-delays the fixed model (`1.0` = no gap).
    pub fn gap(&self) -> f64 {
        if self.worst_case == SimTime::ZERO {
            1.0
        } else {
            self.best_time.get() as f64 / self.worst_case.get() as f64
        }
    }
}

/// Runs the simulator under `oracle`, recording the schedule actually
/// taken. Returns the completion time and the recording.
fn record_run<P, F, O>(g: &WeightedGraph, make: &F, oracle: O) -> (SimTime, Schedule)
where
    P: Process,
    F: Fn(NodeId, &WeightedGraph) -> P,
    O: DelayOracle,
{
    let mut rec = Recorder::new(oracle);
    let run = Simulator::new(g)
        .run_with_oracle(&mut rec, |v, g| make(v, g))
        .expect("protocol must quiesce under an admissible schedule");
    (run.cost.completion, rec.into_schedule(Fallback::WorstCase))
}

/// Re-randomizes `flips` decisions of `base`: each picked decision is set
/// to rushed (`1`), stretched (`weight`) or a uniform point between.
pub fn mutate(base: &Schedule, seed: u64, flips: usize) -> Schedule {
    let mut out = base.clone();
    if out.decisions.is_empty() {
        return out;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..flips {
        let i = rng.random_range(0..out.decisions.len() as u64) as usize;
        let d = &mut out.decisions[i];
        d.delay = match rng.random_range(0..3u64) {
            0 => 1,
            1 => d.weight,
            _ => rng.random_range(1..=d.weight),
        };
    }
    out
}

/// Searches for the schedule maximizing completion time of the protocol
/// built by `make` on `g`.
///
/// Strategy pipeline: (1) the [`DelayModel::WorstCase`] baseline, which
/// also defines [`SearchOutcome::worst_case`]; (2) the
/// [`CriticalPathOracle`] greedy; (3) `random_probes` uniform-delay
/// probes in parallel; (4) `hill_rounds` rounds of parallel
/// [`mutate`]-and-replay hill climbing from the incumbent. Strict
/// improvement is required to adopt a candidate, and ties prefer the
/// earlier strategy, so the outcome is deterministic.
pub fn find_worst_schedule<P, F>(g: &WeightedGraph, make: F, cfg: &SearchConfig) -> SearchOutcome
where
    P: Process,
    F: Fn(NodeId, &WeightedGraph) -> P + Sync,
{
    let threads = cfg.worker_threads();
    let mut evaluations = 0usize;

    let (worst_case, worst_schedule) =
        record_run(g, &make, ModelOracle::new(DelayModel::WorstCase, cfg.seed));
    evaluations += 1;
    let mut best = SearchOutcome {
        worst_case,
        best_time: worst_case,
        schedule: worst_schedule,
        strategy: "worst-case",
        evaluations: 0,
    };

    let (t, s) = record_run(g, &make, CriticalPathOracle::new());
    evaluations += 1;
    if t > best.best_time {
        (best.best_time, best.schedule, best.strategy) = (t, s, "critical-path");
    }

    let probe_seeds: Vec<u64> = (0..cfg.random_probes as u64)
        .map(|i| cfg.seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .collect();
    let probes = par_map(&probe_seeds, threads, |&s| {
        record_run(g, &make, ModelOracle::new(DelayModel::Uniform, s))
    });
    evaluations += probes.len();
    for (t, s) in probes {
        if t > best.best_time {
            (best.best_time, best.schedule, best.strategy) = (t, s, "random");
        }
    }

    for round in 0..cfg.hill_rounds as u64 {
        let mutation_seeds: Vec<u64> = (0..cfg.candidates_per_round as u64)
            .map(|i| cfg.seed.wrapping_mul(0x100_0001b3) ^ (round << 32 | i))
            .collect();
        let incumbent = &best.schedule;
        let candidates = par_map(&mutation_seeds, threads, |&ms| {
            let mutant = mutate(incumbent, ms, cfg.flips);
            record_run(g, &make, ScheduleOracle::new(&mutant))
        });
        evaluations += candidates.len();
        for (t, s) in candidates {
            if t > best.best_time {
                (best.best_time, best.schedule, best.strategy) = (t, s, "hill-climb");
            }
        }
    }

    best.evaluations = evaluations;
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_graph::generators::{self, WeightDist};
    use csp_sim::Context;

    /// Minimal flooding protocol for search smoke tests.
    struct Flood {
        seen: bool,
    }

    impl Process for Flood {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
            if ctx.self_id() == NodeId::new(0) {
                self.seen = true;
                ctx.send_all(());
            }
        }
        fn on_message(&mut self, _from: NodeId, _msg: (), ctx: &mut Context<'_, ()>) {
            if !self.seen {
                self.seen = true;
                ctx.send_all(());
            }
        }
    }

    fn small_graph() -> WeightedGraph {
        generators::connected_gnp(10, 0.35, WeightDist::Uniform(1, 12), 7)
    }

    #[test]
    fn search_never_loses_to_its_own_baseline() {
        let g = small_graph();
        let cfg = SearchConfig {
            random_probes: 8,
            hill_rounds: 3,
            candidates_per_round: 4,
            ..SearchConfig::default()
        };
        let out = find_worst_schedule(&g, |_, _| Flood { seen: false }, &cfg);
        assert!(out.best_time >= out.worst_case);
        assert!(out.gap() >= 1.0);
        assert!(out.evaluations >= 1 + 1 + 8);
    }

    #[test]
    fn search_is_deterministic_across_thread_counts() {
        let g = small_graph();
        let run = |threads| {
            let cfg = SearchConfig {
                random_probes: 8,
                hill_rounds: 2,
                candidates_per_round: 4,
                threads,
                ..SearchConfig::default()
            };
            find_worst_schedule(&g, |_, _| Flood { seen: false }, &cfg)
        };
        let (a, b) = (run(1), run(4));
        assert_eq!(a.best_time, b.best_time);
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.strategy, b.strategy);
    }

    #[test]
    fn mutate_keeps_delays_admissible() {
        let g = small_graph();
        let (_, base) = record_run(
            &g,
            &|_, _| Flood { seen: false },
            ModelOracle::new(DelayModel::Uniform, 3),
        );
        let mutant = mutate(&base, 99, 16);
        assert_eq!(mutant.decisions.len(), base.decisions.len());
        for d in &mutant.decisions {
            assert!(d.delay >= 1 && d.delay <= d.weight);
        }
    }
}
