//! Schedule-space search: seeded random probes, the critical-path
//! greedy, and hill-climbing mutation — all fanned out through
//! [`csp_sim::sweep::par_map_with`] with a pooled evaluator per worker.
//!
//! Every strategy records the schedule it actually ran (via
//! [`Recorder`]), so [`SearchOutcome::schedule`] always replays to
//! exactly [`SearchOutcome::best_time`]. The whole search is
//! deterministic: fixed seeds, order-preserving parallel map, and
//! strict-improvement adoption, so two searches with the same config
//! find the same schedule regardless of thread count.
//!
//! # Incremental candidate evaluation
//!
//! Hill-climb and polish candidates are mutations of the incumbent
//! schedule: they agree with it on every decision before the first
//! mutated index. The search therefore
//! [checkpoints](csp_sim::Checkpoint) the incumbent's run at regular
//! message intervals and evaluates each candidate by *resuming* from the
//! last checkpoint at or before its first mutated decision, replaying
//! only the suffix. Resumption is bit-identical to a cold run (pinned by
//! the checkpoint-equivalence proptests in
//! `tests/flat_core_differential.rs`), so this is purely a performance
//! change. Candidates are *scored* time-only (no recording); only an
//! adopted winner is re-evaluated through a [`Recorder`], and its
//! schedule is assembled as the shared prefix plus the resumed
//! recording, exactly what a cold recorder would have transcribed.
//!
//! # Tail polish
//!
//! After hill climbing, `polish_passes` rounds of coordinate descent
//! toggle one decision at a time to its extremes (rush = `1`,
//! stretch = `weight`), sweeping the final quarter of the schedule from
//! the tail backwards. The tail is where a toggle is cheapest to
//! evaluate (suffix-only replay from a deep checkpoint) *and* most
//! likely to move the completion time — it is the arrival time of a
//! late message; global moves stay the hill phase's job, whose
//! mutations already re-randomize arbitrary positions. Allocating the
//! single-toggle budget to the cheap, high-leverage region is the
//! cost-sensitive spending the checkpoint machinery exists for.
//! Re-sweeping matters because each adoption rewrites the suffix behind
//! it, exposing new profitable toggles. Adopting a toggle at position
//! `k` keeps every checkpoint with `messages() <= k` valid (the prefix
//! is unchanged), so a descending sweep never rebuilds the store
//! mid-pass; it is truncated on adoption and rebuilt once at the end of
//! an improving pass.

use crate::oracle::{CriticalPathOracle, Recorder, ScheduleOracle};
use crate::schedule::{Crash, Fallback, Schedule};
use csp_graph::{NodeId, WeightedGraph};
use csp_sim::sweep::{effective_threads, par_map_with};
use csp_sim::{
    Checkpoint, DelayModel, EvalPool, LinkOracle, ModelOracle, Process, SimTime, Simulator,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Search budget and seeding; the defaults complete in seconds on
/// Figure-2/3/4-sized instances.
#[derive(Clone, Copy, Debug)]
pub struct SearchConfig {
    /// Uniform-delay random probes.
    pub random_probes: usize,
    /// Hill-climbing rounds mutating the incumbent schedule.
    pub hill_rounds: usize,
    /// Mutated candidates evaluated per round.
    pub candidates_per_round: usize,
    /// Decisions re-randomized per mutation.
    pub flips: usize,
    /// Master seed; every probe and mutation seed derives from it.
    pub seed: u64,
    /// Worker threads for the parallel fan-out: `0` means one per core,
    /// and explicit requests are capped at the machine's available
    /// parallelism (via [`effective_threads`], the same rule the sweep
    /// driver uses).
    pub threads: usize,
    /// Message interval between incumbent checkpoints for resumed
    /// candidate evaluation. `0` (the default) sizes the interval
    /// automatically from the incumbent schedule: one checkpoint per
    /// ~1/32 of its decisions, but never more often than every 8
    /// messages.
    pub checkpoint_every: u64,
    /// Coordinate-descent polish passes after hill climbing, each
    /// sweeping the final quarter of the schedule from the tail (see the
    /// [module docs](self)).
    pub polish_passes: usize,
    /// Decisions whose drop flag is toggled per mutation, on top of
    /// `flips` delay re-randomizations. `0` (the default) keeps the
    /// search delay-only — and byte-identical to the pre-fault search,
    /// so committed delay witnesses regenerate unchanged.
    pub drop_flips: usize,
    /// Crash candidates probed between the random and hill phases: the
    /// first `crash_probes` vertices are each tried as the incumbent
    /// schedule plus that vertex crashing at each point of a small
    /// crash-*time* grid (quarter, half and three-quarters of the
    /// incumbent's completion time) — a victim's damage depends on
    /// *when* it dies, not just on who dies. `0` (the default) disables
    /// crash search.
    pub crash_probes: usize,
    /// Crash times re-randomized per mutation, after the `flips` delay
    /// draws and `drop_flips` drop toggles — making *when a vertex dies*
    /// a real hill-climb coordinate once a crash probe has been adopted.
    /// No-op on crash-free incumbents. `0` (the default) keeps the
    /// mutation stream byte-identical to [`mutate_with_drops`]'s.
    pub crash_time_flips: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            random_probes: 64,
            hill_rounds: 24,
            candidates_per_round: 16,
            flips: 4,
            seed: 0,
            threads: 0,
            checkpoint_every: 0,
            polish_passes: 4,
            drop_flips: 0,
            crash_probes: 0,
            crash_time_flips: 0,
        }
    }
}

impl SearchConfig {
    fn worker_threads(&self) -> usize {
        effective_threads(self.threads)
    }

    /// The checkpoint interval used for an incumbent of `schedule_len`
    /// decisions (`checkpoint_every`, or the auto rule when it is 0).
    fn interval_for(&self, schedule_len: usize) -> u64 {
        if self.checkpoint_every > 0 {
            self.checkpoint_every
        } else {
            (schedule_len as u64 / 32).max(8)
        }
    }
}

/// The result of a schedule search on one protocol × graph instance.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// Completion time under [`DelayModel::WorstCase`] — the baseline the
    /// paper's time bounds are stated against.
    pub worst_case: SimTime,
    /// The latest completion time any searched schedule achieved
    /// (`>= worst_case` only if the search found a genuinely worse
    /// adversary; equal when uniform-delay stretching is already optimal,
    /// as it is for monotone protocols like flooding).
    pub best_time: SimTime,
    /// The recorded schedule achieving [`SearchOutcome::best_time`];
    /// replaying it reproduces that time exactly.
    pub schedule: Schedule,
    /// Which strategy found the best schedule: `"worst-case"`,
    /// `"critical-path"`, `"random"`, `"crash"`, `"hill-climb"` or
    /// `"polish"`.
    pub strategy: &'static str,
    /// Total simulator runs spent (checkpoint-resumed candidate
    /// evaluations count as one run each, like the cold runs they
    /// replace).
    pub evaluations: usize,
}

impl SearchOutcome {
    /// Whether the search beat the fixed worst-case delay model.
    pub fn beats_worst_case(&self) -> bool {
        self.best_time > self.worst_case
    }

    /// `best_time / worst_case` — how much the searched adversary
    /// out-delays the fixed model (`1.0` = no gap).
    pub fn gap(&self) -> f64 {
        if self.worst_case == SimTime::ZERO {
            1.0
        } else {
            self.best_time.get() as f64 / self.worst_case.get() as f64
        }
    }
}

/// Runs the simulator under `oracle`, recording the schedule actually
/// taken. Returns the completion time and the recording.
fn record_run<P, F, O>(g: &WeightedGraph, make: &F, oracle: O) -> (SimTime, Schedule)
where
    P: Process,
    F: Fn(NodeId, &WeightedGraph) -> P,
    O: LinkOracle,
{
    let mut rec = Recorder::new(oracle);
    let run = Simulator::new(g)
        .run_with_oracle(&mut rec, |v, g| make(v, g))
        .expect("protocol must quiesce under an admissible schedule");
    (run.cost.completion, rec.into_schedule(Fallback::WorstCase))
}

/// [`record_run`] through a pooled evaluator: same result, but the
/// simulator state (slab, queue, cost meters) is recycled from `pool`.
fn eval_recorded<P, F, O>(
    sim: &Simulator<'_>,
    pool: &mut EvalPool<P>,
    make: &F,
    oracle: O,
) -> (SimTime, Schedule)
where
    P: Process,
    F: Fn(NodeId, &WeightedGraph) -> P,
    O: LinkOracle,
{
    let mut rec = Recorder::new(oracle);
    let summary = sim
        .eval(pool, &mut rec, |v, g| make(v, g))
        .expect("protocol must quiesce under an admissible schedule");
    (summary.completion, rec.into_schedule(Fallback::WorstCase))
}

/// Replays `schedule` (the incumbent: a faithful recording, so the
/// replay never diverges) while snapshotting checkpoints every
/// `interval` messages into `out`.
fn rebuild_checkpoints<P, F>(
    sim: &Simulator<'_>,
    make: &F,
    schedule: &Schedule,
    interval: u64,
    out: &mut Vec<Checkpoint<P>>,
) where
    P: Process + Clone,
    F: Fn(NodeId, &WeightedGraph) -> P,
{
    out.clear();
    let mut oracle = ScheduleOracle::new(schedule);
    sim.run_with_checkpoints(&mut oracle, |v, g| make(v, g), interval, out)
        .expect("incumbent schedule must replay to quiescence");
    debug_assert_eq!(oracle.divergences, 0, "incumbent replay diverged");
}

/// First index at which `mutant`'s link decisions depart from the
/// incumbent's — the first message where the candidate's run can
/// diverge; everything before it is shared prefix. Mutation only
/// rewrites delays and drop flags, so comparing those suffices — except
/// crashes, which take effect from time zero: a candidate with a
/// different crash assignment shares no prefix at all.
fn first_diff(incumbent: &Schedule, mutant: &Schedule) -> u64 {
    if incumbent.crashes != mutant.crashes {
        return 0;
    }
    incumbent
        .decisions
        .iter()
        .zip(&mutant.decisions)
        .position(|(a, b)| (a.delay, a.dropped) != (b.delay, b.dropped))
        .unwrap_or(mutant.decisions.len()) as u64
}

/// Scores one mutated candidate — completion time only, no recording —
/// resuming from the deepest incumbent checkpoint at or before
/// `first_diff` (cold-running only when the mutation lands before the
/// first checkpoint). [`ScheduleOracle`] answers by message index, so it
/// needs no positional state to resume mid-run.
fn score_candidate_from<P, F>(
    sim: &Simulator<'_>,
    pool: &mut EvalPool<P>,
    make: &F,
    checkpoints: &[Checkpoint<P>],
    mutant: &Schedule,
    first_diff: u64,
) -> SimTime
where
    P: Process + Clone,
    F: Fn(NodeId, &WeightedGraph) -> P,
{
    let mut oracle = ScheduleOracle::new(mutant);
    match checkpoints
        .iter()
        .rev()
        .find(|cp| cp.messages() <= first_diff)
    {
        Some(cp) => sim.eval_resume(pool, cp, &mut oracle),
        None => sim.eval(pool, &mut oracle, |v, g| make(v, g)),
    }
    .expect("protocol must quiesce under an admissible schedule")
    .completion
}

/// Like [`score_candidate_from`], but records the candidate's run: the
/// returned schedule is the shared prefix plus the resumed recording —
/// the faithful transcript a cold [`Recorder`] would have produced.
/// Only adopted winners pay for this.
fn evaluate_candidate_from<P, F>(
    sim: &Simulator<'_>,
    pool: &mut EvalPool<P>,
    make: &F,
    checkpoints: &[Checkpoint<P>],
    mutant: &Schedule,
    first_diff: u64,
) -> (SimTime, Schedule)
where
    P: Process + Clone,
    P::Msg: Clone,
    F: Fn(NodeId, &WeightedGraph) -> P,
{
    let Some(cp) = checkpoints
        .iter()
        .rev()
        .find(|cp| cp.messages() <= first_diff)
    else {
        return eval_recorded(sim, pool, make, ScheduleOracle::new(mutant));
    };
    let mut rec = Recorder::with_offset(ScheduleOracle::new(mutant), cp.messages());
    let summary = sim
        .eval_resume(pool, cp, &mut rec)
        .expect("protocol must quiesce under an admissible schedule");
    let mut decisions = mutant.decisions[..cp.messages() as usize].to_vec();
    decisions.extend(rec.into_decisions());
    (
        summary.completion,
        Schedule {
            decisions,
            fallback: Fallback::WorstCase,
            // Resumed runs restore the crash assignment from the
            // checkpoint instead of re-querying the oracle, so the
            // recorder saw none of it; splice the mutant's own crashes
            // (identical to the checkpoint's — `first_diff` is 0, and no
            // checkpoint covers it, whenever they differ).
            crashes: mutant.crashes.clone(),
        },
    )
}

/// Re-randomizes `flips` decisions of `base`: each picked decision is set
/// to rushed (`1`), stretched (`weight`) or a uniform point between.
/// Equivalent to [`mutate_with_drops`] with `drop_flips = 0`.
pub fn mutate(base: &Schedule, seed: u64, flips: usize) -> Schedule {
    mutate_with_drops(base, seed, flips, 0)
}

/// [`mutate`] plus fault injection: after the `flips` delay
/// re-randomizations, `drop_flips` further picked decisions have their
/// drop flag toggled (a delivered message is lost, a lost one is
/// delivered at its recorded delay). With `drop_flips = 0` the RNG
/// stream — and therefore the mutant — is identical to [`mutate`]'s, so
/// enabling fault search never perturbs delay-only results. Equivalent
/// to [`mutate_with_faults`] with `crash_time_flips = 0`.
pub fn mutate_with_drops(base: &Schedule, seed: u64, flips: usize, drop_flips: usize) -> Schedule {
    mutate_with_faults(base, seed, flips, drop_flips, 0)
}

/// [`mutate_with_drops`] plus crash-time search: after the delay and
/// drop draws, `crash_time_flips` picked crashes have their time
/// re-randomized — halved, doubled, or redrawn uniformly around the
/// current value — so *when* a victim dies climbs alongside the delay
/// and drop coordinates. Crash-free schedules are returned unchanged by
/// this phase (the crash draws are skipped entirely), and with
/// `crash_time_flips = 0` the RNG stream is identical to
/// [`mutate_with_drops`]'s, so the drop-only mutants it pins stay
/// byte-stable.
pub fn mutate_with_faults(
    base: &Schedule,
    seed: u64,
    flips: usize,
    drop_flips: usize,
    crash_time_flips: usize,
) -> Schedule {
    let mut out = base.clone();
    if out.decisions.is_empty() {
        return out;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..flips {
        let i = rng.random_range(0..out.decisions.len() as u64) as usize;
        let d = &mut out.decisions[i];
        d.delay = match rng.random_range(0..3u64) {
            0 => 1,
            1 => d.weight,
            _ => rng.random_range(1..=d.weight),
        };
    }
    for _ in 0..drop_flips {
        let i = rng.random_range(0..out.decisions.len() as u64) as usize;
        let d = &mut out.decisions[i];
        d.dropped = !d.dropped;
    }
    if !out.crashes.is_empty() {
        for _ in 0..crash_time_flips {
            let c = rng.random_range(0..out.crashes.len() as u64) as usize;
            let at = out.crashes[c].at;
            out.crashes[c].at = match rng.random_range(0..3u64) {
                0 => (at / 2).max(1),
                1 => at.saturating_mul(2).max(1),
                _ => rng.random_range(1..=at.saturating_mul(2).max(1)),
            };
        }
    }
    out
}

/// Searches for the schedule maximizing completion time of the protocol
/// built by `make` on `g`.
///
/// Strategy pipeline: (1) the [`DelayModel::WorstCase`] baseline, which
/// also defines [`SearchOutcome::worst_case`]; (2) the
/// [`CriticalPathOracle`] greedy; (3) `random_probes` uniform-delay
/// probes in parallel; (3½) `crash_probes` single-crash candidates
/// spliced onto the incumbent; (4) `hill_rounds` rounds of parallel
/// [`mutate`]-and-replay hill climbing from the incumbent, each
/// candidate resumed from the incumbent's checkpoint store (see the
/// [module docs](self)); (5) `polish_passes` of tail coordinate descent
/// over single decisions. Strict improvement is required to adopt a
/// candidate, and ties prefer the earlier strategy, so the outcome is
/// deterministic.
pub fn find_worst_schedule<P, F>(g: &WeightedGraph, make: F, cfg: &SearchConfig) -> SearchOutcome
where
    P: Process + Clone + Sync,
    P::Msg: Clone + Sync,
    F: Fn(NodeId, &WeightedGraph) -> P + Sync,
{
    let threads = cfg.worker_threads();
    let sim = Simulator::new(g);
    let mut evaluations = 0usize;

    let (worst_case, worst_schedule) =
        record_run(g, &make, ModelOracle::new(DelayModel::WorstCase, cfg.seed));
    evaluations += 1;
    let mut best = SearchOutcome {
        worst_case,
        best_time: worst_case,
        schedule: worst_schedule,
        strategy: "worst-case",
        evaluations: 0,
    };

    let (t, s) = record_run(g, &make, CriticalPathOracle::new());
    evaluations += 1;
    if t > best.best_time {
        (best.best_time, best.schedule, best.strategy) = (t, s, "critical-path");
    }

    let probe_seeds: Vec<u64> = (0..cfg.random_probes as u64)
        .map(|i| cfg.seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .collect();
    let probes = par_map_with(&probe_seeds, threads, EvalPool::new, |pool, &s| {
        eval_recorded(&sim, pool, &make, ModelOracle::new(DelayModel::Uniform, s))
    });
    evaluations += probes.len();
    for (t, s) in probes {
        if t > best.best_time {
            (best.best_time, best.schedule, best.strategy) = (t, s, "random");
        }
    }

    // Crash probes: try each of the first `crash_probes` vertices as the
    // incumbent plus that vertex crashing at each point of a small
    // crash-time grid. An early crash removes a participant before it
    // contributes; a late one forces recovery of state already built —
    // which of the two stalls a protocol longer is exactly what the grid
    // discovers (and the hill phase's `crash_time_flips` then refines).
    // Crashes take effect from time zero (`first_diff` is 0 against any
    // crash-free checkpoint), so every probe is a cold recorded run.
    if cfg.crash_probes > 0 {
        let horizon = best.best_time.get();
        let mut grid: Vec<u64> = [horizon / 4, horizon / 2, (3 * horizon) / 4]
            .iter()
            .map(|&at| at.max(1))
            .collect();
        grid.dedup();
        let mut pool = EvalPool::new();
        for v in g.nodes().take(cfg.crash_probes) {
            for &at in &grid {
                let mut candidate = best.schedule.clone();
                // Replace, don't duplicate, when an earlier grid point
                // for this vertex was already adopted.
                candidate.crashes.retain(|c| c.node != v);
                candidate.crashes.push(Crash { node: v, at });
                let (t, s) = eval_recorded(&sim, &mut pool, &make, ScheduleOracle::new(&candidate));
                evaluations += 1;
                if t > best.best_time {
                    (best.best_time, best.schedule, best.strategy) = (t, s, "crash");
                }
            }
        }
    }

    let mut checkpoints: Vec<Checkpoint<P>> = Vec::new();
    let mut main_pool = EvalPool::new();
    if cfg.hill_rounds > 0 || cfg.polish_passes > 0 {
        let interval = cfg.interval_for(best.schedule.len());
        rebuild_checkpoints(&sim, &make, &best.schedule, interval, &mut checkpoints);
        evaluations += 1;
    }
    for round in 0..cfg.hill_rounds as u64 {
        let mutation_seeds: Vec<u64> = (0..cfg.candidates_per_round as u64)
            .map(|i| cfg.seed.wrapping_mul(0x100_0001b3) ^ (round << 32 | i))
            .collect();
        let incumbent = &best.schedule;
        let store = &checkpoints;
        let scores = par_map_with(&mutation_seeds, threads, EvalPool::new, |pool, &ms| {
            let mutant = mutate_with_faults(
                incumbent,
                ms,
                cfg.flips,
                cfg.drop_flips,
                cfg.crash_time_flips,
            );
            let fd = first_diff(incumbent, &mutant);
            score_candidate_from(&sim, pool, &make, store, &mutant, fd)
        });
        evaluations += scores.len();
        // Adopt the round's best strict improvement (earliest on ties,
        // matching a sequential `>` scan) and only then pay for its
        // recording.
        let mut winner: Option<(usize, SimTime)> = None;
        for (i, &t) in scores.iter().enumerate() {
            if t > winner.map_or(best.best_time, |(_, wt)| wt) {
                winner = Some((i, t));
            }
        }
        if let Some((i, t)) = winner {
            let mutant = mutate_with_faults(
                &best.schedule,
                mutation_seeds[i],
                cfg.flips,
                cfg.drop_flips,
                cfg.crash_time_flips,
            );
            let fd = first_diff(&best.schedule, &mutant);
            let (rt, rs) =
                evaluate_candidate_from(&sim, &mut main_pool, &make, &checkpoints, &mutant, fd);
            evaluations += 1;
            debug_assert_eq!(rt, t, "recorded winner must replay to its score");
            (best.best_time, best.schedule, best.strategy) = (rt, rs, "hill-climb");
            let interval = cfg.interval_for(best.schedule.len());
            rebuild_checkpoints(&sim, &make, &best.schedule, interval, &mut checkpoints);
            evaluations += 1;
        }
    }

    // Tail polish: sequential coordinate descent over single decisions,
    // each candidate resumed from the deepest prefix checkpoint (see the
    // module docs). Deterministic by construction — fixed sweep order,
    // strict-improvement adoption, no randomness.
    let mut mutant = best.schedule.clone();
    for _pass in 0..cfg.polish_passes {
        let len = best.schedule.decisions.len();
        if len == 0 {
            break;
        }
        let lo = len.saturating_sub((len / 4).max(1));
        let mut improved = false;
        let mut k = len;
        while k > lo {
            k -= 1;
            let d = best.schedule.decisions[k];
            for target in [d.weight, 1] {
                if target == d.delay {
                    continue;
                }
                mutant.clone_from(&best.schedule);
                mutant.decisions[k].delay = target;
                let t = score_candidate_from(
                    &sim,
                    &mut main_pool,
                    &make,
                    &checkpoints,
                    &mutant,
                    k as u64,
                );
                evaluations += 1;
                if t > best.best_time {
                    let (rt, rs) = evaluate_candidate_from(
                        &sim,
                        &mut main_pool,
                        &make,
                        &checkpoints,
                        &mutant,
                        k as u64,
                    );
                    evaluations += 1;
                    debug_assert_eq!(rt, t, "recorded winner must replay to its score");
                    (best.best_time, best.schedule, best.strategy) = (rt, rs, "polish");
                    improved = true;
                    // The adopted run departs from the old incumbent at
                    // message k, so checkpoints at or before k captured
                    // identical state and stay valid; the rest are stale.
                    checkpoints.retain(|cp| cp.messages() <= k as u64);
                    break;
                }
            }
            // Adoption may change the schedule's length; keep the sweep
            // inside the new incumbent.
            k = k.min(best.schedule.decisions.len());
        }
        if !improved {
            // Converged: re-sweeping an unchanged incumbent re-scores
            // identical candidates.
            break;
        }
        let interval = cfg.interval_for(best.schedule.len());
        rebuild_checkpoints(&sim, &make, &best.schedule, interval, &mut checkpoints);
        evaluations += 1;
    }

    best.evaluations = evaluations;
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_graph::generators::{self, WeightDist};
    use csp_sim::Context;

    /// Minimal flooding protocol for search smoke tests.
    #[derive(Clone)]
    struct Flood {
        seen: bool,
    }

    impl Process for Flood {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
            if ctx.self_id() == NodeId::new(0) {
                self.seen = true;
                ctx.send_all(());
            }
        }
        fn on_message(&mut self, _from: NodeId, _msg: (), ctx: &mut Context<'_, ()>) {
            if !self.seen {
                self.seen = true;
                ctx.send_all(());
            }
        }
    }

    fn small_graph() -> WeightedGraph {
        generators::connected_gnp(10, 0.35, WeightDist::Uniform(1, 12), 7)
    }

    #[test]
    fn search_never_loses_to_its_own_baseline() {
        let g = small_graph();
        let cfg = SearchConfig {
            random_probes: 8,
            hill_rounds: 3,
            candidates_per_round: 4,
            ..SearchConfig::default()
        };
        let out = find_worst_schedule(&g, |_, _| Flood { seen: false }, &cfg);
        assert!(out.best_time >= out.worst_case);
        assert!(out.gap() >= 1.0);
        assert!(out.evaluations >= 1 + 1 + 8);
    }

    #[test]
    fn search_is_deterministic_across_thread_counts() {
        let g = small_graph();
        let run = |threads| {
            let cfg = SearchConfig {
                random_probes: 8,
                hill_rounds: 2,
                candidates_per_round: 4,
                threads,
                ..SearchConfig::default()
            };
            find_worst_schedule(&g, |_, _| Flood { seen: false }, &cfg)
        };
        let (a, b) = (run(1), run(4));
        assert_eq!(a.best_time, b.best_time);
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.strategy, b.strategy);
    }

    #[test]
    fn checkpointed_search_matches_cold_candidate_evaluation() {
        // Force dense checkpoints and verify the search is insensitive to
        // the interval: resumed evaluation is bit-identical to cold, so
        // any `checkpoint_every` must produce the same outcome.
        let g = small_graph();
        let run = |every| {
            let cfg = SearchConfig {
                random_probes: 4,
                hill_rounds: 4,
                candidates_per_round: 4,
                checkpoint_every: every,
                ..SearchConfig::default()
            };
            find_worst_schedule(&g, |_, _| Flood { seen: false }, &cfg)
        };
        let dense = run(1);
        let sparse = run(10_000); // only the post-start checkpoint applies
        let auto = run(0);
        assert_eq!(dense.best_time, sparse.best_time);
        assert_eq!(dense.schedule, sparse.schedule);
        assert_eq!(dense.best_time, auto.best_time);
        assert_eq!(dense.schedule, auto.schedule);
    }

    #[test]
    fn mutate_keeps_delays_admissible() {
        let g = small_graph();
        let (_, base) = record_run(
            &g,
            &|_, _| Flood { seen: false },
            ModelOracle::new(DelayModel::Uniform, 3),
        );
        let mutant = mutate(&base, 99, 16);
        assert_eq!(mutant.decisions.len(), base.decisions.len());
        for d in &mutant.decisions {
            assert!(d.delay >= 1 && d.delay <= d.weight);
        }
    }

    #[test]
    fn zero_drop_flips_matches_the_delay_only_mutator() {
        // `mutate_with_drops(.., 0)` must draw the identical RNG stream as
        // `mutate`, so enabling fault search can never perturb delay-only
        // results (committed witnesses regenerate unchanged).
        let g = small_graph();
        let (_, base) = record_run(
            &g,
            &|_, _| Flood { seen: false },
            ModelOracle::new(DelayModel::Uniform, 3),
        );
        for seed in [0, 7, 99] {
            assert_eq!(mutate(&base, seed, 6), mutate_with_drops(&base, seed, 6, 0));
        }
    }

    #[test]
    fn drop_flips_toggle_only_drop_flags() {
        let g = small_graph();
        let (_, base) = record_run(
            &g,
            &|_, _| Flood { seen: false },
            ModelOracle::new(DelayModel::Uniform, 3),
        );
        let mutant = mutate_with_drops(&base, 42, 0, 5);
        assert!(mutant.dropped_count() > 0, "some flag must flip");
        for (a, b) in base.decisions.iter().zip(&mutant.decisions) {
            assert_eq!(a.delay, b.delay, "delays must be untouched");
        }
    }

    #[test]
    fn fault_search_with_drops_never_loses_to_delay_only() {
        // Drops can only stall a flood further (retransmission-free flood
        // still quiesces — undelivered copies just vanish), so the
        // drop-enabled search must dominate its own delay-only baseline.
        let g = small_graph();
        let base = SearchConfig {
            random_probes: 4,
            hill_rounds: 3,
            candidates_per_round: 4,
            polish_passes: 0,
            ..SearchConfig::default()
        };
        let delay_only = find_worst_schedule(&g, |_, _| Flood { seen: false }, &base);
        let faulty = find_worst_schedule(
            &g,
            |_, _| Flood { seen: false },
            &SearchConfig {
                drop_flips: 2,
                ..base
            },
        );
        assert!(faulty.best_time >= delay_only.worst_case);
        assert!(faulty.evaluations >= delay_only.evaluations);
    }

    #[test]
    fn crash_probes_are_evaluated_and_recorded() {
        let g = small_graph();
        let cfg = SearchConfig {
            random_probes: 2,
            hill_rounds: 0,
            polish_passes: 0,
            crash_probes: 3,
            ..SearchConfig::default()
        };
        let out = find_worst_schedule(&g, |_, _| Flood { seen: false }, &cfg);
        // 1 worst-case + 1 critical-path + 2 random + 3 vertices × the
        // 3-point crash-time grid.
        assert_eq!(out.evaluations, 13);
        if out.strategy == "crash" {
            assert_eq!(out.schedule.crashes.len(), 1);
        }
    }

    #[test]
    fn zero_crash_time_flips_matches_the_drop_mutator() {
        // The crash-time draws are appended after the drop draws, so
        // disabling them must reproduce `mutate_with_drops` exactly even
        // on crash-bearing schedules.
        let g = small_graph();
        let (_, mut base) = record_run(
            &g,
            &|_, _| Flood { seen: false },
            ModelOracle::new(DelayModel::Uniform, 3),
        );
        base.crashes.push(Crash {
            node: NodeId::new(2),
            at: 9,
        });
        for seed in [0, 7, 99] {
            assert_eq!(
                mutate_with_drops(&base, seed, 6, 2),
                mutate_with_faults(&base, seed, 6, 2, 0)
            );
        }
    }

    #[test]
    fn crash_time_flips_move_only_crash_times() {
        let g = small_graph();
        let (_, mut base) = record_run(
            &g,
            &|_, _| Flood { seen: false },
            ModelOracle::new(DelayModel::Uniform, 3),
        );
        base.crashes.push(Crash {
            node: NodeId::new(4),
            at: 16,
        });
        let mut moved = false;
        for seed in 0..8 {
            let mutant = mutate_with_faults(&base, seed, 0, 0, 3);
            assert_eq!(mutant.decisions, base.decisions, "decisions untouched");
            assert_eq!(mutant.crashes.len(), 1);
            assert_eq!(mutant.crashes[0].node, NodeId::new(4), "victim untouched");
            assert!(mutant.crashes[0].at >= 1);
            moved |= mutant.crashes[0].at != 16;
        }
        assert!(moved, "some seed must actually move the crash time");
        // Crash-free schedules pass through the phase unchanged.
        base.crashes.clear();
        assert_eq!(mutate_with_faults(&base, 5, 0, 0, 3), base);
    }

    #[test]
    fn worker_threads_are_capped_at_the_machine() {
        let cfg = SearchConfig {
            threads: usize::MAX,
            ..SearchConfig::default()
        };
        let avail = std::thread::available_parallelism().map_or(1, |n| n.get());
        assert_eq!(cfg.worker_threads(), avail);
        let auto = SearchConfig::default();
        assert_eq!(auto.worker_threads(), avail);
    }
}
