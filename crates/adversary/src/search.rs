//! Schedule-space search: seeded random probes, the critical-path
//! greedy, and hill-climbing mutation — all fanned out through
//! [`csp_sim::sweep::par_map_with`] with a pooled evaluator per worker.
//!
//! Every strategy records the schedule it actually ran (via
//! [`Recorder`]), so [`SearchOutcome::schedule`] always replays to
//! exactly [`SearchOutcome::best_time`]. The whole search is
//! deterministic: fixed seeds, order-preserving parallel map, and
//! strict-improvement adoption, so two searches with the same config
//! find the same schedule regardless of thread count.
//!
//! # Incremental candidate evaluation
//!
//! Hill-climb and polish candidates are mutations of the incumbent
//! schedule: they agree with it on every decision before the first
//! mutated index. The search therefore
//! [checkpoints](csp_sim::Checkpoint) the incumbent's run at regular
//! message intervals and evaluates each candidate by *resuming* from the
//! last checkpoint at or before its first mutated decision, replaying
//! only the suffix. Resumption is bit-identical to a cold run (pinned by
//! the checkpoint-equivalence proptests in
//! `tests/flat_core_differential.rs`), so this is purely a performance
//! change. Candidates are *scored* time-only (no recording); only an
//! adopted winner is re-evaluated through a [`Recorder`], and its
//! schedule is assembled as the shared prefix plus the resumed
//! recording, exactly what a cold recorder would have transcribed.
//!
//! # Tail polish
//!
//! After hill climbing, `polish_passes` rounds of coordinate descent
//! toggle one decision at a time to its extremes (rush = `1`,
//! stretch = `weight`), sweeping the final quarter of the schedule from
//! the tail backwards. The tail is where a toggle is cheapest to
//! evaluate (suffix-only replay from a deep checkpoint) *and* most
//! likely to move the completion time — it is the arrival time of a
//! late message; global moves stay the hill phase's job, whose
//! mutations already re-randomize arbitrary positions. Allocating the
//! single-toggle budget to the cheap, high-leverage region is the
//! cost-sensitive spending the checkpoint machinery exists for.
//! Re-sweeping matters because each adoption rewrites the suffix behind
//! it, exposing new profitable toggles. Adopting a toggle at position
//! `k` keeps every checkpoint with `messages() <= k` valid (the prefix
//! is unchanged), so a descending sweep never rebuilds the store
//! mid-pass; it is truncated on adoption and rebuilt once at the end of
//! an improving pass.

use crate::oracle::{CriticalPathOracle, Recorder, ScheduleOracle};
use crate::schedule::{Crash, Drift, Fallback, Rejoin, Schedule};
use csp_graph::{NodeId, WeightedGraph};
use csp_sim::sweep::{effective_threads, par_map_with};
use csp_sim::{
    Checkpoint, DelayModel, EvalPool, LinkOracle, ModelOracle, Process, SimTime, Simulator,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Search budget and seeding; the defaults complete in seconds on
/// Figure-2/3/4-sized instances.
#[derive(Clone, Copy, Debug)]
pub struct SearchConfig {
    /// Uniform-delay random probes.
    pub random_probes: usize,
    /// Hill-climbing rounds mutating the incumbent schedule.
    pub hill_rounds: usize,
    /// Mutated candidates evaluated per round.
    pub candidates_per_round: usize,
    /// Decisions re-randomized per mutation.
    pub flips: usize,
    /// Master seed; every probe and mutation seed derives from it.
    pub seed: u64,
    /// Worker threads for the parallel fan-out: `0` means one per core,
    /// and explicit requests are capped at the machine's available
    /// parallelism (via [`effective_threads`], the same rule the sweep
    /// driver uses).
    pub threads: usize,
    /// Message interval between incumbent checkpoints for resumed
    /// candidate evaluation. `0` (the default) sizes the interval
    /// automatically from the incumbent schedule: one checkpoint per
    /// ~1/32 of its decisions, but never more often than every 8
    /// messages.
    pub checkpoint_every: u64,
    /// Coordinate-descent polish passes after hill climbing, each
    /// sweeping the final quarter of the schedule from the tail (see the
    /// [module docs](self)).
    pub polish_passes: usize,
    /// Decisions whose drop flag is toggled per mutation, on top of
    /// `flips` delay re-randomizations. `0` (the default) keeps the
    /// search delay-only — and byte-identical to the pre-fault search,
    /// so committed delay witnesses regenerate unchanged.
    pub drop_flips: usize,
    /// Crash candidates probed between the random and hill phases: the
    /// first `crash_probes` vertices are each tried as the incumbent
    /// schedule plus that vertex crashing at each point of a small
    /// crash-*time* grid (quarter, half and three-quarters of the
    /// incumbent's completion time) — a victim's damage depends on
    /// *when* it dies, not just on who dies. `0` (the default) disables
    /// crash search.
    pub crash_probes: usize,
    /// Crash times re-randomized per mutation, after the `flips` delay
    /// draws and `drop_flips` drop toggles — making *when a vertex dies*
    /// a real hill-climb coordinate once a crash probe has been adopted.
    /// No-op on crash-free incumbents. `0` (the default) keeps the
    /// mutation stream byte-identical to the drop-only mutator's.
    pub crash_time_flips: usize,
    /// Churn-chain extensions per mutation ([`Mutation::rejoin_flips`]):
    /// each grows a crashed vertex's crash/rejoin chain by one toggle,
    /// letting the hill phase discover crash–rejoin–recrash schedules.
    /// No-op on crash-free incumbents. `0` (the default) keeps the
    /// mutation stream byte-identical to the crash-time mutator's.
    pub rejoin_flips: usize,
    /// Weight revisions per mutation ([`Mutation::drift_flips`]): each
    /// redraws one decision's edge weight at a drawn time. `0` (the
    /// default) keeps the search drift-free.
    pub drift_flips: usize,
    /// Routes [`check_time_bound`](crate::check_time_bound) through the
    /// DPOR explorer ([`explore_exhaustive`](crate::explore_exhaustive))
    /// instead of the heuristic pipeline: every Mazurkiewicz class of
    /// delivery orders reachable by branching on dependent races gets
    /// exactly one representative schedule. Only tractable on small
    /// instances; `false` (the default) keeps the heuristic search.
    pub exhaustive: bool,
    /// Cap on equivalence classes the exhaustive explorer evaluates.
    /// `0` (the default) means the explorer's built-in cap
    /// ([`DEFAULT_CLASS_BUDGET`](crate::trace::DEFAULT_CLASS_BUDGET)).
    pub class_budget: usize,
    /// Latest admissible crash time: the crash-probe grid and every
    /// [`Mutation`] crash-time redraw are clamped to it, so the search
    /// never emits a crash the run's horizon makes unobservable. `0`
    /// (the default) leaves crash times unbounded.
    pub crash_horizon: u64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            random_probes: 64,
            hill_rounds: 24,
            candidates_per_round: 16,
            flips: 4,
            seed: 0,
            threads: 0,
            checkpoint_every: 0,
            polish_passes: 4,
            drop_flips: 0,
            crash_probes: 0,
            crash_time_flips: 0,
            rejoin_flips: 0,
            drift_flips: 0,
            exhaustive: false,
            class_budget: 0,
            crash_horizon: 0,
        }
    }
}

impl SearchConfig {
    /// Starts a validated builder from the defaults — the construction
    /// path every consumer (search bins, the service, tests) goes
    /// through, so misconfigured budgets fail loudly at build time
    /// instead of silently searching nothing.
    pub fn builder() -> SearchConfigBuilder {
        SearchConfigBuilder {
            cfg: SearchConfig::default(),
        }
    }

    /// The [`Mutation`] the hill and polish phases apply, assembled from
    /// the config's flip budgets and crash horizon.
    pub fn mutation(&self) -> Mutation {
        let m = Mutation::new()
            .delay_flips(self.flips)
            .drop_flips(self.drop_flips)
            .crash_time_flips(self.crash_time_flips)
            .rejoin_flips(self.rejoin_flips)
            .drift_flips(self.drift_flips);
        if self.crash_horizon > 0 {
            m.crash_horizon(self.crash_horizon)
        } else {
            m
        }
    }

    /// The explorer's effective class cap (`class_budget`, or the
    /// built-in default when it is 0).
    pub fn effective_class_budget(&self) -> usize {
        if self.class_budget > 0 {
            self.class_budget
        } else {
            crate::trace::DEFAULT_CLASS_BUDGET
        }
    }

    fn worker_threads(&self) -> usize {
        effective_threads(self.threads)
    }

    /// The checkpoint interval used for an incumbent of `schedule_len`
    /// decisions (`checkpoint_every`, or the auto rule when it is 0).
    fn interval_for(&self, schedule_len: usize) -> u64 {
        if self.checkpoint_every > 0 {
            self.checkpoint_every
        } else {
            (schedule_len as u64 / 32).max(8)
        }
    }
}

/// Builds a [`SearchConfig`] with validation — see
/// [`SearchConfig::builder`]. Every setter overrides one field of the
/// defaults; [`SearchConfigBuilder::build`] rejects configurations that
/// would search nothing or emit unobservable crashes.
#[derive(Clone, Copy, Debug)]
pub struct SearchConfigBuilder {
    cfg: SearchConfig,
}

impl SearchConfigBuilder {
    /// Sets [`SearchConfig::random_probes`].
    pub fn random_probes(mut self, n: usize) -> Self {
        self.cfg.random_probes = n;
        self
    }

    /// Sets [`SearchConfig::hill_rounds`].
    pub fn hill_rounds(mut self, n: usize) -> Self {
        self.cfg.hill_rounds = n;
        self
    }

    /// Sets [`SearchConfig::candidates_per_round`].
    pub fn candidates_per_round(mut self, n: usize) -> Self {
        self.cfg.candidates_per_round = n;
        self
    }

    /// Sets [`SearchConfig::flips`].
    pub fn flips(mut self, n: usize) -> Self {
        self.cfg.flips = n;
        self
    }

    /// Sets [`SearchConfig::seed`].
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Sets [`SearchConfig::threads`].
    pub fn threads(mut self, n: usize) -> Self {
        self.cfg.threads = n;
        self
    }

    /// Sets [`SearchConfig::checkpoint_every`].
    pub fn checkpoint_every(mut self, interval: u64) -> Self {
        self.cfg.checkpoint_every = interval;
        self
    }

    /// Sets [`SearchConfig::polish_passes`].
    pub fn polish_passes(mut self, n: usize) -> Self {
        self.cfg.polish_passes = n;
        self
    }

    /// Sets [`SearchConfig::drop_flips`].
    pub fn drop_flips(mut self, n: usize) -> Self {
        self.cfg.drop_flips = n;
        self
    }

    /// Sets [`SearchConfig::crash_probes`].
    pub fn crash_probes(mut self, n: usize) -> Self {
        self.cfg.crash_probes = n;
        self
    }

    /// Sets [`SearchConfig::crash_time_flips`].
    pub fn crash_time_flips(mut self, n: usize) -> Self {
        self.cfg.crash_time_flips = n;
        self
    }

    /// Sets [`SearchConfig::rejoin_flips`].
    pub fn rejoin_flips(mut self, n: usize) -> Self {
        self.cfg.rejoin_flips = n;
        self
    }

    /// Sets [`SearchConfig::drift_flips`].
    pub fn drift_flips(mut self, n: usize) -> Self {
        self.cfg.drift_flips = n;
        self
    }

    /// Selects the exhaustive DPOR mode ([`SearchConfig::exhaustive`])
    /// with the given class cap (`0` keeps the built-in default).
    pub fn exhaustive(mut self, class_budget: usize) -> Self {
        self.cfg.exhaustive = true;
        self.cfg.class_budget = class_budget;
        self
    }

    /// Sets [`SearchConfig::crash_horizon`].
    pub fn crash_horizon(mut self, horizon: u64) -> Self {
        self.cfg.crash_horizon = horizon;
        self
    }

    /// Validates and returns the config.
    ///
    /// # Errors
    ///
    /// [`ConfigError::ZeroBudget`] when no phase has any budget (nothing
    /// beyond the two fixed baselines would run);
    /// [`ConfigError::NoCandidates`] when hill rounds are requested with
    /// zero candidates per round; [`ConfigError::FrozenMutation`] when
    /// hill rounds are requested but every mutation dimension is zero
    /// (each round would re-score the incumbent verbatim);
    /// [`ConfigError::UnusedCrashHorizon`] when a crash horizon is set
    /// but no phase can emit a crash — the knob silently capping nothing
    /// is the "crash past the horizon" misconfiguration this builder
    /// exists to reject.
    pub fn build(self) -> Result<SearchConfig, ConfigError> {
        let c = &self.cfg;
        if !c.exhaustive
            && c.random_probes == 0
            && c.hill_rounds == 0
            && c.polish_passes == 0
            && c.crash_probes == 0
        {
            return Err(ConfigError::ZeroBudget);
        }
        if c.hill_rounds > 0 && c.candidates_per_round == 0 {
            return Err(ConfigError::NoCandidates);
        }
        if c.hill_rounds > 0
            && c.flips + c.drop_flips + c.crash_time_flips + c.rejoin_flips + c.drift_flips == 0
        {
            return Err(ConfigError::FrozenMutation);
        }
        if c.crash_horizon > 0
            && c.crash_probes == 0
            && c.crash_time_flips == 0
            && c.rejoin_flips == 0
            && c.drift_flips == 0
        {
            return Err(ConfigError::UnusedCrashHorizon);
        }
        Ok(self.cfg)
    }
}

/// A [`SearchConfigBuilder`] rejection — see
/// [`SearchConfigBuilder::build`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConfigError {
    /// Every search phase has zero budget.
    ZeroBudget,
    /// Hill rounds requested with zero candidates per round.
    NoCandidates,
    /// Hill rounds requested with every mutation dimension zero.
    FrozenMutation,
    /// A crash horizon is set but no phase emits crashes.
    UnusedCrashHorizon,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroBudget => write!(f, "every search phase has zero budget"),
            ConfigError::NoCandidates => {
                write!(f, "hill rounds require candidates_per_round >= 1")
            }
            ConfigError::FrozenMutation => write!(
                f,
                "hill rounds require at least one nonzero mutation dimension \
                 (flips, drop_flips, crash_time_flips, rejoin_flips or drift_flips)"
            ),
            ConfigError::UnusedCrashHorizon => write!(
                f,
                "crash_horizon is set but no phase (crash_probes, crash_time_flips, \
                 rejoin_flips, drift_flips) can emit a churn time for it to cap"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// The result of a schedule search on one protocol × graph instance.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// Completion time under [`DelayModel::WorstCase`] — the baseline the
    /// paper's time bounds are stated against.
    pub worst_case: SimTime,
    /// The latest completion time any searched schedule achieved
    /// (`>= worst_case` only if the search found a genuinely worse
    /// adversary; equal when uniform-delay stretching is already optimal,
    /// as it is for monotone protocols like flooding).
    pub best_time: SimTime,
    /// The recorded schedule achieving [`SearchOutcome::best_time`];
    /// replaying it reproduces that time exactly.
    pub schedule: Schedule,
    /// Which strategy found the best schedule: `"worst-case"`,
    /// `"critical-path"`, `"random"`, `"crash"`, `"hill-climb"`,
    /// `"polish"` or `"exhaustive"`.
    pub strategy: &'static str,
    /// Total simulator runs spent (checkpoint-resumed candidate
    /// evaluations count as one run each, like the cold runs they
    /// replace).
    pub evaluations: usize,
    /// Mazurkiewicz classes the exhaustive explorer evaluated — one
    /// representative schedule each. `0` on heuristic searches, which do
    /// not track equivalence.
    pub classes_explored: u64,
    /// Branches the explorer discarded without evaluation: sleep-set
    /// covered alternatives (no dependent delivery crossed), duplicate
    /// crossing-set representatives, and already-visited prefixes. `0`
    /// on heuristic searches.
    pub schedules_pruned: u64,
}

impl SearchOutcome {
    /// Whether the search beat the fixed worst-case delay model.
    pub fn beats_worst_case(&self) -> bool {
        self.best_time > self.worst_case
    }

    /// `best_time / worst_case` — how much the searched adversary
    /// out-delays the fixed model (`1.0` = no gap).
    pub fn gap(&self) -> f64 {
        if self.worst_case == SimTime::ZERO {
            1.0
        } else {
            self.best_time.get() as f64 / self.worst_case.get() as f64
        }
    }
}

/// Runs the simulator under `oracle`, recording the schedule actually
/// taken. Returns the completion time and the recording.
fn record_run<P, F, O>(g: &WeightedGraph, make: &F, oracle: O) -> (SimTime, Schedule)
where
    P: Process,
    F: Fn(NodeId, &WeightedGraph) -> P,
    O: LinkOracle,
{
    let mut rec = Recorder::new(oracle);
    let run = Simulator::new(g)
        .run_with_oracle(&mut rec, |v, g| make(v, g))
        .expect("protocol must quiesce under an admissible schedule");
    (run.cost.completion, rec.into_schedule(Fallback::WorstCase))
}

/// [`record_run`] through a pooled evaluator: same result, but the
/// simulator state (slab, queue, cost meters) is recycled from `pool`.
fn eval_recorded<P, F, O>(
    sim: &Simulator<'_>,
    pool: &mut EvalPool<P>,
    make: &F,
    oracle: O,
) -> (SimTime, Schedule)
where
    P: Process,
    F: Fn(NodeId, &WeightedGraph) -> P,
    O: LinkOracle,
{
    let mut rec = Recorder::new(oracle);
    let summary = sim
        .eval(pool, &mut rec, |v, g| make(v, g))
        .expect("protocol must quiesce under an admissible schedule");
    (summary.completion, rec.into_schedule(Fallback::WorstCase))
}

/// Replays `schedule` (the incumbent: a faithful recording, so the
/// replay never diverges) while snapshotting checkpoints every
/// `interval` messages into `out`.
fn rebuild_checkpoints<P, F>(
    sim: &Simulator<'_>,
    make: &F,
    schedule: &Schedule,
    interval: u64,
    out: &mut Vec<Checkpoint<P>>,
) where
    P: Process + Clone,
    F: Fn(NodeId, &WeightedGraph) -> P,
{
    out.clear();
    let mut oracle = ScheduleOracle::new(schedule);
    sim.run_with_checkpoints(&mut oracle, |v, g| make(v, g), interval, out)
        .expect("incumbent schedule must replay to quiescence");
    debug_assert_eq!(oracle.divergences, 0, "incumbent replay diverged");
}

/// First index at which `mutant`'s link decisions depart from the
/// incumbent's — the first message where the candidate's run can
/// diverge; everything before it is shared prefix. Mutation only
/// rewrites delays and drop flags, so comparing those suffices — except
/// churn (crashes, rejoins, drifts), which is assigned at time zero: a
/// candidate with a different churn assignment shares no prefix at all.
fn first_diff(incumbent: &Schedule, mutant: &Schedule) -> u64 {
    if incumbent.crashes != mutant.crashes
        || incumbent.rejoins != mutant.rejoins
        || incumbent.drifts != mutant.drifts
    {
        return 0;
    }
    incumbent
        .decisions
        .iter()
        .zip(&mutant.decisions)
        .position(|(a, b)| (a.delay, a.dropped) != (b.delay, b.dropped))
        .unwrap_or(mutant.decisions.len()) as u64
}

/// Scores one mutated candidate — completion time only, no recording —
/// resuming from the deepest incumbent checkpoint at or before
/// `first_diff` (cold-running only when the mutation lands before the
/// first checkpoint). [`ScheduleOracle`] answers by message index, so it
/// needs no positional state to resume mid-run.
fn score_candidate_from<P, F>(
    sim: &Simulator<'_>,
    pool: &mut EvalPool<P>,
    make: &F,
    checkpoints: &[Checkpoint<P>],
    mutant: &Schedule,
    first_diff: u64,
) -> SimTime
where
    P: Process + Clone,
    F: Fn(NodeId, &WeightedGraph) -> P,
{
    let mut oracle = ScheduleOracle::new(mutant);
    match checkpoints
        .iter()
        .rev()
        .find(|cp| cp.messages() <= first_diff)
    {
        Some(cp) => sim.eval_resume(pool, cp, &mut oracle),
        None => sim.eval(pool, &mut oracle, |v, g| make(v, g)),
    }
    .expect("protocol must quiesce under an admissible schedule")
    .completion
}

/// Like [`score_candidate_from`], but records the candidate's run: the
/// returned schedule is the shared prefix plus the resumed recording —
/// the faithful transcript a cold [`Recorder`] would have produced.
/// Only adopted winners pay for this.
fn evaluate_candidate_from<P, F>(
    sim: &Simulator<'_>,
    pool: &mut EvalPool<P>,
    make: &F,
    checkpoints: &[Checkpoint<P>],
    mutant: &Schedule,
    first_diff: u64,
) -> (SimTime, Schedule)
where
    P: Process + Clone,
    P::Msg: Clone,
    F: Fn(NodeId, &WeightedGraph) -> P,
{
    let Some(cp) = checkpoints
        .iter()
        .rev()
        .find(|cp| cp.messages() <= first_diff)
    else {
        return eval_recorded(sim, pool, make, ScheduleOracle::new(mutant));
    };
    let mut rec = Recorder::with_offset(ScheduleOracle::new(mutant), cp.messages());
    let summary = sim
        .eval_resume(pool, cp, &mut rec)
        .expect("protocol must quiesce under an admissible schedule");
    let mut decisions = mutant.decisions[..cp.messages() as usize].to_vec();
    decisions.extend(rec.into_decisions());
    (
        summary.completion,
        Schedule {
            decisions,
            fallback: Fallback::WorstCase,
            // Resumed runs restore the crash assignment from the
            // checkpoint instead of re-querying the oracle, so the
            // recorder saw none of it; splice the mutant's own crashes
            // (identical to the checkpoint's — `first_diff` is 0, and no
            // checkpoint covers it, whenever they differ). Rejoins and
            // drifts are part of the same start-of-run assignment, so
            // they splice the same way.
            crashes: mutant.crashes.clone(),
            rejoins: mutant.rejoins.clone(),
            drifts: mutant.drifts.clone(),
        },
    )
}

/// One seeded schedule perturbation across every adversarial dimension —
/// the single mutation surface the hill-climb, polish and churn-search
/// phases share (the historical
/// `mutate`/`mutate_with_drops`/`mutate_with_faults` trio is gone).
///
/// [`Mutation::apply`] draws, in order: `delay_flips` delay
/// re-randomizations (each picked decision set to rushed `1`, stretched
/// `weight`, or a uniform point between), `drop_flips` drop-flag
/// toggles, then — only on crash-bearing schedules —
/// `crash_time_flips` crash-time redraws (halved, doubled, or uniform
/// around the current value), `rejoin_flips` churn-chain extensions
/// (each picked victim's crash/rejoin chain grows by one toggle: a
/// rejoin if the victim is down at the end of its chain, a *recrash* if
/// it is back up — the crash–rejoin–recrash ladders the churn witness
/// needs), and finally `drift_flips` weight revisions (a picked
/// decision's edge gets its weight redrawn in `[1, 2·weight]` at a
/// drawn time). The draw order is a compatibility contract: a dimension
/// with zero flips consumes no RNG, so enabling a later dimension never
/// perturbs the mutants of an earlier one, and committed delay-only and
/// single-crash witnesses regenerate byte-identically.
///
/// An optional [`Mutation::crash_horizon`] clamps redrawn crash, rejoin
/// and drift times *after* the draw (consuming no extra RNG, so an
/// unbounded mutation stays byte-identical), keeping every emitted
/// churn event observable within the run's horizon.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Mutation {
    delay_flips: usize,
    drop_flips: usize,
    crash_time_flips: usize,
    rejoin_flips: usize,
    drift_flips: usize,
    horizon: Option<u64>,
}

impl Mutation {
    /// A mutation with every dimension zero — [`Mutation::apply`] is the
    /// identity until a flip budget is set.
    pub fn new() -> Self {
        Mutation::default()
    }

    /// Sets how many decisions get their delay re-randomized.
    pub fn delay_flips(mut self, n: usize) -> Self {
        self.delay_flips = n;
        self
    }

    /// Sets how many decisions get their drop flag toggled.
    pub fn drop_flips(mut self, n: usize) -> Self {
        self.drop_flips = n;
        self
    }

    /// Sets how many crash times get redrawn (no-op on crash-free
    /// schedules — the draws are skipped entirely).
    pub fn crash_time_flips(mut self, n: usize) -> Self {
        self.crash_time_flips = n;
        self
    }

    /// Sets how many churn-chain extensions get drawn: each flip picks a
    /// crashed vertex and appends one toggle to its crash/rejoin chain —
    /// a rejoin when the chain ends down, a recrash when it ends up
    /// (no-op on crash-free schedules — the draws are skipped entirely).
    pub fn rejoin_flips(mut self, n: usize) -> Self {
        self.rejoin_flips = n;
        self
    }

    /// Sets how many weight revisions get drawn: each flip picks a
    /// decision and revises its edge's weight at a drawn time (no-op on
    /// empty schedules).
    pub fn drift_flips(mut self, n: usize) -> Self {
        self.drift_flips = n;
        self
    }

    /// Clamps every redrawn crash, rejoin and drift time to
    /// `at <= horizon` (post-draw, so the RNG stream is unchanged).
    pub fn crash_horizon(mut self, horizon: u64) -> Self {
        self.horizon = Some(horizon);
        self
    }

    /// Applies the mutation to `base` under `seed`, returning the mutant.
    /// Deterministic: same base, seed and dimensions — same mutant.
    pub fn apply(&self, base: &Schedule, seed: u64) -> Schedule {
        let mut out = base.clone();
        if out.decisions.is_empty() {
            return out;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..self.delay_flips {
            let i = rng.random_range(0..out.decisions.len() as u64) as usize;
            let d = &mut out.decisions[i];
            d.delay = match rng.random_range(0..3u64) {
                0 => 1,
                1 => d.weight,
                _ => rng.random_range(1..=d.weight),
            };
        }
        for _ in 0..self.drop_flips {
            let i = rng.random_range(0..out.decisions.len() as u64) as usize;
            let d = &mut out.decisions[i];
            d.dropped = !d.dropped;
        }
        if !out.crashes.is_empty() {
            for _ in 0..self.crash_time_flips {
                let c = rng.random_range(0..out.crashes.len() as u64) as usize;
                let at = out.crashes[c].at;
                let mut drawn = match rng.random_range(0..3u64) {
                    0 => (at / 2).max(1),
                    1 => at.saturating_mul(2).max(1),
                    _ => rng.random_range(1..=at.saturating_mul(2).max(1)),
                };
                if let Some(h) = self.horizon {
                    drawn = drawn.min(h).max(1);
                }
                // On a churn chain the redraw must stay strictly between
                // its neighbouring toggles or the alternation discipline
                // breaks; clamp post-draw (no RNG consumed — on the
                // single-crash chains the pre-churn mutator handled,
                // the slot is (0, ∞) and this is the identity).
                let chain = out.churn_of(out.crashes[c].node);
                let pos = chain
                    .iter()
                    .position(|&t| t == at)
                    .expect("crash time is on its own chain");
                let lo = if pos > 0 { chain[pos - 1] + 1 } else { 1 };
                let hi = chain
                    .get(pos + 1)
                    .map_or(u64::MAX, |&t| t.saturating_sub(1));
                if lo > hi {
                    continue; // zero-width slot: keep the original time
                }
                out.crashes[c].at = drawn.clamp(lo, hi);
            }
            for _ in 0..self.rejoin_flips {
                let c = rng.random_range(0..out.crashes.len() as u64) as usize;
                let victim = out.crashes[c].node;
                let chain = out.churn_of(victim);
                let last = *chain.last().expect("victim has at least its crash");
                let mut at = last + rng.random_range(1..=last.max(1));
                if let Some(h) = self.horizon {
                    at = at.min(h);
                }
                if at <= last {
                    // The horizon leaves no room for another toggle on
                    // this chain; skip rather than emit invalid churn.
                    continue;
                }
                if chain.len() % 2 == 1 {
                    out.rejoins.push(Rejoin { node: victim, at });
                } else {
                    out.crashes.push(Crash { node: victim, at });
                }
            }
        }
        for _ in 0..self.drift_flips {
            let i = rng.random_range(0..out.decisions.len() as u64) as usize;
            let d = out.decisions[i];
            let weight = rng.random_range(1..=d.weight.saturating_mul(2).max(1));
            // Drift times are drawn against a message-count proxy for
            // the run's duration (the hill phase refines them like any
            // other coordinate), then clamped post-draw so a horizon
            // never perturbs the RNG stream.
            let cap = (out.decisions.len() as u64).saturating_mul(2).max(1);
            let mut at = rng.random_range(1..=cap);
            if let Some(h) = self.horizon {
                at = at.min(h).max(1);
            }
            // Two revisions of one edge at one instant would race in
            // the dialect; replace instead of duplicating.
            match out
                .drifts
                .iter_mut()
                .find(|dr| dr.edge == d.edge && dr.at == at)
            {
                Some(existing) => existing.weight = weight,
                None => out.drifts.push(Drift {
                    edge: d.edge,
                    at,
                    weight,
                }),
            }
        }
        out
    }
}

/// Searches for the schedule maximizing completion time of the protocol
/// built by `make` on `g`.
///
/// Strategy pipeline: (1) the [`DelayModel::WorstCase`] baseline, which
/// also defines [`SearchOutcome::worst_case`]; (2) the
/// [`CriticalPathOracle`] greedy; (3) `random_probes` uniform-delay
/// probes in parallel; (3½) `crash_probes` single-crash candidates
/// spliced onto the incumbent; (4) `hill_rounds` rounds of parallel
/// [`Mutation`]-and-replay hill climbing from the incumbent, each
/// candidate resumed from the incumbent's checkpoint store (see the
/// [module docs](self)); (5) `polish_passes` of tail coordinate descent
/// over single decisions. Strict improvement is required to adopt a
/// candidate, and ties prefer the earlier strategy, so the outcome is
/// deterministic.
pub fn find_worst_schedule<P, F>(g: &WeightedGraph, make: F, cfg: &SearchConfig) -> SearchOutcome
where
    P: Process + Clone + Sync,
    P::Msg: Clone + Sync,
    F: Fn(NodeId, &WeightedGraph) -> P + Sync,
{
    let threads = cfg.worker_threads();
    let sim = Simulator::new(g);
    let mut evaluations = 0usize;

    let (worst_case, worst_schedule) =
        record_run(g, &make, ModelOracle::new(DelayModel::WorstCase, cfg.seed));
    evaluations += 1;
    let mut best = SearchOutcome {
        worst_case,
        best_time: worst_case,
        schedule: worst_schedule,
        strategy: "worst-case",
        evaluations: 0,
        classes_explored: 0,
        schedules_pruned: 0,
    };

    let (t, s) = record_run(g, &make, CriticalPathOracle::new());
    evaluations += 1;
    if t > best.best_time {
        (best.best_time, best.schedule, best.strategy) = (t, s, "critical-path");
    }

    let probe_seeds: Vec<u64> = (0..cfg.random_probes as u64)
        .map(|i| cfg.seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .collect();
    let probes = par_map_with(&probe_seeds, threads, EvalPool::new, |pool, &s| {
        eval_recorded(&sim, pool, &make, ModelOracle::new(DelayModel::Uniform, s))
    });
    evaluations += probes.len();
    for (t, s) in probes {
        if t > best.best_time {
            (best.best_time, best.schedule, best.strategy) = (t, s, "random");
        }
    }

    // Crash probes: try each of the first `crash_probes` vertices as the
    // incumbent plus that vertex crashing at each point of a small
    // crash-time grid. An early crash removes a participant before it
    // contributes; a late one forces recovery of state already built —
    // which of the two stalls a protocol longer is exactly what the grid
    // discovers (and the hill phase's `crash_time_flips` then refines).
    // Crashes take effect from time zero (`first_diff` is 0 against any
    // crash-free checkpoint), so every probe is a cold recorded run.
    if cfg.crash_probes > 0 {
        let horizon = best.best_time.get();
        // An explicit crash horizon caps the grid: a crash past it would
        // be recorded but never observed within the run.
        let cap = if cfg.crash_horizon > 0 {
            cfg.crash_horizon
        } else {
            u64::MAX
        };
        let mut grid: Vec<u64> = [horizon / 4, horizon / 2, (3 * horizon) / 4]
            .iter()
            .map(|&at| at.clamp(1, cap))
            .collect();
        grid.dedup();
        let mut pool = EvalPool::new();
        for v in g.nodes().take(cfg.crash_probes) {
            for &at in &grid {
                let mut candidate = best.schedule.clone();
                // Replace, don't duplicate, when an earlier grid point
                // for this vertex was already adopted.
                candidate.crashes.retain(|c| c.node != v);
                candidate.crashes.push(Crash { node: v, at });
                let (t, s) = eval_recorded(&sim, &mut pool, &make, ScheduleOracle::new(&candidate));
                evaluations += 1;
                if t > best.best_time {
                    (best.best_time, best.schedule, best.strategy) = (t, s, "crash");
                }
            }
        }
    }

    let mut checkpoints: Vec<Checkpoint<P>> = Vec::new();
    let mut main_pool = EvalPool::new();
    if cfg.hill_rounds > 0 || cfg.polish_passes > 0 {
        let interval = cfg.interval_for(best.schedule.len());
        rebuild_checkpoints(&sim, &make, &best.schedule, interval, &mut checkpoints);
        evaluations += 1;
    }
    let mutation = cfg.mutation();
    for round in 0..cfg.hill_rounds as u64 {
        let mutation_seeds: Vec<u64> = (0..cfg.candidates_per_round as u64)
            .map(|i| cfg.seed.wrapping_mul(0x100_0001b3) ^ (round << 32 | i))
            .collect();
        let incumbent = &best.schedule;
        let store = &checkpoints;
        let scores = par_map_with(&mutation_seeds, threads, EvalPool::new, |pool, &ms| {
            let mutant = mutation.apply(incumbent, ms);
            let fd = first_diff(incumbent, &mutant);
            score_candidate_from(&sim, pool, &make, store, &mutant, fd)
        });
        evaluations += scores.len();
        // Adopt the round's best strict improvement (earliest on ties,
        // matching a sequential `>` scan) and only then pay for its
        // recording.
        let mut winner: Option<(usize, SimTime)> = None;
        for (i, &t) in scores.iter().enumerate() {
            if t > winner.map_or(best.best_time, |(_, wt)| wt) {
                winner = Some((i, t));
            }
        }
        if let Some((i, t)) = winner {
            let mutant = mutation.apply(&best.schedule, mutation_seeds[i]);
            let fd = first_diff(&best.schedule, &mutant);
            let (rt, rs) =
                evaluate_candidate_from(&sim, &mut main_pool, &make, &checkpoints, &mutant, fd);
            evaluations += 1;
            debug_assert_eq!(rt, t, "recorded winner must replay to its score");
            (best.best_time, best.schedule, best.strategy) = (rt, rs, "hill-climb");
            let interval = cfg.interval_for(best.schedule.len());
            rebuild_checkpoints(&sim, &make, &best.schedule, interval, &mut checkpoints);
            evaluations += 1;
        }
    }

    // Tail polish: sequential coordinate descent over single decisions,
    // each candidate resumed from the deepest prefix checkpoint (see the
    // module docs). Deterministic by construction — fixed sweep order,
    // strict-improvement adoption, no randomness.
    let mut mutant = best.schedule.clone();
    for _pass in 0..cfg.polish_passes {
        let len = best.schedule.decisions.len();
        if len == 0 {
            break;
        }
        let lo = len.saturating_sub((len / 4).max(1));
        let mut improved = false;
        let mut k = len;
        while k > lo {
            k -= 1;
            let d = best.schedule.decisions[k];
            for target in [d.weight, 1] {
                if target == d.delay {
                    continue;
                }
                mutant.clone_from(&best.schedule);
                mutant.decisions[k].delay = target;
                let t = score_candidate_from(
                    &sim,
                    &mut main_pool,
                    &make,
                    &checkpoints,
                    &mutant,
                    k as u64,
                );
                evaluations += 1;
                if t > best.best_time {
                    let (rt, rs) = evaluate_candidate_from(
                        &sim,
                        &mut main_pool,
                        &make,
                        &checkpoints,
                        &mutant,
                        k as u64,
                    );
                    evaluations += 1;
                    debug_assert_eq!(rt, t, "recorded winner must replay to its score");
                    (best.best_time, best.schedule, best.strategy) = (rt, rs, "polish");
                    improved = true;
                    // The adopted run departs from the old incumbent at
                    // message k, so checkpoints at or before k captured
                    // identical state and stay valid; the rest are stale.
                    checkpoints.retain(|cp| cp.messages() <= k as u64);
                    break;
                }
            }
            // Adoption may change the schedule's length; keep the sweep
            // inside the new incumbent.
            k = k.min(best.schedule.decisions.len());
        }
        if !improved {
            // Converged: re-sweeping an unchanged incumbent re-scores
            // identical candidates.
            break;
        }
        let interval = cfg.interval_for(best.schedule.len());
        rebuild_checkpoints(&sim, &make, &best.schedule, interval, &mut checkpoints);
        evaluations += 1;
    }

    best.evaluations = evaluations;
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_graph::generators::{self, WeightDist};
    use csp_sim::Context;

    /// Minimal flooding protocol for search smoke tests.
    #[derive(Clone)]
    struct Flood {
        seen: bool,
    }

    impl Process for Flood {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
            if ctx.self_id() == NodeId::new(0) {
                self.seen = true;
                ctx.send_all(());
            }
        }
        fn on_message(&mut self, _from: NodeId, _msg: (), ctx: &mut Context<'_, ()>) {
            if !self.seen {
                self.seen = true;
                ctx.send_all(());
            }
        }
    }

    fn small_graph() -> WeightedGraph {
        generators::connected_gnp(10, 0.35, WeightDist::Uniform(1, 12), 7)
    }

    #[test]
    fn search_never_loses_to_its_own_baseline() {
        let g = small_graph();
        let cfg = SearchConfig::builder()
            .random_probes(8)
            .hill_rounds(3)
            .candidates_per_round(4)
            .build()
            .unwrap();
        let out = find_worst_schedule(&g, |_, _| Flood { seen: false }, &cfg);
        assert!(out.best_time >= out.worst_case);
        assert!(out.gap() >= 1.0);
        assert!(out.evaluations >= 1 + 1 + 8);
        assert_eq!(
            out.classes_explored, 0,
            "heuristic search tracks no classes"
        );
        assert_eq!(out.schedules_pruned, 0);
    }

    #[test]
    fn search_is_deterministic_across_thread_counts() {
        let g = small_graph();
        let run = |threads| {
            let cfg = SearchConfig::builder()
                .random_probes(8)
                .hill_rounds(2)
                .candidates_per_round(4)
                .threads(threads)
                .build()
                .unwrap();
            find_worst_schedule(&g, |_, _| Flood { seen: false }, &cfg)
        };
        let (a, b) = (run(1), run(4));
        assert_eq!(a.best_time, b.best_time);
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.strategy, b.strategy);
    }

    #[test]
    fn checkpointed_search_matches_cold_candidate_evaluation() {
        // Force dense checkpoints and verify the search is insensitive to
        // the interval: resumed evaluation is bit-identical to cold, so
        // any `checkpoint_every` must produce the same outcome.
        let g = small_graph();
        let run = |every| {
            let cfg = SearchConfig::builder()
                .random_probes(4)
                .hill_rounds(4)
                .candidates_per_round(4)
                .checkpoint_every(every)
                .build()
                .unwrap();
            find_worst_schedule(&g, |_, _| Flood { seen: false }, &cfg)
        };
        let dense = run(1);
        let sparse = run(10_000); // only the post-start checkpoint applies
        let auto = run(0);
        assert_eq!(dense.best_time, sparse.best_time);
        assert_eq!(dense.schedule, sparse.schedule);
        assert_eq!(dense.best_time, auto.best_time);
        assert_eq!(dense.schedule, auto.schedule);
    }

    #[test]
    fn mutate_keeps_delays_admissible() {
        let g = small_graph();
        let (_, base) = record_run(
            &g,
            &|_, _| Flood { seen: false },
            ModelOracle::new(DelayModel::Uniform, 3),
        );
        let mutant = Mutation::new().delay_flips(16).apply(&base, 99);
        assert_eq!(mutant.decisions.len(), base.decisions.len());
        for d in &mutant.decisions {
            assert!(d.delay >= 1 && d.delay <= d.weight);
        }
    }

    #[test]
    fn zero_drop_flips_matches_the_delay_only_mutator() {
        // A zero-flip dimension must draw no RNG at all, so enabling
        // fault search can never perturb delay-only results (committed
        // witnesses regenerate unchanged).
        let g = small_graph();
        let (_, base) = record_run(
            &g,
            &|_, _| Flood { seen: false },
            ModelOracle::new(DelayModel::Uniform, 3),
        );
        for seed in [0, 7, 99] {
            assert_eq!(
                Mutation::new().delay_flips(6).apply(&base, seed),
                Mutation::new()
                    .delay_flips(6)
                    .drop_flips(0)
                    .apply(&base, seed)
            );
        }
    }

    #[test]
    fn drop_flips_toggle_only_drop_flags() {
        let g = small_graph();
        let (_, base) = record_run(
            &g,
            &|_, _| Flood { seen: false },
            ModelOracle::new(DelayModel::Uniform, 3),
        );
        let mutant = Mutation::new().drop_flips(5).apply(&base, 42);
        assert!(mutant.dropped_count() > 0, "some flag must flip");
        for (a, b) in base.decisions.iter().zip(&mutant.decisions) {
            assert_eq!(a.delay, b.delay, "delays must be untouched");
        }
    }

    #[test]
    fn fault_search_with_drops_never_loses_to_delay_only() {
        // Drops can only stall a flood further (retransmission-free flood
        // still quiesces — undelivered copies just vanish), so the
        // drop-enabled search must dominate its own delay-only baseline.
        let g = small_graph();
        let base = SearchConfig::builder()
            .random_probes(4)
            .hill_rounds(3)
            .candidates_per_round(4)
            .polish_passes(0);
        let delay_only =
            find_worst_schedule(&g, |_, _| Flood { seen: false }, &base.build().unwrap());
        let faulty = find_worst_schedule(
            &g,
            |_, _| Flood { seen: false },
            &base.drop_flips(2).build().unwrap(),
        );
        assert!(faulty.best_time >= delay_only.worst_case);
        assert!(faulty.evaluations >= delay_only.evaluations);
    }

    #[test]
    fn crash_probes_are_evaluated_and_recorded() {
        let g = small_graph();
        let cfg = SearchConfig::builder()
            .random_probes(2)
            .hill_rounds(0)
            .polish_passes(0)
            .crash_probes(3)
            .build()
            .unwrap();
        let out = find_worst_schedule(&g, |_, _| Flood { seen: false }, &cfg);
        // 1 worst-case + 1 critical-path + 2 random + 3 vertices × the
        // 3-point crash-time grid.
        assert_eq!(out.evaluations, 13);
        if out.strategy == "crash" {
            assert_eq!(out.schedule.crashes.len(), 1);
        }
    }

    #[test]
    fn zero_crash_time_flips_matches_the_drop_mutator() {
        // The crash-time draws are appended after the drop draws, so
        // disabling them must reproduce the drop-only mutant exactly even
        // on crash-bearing schedules.
        let g = small_graph();
        let (_, mut base) = record_run(
            &g,
            &|_, _| Flood { seen: false },
            ModelOracle::new(DelayModel::Uniform, 3),
        );
        base.crashes.push(Crash {
            node: NodeId::new(2),
            at: 9,
        });
        let drops = Mutation::new().delay_flips(6).drop_flips(2);
        for seed in [0, 7, 99] {
            assert_eq!(
                drops.apply(&base, seed),
                drops.crash_time_flips(0).apply(&base, seed)
            );
        }
    }

    #[test]
    fn crash_time_flips_move_only_crash_times() {
        let g = small_graph();
        let (_, mut base) = record_run(
            &g,
            &|_, _| Flood { seen: false },
            ModelOracle::new(DelayModel::Uniform, 3),
        );
        base.crashes.push(Crash {
            node: NodeId::new(4),
            at: 16,
        });
        let crash_only = Mutation::new().crash_time_flips(3);
        let mut moved = false;
        for seed in 0..8 {
            let mutant = crash_only.apply(&base, seed);
            assert_eq!(mutant.decisions, base.decisions, "decisions untouched");
            assert_eq!(mutant.crashes.len(), 1);
            assert_eq!(mutant.crashes[0].node, NodeId::new(4), "victim untouched");
            assert!(mutant.crashes[0].at >= 1);
            moved |= mutant.crashes[0].at != 16;
        }
        assert!(moved, "some seed must actually move the crash time");
        // Crash-free schedules pass through the phase unchanged.
        base.crashes.clear();
        assert_eq!(crash_only.apply(&base, 5), base);
    }

    #[test]
    fn crash_horizon_clamps_without_consuming_rng() {
        // Clamping happens after the draw, so a horizon wide enough to be
        // inert leaves the mutant byte-identical, and a tight one caps
        // every redrawn time without perturbing the decision stream.
        let mut base = Schedule::default();
        base.decisions.push(crate::schedule::Decision {
            index: 0,
            edge: csp_graph::EdgeId::new(0),
            dir: 0,
            weight: 5,
            delay: 5,
            dropped: false,
        });
        base.crashes.push(Crash {
            node: NodeId::new(0),
            at: 40,
        });
        let free = Mutation::new().crash_time_flips(2);
        for seed in 0..16 {
            let unbounded = free.apply(&base, seed);
            let wide = free.crash_horizon(u64::MAX).apply(&base, seed);
            assert_eq!(unbounded, wide, "inert horizon must not change draws");
            let tight = free.crash_horizon(10).apply(&base, seed);
            assert!(tight.crashes[0].at >= 1 && tight.crashes[0].at <= 10);
            assert_eq!(tight.decisions, unbounded.decisions);
        }
    }

    #[test]
    fn zero_churn_flips_match_the_fault_mutator() {
        // Rejoin and drift draws are appended after the crash-time
        // draws, so disabling them must reproduce the fault mutant
        // exactly — committed single-crash witnesses regenerate
        // byte-identically with churn search compiled in.
        let g = small_graph();
        let (_, mut base) = record_run(
            &g,
            &|_, _| Flood { seen: false },
            ModelOracle::new(DelayModel::Uniform, 3),
        );
        base.crashes.push(Crash {
            node: NodeId::new(2),
            at: 9,
        });
        let faults = Mutation::new()
            .delay_flips(6)
            .drop_flips(2)
            .crash_time_flips(1);
        for seed in [0, 7, 99] {
            assert_eq!(
                faults.apply(&base, seed),
                faults.rejoin_flips(0).drift_flips(0).apply(&base, seed)
            );
        }
    }

    #[test]
    fn rejoin_flips_grow_alternating_churn_chains() {
        let g = small_graph();
        let (_, mut base) = record_run(
            &g,
            &|_, _| Flood { seen: false },
            ModelOracle::new(DelayModel::Uniform, 3),
        );
        base.crashes.push(Crash {
            node: NodeId::new(4),
            at: 16,
        });
        let churn = Mutation::new().rejoin_flips(3);
        let mut extended = false;
        for seed in 0..8 {
            let mutant = churn.apply(&base, seed);
            assert_eq!(mutant.decisions, base.decisions, "decisions untouched");
            let chain = mutant.churn_of(NodeId::new(4));
            assert!(chain.windows(2).all(|w| w[0] < w[1]), "chain increases");
            extended |= chain.len() > 1;
            // The mutant must survive the dialect's churn validation.
            let text = mutant.to_text();
            assert_eq!(Schedule::from_text(&text).unwrap(), mutant);
        }
        assert!(extended, "some seed must extend the chain");
        // Crash-free schedules pass through unchanged.
        base.crashes.clear();
        assert_eq!(churn.apply(&base, 5), base);
    }

    #[test]
    fn drift_flips_draw_valid_weight_revisions() {
        let g = small_graph();
        let (_, base) = record_run(
            &g,
            &|_, _| Flood { seen: false },
            ModelOracle::new(DelayModel::Uniform, 3),
        );
        let drift = Mutation::new().drift_flips(4);
        let mut revised = false;
        for seed in 0..8 {
            let mutant = drift.apply(&base, seed);
            assert_eq!(mutant.decisions, base.decisions, "decisions untouched");
            revised |= !mutant.drifts.is_empty();
            for d in &mutant.drifts {
                assert!(d.weight >= 1 && d.at >= 1);
            }
            // No duplicate (edge, at) pairs — they would race.
            let text = mutant.to_text();
            assert_eq!(Schedule::from_text(&text).unwrap(), mutant);
        }
        assert!(revised, "some seed must draw a revision");
    }

    #[test]
    fn churn_mutants_share_no_prefix_with_the_incumbent() {
        let g = small_graph();
        let (_, mut base) = record_run(
            &g,
            &|_, _| Flood { seen: false },
            ModelOracle::new(DelayModel::Uniform, 3),
        );
        base.crashes.push(Crash {
            node: NodeId::new(1),
            at: 12,
        });
        let mut rejoined = base.clone();
        rejoined.rejoins.push(crate::schedule::Rejoin {
            node: NodeId::new(1),
            at: 30,
        });
        assert_eq!(first_diff(&base, &rejoined), 0);
        let mut drifted = base.clone();
        drifted.drifts.push(crate::schedule::Drift {
            edge: base.decisions[0].edge,
            at: 5,
            weight: 3,
        });
        assert_eq!(first_diff(&base, &drifted), 0);
        assert_eq!(
            first_diff(&base, &base.clone()),
            base.decisions.len() as u64
        );
    }

    #[test]
    fn builder_validates_budgets_and_horizons() {
        assert!(SearchConfig::builder().build().is_ok(), "defaults are sane");
        assert_eq!(
            SearchConfig::builder()
                .random_probes(0)
                .hill_rounds(0)
                .polish_passes(0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroBudget
        );
        // The exhaustive mode is a budget of its own.
        let exhaustive = SearchConfig::builder()
            .random_probes(0)
            .hill_rounds(0)
            .polish_passes(0)
            .exhaustive(128)
            .build()
            .unwrap();
        assert!(exhaustive.exhaustive);
        assert_eq!(exhaustive.class_budget, 128);
        assert_eq!(
            SearchConfig::builder()
                .candidates_per_round(0)
                .build()
                .unwrap_err(),
            ConfigError::NoCandidates
        );
        assert_eq!(
            SearchConfig::builder().flips(0).build().unwrap_err(),
            ConfigError::FrozenMutation
        );
        assert!(SearchConfig::builder()
            .flips(0)
            .drop_flips(1)
            .build()
            .is_ok());
        assert_eq!(
            SearchConfig::builder()
                .crash_horizon(50)
                .build()
                .unwrap_err(),
            ConfigError::UnusedCrashHorizon
        );
        assert!(SearchConfig::builder()
            .crash_probes(2)
            .crash_horizon(50)
            .build()
            .is_ok());
        for e in [
            ConfigError::ZeroBudget,
            ConfigError::NoCandidates,
            ConfigError::FrozenMutation,
            ConfigError::UnusedCrashHorizon,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn worker_threads_are_capped_at_the_machine() {
        let cfg = SearchConfig::builder().threads(usize::MAX).build().unwrap();
        let avail = std::thread::available_parallelism().map_or(1, |n| n.get());
        assert_eq!(cfg.worker_threads(), avail);
        let auto = SearchConfig::default();
        assert_eq!(auto.worker_threads(), avail);
    }
}
