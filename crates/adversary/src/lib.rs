#![deny(missing_docs)]

//! Adversarial schedule search — delays, drops and crashes — for the
//! cost-sensitive simulator.
//!
//! The paper defines time complexity as the **worst case over all
//! per-message delay assignments** in `[0, w(e)]`. The simulator's fixed
//! [`DelayModel`](csp_sim::DelayModel) policies only realize uniform
//! points of that space — `WorstCase` stretches *every* message, which
//! is the true adversary for monotone protocols (flooding, DFS) but not
//! in general: selectively *fast* messages can force extra phases in
//! timing-dependent protocols like GHS. This crate searches the
//! schedule space through the [`csp_sim::LinkOracle`] dispatch-time
//! hook, which also lets the adversary *lose* a message outright
//! ([`LinkDecision::Drop`](csp_sim::LinkDecision)) or crash a vertex at
//! a chosen time — the fault model retransmission layers like
//! [`csp_sim::Reliable`] are measured against:
//!
//! * [`Schedule`] — a deterministic, serializable transcript of every
//!   link decision (delay or drop) plus per-vertex [`Crash`] /
//!   [`Rejoin`] chains and mid-run [`Drift`] weight revisions, with
//!   [`record`] / [`replay`] reproducing a run exactly (plain-text
//!   format, no external dependencies; fault-free schedules keep the v1
//!   dialect and churn-free ones the v2 dialect byte-for-byte);
//! * [`find_worst_schedule`] — seeded random probes, the
//!   [`CriticalPathOracle`] greedy, optional single-crash probes and
//!   hill-climbing mutation (drop flags searched alongside delays when
//!   [`SearchConfig::drop_flips`] is set), fanned out in parallel
//!   through [`csp_sim::sweep::par_map_with`] with a pooled evaluator
//!   per worker; hill-climb candidates resume from
//!   [checkpoints](csp_sim::Checkpoint) of the incumbent's run instead
//!   of replaying from scratch;
//! * [`check_time_bound`] — refutes a claimed time bound on a
//!   protocol × graph grid and [`shrink`]s any violating schedule,
//!   proptest-style, to a 1-minimal replayable counterexample on disk,
//!   reporting how often the replay fell back past the recorded horizon
//!   ([`ReplayReport`]);
//! * [`trace`] ([`Trace`], [`explore_exhaustive`]) — the run as its
//!   sequence of dispatch decisions with a dependence relation over
//!   deliveries, and a sleep-set/DPOR explorer that evaluates exactly
//!   one delay schedule per Mazurkiewicz class of delivery orders —
//!   the exhaustive refutation mode [`SearchConfig::exhaustive`] routes
//!   [`check_time_bound`] through.
//!
//! Construction goes through builders: [`SearchConfig::builder`]
//! validates budgets before a search runs, and [`Mutation`] is the one
//! perturbation surface the hill-climb, polish and fault dimensions
//! share.
//!
//! # Example: hunt for a bad schedule
//!
//! ```
//! use csp_adversary::{find_worst_schedule, replay, SearchConfig};
//! use csp_graph::generators::{self, WeightDist};
//! use csp_graph::NodeId;
//! use csp_sim::{Context, Process};
//!
//! #[derive(Clone)]
//! struct Flood { seen: bool }
//! impl Process for Flood {
//!     type Msg = ();
//!     fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
//!         if ctx.self_id() == NodeId::new(0) { self.seen = true; ctx.send_all(()); }
//!     }
//!     fn on_message(&mut self, _from: NodeId, _m: (), ctx: &mut Context<'_, ()>) {
//!         if !self.seen { self.seen = true; ctx.send_all(()); }
//!     }
//! }
//!
//! let g = generators::connected_gnp(12, 0.3, WeightDist::Uniform(1, 9), 5);
//! let out = find_worst_schedule(&g, |_, _| Flood { seen: false }, &SearchConfig::default());
//! // The found schedule replays to exactly the reported time.
//! let rerun = replay(&g, |_, _| Flood { seen: false }, &out.schedule);
//! assert_eq!(rerun.cost.completion, out.best_time);
//! assert!(out.gap() >= 1.0);
//! ```

pub mod oracle;
pub mod refute;
pub mod schedule;
pub mod search;
pub mod trace;

pub use oracle::{CriticalPathOracle, Recorder, ScheduleOracle};
pub use refute::{check_time_bound, shrink, GridPoint, Refutation};
pub use schedule::{Crash, Decision, Drift, Fallback, ParseError, PrefixHasher, Rejoin, Schedule};
pub use search::{
    find_worst_schedule, ConfigError, Mutation, SearchConfig, SearchConfigBuilder, SearchOutcome,
};
pub use trace::{explore_exhaustive, OccurrenceOracle, Trace, TraceStep, DEFAULT_CLASS_BUDGET};

use csp_graph::{NodeId, WeightedGraph};
use csp_sim::{LinkOracle, Process, Run, Simulator};

/// Runs the protocol under `oracle` while recording every link decision
/// and crash assignment. Returns the completed run and the [`Schedule`]
/// that [`replay`] will reproduce it from. Any
/// [`DelayOracle`](csp_sim::DelayOracle) works here too, through the
/// blanket [`LinkOracle`] impl.
pub fn record<P, F, O>(
    g: &WeightedGraph,
    make: F,
    oracle: O,
    fallback: Fallback,
) -> (Run<P>, Schedule)
where
    P: Process,
    F: FnMut(NodeId, &WeightedGraph) -> P,
    O: LinkOracle,
{
    let mut rec = Recorder::new(oracle);
    let run = Simulator::new(g)
        .run_with_oracle(&mut rec, make)
        .expect("protocol must quiesce under an admissible schedule");
    (run, rec.into_schedule(fallback))
}

/// Replays a recorded [`Schedule`]: the run is reproduced decision for
/// decision (identical [`CostReport`](csp_sim::CostReport), trace and
/// final states — pinned by the adversary test suite).
pub fn replay<P, F>(g: &WeightedGraph, make: F, schedule: &Schedule) -> Run<P>
where
    P: Process,
    F: FnMut(NodeId, &WeightedGraph) -> P,
{
    let mut oracle = ScheduleOracle::new(schedule);
    Simulator::new(g)
        .run_with_oracle(&mut oracle, make)
        .expect("replayed protocol must quiesce")
}

/// How faithfully a [`replay`] followed its recorded [`Schedule`].
///
/// A clean replay has every counter at zero. `past_horizon` counts
/// decisions requested beyond the recorded transcript (served silently
/// by the schedule's [`Fallback`] — the failure mode that used to be
/// invisible); `mismatched` counts dispatches whose message identity
/// diverged from the recording at the same index.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// `past_horizon + mismatched` — total fallback answers.
    pub divergences: u64,
    /// Decisions requested past the recorded horizon.
    pub past_horizon: u64,
    /// Recorded decisions that did not match the dispatched message.
    pub mismatched: u64,
    /// Messages the schedule dropped during the replay (from the run's
    /// [`CostReport`](csp_sim::CostReport) fault meters).
    pub drops: u64,
    /// Vertices the schedule crashed.
    pub crashed_nodes: u64,
    /// Deliveries and timer fires consumed by crashed vertices.
    pub dead_events: u64,
    /// Rejoins the schedule performed (crashed vertices restarting with
    /// fresh protocol state).
    pub recoveries: u64,
    /// Mid-run edge-weight revisions the schedule applied.
    pub weight_revisions: u64,
}

impl ReplayReport {
    /// Whether the replayed schedule injected any fault at all.
    pub fn has_faults(&self) -> bool {
        self.drops > 0 || self.crashed_nodes > 0 || self.dead_events > 0
    }

    /// Whether the replayed schedule churned beyond crash-stop —
    /// rejoins or weight drift.
    pub fn has_churn(&self) -> bool {
        self.recoveries > 0 || self.weight_revisions > 0
    }
}

/// [`replay`], but also reports how often the run left the recorded
/// schedule and what faults it suffered (see [`ReplayReport`]).
pub fn replay_report<P, F>(
    g: &WeightedGraph,
    make: F,
    schedule: &Schedule,
) -> (Run<P>, ReplayReport)
where
    P: Process,
    F: FnMut(NodeId, &WeightedGraph) -> P,
{
    let mut oracle = ScheduleOracle::new(schedule);
    let run = Simulator::new(g)
        .run_with_oracle(&mut oracle, make)
        .expect("replayed protocol must quiesce");
    let report = ReplayReport {
        divergences: oracle.divergences,
        past_horizon: oracle.past_horizon,
        mismatched: oracle.mismatched,
        drops: run.cost.drops,
        crashed_nodes: run.cost.crashed_nodes,
        dead_events: run.cost.dead_events,
        recoveries: run.cost.recoveries,
        weight_revisions: run.cost.weight_revisions,
    };
    (run, report)
}
