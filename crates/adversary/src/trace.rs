//! Trace-centric view of a run: dispatch decisions with their effective
//! arrival times, a happens-before/dependence relation over them, and a
//! sleep-set/DPOR explorer enumerating one delay schedule per
//! Mazurkiewicz equivalence class of delivery orders.
//!
//! # From schedules to traces
//!
//! A [`Schedule`] is a flat delay vector; many delay
//! vectors commute to the *same delivery order*, and the paper's
//! adversary quantifies over orders, not vectors. A [`Trace`] re-derives
//! the order view from a replay: every dispatch decision becomes a
//! [`TraceStep`] carrying the message's identity *and* its effective
//! arrival time — observed post-clamp, post-FIFO-floor through the
//! [`LinkOracle::observe_arrival`] hook, so the trace sees exactly when
//! each delivery fires in either queue core.
//!
//! # The dependence relation
//!
//! Two deliveries are **independent** iff they touch disjoint vertex
//! sets and neither enables the other. [`TraceStep::dependent`] tests
//! vertex-set overlap (`{from, to} ∩ {from, to} ≠ ∅`), which
//! conservatively subsumes enablement: if step `i` enables step `j`,
//! then `j` was sent by the vertex `i` delivered to, so `i.to == j.from`
//! and the sets overlap. Swapping two adjacent independent deliveries
//! changes neither vertex's observation sequence, hence neither the
//! protocol states nor the cost meters — the invariance the
//! permutation proptests in `tests/dpor_suite.rs` pin.
//!
//! Dispatch-time oracles are what make sleep sets sound here: the
//! runtime consults the oracle *at dispatch*, in a deterministic global
//! order, and per-directed-channel FIFO makes "the k-th send on channel
//! c" well defined independently of how unrelated deliveries interleave.
//! A pruned branch therefore cannot smuggle in a delivery order the
//! retained representative does not already realize — the replay keyed
//! by channel occurrence ([`OccurrenceOracle`]) is invariant under
//! exactly the permutations the dependence relation declares harmless.
//!
//! # The explorer and its caveat
//!
//! [`explore_exhaustive`] runs a DFS anchored at the all-worst-case
//! schedule. At each dispatch point it enumerates alternative effective
//! arrivals, groups them by the set of *dependent* deliveries whose
//! order against the branched message would flip (the crossing set),
//! prunes empty-crossing and duplicate-group alternatives (counted in
//! [`SearchOutcome::schedules_pruned`]), and deduplicates whole classes
//! by canonical signature ([`Trace::class_signature`]) so each class is
//! evaluated once ([`SearchOutcome::classes_explored`]).
//!
//! The timed model couples orders and times both ways: shifting one
//! arrival moves every downstream send time, which can open arrival
//! windows a fixed-prefix analysis does not see. The explorer is
//! therefore exhaustive over the classes reachable by its race-driven
//! branching — for monotone protocols (flooding, DFS) the all-worst-case
//! anchor is already the true worst case and the enumeration is a
//! *coverage proof*, cross-checked against full naive enumeration in the
//! DPOR suite — but on timing-dependent protocols a class reachable only
//! through a downstream window shift can be missed. The honest contract:
//! one representative per *discovered* class, never two evaluations of
//! the same class.

use crate::oracle::{Recorder, ScheduleOracle};
use crate::schedule::{Decision, Fallback, Schedule};
use crate::search::{SearchConfig, SearchOutcome};
use csp_graph::{EdgeId, NodeId, WeightedGraph};
use csp_sim::{
    DelayModel, EvalPool, LinkDecision, LinkOracle, ModelOracle, MsgInfo, Process, Run, SimTime,
    Simulator,
};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// Class cap the explorer applies when
/// [`SearchConfig::class_budget`](crate::SearchConfig::class_budget) is
/// left at 0.
pub const DEFAULT_CLASS_BUDGET: usize = 4096;

/// One dispatch decision of a run, with its effective arrival time.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceStep {
    /// Global dispatch index — matches [`MsgInfo::index`].
    pub index: u64,
    /// The edge crossed.
    pub edge: EdgeId,
    /// Direction bit, as in [`MsgInfo::dir`].
    pub dir: u8,
    /// Edge weight at dispatch time.
    pub weight: u64,
    /// The effective (clamped) delay the oracle decided.
    pub delay: u64,
    /// Sending vertex.
    pub from: NodeId,
    /// Receiving vertex.
    pub to: NodeId,
    /// When the message was sent.
    pub sent: u64,
    /// When the delivery fires: `max(sent + delay, channel floor)` — the
    /// post-clamp, post-FIFO-floor time observed through
    /// [`LinkOracle::observe_arrival`].
    pub arrival: u64,
}

impl TraceStep {
    /// The directed channel the message travelled: `2·edge + dir`. FIFO
    /// holds per channel, so "the k-th send on channel c" identifies a
    /// message independently of global interleaving.
    pub fn channel(&self) -> usize {
        2 * self.edge.index() + self.dir as usize
    }

    /// Whether the two deliveries are **dependent**: their vertex sets
    /// `{from, to}` overlap. Disjoint-vertex deliveries are independent
    /// — they cannot enable each other either, since enablement implies
    /// `self.to == other.from` (see the [module docs](self)).
    pub fn dependent(&self, other: &TraceStep) -> bool {
        self.from == other.from
            || self.from == other.to
            || self.to == other.from
            || self.to == other.to
    }
}

/// Captures a [`TraceStep`] per delivered dispatch on top of any inner
/// oracle, pairing each decision with the effective arrival reported
/// through [`LinkOracle::observe_arrival`]. Dropped messages produce no
/// step — they never arrive.
#[derive(Clone, Debug)]
struct ArrivalProbe<O> {
    inner: O,
    steps: Vec<TraceStep>,
}

impl<O> ArrivalProbe<O> {
    fn new(inner: O) -> Self {
        ArrivalProbe {
            inner,
            steps: Vec::new(),
        }
    }
}

impl<O: LinkOracle> LinkOracle for ArrivalProbe<O> {
    fn decide(&mut self, msg: &MsgInfo) -> LinkDecision {
        let decision = self.inner.decide(msg);
        if let LinkDecision::Deliver { delay } = decision {
            self.steps.push(TraceStep {
                index: msg.index,
                edge: msg.edge,
                dir: msg.dir,
                weight: msg.weight.get(),
                delay: delay.clamp(1, msg.weight.get()),
                from: msg.from,
                to: msg.to,
                sent: msg.sent.get(),
                arrival: 0, // filled by observe_arrival below
            });
        }
        decision
    }

    fn crash_at(&mut self, node: NodeId) -> Option<SimTime> {
        self.inner.crash_at(node)
    }

    fn churn_plan(&mut self, node: NodeId) -> Vec<SimTime> {
        self.inner.churn_plan(node)
    }

    fn drift_plan(&mut self) -> Vec<(csp_graph::EdgeId, SimTime, csp_graph::Weight)> {
        self.inner.drift_plan()
    }

    fn observe_arrival(&mut self, msg: &MsgInfo, arrival: SimTime) {
        // The runtime observes the arrival in the same dispatch that
        // decided the delivery, so it always completes the last step.
        let step = self
            .steps
            .last_mut()
            .expect("observe_arrival follows a Deliver decision");
        debug_assert_eq!(step.index, msg.index, "arrival out of dispatch order");
        step.arrival = arrival.get();
        self.inner.observe_arrival(msg, arrival);
    }
}

/// A run as its sequence of dispatch decisions with effective arrivals —
/// the representation the dependence relation and the DPOR explorer
/// operate on. Steps are in dispatch order; the realized *delivery*
/// order is recovered by [`Trace::delivery_order`].
#[derive(Clone, Debug, Default)]
pub struct Trace {
    steps: Vec<TraceStep>,
}

impl Trace {
    /// Replays `schedule` while deriving its trace: every delivered
    /// dispatch becomes a [`TraceStep`]. Returns the completed run and
    /// the trace. Decisions past the recorded horizon are served by the
    /// schedule's fallback and traced all the same, so a prefix schedule
    /// yields a full-run trace.
    pub fn record<P, F>(g: &WeightedGraph, make: F, schedule: &Schedule) -> (Run<P>, Trace)
    where
        P: Process,
        F: FnMut(NodeId, &WeightedGraph) -> P,
    {
        let mut probe = ArrivalProbe::new(ScheduleOracle::new(schedule));
        let run = Simulator::new(g)
            .run_with_oracle(&mut probe, make)
            .expect("replayed protocol must quiesce");
        (run, Trace { steps: probe.steps })
    }

    /// The recorded steps, in dispatch order.
    pub fn steps(&self) -> &[TraceStep] {
        &self.steps
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Positions into [`Trace::steps`] in realized delivery order:
    /// ascending arrival, ties broken by dispatch order — exactly the
    /// pop order of both queue cores (bucket FIFO and `(time, seq)`
    /// heap agree on it).
    pub fn delivery_order(&self) -> Vec<usize> {
        let mut ord: Vec<usize> = (0..self.steps.len()).collect();
        ord.sort_by_key(|&i| (self.steps[i].arrival, i));
        ord
    }

    /// Whether steps `i` and `j` (positions into [`Trace::steps`]) are
    /// dependent — see [`TraceStep::dependent`].
    pub fn dependent(&self, i: usize, j: usize) -> bool {
        self.steps[i].dependent(&self.steps[j])
    }

    /// Rebuilds the delay-only [`Schedule`] this trace realizes. Only
    /// meaningful for drop-free runs (every dispatch delivered), where
    /// step positions coincide with dispatch indices.
    pub fn to_schedule(&self, fallback: Fallback) -> Schedule {
        let decisions: Vec<Decision> = self
            .steps
            .iter()
            .map(|s| Decision {
                index: s.index,
                edge: s.edge,
                dir: s.dir,
                weight: s.weight,
                delay: s.delay,
                dropped: false,
            })
            .collect();
        debug_assert!(
            decisions
                .iter()
                .enumerate()
                .all(|(i, d)| d.index == i as u64),
            "to_schedule requires a drop-free trace"
        );
        Schedule {
            decisions,
            fallback,
            ..Schedule::default()
        }
    }

    /// Canonical 64-bit signature of the run's Mazurkiewicz class: the
    /// hash of the lexicographically least linear extension of the
    /// dependence partial order over the realized delivery sequence,
    /// with each delivery named by its `(channel, occurrence)` pair —
    /// stable under exactly the permutations that commute independent
    /// deliveries. Two runs get equal signatures iff they realize the
    /// same class (up to 64-bit-hash collisions).
    pub fn class_signature(&self) -> u64 {
        let ord = self.delivery_order();
        let k = ord.len();
        // (channel, occurrence) names: per-channel counters over dispatch
        // order, which under FIFO equals per-channel delivery order.
        let mut occ = vec![0u64; self.steps.len()];
        let mut counts: HashMap<usize, u64> = HashMap::new();
        for (pos, s) in self.steps.iter().enumerate() {
            let c = counts.entry(s.channel()).or_insert(0);
            occ[pos] = *c;
            *c += 1;
        }
        // Dependence DAG over delivery positions.
        let mut indeg = vec![0usize; k];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); k];
        for p in 0..k {
            for q in (p + 1)..k {
                if self.steps[ord[p]].dependent(&self.steps[ord[q]]) {
                    succs[p].push(q);
                    indeg[q] += 1;
                }
            }
        }
        // Greedy least linear extension by (channel, occurrence).
        let mut ready: BinaryHeap<Reverse<(usize, u64, usize)>> = (0..k)
            .filter(|&p| indeg[p] == 0)
            .map(|p| {
                let s = &self.steps[ord[p]];
                Reverse((s.channel(), occ[ord[p]], p))
            })
            .collect();
        let mut h = SIG_OFFSET;
        while let Some(Reverse((channel, occurrence, p))) = ready.pop() {
            h = mix(h, channel as u64);
            h = mix(h, occurrence);
            for &q in &succs[p] {
                indeg[q] -= 1;
                if indeg[q] == 0 {
                    let s = &self.steps[ord[q]];
                    ready.push(Reverse((s.channel(), occ[ord[q]], q)));
                }
            }
        }
        h
    }

    /// The channel's FIFO floor right before step `i` dispatched: the
    /// arrival of the previous delivery on the same channel (0 when `i`
    /// is the channel's first).
    fn floor_before(&self, i: usize) -> u64 {
        let c = self.steps[i].channel();
        self.steps[..i]
            .iter()
            .rev()
            .find(|s| s.channel() == c)
            .map_or(0, |s| s.arrival)
    }
}

const SIG_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn mix(h: u64, word: u64) -> u64 {
    let mut x = (h ^ word).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 32;
    x.wrapping_mul(0xff51_afd7_ed55_8ccd)
}

/// Replays a delay schedule keyed by **channel occurrence** instead of
/// global dispatch index: the k-th send on directed channel `c` takes
/// the delay the k-th recorded decision on `c` took, wherever that send
/// lands in the global dispatch order.
///
/// Per-directed-channel FIFO makes the key well defined, and the lookup
/// is invariant under any permutation of the decision list that
/// preserves per-channel order — which is precisely why permuting
/// *independent* decisions replays to a bit-identical run (pinned by the
/// DPOR proptest suite). Sends beyond a channel's recorded decisions are
/// delivered at full weight ([`Fallback::WorstCase`] semantics) and
/// counted in [`OccurrenceOracle::unmatched`]; the oracle never drops.
#[derive(Clone, Debug, Default)]
pub struct OccurrenceOracle {
    delays: HashMap<usize, Vec<u64>>,
    cursor: HashMap<usize, usize>,
    /// Sends past their channel's recorded decisions, served at full
    /// weight. A faithful same-run replay keeps this at 0.
    pub unmatched: u64,
}

impl OccurrenceOracle {
    /// Builds the per-channel delay lists from `decisions` in the given
    /// order (delay-only: a dropped decision contributes its recorded
    /// delay — this oracle never drops).
    pub fn new(decisions: &[Decision]) -> Self {
        let mut delays: HashMap<usize, Vec<u64>> = HashMap::new();
        for d in decisions {
            delays.entry(d.channel()).or_default().push(d.delay);
        }
        OccurrenceOracle {
            delays,
            cursor: HashMap::new(),
            unmatched: 0,
        }
    }
}

impl LinkOracle for OccurrenceOracle {
    fn decide(&mut self, msg: &MsgInfo) -> LinkDecision {
        let channel = 2 * msg.edge.index() + msg.dir as usize;
        let k = self.cursor.entry(channel).or_insert(0);
        let slot = self.delays.get(&channel).and_then(|v| v.get(*k)).copied();
        *k += 1;
        match slot {
            Some(delay) => LinkDecision::Deliver { delay },
            None => {
                self.unmatched += 1;
                LinkDecision::Deliver {
                    delay: msg.weight.get(),
                }
            }
        }
    }
}

/// One frontier item of the explorer's DFS: a branch schedule and the
/// dispatch position branching resumes from (sleep-set discipline:
/// positions before it are covered by the parent).
struct Frontier {
    schedule: Schedule,
    branch_start: usize,
}

/// Enumerates one representative delay schedule per Mazurkiewicz class
/// of delivery orders reachable from the all-worst-case anchor,
/// returning the worst representative found. Delay-only: drops and
/// crashes are separate search dimensions the explorer does not touch.
///
/// DFS discipline (see the [module docs](self) for soundness and the
/// timed-model caveat):
///
/// 1. replay the frontier schedule, trace it, and skip it entirely if
///    its class was already evaluated;
/// 2. otherwise count the class, adopt its completion time if worse
///    than the incumbent, and branch: at every dispatch position from
///    the branch start, enumerate alternative effective arrivals,
///    group them by crossing set against *dependent* deliveries, and
///    keep the earliest-arrival representative of each non-empty group
///    (everything else is pruned);
/// 3. stop at the class budget
///    ([`SearchConfig::effective_class_budget`]) or at `8×` that many
///    replays, whichever comes first.
///
/// The outcome's strategy is `"exhaustive"`;
/// [`SearchOutcome::classes_explored`] and
/// [`SearchOutcome::schedules_pruned`] report the reduction achieved.
/// Deterministic: same graph, protocol and config — same outcome.
pub fn explore_exhaustive<P, F>(g: &WeightedGraph, make: F, cfg: &SearchConfig) -> SearchOutcome
where
    P: Process,
    F: Fn(NodeId, &WeightedGraph) -> P,
{
    let sim = Simulator::new(g);
    let mut pool: EvalPool<P> = EvalPool::new();
    let class_budget = cfg.effective_class_budget();
    let eval_budget = class_budget.saturating_mul(8);

    // Anchor: the all-worst-case run, which also defines `worst_case`.
    let mut rec = Recorder::new(ModelOracle::new(DelayModel::WorstCase, cfg.seed));
    let anchor_time = sim
        .eval(&mut pool, &mut rec, |v, g| make(v, g))
        .expect("protocol must quiesce under worst-case delays")
        .completion;
    let anchor = rec.into_schedule(Fallback::WorstCase);

    let mut best = SearchOutcome {
        worst_case: anchor_time,
        best_time: anchor_time,
        schedule: anchor.clone(),
        strategy: "exhaustive",
        evaluations: 1,
        classes_explored: 0,
        schedules_pruned: 0,
    };

    let mut seen_classes: HashSet<u64> = HashSet::new();
    let mut seen_prefixes: HashSet<u64> = HashSet::new();
    let mut stack = vec![Frontier {
        schedule: anchor,
        branch_start: 0,
    }];

    while let Some(Frontier {
        schedule,
        branch_start,
    }) = stack.pop()
    {
        if best.classes_explored as usize >= class_budget || best.evaluations >= eval_budget {
            break;
        }
        // Replay + trace the frontier schedule. The replay extends past
        // the recorded prefix under the worst-case fallback, so the
        // trace always covers the whole run.
        let mut probe = ArrivalProbe::new(ScheduleOracle::new(&schedule));
        let completion = sim
            .eval(&mut pool, &mut probe, |v, g| make(v, g))
            .expect("protocol must quiesce under an admissible schedule")
            .completion;
        best.evaluations += 1;
        let trace = Trace { steps: probe.steps };

        let sig = trace.class_signature();
        if !seen_classes.insert(sig) {
            // A different delay vector, same delivery-order class: the
            // class representative already evaluated covers it.
            best.schedules_pruned += 1;
            continue;
        }
        best.classes_explored += 1;
        if completion > best.best_time {
            best.best_time = completion;
            best.schedule = trace.to_schedule(Fallback::WorstCase);
        }

        // Branch on dependent races at every dispatch point from the
        // sleep-set start.
        for i in branch_start..trace.len() {
            let step = trace.steps[i];
            let floor = trace.floor_before(i);
            let lo = (step.sent + 1).max(floor);
            let hi = (step.sent + step.weight).max(lo);
            // Candidate arrivals: the extremes plus the boundaries
            // around every dependent delivery inside the feasible
            // window — enough to realize every distinct crossing set.
            let mut candidates: Vec<u64> = vec![lo, hi];
            for (j, other) in trace.steps.iter().enumerate() {
                if j == i || !step.dependent(other) {
                    continue;
                }
                for a in [
                    other.arrival.saturating_sub(1),
                    other.arrival,
                    other.arrival + 1,
                ] {
                    if (lo..=hi).contains(&a) {
                        candidates.push(a);
                    }
                }
            }
            candidates.sort_unstable();
            candidates.dedup();
            let mut groups: HashSet<u64> = HashSet::new();
            for target in candidates {
                if target == step.arrival {
                    continue;
                }
                // Crossing set: dependent deliveries whose order
                // against step i flips when its arrival moves from
                // `step.arrival` to `target` (dispatch index breaks
                // arrival ties, matching the queue cores).
                let mut crossing = SIG_OFFSET;
                let mut crossed = false;
                for (j, other) in trace.steps.iter().enumerate() {
                    if j == i || !step.dependent(other) {
                        continue;
                    }
                    let before_now = (step.arrival, i) < (other.arrival, j);
                    let before_then = (target, i) < (other.arrival, j);
                    if before_now != before_then {
                        crossing = mix(crossing, j as u64);
                        crossed = true;
                    }
                }
                if !crossed {
                    // Sleep-set covered: no dependent race flips, so the
                    // branch commutes back into this very class.
                    best.schedules_pruned += 1;
                    continue;
                }
                if !groups.insert(crossing) {
                    // Same crossing set as an earlier (earlier-arrival)
                    // candidate: one representative per race suffices.
                    best.schedules_pruned += 1;
                    continue;
                }
                let mut branch: Vec<Decision> = trace.steps[..=i]
                    .iter()
                    .map(|s| Decision {
                        index: s.index,
                        edge: s.edge,
                        dir: s.dir,
                        weight: s.weight,
                        delay: s.delay,
                        dropped: false,
                    })
                    .collect();
                branch[i].delay = target.saturating_sub(step.sent).clamp(1, step.weight);
                let branched = Schedule {
                    decisions: branch,
                    fallback: Fallback::WorstCase,
                    ..Schedule::default()
                };
                if !seen_prefixes.insert(branched.prefix_key(branched.len())) {
                    best.schedules_pruned += 1;
                    continue;
                }
                stack.push(Frontier {
                    schedule: branched,
                    branch_start: i + 1,
                });
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{record, replay};
    use csp_graph::generators::{self, WeightDist};
    use csp_sim::Context;

    #[derive(Clone)]
    struct Flood {
        seen: bool,
    }

    impl Process for Flood {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
            if ctx.self_id() == NodeId::new(0) {
                self.seen = true;
                ctx.send_all(());
            }
        }
        fn on_message(&mut self, _from: NodeId, _msg: (), ctx: &mut Context<'_, ()>) {
            if !self.seen {
                self.seen = true;
                ctx.send_all(());
            }
        }
    }

    fn flood() -> impl Fn(NodeId, &WeightedGraph) -> Flood + Sync {
        |_, _| Flood { seen: false }
    }

    fn tiny() -> WeightedGraph {
        generators::connected_gnp(8, 0.35, WeightDist::Uniform(1, 3), 11)
    }

    fn recorded(g: &WeightedGraph, seed: u64) -> Schedule {
        let (_, s) = record(
            g,
            flood(),
            ModelOracle::new(DelayModel::Uniform, seed),
            Fallback::WorstCase,
        );
        s
    }

    #[test]
    fn trace_matches_its_schedule() {
        let g = tiny();
        let s = recorded(&g, 3);
        let (run, trace) = Trace::record::<Flood, _>(&g, flood(), &s);
        assert_eq!(trace.len(), s.decisions.len());
        for (step, d) in trace.steps().iter().zip(&s.decisions) {
            assert_eq!(step.index, d.index);
            assert_eq!(step.edge, d.edge);
            assert_eq!(step.delay, d.delay);
            assert!(step.arrival >= step.sent + step.delay);
        }
        // The trace's completion is the run's: the latest arrival.
        let max_arrival = trace.steps().iter().map(|s| s.arrival).max().unwrap();
        assert_eq!(max_arrival, run.cost.completion.get());
        // Rebuilt schedule round-trips.
        assert_eq!(
            trace.to_schedule(Fallback::WorstCase).decisions,
            s.decisions
        );
    }

    #[test]
    fn arrivals_respect_fifo_floors() {
        let g = tiny();
        let (_, trace) = Trace::record::<Flood, _>(&g, flood(), &recorded(&g, 5));
        for i in 0..trace.len() {
            let floor = trace.floor_before(i);
            let s = trace.steps()[i];
            assert_eq!(s.arrival, (s.sent + s.delay).max(floor));
        }
    }

    #[test]
    fn class_signature_is_invariant_under_independent_swaps_only() {
        let g = tiny();
        let (_, trace) = Trace::record::<Flood, _>(&g, flood(), &recorded(&g, 7));
        let base_sig = trace.class_signature();
        let ord = trace.delivery_order();
        // Swapping two adjacent deliveries in the realized order: if they
        // are independent the signature must not change when we rebuild a
        // trace realizing the swapped order; here we test the cheaper
        // direct invariant — the signature is a function of the
        // dependence partial order, so recomputing it is stable.
        assert_eq!(trace.class_signature(), base_sig, "deterministic");
        // A genuinely different class (rush everything) differs.
        let mut rushed = trace.to_schedule(Fallback::WorstCase);
        for d in &mut rushed.decisions {
            d.delay = 1;
        }
        let (_, rushed_trace) = Trace::record::<Flood, _>(&g, flood(), &rushed);
        // Rushing every delay reorders dependent deliveries on any graph
        // where the worst-case order had slack; tolerate equality only if
        // the delivery order is genuinely unchanged.
        if rushed_trace.delivery_order() != ord
            && rushed_trace
                .delivery_order()
                .iter()
                .zip(&ord)
                .any(|(&a, &b)| rushed_trace.steps()[a].channel() != trace.steps()[b].channel())
        {
            assert_ne!(rushed_trace.class_signature(), base_sig);
        }
    }

    #[test]
    fn occurrence_replay_reproduces_the_run() {
        let g = tiny();
        let s = recorded(&g, 9);
        let direct = replay::<Flood, _>(&g, flood(), &s);
        let mut occ = OccurrenceOracle::new(&s.decisions);
        let via_occurrence = Simulator::new(&g)
            .run_with_oracle(&mut occ, flood())
            .unwrap();
        assert_eq!(occ.unmatched, 0);
        assert_eq!(direct.cost, via_occurrence.cost);
    }

    #[test]
    fn explorer_covers_at_least_the_anchor_and_is_deterministic() {
        let g = tiny();
        let cfg = SearchConfig::builder().exhaustive(256).build().unwrap();
        let a = explore_exhaustive(&g, flood(), &cfg);
        let b = explore_exhaustive(&g, flood(), &cfg);
        assert_eq!(a.strategy, "exhaustive");
        assert!(a.classes_explored >= 1);
        assert!(a.best_time >= a.worst_case);
        assert_eq!(a.best_time, b.best_time);
        assert_eq!(a.classes_explored, b.classes_explored);
        assert_eq!(a.schedules_pruned, b.schedules_pruned);
        assert_eq!(a.schedule, b.schedule);
        // The returned representative replays to exactly the best time.
        let rerun = replay::<Flood, _>(&g, flood(), &a.schedule);
        assert_eq!(rerun.cost.completion, a.best_time);
    }

    #[test]
    fn explorer_respects_the_class_budget() {
        let g = tiny();
        let cfg = SearchConfig::builder().exhaustive(4).build().unwrap();
        let out = explore_exhaustive(&g, flood(), &cfg);
        assert!(out.classes_explored <= 4);
    }
}
