//! `CON_hybrid` — connectivity / spanning tree in
//! `O(min{Ê, n·V̂})` communication (Section 7.2).
//!
//! The paper runs DFS (cost `Θ(Ê)`) and `MST_centr` (cost `Θ(n·V̂)`) in
//! parallel, with the root suspending whichever has the larger running
//! estimate; the total is at most a constant factor above the cheaper of
//! the two. We realize the same arbitration as **budget-doubling
//! restarts**: for budgets `B = B₀, 2B₀, 4B₀, …` the root runs a budgeted
//! DFS, then a budgeted `MST_centr`; an attempt that would exceed its
//! budget aborts after wasting at most `O(B)`. The first attempt to finish
//! wins. Since the loop ends once `B ≥ min(c_DFS, c_MST)` and each round's
//! waste is geometric, the total is `O(min{Ê, n·V̂})` — the same bound,
//! with a slightly larger constant than the paper's interleaved version.
//! (Restart signaling is free: messages carry the round's budget, so a
//! fresh run is equivalent to lazily resetting stale state.)

use crate::dfs::run_dfs_budgeted;
use crate::mst::centr::run_mst_centr_budgeted;
use csp_graph::{Cost, NodeId, RootedTree, WeightedGraph};
use csp_sim::{CostReport, DelayModel, SimError, SimTime};

/// Which component finished within budget first.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HybridWinner {
    /// The DFS component (cost `Θ(Ê)`) won.
    Dfs,
    /// The `MST_centr` component (cost `Θ(n·V̂)`) won.
    MstCentr,
}

/// Outcome of a `CON_hybrid` run.
#[derive(Debug)]
pub struct ConHybridOutcome {
    /// A spanning tree of the network.
    pub tree: RootedTree,
    /// Which component produced it.
    pub winner: HybridWinner,
    /// Total metered cost across all rounds, including aborted attempts.
    pub cost: CostReport,
    /// Number of budget-doubling rounds used.
    pub rounds: u32,
}

/// Accumulates the cost of several sequential runs.
pub(crate) fn accumulate(total: &mut CostReport, part: &CostReport) {
    total.messages += part.messages;
    total.weighted_comm += part.weighted_comm;
    // Sequential composition: times add.
    total.completion = SimTime::new(total.completion.get() + part.completion.get());
    for i in 0..4 {
        total.messages_by_class[i] += part.messages_by_class[i];
        total.comm_by_class[i] += part.comm_by_class[i];
    }
    for (a, b) in total
        .per_edge_messages
        .iter_mut()
        .zip(part.per_edge_messages.iter())
    {
        *a += b;
    }
}

/// Runs `CON_hybrid` from `root`.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
///
/// # Panics
///
/// Panics if `g` is disconnected or `root` is out of range.
///
/// # Example
///
/// ```
/// use csp_graph::{generators, NodeId};
/// use csp_algo::con_hybrid::run_con_hybrid;
/// use csp_sim::DelayModel;
///
/// let g = generators::lower_bound_family(10, 4);
/// let out = run_con_hybrid(&g, NodeId::new(0), DelayModel::WorstCase, 0)?;
/// assert!(out.tree.is_spanning());
/// # Ok::<(), csp_sim::SimError>(())
/// ```
pub fn run_con_hybrid(
    g: &WeightedGraph,
    root: NodeId,
    delay: DelayModel,
    seed: u64,
) -> Result<ConHybridOutcome, SimError> {
    g.check_node(root);
    let mut total = CostReport::new(g.edge_count());
    // Initial budget: enough for at least one step from the root.
    let mut budget: u128 = g
        .neighbors(root)
        .map(|(_, _, w)| w.get() as u128)
        .min()
        .unwrap_or(1)
        .max(1)
        * 2;
    let mut rounds = 0;
    loop {
        rounds += 1;
        let dfs = run_dfs_budgeted(g, root, budget, delay, seed)?;
        accumulate(&mut total, &dfs.cost);
        if let Some(tree) = dfs.tree {
            if tree.is_spanning() {
                return Ok(ConHybridOutcome {
                    tree,
                    winner: HybridWinner::Dfs,
                    cost: total,
                    rounds,
                });
            }
        }
        let mst = run_mst_centr_budgeted(g, root, budget, delay, seed)?;
        accumulate(&mut total, &mst.cost);
        if let Some(tree) = mst.tree {
            if tree.is_spanning() {
                return Ok(ConHybridOutcome {
                    tree,
                    winner: HybridWinner::MstCentr,
                    cost: total,
                    rounds,
                });
            }
        }
        budget = budget.saturating_mul(2);
        assert!(
            rounds < 200,
            "budget doubling failed to converge — protocol bug"
        );
    }
}

/// The pivot `min{Ê, n·V̂}` that `CON_hybrid`'s cost is compared against.
pub fn connectivity_pivot(g: &WeightedGraph, mst_weight: Cost) -> Cost {
    g.total_weight().min(mst_weight * g.node_count() as u128)
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_graph::generators;
    use csp_graph::params::CostParams;

    #[test]
    fn hybrid_tracks_the_cheaper_component_on_both_regimes() {
        // Regime A: Ê ≪ n·V̂ — DFS should win.
        let a = generators::sparse_heavy_path(24, 100, 5);
        let pa = CostParams::of(&a);
        let out_a = run_con_hybrid(&a, NodeId::new(0), DelayModel::WorstCase, 0).unwrap();
        assert!(out_a.tree.is_spanning());
        let pivot_a = connectivity_pivot(&a, pa.mst_weight);
        assert!(
            out_a.cost.weighted_comm <= pivot_a * 40,
            "regime A: cost {} ≫ pivot {pivot_a}",
            out_a.cost.weighted_comm
        );

        // Regime B: n·V̂ ≪ Ê — MST_centr should win. (The budget-doubling
        // restarts cost a few dozen × the pivot in the worst case, so the
        // witness gap must be wide: x = 16 makes Ê/n·V̂ ≈ 70.)
        let b = generators::lower_bound_family(24, 16);
        let pb = CostParams::of(&b);
        let out_b = run_con_hybrid(&b, NodeId::new(0), DelayModel::WorstCase, 0).unwrap();
        assert!(out_b.tree.is_spanning());
        assert_eq!(out_b.winner, HybridWinner::MstCentr);
        let pivot_b = connectivity_pivot(&b, pb.mst_weight);
        assert!(
            out_b.cost.weighted_comm <= pivot_b * 60,
            "regime B: cost {} ≫ pivot {pivot_b}",
            out_b.cost.weighted_comm
        );
        // And crucially, far below Ê (never floods the heavy bypasses).
        assert!(out_b.cost.weighted_comm < pb.total_weight);
    }

    #[test]
    fn hybrid_completes_on_small_graphs() {
        let g = generators::path(4, |_| 3);
        let out = run_con_hybrid(&g, NodeId::new(0), DelayModel::WorstCase, 0).unwrap();
        assert!(out.tree.is_spanning());
        assert!(out.rounds >= 1);
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let g = generators::grid(4, 4, generators::WeightDist::Uniform(1, 12), 6);
        let a = run_con_hybrid(&g, NodeId::new(0), DelayModel::Uniform, 4).unwrap();
        let b = run_con_hybrid(&g, NodeId::new(0), DelayModel::Uniform, 4).unwrap();
        assert_eq!(a.cost.messages, b.cost.messages);
        assert_eq!(a.winner, b.winner);
    }
}
