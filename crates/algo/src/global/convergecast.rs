//! Convergecast + broadcast evaluation of a global function over a
//! locally computed spanning tree (Corollary 2.3).
//!
//! The paper's model for this problem (Section 1.4.1) gives every vertex
//! full knowledge of the network structure; only the `n` inputs are
//! distributed. Each vertex therefore computes the *same* spanning tree
//! deterministically from the graph, then:
//!
//! 1. **Convergecast**: each leaf sends its lifted input to its parent;
//!    each interior vertex folds its own input with all children's partial
//!    results and forwards one value to its parent.
//! 2. **Broadcast**: the root folds the last partial results, obtains the
//!    output, and floods it down the tree; every vertex outputs it.
//!
//! Over a shallow-light tree this costs `2·w(T) = O(V̂)` communication and
//! `O(Diam(T)) = O(D̂)` time — matching the lower bounds of Theorem 2.1.

use crate::global::functions::SymmetricCompact;
use csp_graph::algo::{bfs_tree, prim_mst, shortest_path_tree};
use csp_graph::slt::shallow_light_tree;
use csp_graph::{NodeId, RootedTree, WeightedGraph};
use csp_sim::{Context, CostReport, DelayModel, Process, SimError, Simulator};

/// Which spanning tree the computation is convergecast over.
///
/// The tree choice is the whole story of Section 2: SPTs are shallow but
/// can be heavy (`w(T_S) = Ω(n·V̂)`), MSTs are light but can be deep
/// (`Diam(T_M) = Ω(n·D̂)`); the SLT is both.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TreeKind {
    /// Shallow-light tree with breakpoint parameter `q`: the optimal
    /// choice (`O(V̂)` comm, `O(D̂)` time).
    Slt {
        /// Breakpoint parameter (`q ≥ 1`); 2 is a good default.
        q: u64,
    },
    /// Minimum spanning tree: light (`w = V̂`) but possibly deep.
    Mst,
    /// Shortest-path tree: shallow (`depth ≤ D̂`) but possibly heavy.
    Spt,
    /// Hop-BFS tree: the weight-oblivious classical baseline.
    Bfs,
}

impl TreeKind {
    /// Builds the deterministic tree every vertex agrees on.
    pub fn build(self, g: &WeightedGraph, root: NodeId) -> RootedTree {
        match self {
            TreeKind::Slt { q } => shallow_light_tree(g, root, q).tree,
            TreeKind::Mst => prim_mst(g, root),
            TreeKind::Spt => shortest_path_tree(g, root),
            TreeKind::Bfs => bfs_tree(g, root),
        }
    }
}

/// Messages of the convergecast/broadcast protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GlobalMsg {
    /// Partial fold moving toward the root.
    Up(u64),
    /// Final result moving toward the leaves.
    Down(u64),
}

/// Per-vertex state of the global computation.
#[derive(Clone, Debug)]
pub struct GlobalFunction<F> {
    function: F,
    input: u64,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    pending: usize,
    acc: u64,
    result: Option<u64>,
}

impl<F: SymmetricCompact> GlobalFunction<F> {
    /// Creates the state at `v`: computes the shared tree locally and
    /// positions itself in it.
    pub fn new(v: NodeId, g: &WeightedGraph, function: F, input: u64, tree: &RootedTree) -> Self {
        let _ = g;
        let parent = tree.parent(v).map(|(p, _, _)| p);
        let children: Vec<NodeId> = tree.children_lists()[v.index()]
            .iter()
            .map(|&(c, _)| c)
            .collect();
        let acc = function.lift(input);
        GlobalFunction {
            function,
            input,
            parent,
            pending: children.len(),
            children,
            acc,
            result: None,
        }
    }

    /// The computed output (available after the run).
    pub fn result(&self) -> Option<u64> {
        self.result
    }

    /// The raw input this vertex contributed.
    pub fn input(&self) -> u64 {
        self.input
    }

    fn forward_or_finish(&mut self, ctx: &mut Context<'_, GlobalMsg>) {
        if self.pending > 0 {
            return;
        }
        match self.parent {
            Some(p) => {
                ctx.send(p, GlobalMsg::Up(self.acc));
            }
            None => {
                // Root: the fold is complete.
                self.result = Some(self.acc);
                for c in self.children.clone() {
                    ctx.send(c, GlobalMsg::Down(self.acc));
                }
            }
        }
    }
}

impl<F: SymmetricCompact> Process for GlobalFunction<F> {
    type Msg = GlobalMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, GlobalMsg>) {
        // Leaves (and a degenerate single-vertex root) fire immediately.
        self.forward_or_finish(ctx);
    }

    fn on_message(&mut self, _from: NodeId, msg: GlobalMsg, ctx: &mut Context<'_, GlobalMsg>) {
        match msg {
            GlobalMsg::Up(partial) => {
                self.acc = self.function.combine(self.acc, partial);
                self.pending -= 1;
                self.forward_or_finish(ctx);
            }
            GlobalMsg::Down(result) => {
                self.result = Some(result);
                for c in self.children.clone() {
                    ctx.send(c, GlobalMsg::Down(result));
                }
            }
        }
    }
}

/// Outcome of a global function computation.
#[derive(Debug)]
pub struct GlobalOutcome {
    /// The value computed (identical at every vertex).
    pub value: u64,
    /// Per-vertex outputs, for verification.
    pub outputs: Vec<u64>,
    /// Metered costs.
    pub cost: CostReport,
    /// The tree that was used.
    pub tree: RootedTree,
}

/// Computes `function` over `inputs` (one per vertex) with outputs at all
/// vertices, convergecast over `kind`-trees rooted at `root`.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
///
/// # Panics
///
/// Panics if `g` is disconnected, `root` is out of range, or
/// `inputs.len() != n`.
pub fn compute_global<F: SymmetricCompact>(
    g: &WeightedGraph,
    root: NodeId,
    function: F,
    inputs: &[u64],
    kind: TreeKind,
    delay: DelayModel,
) -> Result<GlobalOutcome, SimError> {
    assert_eq!(inputs.len(), g.node_count(), "one input per vertex");
    let tree = kind.build(g, root);
    assert!(tree.is_spanning(), "graph must be connected");
    let run = Simulator::new(g)
        .delay(delay)
        .run(|v, g| GlobalFunction::new(v, g, function.clone(), inputs[v.index()], &tree))?;
    let outputs: Vec<u64> = run
        .states
        .iter()
        .map(|s| s.result().expect("every vertex outputs"))
        .collect();
    Ok(GlobalOutcome {
        value: outputs[root.index()],
        outputs,
        cost: run.cost,
        tree,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global::functions::{fold_all, Count, Max, Sum, Xor};
    use csp_graph::params::CostParams;
    use csp_graph::{generators, Cost};

    fn inputs_for(n: usize) -> Vec<u64> {
        (0..n).map(|i| ((i as u64) * 37 + 11) % 101).collect()
    }

    #[test]
    fn all_vertices_output_the_right_value() {
        let g = generators::connected_gnp(25, 0.2, generators::WeightDist::Uniform(1, 20), 5);
        let inputs = inputs_for(25);
        for kind in [
            TreeKind::Slt { q: 2 },
            TreeKind::Mst,
            TreeKind::Spt,
            TreeKind::Bfs,
        ] {
            let out = compute_global(
                &g,
                NodeId::new(0),
                Max,
                &inputs,
                kind,
                DelayModel::WorstCase,
            )
            .unwrap();
            let expect = fold_all(&Max, &inputs);
            assert_eq!(out.value, expect);
            assert!(out.outputs.iter().all(|&o| o == expect));
        }
    }

    #[test]
    fn works_for_every_function() {
        let g = generators::grid(4, 5, generators::WeightDist::Uniform(1, 6), 3);
        let inputs = inputs_for(20);
        let kind = TreeKind::Slt { q: 2 };
        macro_rules! check {
            ($f:expr) => {
                let out =
                    compute_global(&g, NodeId::new(7), $f, &inputs, kind, DelayModel::Uniform)
                        .unwrap();
                assert_eq!(out.value, fold_all(&$f, &inputs));
            };
        }
        check!(Max);
        check!(Sum);
        check!(Xor);
        check!(Count);
    }

    #[test]
    fn slt_meets_theorem_2_1_bounds() {
        // comm ≤ 2·w(SLT) ≤ 2(1+2/q)V̂ and time ≤ 2·(q+1)·D̂.
        let q = 2u64;
        for seed in 0..4 {
            let g =
                generators::connected_gnp(30, 0.15, generators::WeightDist::Uniform(1, 64), seed);
            let p = CostParams::of(&g);
            let inputs = inputs_for(30);
            let out = compute_global(
                &g,
                NodeId::new(0),
                Sum,
                &inputs,
                TreeKind::Slt { q },
                DelayModel::WorstCase,
            )
            .unwrap();
            let comm_bound = p.mst_weight * (2 * (q as u128 + 2) / q as u128);
            assert!(
                out.cost.weighted_comm <= comm_bound,
                "comm {} > 2(1+2/q)V̂ = {comm_bound}",
                out.cost.weighted_comm
            );
            let time_bound = p.weighted_diameter * (2 * (q as u128 + 1));
            assert!(
                Cost::new(out.cost.completion.get() as u128) <= time_bound,
                "time {} > 2(q+1)D̂ = {time_bound}",
                out.cost.completion
            );
        }
    }

    #[test]
    fn exactly_two_messages_per_tree_edge() {
        let g = generators::cycle(12, |i| i as u64 + 1);
        let inputs = inputs_for(12);
        let out = compute_global(
            &g,
            NodeId::new(0),
            Max,
            &inputs,
            TreeKind::Mst,
            DelayModel::WorstCase,
        )
        .unwrap();
        // n-1 tree edges, one Up and one Down each.
        assert_eq!(out.cost.messages, 2 * 11);
        assert_eq!(out.cost.weighted_comm, out.tree.weight() * 2);
    }

    #[test]
    fn single_vertex_graph_degenerates_gracefully() {
        let g = csp_graph::GraphBuilder::new(1).build().unwrap();
        let out = compute_global(
            &g,
            NodeId::new(0),
            Sum,
            &[42],
            TreeKind::Mst,
            DelayModel::WorstCase,
        )
        .unwrap();
        assert_eq!(out.value, 42);
        assert_eq!(out.cost.messages, 0);
    }

    #[test]
    fn lower_bound_witness_spt_vs_slt_weight() {
        // On the family where the SPT is heavy, convergecast over the SPT
        // costs ≫ the SLT's O(V̂): the paper's motivation for SLTs.
        let g = generators::lower_bound_family(16, 4);
        let inputs = inputs_for(16);
        let spt = compute_global(
            &g,
            NodeId::new(0),
            Max,
            &inputs,
            TreeKind::Spt,
            DelayModel::WorstCase,
        )
        .unwrap();
        let slt = compute_global(
            &g,
            NodeId::new(0),
            Max,
            &inputs,
            TreeKind::Slt { q: 2 },
            DelayModel::WorstCase,
        )
        .unwrap();
        assert!(slt.cost.weighted_comm <= spt.cost.weighted_comm);
    }
}
