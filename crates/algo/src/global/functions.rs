//! The symmetric compact function family (\[GS86], Section 1.4.1).
//!
//! A function `f : Xⁿ → X` is *symmetric* (argument order is irrelevant)
//! and *compact* (the contribution of any argument subset fits in one
//! `log|X|`-bit value) when there is a combiner `g : X² → X` with
//! `f(x₁…xₙ) = g(f(x₁…x_k), f(x_{k+1}…xₙ))`. Maximum, sum, parity and
//! the basic boolean functions all qualify; broadcast and termination
//! detection reduce to them.

use std::fmt::Debug;

/// A symmetric compact function over `u64` values.
///
/// Implementations must be associative and commutative:
/// `combine(a, combine(b, c)) == combine(combine(a, b), c)` and
/// `combine(a, b) == combine(b, a)`; the protocol may fold partial
/// results in any grouping and any order.
pub trait SymmetricCompact: Clone + Debug {
    /// Folds two partial results into one.
    fn combine(&self, a: u64, b: u64) -> u64;

    /// Maps a raw vertex input into the function's value domain.
    /// The default is the identity.
    fn lift(&self, input: u64) -> u64 {
        input
    }
}

/// Maximum of all inputs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Max;

impl SymmetricCompact for Max {
    fn combine(&self, a: u64, b: u64) -> u64 {
        a.max(b)
    }
}

/// Minimum of all inputs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Min;

impl SymmetricCompact for Min {
    fn combine(&self, a: u64, b: u64) -> u64 {
        a.min(b)
    }
}

/// Sum of all inputs (wrapping on overflow).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Sum;

impl SymmetricCompact for Sum {
    fn combine(&self, a: u64, b: u64) -> u64 {
        a.wrapping_add(b)
    }
}

/// Bitwise XOR (parity per bit).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Xor;

impl SymmetricCompact for Xor {
    fn combine(&self, a: u64, b: u64) -> u64 {
        a ^ b
    }
}

/// Logical AND of nonzero-ness (1 iff every input is nonzero).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BoolAnd;

impl SymmetricCompact for BoolAnd {
    fn combine(&self, a: u64, b: u64) -> u64 {
        u64::from(a != 0 && b != 0)
    }

    fn lift(&self, input: u64) -> u64 {
        u64::from(input != 0)
    }
}

/// Logical OR of nonzero-ness (1 iff some input is nonzero).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BoolOr;

impl SymmetricCompact for BoolOr {
    fn combine(&self, a: u64, b: u64) -> u64 {
        u64::from(a != 0 || b != 0)
    }

    fn lift(&self, input: u64) -> u64 {
        u64::from(input != 0)
    }
}

/// Number of vertices (every input counts as 1) — the termination-
/// detection / census primitive.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Count;

impl SymmetricCompact for Count {
    fn combine(&self, a: u64, b: u64) -> u64 {
        a.wrapping_add(b)
    }

    fn lift(&self, _input: u64) -> u64 {
        1
    }
}

/// Folds a whole input slice — the sequential reference the distributed
/// protocol is tested against.
pub fn fold_all<F: SymmetricCompact>(f: &F, inputs: &[u64]) -> u64 {
    let mut iter = inputs.iter().map(|&x| f.lift(x));
    let first = iter.next().expect("at least one input");
    iter.fold(first, |acc, x| f.combine(acc, x))
}

#[cfg(test)]
mod tests {
    use super::*;

    const INPUTS: [u64; 5] = [3, 0, 7, 7, 12];

    #[test]
    fn reference_folds() {
        assert_eq!(fold_all(&Max, &INPUTS), 12);
        assert_eq!(fold_all(&Min, &INPUTS), 0);
        assert_eq!(fold_all(&Sum, &INPUTS), 29);
        assert_eq!(fold_all(&Xor, &INPUTS), 3 ^ 7 ^ 7 ^ 12);
        assert_eq!(fold_all(&BoolAnd, &INPUTS), 0);
        assert_eq!(fold_all(&BoolOr, &INPUTS), 1);
        assert_eq!(fold_all(&Count, &INPUTS), 5);
    }

    #[test]
    fn combiners_are_associative_and_commutative() {
        fn check<F: SymmetricCompact>(f: &F) {
            for a in [0u64, 1, 5, 100] {
                for b in [0u64, 2, 9] {
                    for c in [1u64, 4] {
                        let (a, b, c) = (f.lift(a), f.lift(b), f.lift(c));
                        assert_eq!(f.combine(a, b), f.combine(b, a));
                        assert_eq!(f.combine(a, f.combine(b, c)), f.combine(f.combine(a, b), c));
                    }
                }
            }
        }
        check(&Max);
        check(&Min);
        check(&Sum);
        check(&Xor);
        check(&BoolAnd);
        check(&BoolOr);
        check(&Count);
    }
}
