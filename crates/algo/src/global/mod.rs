//! Global function computation (Section 2).
//!
//! Computes a *symmetric compact* function of `n` inputs — one per vertex
//! — with outputs produced at **all** vertices. Theorem 2.1 shows `Ω(V̂)`
//! communication and `Ω(D̂)` time are necessary; Corollary 2.3 shows the
//! bounds are achieved by convergecast + broadcast over a shallow-light
//! tree.

mod convergecast;
mod functions;

pub use convergecast::{compute_global, GlobalFunction, GlobalOutcome, TreeKind};
pub use functions::{fold_all, BoolAnd, BoolOr, Count, Max, Min, Sum, SymmetricCompact, Xor};
