//! The full-information tree-growth engine shared by `MST_centr`
//! (Section 6.3) and `SPT_centr` (Section 6.4).
//!
//! Both algorithms grow a rooted tree one vertex per phase, maintaining
//! the invariant that *every tree vertex knows the structure of the whole
//! tree* (and, for SPT, every member's distance label). A phase is:
//!
//! 1. the root broadcasts `FindMin` down the tree;
//! 2. every member reports (convergecast) its best incident candidate
//!    edge to a non-member, ranked by the [`GrowthRule`];
//! 3. the root picks the global best, broadcasts `Add{new, host, dist}`
//!    (every member updates its tree copy), the host sends the new vertex
//!    a `Join` snapshot across the connecting edge, and a `PhaseDone`
//!    climbs back to the root, which starts the next phase.
//!
//! FIFO edge delivery guarantees the `Join` snapshot reaches the new
//! vertex before the next phase's `FindMin` passes through the same edge.
//!
//! Each phase costs `O(w(T))` communication, giving `O(n·w(T))` in total:
//! `O(n·V̂)` for MST (Corollary 6.4) and `O(n²·V̂)` for SPT via Fact 6.5
//! (Corollary 6.6).
//!
//! The `Join` snapshot is conceptually a long message; the paper's
//! full-information model charges it as a single transmission, and so do
//! we.

use crate::util::tree_from_parents;
use csp_graph::{Cost, EdgeId, NodeId, RootedTree, WeightedGraph};
use csp_sim::{Context, CostReport, DelayModel, Process, SimError, Simulator};

/// Ranks candidate edges `(host ∈ T) —e→ (new ∉ T)`; the smallest key is
/// added each phase.
pub trait GrowthRule: Clone + std::fmt::Debug {
    /// `host_dist` is the host's tree distance label from the root;
    /// smaller keys win, and the edge id breaks ties deterministically.
    fn key(&self, host_dist: u128, edge_weight: u64, edge: EdgeId) -> (u128, usize);

    /// Distance label assigned to the new vertex when this edge is added.
    fn new_dist(&self, host_dist: u128, edge_weight: u64) -> u128;
}

/// Prim's rule: lightest outgoing edge (`MST_centr`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MstRule;

impl GrowthRule for MstRule {
    fn key(&self, _host_dist: u128, edge_weight: u64, edge: EdgeId) -> (u128, usize) {
        (edge_weight as u128, edge.index())
    }

    fn new_dist(&self, host_dist: u128, edge_weight: u64) -> u128 {
        // Maintained for reporting; MST selection ignores it.
        host_dist + edge_weight as u128
    }
}

/// Dijkstra's rule: smallest tentative distance (`SPT_centr`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SptRule;

impl GrowthRule for SptRule {
    fn key(&self, host_dist: u128, edge_weight: u64, edge: EdgeId) -> (u128, usize) {
        (host_dist + edge_weight as u128, edge.index())
    }

    fn new_dist(&self, host_dist: u128, edge_weight: u64) -> u128 {
        host_dist + edge_weight as u128
    }
}

/// A candidate edge reported during convergecast.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Candidate {
    /// Selection key (smaller wins).
    pub key: (u128, usize),
    /// The non-member endpoint.
    pub new: NodeId,
    /// The member endpoint.
    pub host: NodeId,
}

/// Messages of the growth engine.
#[derive(Clone, Debug)]
pub enum GrowMsg {
    /// Phase start, broadcast down the tree.
    FindMin,
    /// Convergecast of the subtree's best candidate.
    Report(Option<Candidate>),
    /// Phase outcome, broadcast down the tree.
    Add {
        /// The joining vertex.
        new: NodeId,
        /// The member it attaches under.
        host: NodeId,
        /// The new vertex's distance label.
        dist: u128,
    },
    /// Full tree snapshot handed to the joining vertex.
    Join {
        /// `(child, parent)` pairs of the current tree.
        edges: Vec<(NodeId, NodeId)>,
        /// Distance labels of all members (indexed by vertex).
        dists: Vec<u128>,
    },
    /// Phase-completion signal climbing to the root.
    PhaseDone,
}

/// Per-vertex state of the full-information growth engine.
#[derive(Clone, Debug)]
pub struct FullInfoGrowth<R> {
    rule: R,
    root: NodeId,
    member: bool,
    dist: u128,
    /// Known membership of all vertices (kept consistent by broadcasts).
    members: Vec<bool>,
    /// Distance labels of members.
    dists: Vec<u128>,
    /// Full tree copy: `(child, parent)` pairs.
    tree_edges: Vec<(NodeId, NodeId)>,
    /// Tree parent for the convergecast (`None` at the root).
    tree_parent: Option<NodeId>,
    /// Tree children.
    children: Vec<NodeId>,
    /// Convergecast countdown.
    pending: usize,
    /// Best candidate folded so far this phase.
    best: Option<Candidate>,
    /// At the root: growth finished.
    done: bool,
    /// Optional communication budget (root-side estimate).
    budget: Option<u128>,
    /// At the root: conservative estimate of communication spent so far.
    spent_estimate: u128,
    /// At the root: the budget was exceeded and growth suspended.
    exceeded: bool,
}

impl<R: GrowthRule> FullInfoGrowth<R> {
    /// Creates the per-vertex state for growth rooted at `root`.
    pub fn new(v: NodeId, g: &WeightedGraph, root: NodeId, rule: R) -> Self {
        let n = g.node_count();
        let mut members = vec![false; n];
        members[root.index()] = true;
        FullInfoGrowth {
            rule,
            root,
            member: v == root,
            dist: 0,
            members,
            dists: vec![0; n],
            tree_edges: Vec::new(),
            tree_parent: None,
            children: Vec::new(),
            pending: 0,
            best: None,
            done: false,
            budget: None,
            spent_estimate: 0,
            exceeded: false,
        }
    }

    /// Creates the per-vertex state for *budgeted* growth: the root
    /// suspends before any phase that would push its (conservative)
    /// communication estimate past `budget`.
    pub fn with_budget(v: NodeId, g: &WeightedGraph, root: NodeId, rule: R, budget: u128) -> Self {
        let mut state = FullInfoGrowth::new(v, g, root, rule);
        state.budget = Some(budget);
        state
    }

    /// Whether the root has finished growing (meaningful at the root).
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// At the root, whether a budgeted growth suspended.
    pub fn exceeded(&self) -> bool {
        self.exceeded
    }

    /// The final tree as `(child, parent)` pairs (meaningful at members).
    pub fn tree_edges(&self) -> &[(NodeId, NodeId)] {
        &self.tree_edges
    }

    /// Distance labels of all members (meaningful at members).
    pub fn dists(&self) -> &[u128] {
        &self.dists
    }

    fn local_candidate(&self, ctx: &Context<'_, GrowMsg>) -> Option<Candidate> {
        if !self.member {
            return None;
        }
        let me = ctx.self_id();
        ctx.neighbors()
            .filter(|(u, _, _)| !self.members[u.index()])
            .map(|(u, eid, w)| Candidate {
                key: self.rule.key(self.dist, w.get(), eid),
                new: u,
                host: me,
            })
            .min_by_key(|c| c.key)
    }

    /// Root only: start the next phase, unless the budget says stop.
    ///
    /// The root knows the whole tree, so it can estimate the phase cost
    /// (a few sweeps of `w(T)` plus one joining edge) before spending it.
    fn root_begin_phase(&mut self, ctx: &mut Context<'_, GrowMsg>) {
        if let Some(b) = self.budget {
            let g = ctx.graph();
            let tree_w: u128 = self
                .tree_edges
                .iter()
                .map(|&(c, p)| {
                    let eid = g.edge_between(c, p).expect("tree edge exists");
                    g.weight(eid).get() as u128
                })
                .sum();
            let phase = 5 * tree_w.max(1);
            if self.spent_estimate + phase > b {
                self.exceeded = true;
                return;
            }
            self.spent_estimate += phase;
        }
        self.start_convergecast(ctx);
    }

    fn start_convergecast(&mut self, ctx: &mut Context<'_, GrowMsg>) {
        self.pending = self.children.len();
        self.best = self.local_candidate(ctx);
        for c in self.children.clone() {
            ctx.send(c, GrowMsg::FindMin);
        }
        self.maybe_reply(ctx);
    }

    fn fold(&mut self, candidate: Option<Candidate>) {
        self.best = match (self.best, candidate) {
            (Some(a), Some(b)) => Some(if a.key <= b.key { a } else { b }),
            (a, None) => a,
            (None, b) => b,
        };
    }

    fn maybe_reply(&mut self, ctx: &mut Context<'_, GrowMsg>) {
        if self.pending > 0 {
            return;
        }
        match self.tree_parent {
            Some(p) => {
                ctx.send(p, GrowMsg::Report(self.best));
            }
            None => self.decide(ctx),
        }
    }

    /// Root only: act on the folded result of a phase.
    fn decide(&mut self, ctx: &mut Context<'_, GrowMsg>) {
        match self.best.take() {
            None => self.done = true,
            Some(c) => {
                let (dist, join_w) = {
                    let g = ctx.graph();
                    let eid = g
                        .edge_between(c.host, c.new)
                        .expect("candidate is a graph edge");
                    let w = g.weight(eid).get();
                    (self.rule.new_dist(self.dists[c.host.index()], w), w)
                };
                // Second budget gate: the joining edge's weight is known
                // only now.
                if let Some(b) = self.budget {
                    if self.spent_estimate + join_w as u128 > b {
                        self.exceeded = true;
                        return;
                    }
                    self.spent_estimate += join_w as u128;
                }
                self.apply_add(c.new, c.host, dist, ctx);
            }
        }
    }

    /// Processes (and at the root, originates) an `Add` broadcast.
    fn apply_add(&mut self, new: NodeId, host: NodeId, dist: u128, ctx: &mut Context<'_, GrowMsg>) {
        self.members[new.index()] = true;
        self.dists[new.index()] = dist;
        self.tree_edges.push((new, host));
        for c in self.children.clone() {
            ctx.send(c, GrowMsg::Add { new, host, dist });
        }
        if ctx.self_id() == host {
            self.children.push(new);
            ctx.send(
                new,
                GrowMsg::Join {
                    edges: self.tree_edges.clone(),
                    dists: self.dists.clone(),
                },
            );
            // Signal phase completion toward the root.
            match self.tree_parent {
                Some(p) => {
                    ctx.send(p, GrowMsg::PhaseDone);
                }
                None => self.root_begin_phase(ctx), // root is the host
            }
        }
    }
}

impl<R: GrowthRule> Process for FullInfoGrowth<R> {
    type Msg = GrowMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, GrowMsg>) {
        if ctx.self_id() == self.root {
            if ctx.node_count() == 1 {
                self.done = true;
            } else {
                self.root_begin_phase(ctx);
            }
        }
    }

    fn on_message(&mut self, from: NodeId, msg: GrowMsg, ctx: &mut Context<'_, GrowMsg>) {
        match msg {
            GrowMsg::FindMin => self.start_convergecast(ctx),
            GrowMsg::Report(candidate) => {
                self.fold(candidate);
                self.pending -= 1;
                self.maybe_reply(ctx);
            }
            GrowMsg::Add { new, host, dist } => self.apply_add(new, host, dist, ctx),
            GrowMsg::Join { edges, dists } => {
                self.member = true;
                self.tree_parent = Some(from);
                self.tree_edges = edges;
                self.dists = dists;
                for &(c, _) in &self.tree_edges {
                    self.members[c.index()] = true;
                }
                self.members[self.root.index()] = true;
                self.dist = self.dists[ctx.self_id().index()];
            }
            GrowMsg::PhaseDone => match self.tree_parent {
                Some(p) => {
                    ctx.send(p, GrowMsg::PhaseDone);
                }
                None => self.root_begin_phase(ctx),
            },
        }
    }
}

/// Outcome of a full-information growth run.
#[derive(Debug)]
pub struct GrowthOutcome {
    /// The constructed tree.
    pub tree: RootedTree,
    /// Distance labels assigned along the way (exact shortest-path
    /// distances for [`SptRule`]).
    pub dists: Vec<Cost>,
    /// Metered costs.
    pub cost: CostReport,
}

/// Runs the growth engine to completion and extracts the tree.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
///
/// # Panics
///
/// Panics if `g` is disconnected or `root` is out of range.
pub fn run_growth<R: GrowthRule>(
    g: &WeightedGraph,
    root: NodeId,
    rule: R,
    delay: DelayModel,
    seed: u64,
) -> Result<GrowthOutcome, SimError> {
    g.check_node(root);
    let run = Simulator::new(g)
        .delay(delay)
        .seed(seed)
        .run(|v, g| FullInfoGrowth::new(v, g, root, rule.clone()))?;
    let root_state = &run.states[root.index()];
    assert!(root_state.is_done(), "growth must complete");
    let mut parents: Vec<Option<NodeId>> = vec![None; g.node_count()];
    for &(child, parent) in root_state.tree_edges() {
        parents[child.index()] = Some(parent);
    }
    let tree = tree_from_parents(g, root, &parents);
    assert!(
        tree.is_spanning(),
        "growth tree must span a connected graph"
    );
    let dists = root_state.dists().iter().map(|&d| Cost::new(d)).collect();
    Ok(GrowthOutcome {
        tree,
        dists,
        cost: run.cost,
    })
}

/// Outcome of a budgeted growth run.
#[derive(Debug)]
pub struct GrowthBudgetedOutcome {
    /// The tree if growth completed within budget.
    pub tree: Option<RootedTree>,
    /// Distance labels if completed.
    pub dists: Option<Vec<Cost>>,
    /// Metered costs (also of suspended runs).
    pub cost: CostReport,
}

/// Runs the growth engine with a root-side communication budget: the root
/// refuses to start any phase whose conservative cost estimate would
/// exceed `budget`, suspending instead. Used by the hybrid algorithms.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
///
/// # Panics
///
/// Panics if `root` is out of range.
pub fn run_growth_budgeted<R: GrowthRule>(
    g: &WeightedGraph,
    root: NodeId,
    rule: R,
    budget: u128,
    delay: DelayModel,
    seed: u64,
) -> Result<GrowthBudgetedOutcome, SimError> {
    g.check_node(root);
    let run = Simulator::new(g)
        .delay(delay)
        .seed(seed)
        .run(|v, g| FullInfoGrowth::with_budget(v, g, root, rule.clone(), budget))?;
    let root_state = &run.states[root.index()];
    if !root_state.is_done() {
        return Ok(GrowthBudgetedOutcome {
            tree: None,
            dists: None,
            cost: run.cost,
        });
    }
    let mut parents: Vec<Option<NodeId>> = vec![None; g.node_count()];
    for &(child, parent) in root_state.tree_edges() {
        parents[child.index()] = Some(parent);
    }
    let tree = tree_from_parents(g, root, &parents);
    let dists = root_state.dists().iter().map(|&d| Cost::new(d)).collect();
    Ok(GrowthBudgetedOutcome {
        tree: Some(tree),
        dists: Some(dists),
        cost: run.cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_graph::params::CostParams;
    use csp_graph::{algo, generators};

    #[test]
    fn budgeted_growth_suspends_and_completes() {
        let g = generators::connected_gnp(16, 0.2, generators::WeightDist::Uniform(1, 10), 2);
        // Tiny budget: must suspend, cheaply.
        let small =
            run_growth_budgeted(&g, NodeId::new(0), MstRule, 4, DelayModel::WorstCase, 0).unwrap();
        assert!(small.tree.is_none());
        assert!(small.cost.weighted_comm.get() <= 64);
        // Huge budget: behaves like the unbudgeted run.
        let big = run_growth_budgeted(
            &g,
            NodeId::new(0),
            MstRule,
            u128::MAX / 8,
            DelayModel::WorstCase,
            0,
        )
        .unwrap();
        let plain = run_growth(&g, NodeId::new(0), MstRule, DelayModel::WorstCase, 0).unwrap();
        assert_eq!(big.tree.unwrap().weight(), plain.tree.weight());
        assert_eq!(big.cost.messages, plain.cost.messages);
    }

    #[test]
    fn mst_rule_reproduces_prims_tree() {
        for seed in 0..4 {
            let g =
                generators::connected_gnp(18, 0.25, generators::WeightDist::Uniform(1, 40), seed);
            let out = run_growth(&g, NodeId::new(0), MstRule, DelayModel::WorstCase, 0).unwrap();
            let reference = algo::prim_mst(&g, NodeId::new(0));
            assert_eq!(out.tree.weight(), reference.weight(), "seed {seed}");
        }
    }

    #[test]
    fn spt_rule_reproduces_dijkstra_distances() {
        for seed in 0..4 {
            let g =
                generators::connected_gnp(18, 0.25, generators::WeightDist::Uniform(1, 40), seed);
            let out = run_growth(&g, NodeId::new(3), SptRule, DelayModel::Uniform, seed).unwrap();
            let reference = algo::distances(&g, NodeId::new(3));
            for v in g.nodes() {
                assert_eq!(
                    out.dists[v.index()],
                    reference[v.index()],
                    "distance mismatch at {v}, seed {seed}"
                );
                assert_eq!(out.tree.depth(v), reference[v.index()]);
            }
        }
    }

    #[test]
    fn mst_centr_communication_is_o_n_v() {
        // Corollary 6.4: O(n·V̂). Constant: each phase ≤ ~5 sweeps of w(T).
        let g = generators::lower_bound_family(14, 6);
        let p = CostParams::of(&g);
        let out = run_growth(&g, NodeId::new(0), MstRule, DelayModel::WorstCase, 0).unwrap();
        let bound = p.mst_weight * (6 * p.n as u128);
        assert!(
            out.cost.weighted_comm <= bound,
            "comm {} > 6·n·V̂ = {bound}",
            out.cost.weighted_comm
        );
        // Critically: MST_centr never touches the heavy bypass edges
        // (beyond treating them as candidates), so its cost beats Ê here.
        assert!(out.cost.weighted_comm < p.total_weight);
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let g = generators::grid(3, 5, generators::WeightDist::Uniform(1, 9), 2);
        let a = run_growth(&g, NodeId::new(0), MstRule, DelayModel::Uniform, 9).unwrap();
        let b = run_growth(&g, NodeId::new(0), MstRule, DelayModel::Uniform, 9).unwrap();
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn single_vertex_growth_is_trivial() {
        let g = csp_graph::GraphBuilder::new(1).build().unwrap();
        let out = run_growth(&g, NodeId::new(0), MstRule, DelayModel::WorstCase, 0).unwrap();
        assert_eq!(out.cost.messages, 0);
        assert!(out.tree.is_spanning());
    }

    #[test]
    fn spt_from_every_root_is_consistent() {
        let g = generators::heavy_chord_cycle(10, 25);
        for r in 0..10 {
            let root = NodeId::new(r);
            let out = run_growth(&g, root, SptRule, DelayModel::WorstCase, 0).unwrap();
            let reference = algo::distances(&g, root);
            for v in g.nodes() {
                assert_eq!(out.dists[v.index()], reference[v.index()]);
            }
        }
    }
}
