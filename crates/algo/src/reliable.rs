//! Fault-tolerant runners: the paper's protocols hosted on the
//! simulator's [`Reliable`] retransmission wrapper and driven by an
//! arbitrary [`LinkOracle`], so adversarial message drops (and vertex
//! crashes) can be injected at dispatch time.
//!
//! The paper's model assumes reliable links; these runners measure what
//! that assumption costs. [`Reliable`] buys delivery through per-channel
//! acks, timeouts and bounded retransmission, every retry metered as
//! weighted communication under
//! [`CostClass::Auxiliary`](csp_sim::CostClass) — so the gap between a
//! bare run and a wrapped run under the same oracle *is* the weighted
//! price of the reliability layer. Under a drop budget below the retry
//! bound, the wrapped protocols keep their exactness guarantees (the
//! SPT runner still certifies exact distances); against a crashed
//! vertex the wrapper gives up after `max_retries` and the outcome
//! reports what was still reached.

use crate::flood::Flood;
use crate::spt::recur::SptRecur;
use crate::util::tree_from_parents;
use csp_graph::{Cost, NodeId, RootedTree, WeightedGraph};
use csp_sim::{CostReport, FaultAware, LinkOracle, Reliable, Run, SimError, Simulator};

/// Channels the wrapper abandoned after exhausting retries, summed over
/// all vertices (each direction counts separately).
fn failed_channels<P: FaultAware>(g: &WeightedGraph, states: &[Reliable<P>]) -> usize {
    g.nodes()
        .map(|v| {
            g.neighbors(v)
                .filter(|&(u, _, _)| states[v.index()].channel_failed(u))
                .count()
        })
        .sum()
}

/// Outcome of a [`run_reliable_flood`] run.
#[derive(Debug)]
pub struct ReliableFloodOutcome {
    /// The flood tree, if the token reached every vertex (it always does
    /// when drops stay below the retry bound and nothing crashes).
    pub tree: Option<RootedTree>,
    /// Vertices the token reached.
    pub reached: usize,
    /// Channels abandoned after `max_retries` (non-zero only under
    /// unbounded loss or a crashed peer).
    pub failed_channels: usize,
    /// Metered costs: the flood under `Protocol`, acks and
    /// retransmissions under `Auxiliary`.
    pub cost: CostReport,
}

/// Runs `CON_flood` wrapped in [`Reliable`] under `oracle`.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
///
/// # Panics
///
/// Panics if `root` is out of range.
pub fn run_reliable_flood<O>(
    g: &WeightedGraph,
    root: NodeId,
    oracle: &mut O,
    max_retries: u32,
) -> Result<ReliableFloodOutcome, SimError>
where
    O: LinkOracle + ?Sized,
{
    g.check_node(root);
    let run: Run<Reliable<Flood>> = Simulator::new(g).run_with_oracle(oracle, |v, _| {
        Reliable::new(Flood::new(v == root), max_retries)
    })?;
    let parents: Vec<Option<NodeId>> = run.states.iter().map(|s| s.inner().parent()).collect();
    let reached = run.states.iter().filter(|s| s.inner().reached()).count();
    let tree = (reached == g.node_count()).then(|| tree_from_parents(g, root, &parents));
    Ok(ReliableFloodOutcome {
        tree,
        reached,
        failed_channels: failed_channels(g, &run.states),
        cost: run.cost,
    })
}

/// Outcome of a [`run_reliable_spt_recur`] run.
#[derive(Debug)]
pub struct ReliableSptRecurOutcome {
    /// The shortest-path tree, if the protocol finished and reached
    /// every vertex.
    pub tree: Option<RootedTree>,
    /// Per-vertex weighted distances from the source (`None` where the
    /// protocol never reached).
    pub dists: Vec<Option<Cost>>,
    /// Whether the source declared the computation finished.
    pub finished: bool,
    /// Channels abandoned after `max_retries`.
    pub failed_channels: usize,
    /// Metered costs: relaxations under `Protocol`; the protocol's own
    /// control traffic plus the wrapper's acks and retransmissions under
    /// `Auxiliary`.
    pub cost: CostReport,
}

/// Runs `SPT_recur` from `s` with strip depth `delta`, wrapped in
/// [`Reliable`] under `oracle`.
///
/// Delivery is what `SPT_recur`'s ack-counting termination logic
/// assumes, so under bounded loss the wrapped run keeps the exactness
/// guarantee of the fault-free protocol.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
///
/// # Panics
///
/// Panics if `s` is out of range or `delta == 0`.
pub fn run_reliable_spt_recur<O>(
    g: &WeightedGraph,
    s: NodeId,
    delta: u64,
    oracle: &mut O,
    max_retries: u32,
) -> Result<ReliableSptRecurOutcome, SimError>
where
    O: LinkOracle + ?Sized,
{
    g.check_node(s);
    let run: Run<Reliable<SptRecur>> = Simulator::new(g).run_with_oracle(oracle, |v, _| {
        Reliable::new(SptRecur::new(v, s, delta), max_retries)
    })?;
    let parents: Vec<Option<NodeId>> = run.states.iter().map(|st| st.inner().parent()).collect();
    let dists: Vec<Option<Cost>> = run.states.iter().map(|st| st.inner().dist()).collect();
    let finished = run.states[s.index()].inner().finished();
    let tree =
        (finished && dists.iter().all(Option::is_some)).then(|| tree_from_parents(g, s, &parents));
    Ok(ReliableSptRecurOutcome {
        tree,
        dists,
        finished,
        failed_channels: failed_channels(g, &run.states),
        cost: run.cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_graph::{algo, generators};
    use csp_sim::{CostClass, DelayModel, DropOracle, ModelOracle};

    fn gnp() -> WeightedGraph {
        generators::connected_gnp(12, 0.3, generators::WeightDist::Uniform(1, 16), 42)
    }

    #[test]
    fn reliable_flood_spans_under_bounded_drops() {
        let g = gnp();
        let mut oracle = DropOracle::new(DelayModel::Uniform, 11, 0.35, 5);
        let out = run_reliable_flood(&g, NodeId::new(0), &mut oracle, 8).unwrap();
        assert_eq!(out.reached, g.node_count());
        assert_eq!(out.failed_channels, 0);
        assert!(out.tree.expect("all reached").is_spanning());
    }

    #[test]
    fn reliable_spt_recur_stays_exact_under_bounded_drops() {
        let g = gnp();
        let reference = algo::distances(&g, NodeId::new(0));
        let mut oracle = DropOracle::new(DelayModel::Uniform, 23, 0.3, 4);
        let out = run_reliable_spt_recur(&g, NodeId::new(0), 1 << 40, &mut oracle, 8).unwrap();
        assert!(out.finished);
        assert_eq!(out.failed_channels, 0);
        for v in g.nodes() {
            assert_eq!(out.dists[v.index()], Some(reference[v.index()]), "{v}");
        }
        assert!(out.tree.expect("finished").is_spanning());
    }

    #[test]
    fn lossless_wrapped_runs_cost_more_only_in_auxiliary_overhead() {
        // Without faults the wrapper never retransmits, so the protocol
        // meter matches the bare run exactly; acks land in Auxiliary.
        let g = gnp();
        let bare = crate::flood::run_flood(&g, NodeId::new(0), DelayModel::WorstCase, 0).unwrap();
        let mut oracle = ModelOracle::new(DelayModel::WorstCase, 0);
        let wrapped = run_reliable_flood(&g, NodeId::new(0), &mut oracle, 4).unwrap();
        assert_eq!(
            wrapped.cost.comm_of(CostClass::Protocol),
            bare.cost.comm_of(CostClass::Protocol),
            "original traffic must meter identically"
        );
        assert!(
            wrapped.cost.comm_of(CostClass::Auxiliary) > bare.cost.comm_of(CostClass::Auxiliary)
        );
    }
}
