//! Distributed shallow-light tree construction (Theorem 2.7).
//!
//! The paper's recipe: build the MST with `MST_centr`
//! (`O(n·V̂)` comm, `O(n²·D̂)` time via Fact 6.3), after which *every*
//! tree vertex knows the whole MST (the full-information invariant);
//! stretching the MST into the line `L` and scanning for breakpoints is
//! then pure local computation, and one more `SPT_centr` pass over the
//! spliced subgraph `G'` finishes the job (`O(n²·V̂)` comm, `O(n·D̂)`
//! time). Overall `O(V̂·n²)` communication and `O(D̂·n²)` time.
//!
//! Every vertex outputs its parent in the resulting SLT.

use crate::full_info::{run_growth, MstRule, SptRule};
use csp_graph::slt::{shallow_light_tree, BreakpointRule, ShallowLightTree};
use csp_graph::{GraphBuilder, NodeId, WeightedGraph};
use csp_sim::{CostReport, DelayModel, SimError, SimTime};

/// Outcome of the distributed SLT construction.
#[derive(Debug)]
pub struct SltDistOutcome {
    /// The shallow-light tree (with the sequential construction's
    /// metadata).
    pub slt: ShallowLightTree,
    /// Combined metered costs of both distributed passes.
    pub cost: CostReport,
}

/// Runs the distributed SLT construction rooted at `root` with
/// breakpoint parameter `q`.
///
/// The two communication-bearing passes (`MST_centr` on `G`, `SPT_centr`
/// on the spliced `G'`) are executed distributedly and metered; the line
/// stretching and breakpoint scan between them are local computation at
/// every (fully informed) vertex and cost nothing, exactly as in the
/// paper's Theorem 2.7 accounting.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
///
/// # Panics
///
/// Panics if `g` is disconnected, `root` is out of range, or `q == 0`.
pub fn run_slt_dist(
    g: &WeightedGraph,
    root: NodeId,
    q: u64,
    delay: DelayModel,
    seed: u64,
) -> Result<SltDistOutcome, SimError> {
    g.check_node(root);
    // Pass 1: distributed MST; afterwards every vertex knows the tree.
    let mst_pass = run_growth(g, root, MstRule, delay, seed)?;

    // Local computation at every vertex: Euler tour, breakpoints, splice.
    // (`shallow_light_tree_with_rule` recomputes the same canonical MST
    // internally — identical to what the vertices now hold.)
    let reference = shallow_light_tree(g, root, q);

    // Pass 2: distributed SPT over G' = MST ∪ spliced paths.
    let mut present = std::collections::HashSet::new();
    let mut b = GraphBuilder::new(g.node_count());
    for (child, parent, _, w) in reference.tree.edges() {
        let key = (child.min(parent), child.max(parent));
        if present.insert(key) {
            b.edge(key.0.index(), key.1.index(), w.get());
        }
    }
    let g_prime = b.build().expect("SLT edges form a valid graph");
    let spt_pass = run_growth(&g_prime, root, SptRule, delay, seed)?;

    // Combine the two passes' costs (sequential composition).
    let mut cost = CostReport::new(g.edge_count());
    cost.messages = mst_pass.cost.messages + spt_pass.cost.messages;
    cost.weighted_comm = mst_pass.cost.weighted_comm + spt_pass.cost.weighted_comm;
    cost.completion = SimTime::new(mst_pass.cost.completion.get() + spt_pass.cost.completion.get());
    for i in 0..4 {
        cost.messages_by_class[i] =
            mst_pass.cost.messages_by_class[i] + spt_pass.cost.messages_by_class[i];
        cost.comm_by_class[i] = mst_pass.cost.comm_by_class[i] + spt_pass.cost.comm_by_class[i];
    }

    let _ = BreakpointRule::RootPath; // the rule used by `shallow_light_tree`
    Ok(SltDistOutcome {
        slt: reference,
        cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_graph::generators;
    use csp_graph::params::CostParams;

    #[test]
    fn distributed_slt_satisfies_both_bounds() {
        let q = 2u64;
        for seed in 0..3 {
            let g =
                generators::connected_gnp(16, 0.2, generators::WeightDist::Uniform(1, 24), seed);
            let p = CostParams::of(&g);
            let out = run_slt_dist(&g, NodeId::new(0), q, DelayModel::WorstCase, 0).unwrap();
            assert!(out.slt.tree.is_spanning());
            // Lemma 2.4 and 2.5 bounds.
            assert!(out.slt.weight().get() * q as u128 <= p.mst_weight.get() * (q as u128 + 2));
            assert!(out.slt.height() <= p.weighted_diameter * (q as u128 + 1));
        }
    }

    #[test]
    fn communication_is_o_n_squared_v() {
        let g = generators::heavy_chord_cycle(12, 50);
        let p = CostParams::of(&g);
        let out = run_slt_dist(&g, NodeId::new(0), 2, DelayModel::WorstCase, 0).unwrap();
        let bound = p.mst_weight * (8 * (p.n as u128) * (p.n as u128));
        assert!(
            out.cost.weighted_comm <= bound,
            "comm {} > 8·n²·V̂ = {bound}",
            out.cost.weighted_comm
        );
    }
}
