//! `CON_flood` — flooding broadcast and spanning-tree construction
//! (Section 6.1).
//!
//! The initiator sends a token to all neighbors; every vertex forwards the
//! token to all its neighbors on first receipt and records the first
//! sender as its parent. The marked edges form a spanning tree rooted at
//! the initiator.
//!
//! Fact 6.1: communication `O(Ê)` (at most two messages per edge, each of
//! cost `w(e)`), time `O(D̂)` (the token reaches every vertex within its
//! weighted distance from the initiator).

use crate::util::tree_from_parents;
use csp_graph::{NodeId, RootedTree, WeightedGraph};
use csp_sim::{
    Context, CostReport, DelayModel, FaultAware, Process, Run, ShardedSimulator, SimError,
    Simulator,
};

/// Per-vertex state of the flooding protocol.
#[derive(Clone, Debug, Hash)]
pub struct Flood {
    /// Whether this vertex initiates the flood.
    initiator: bool,
    /// First vertex the token arrived from (`None` at the initiator).
    parent: Option<NodeId>,
    /// Whether the token has been seen.
    reached: bool,
}

impl Flood {
    /// Creates the per-vertex state; exactly one vertex should be the
    /// initiator.
    pub fn new(is_initiator: bool) -> Self {
        Flood {
            initiator: is_initiator,
            parent: None,
            reached: false,
        }
    }

    /// The parent in the flood tree (`None` for the initiator and
    /// unreached vertices).
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// Whether the token reached this vertex.
    pub fn reached(&self) -> bool {
        self.reached
    }
}

impl Process for Flood {
    type Msg = ();

    fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
        if self.initiator {
            self.reached = true;
            ctx.send_all(());
        }
    }

    fn on_message(&mut self, from: NodeId, _msg: (), ctx: &mut Context<'_, ()>) {
        if !self.reached {
            self.reached = true;
            self.parent = Some(from);
            ctx.send_all(());
        }
    }
}

/// Flooding ignores fault upcalls: a dead neighbor only ever costs the
/// one token it would have forwarded. Opting in lets the protocol ride
/// inside [`Reliable`](csp_sim::Reliable) and
/// [`Detect`](csp_sim::Detect).
impl FaultAware for Flood {}

/// Outcome of a flood run.
#[derive(Debug)]
pub struct FloodOutcome {
    /// The constructed spanning tree, rooted at the initiator.
    pub tree: RootedTree,
    /// Metered costs.
    pub cost: CostReport,
}

/// Runs `CON_flood` from `root` under the given delay model and extracts
/// the spanning tree.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator (cannot normally happen:
/// flooding sends at most `2m` messages).
///
/// # Panics
///
/// Panics if `g` is disconnected (the flood tree would not span) or
/// `root` is out of range.
pub fn run_flood(
    g: &WeightedGraph,
    root: NodeId,
    delay: DelayModel,
    seed: u64,
) -> Result<FloodOutcome, SimError> {
    g.check_node(root);
    let run: Run<Flood> = Simulator::new(g)
        .delay(delay)
        .seed(seed)
        .run(|v, _| Flood::new(v == root))?;
    let parents: Vec<Option<NodeId>> = run.states.iter().map(Flood::parent).collect();
    let tree = tree_from_parents(g, root, &parents);
    assert!(tree.is_spanning(), "flood tree must span a connected graph");
    Ok(FloodOutcome {
        tree,
        cost: run.cost,
    })
}

/// [`run_flood`] on the sharded conservative-parallel core: partitions
/// the graph across `threads` workers (`0` = auto) and produces the
/// bit-identical outcome of the sequential run — same tree, same
/// [`CostReport`].
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator (cannot normally happen:
/// flooding sends at most `2m` messages).
///
/// # Panics
///
/// Panics if `g` is disconnected (the flood tree would not span) or
/// `root` is out of range.
pub fn run_flood_sharded(
    g: &WeightedGraph,
    root: NodeId,
    delay: DelayModel,
    seed: u64,
    threads: usize,
) -> Result<FloodOutcome, SimError> {
    g.check_node(root);
    let run: Run<Flood> = ShardedSimulator::new(g)
        .delay(delay)
        .seed(seed)
        .threads(threads)
        .run(|v, _| Flood::new(v == root))?;
    let parents: Vec<Option<NodeId>> = run.states.iter().map(Flood::parent).collect();
    let tree = tree_from_parents(g, root, &parents);
    assert!(tree.is_spanning(), "flood tree must span a connected graph");
    Ok(FloodOutcome {
        tree,
        cost: run.cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_graph::params::CostParams;
    use csp_graph::{generators, Cost};

    #[test]
    fn flood_spans_and_respects_fact_6_1() {
        let g = generators::connected_gnp(30, 0.15, generators::WeightDist::Uniform(1, 16), 2);
        let p = CostParams::of(&g);
        let out = run_flood(&g, NodeId::new(0), DelayModel::WorstCase, 0).unwrap();
        assert!(out.tree.is_spanning());
        // comm ≤ 2·Ê
        assert!(out.cost.weighted_comm <= p.total_weight * 2);
        // time ≤ D̂ under worst-case delays: the token follows every edge,
        // reaching each vertex no later than its weighted distance…
        // last *message* may land later (an edge into an already-reached
        // vertex), bounded by D̂ + W.
        let bound = p.weighted_diameter + p.max_weight.to_cost();
        assert!(
            Cost::new(out.cost.completion.get() as u128) <= bound,
            "completion {} > D̂+W = {bound}",
            out.cost.completion
        );
    }

    #[test]
    fn flood_tree_depths_bounded_by_distance_under_worst_case() {
        // Under exact (worst-case) delays the token arrives at each vertex
        // exactly at its weighted distance, so parents realize shortest
        // paths.
        let g = generators::heavy_chord_cycle(14, 60);
        let out = run_flood(&g, NodeId::new(0), DelayModel::WorstCase, 0).unwrap();
        let dist = csp_graph::algo::distances(&g, NodeId::new(0));
        for v in g.nodes() {
            assert_eq!(out.tree.depth(v), dist[v.index()], "depth mismatch at {v}");
        }
    }

    #[test]
    fn flood_under_random_delays_still_spans() {
        let g = generators::grid(5, 5, generators::WeightDist::Uniform(1, 9), 7);
        for seed in 0..4 {
            let out = run_flood(&g, NodeId::new(12), DelayModel::Uniform, seed).unwrap();
            assert!(out.tree.is_spanning());
            assert_eq!(out.tree.root(), NodeId::new(12));
        }
    }

    #[test]
    fn sharded_flood_matches_sequential() {
        let g = generators::connected_gnp(40, 0.1, generators::WeightDist::Uniform(1, 12), 5);
        for delay in [DelayModel::WorstCase, DelayModel::Uniform] {
            let seq = run_flood(&g, NodeId::new(3), delay, 11).unwrap();
            for threads in [1, 2, 4, 8] {
                let par = run_flood_sharded(&g, NodeId::new(3), delay, 11, threads).unwrap();
                assert_eq!(par.cost, seq.cost, "{delay:?} at {threads} threads");
                for v in g.nodes() {
                    assert_eq!(par.tree.parent(v), seq.tree.parent(v));
                }
            }
        }
    }

    #[test]
    fn exactly_one_message_per_direction_at_most() {
        let g = generators::cycle(10, |_| 3);
        let out = run_flood(&g, NodeId::new(0), DelayModel::WorstCase, 0).unwrap();
        assert!(out.cost.max_edge_congestion() <= 2);
        assert!(out.cost.messages <= 2 * g.edge_count() as u64);
    }
}
