//! Dijkstra–Scholten termination detection for diffusing computations
//! (\[DS80], the execution model of Section 5).
//!
//! The paper treats termination detection as one of the basic global
//! tasks (it is a symmetric-compact computation, Section 1.4.1), and
//! both the controller (Section 5) and `SPT_recur` (Section 9.2) build
//! on the same signal-and-acknowledge discipline. This module packages
//! it as a reusable protocol *transformer*: wrap any diffusing
//! [`Process`] and the initiator learns, within the same execution, the
//! moment the hosted protocol has globally quiesced.
//!
//! Mechanism: every hosted message is acknowledged. A vertex is
//! *engaged* from its first unacknowledged activation until all its own
//! sends are acknowledged; the engagement edges form a dynamic tree
//! rooted at the initiator, and a vertex acknowledges its engaging
//! message last. When the initiator's deficit reaches zero the
//! computation has terminated — detected with exactly one
//! acknowledgment per hosted message (overhead factor ≤ 2 in weighted
//! communication).

use csp_graph::{Cost, NodeId, WeightedGraph};
use csp_sim::{Context, CostClass, CostReport, DelayModel, Process, SimError, SimTime, Simulator};

/// Wrapper messages: hosted traffic plus acknowledgments.
#[derive(Clone, Debug)]
pub enum DsMsg<M> {
    /// A hosted protocol message.
    App(M),
    /// Acknowledgment of one hosted message.
    Ack,
}

/// The Dijkstra–Scholten wrapper around one vertex's protocol instance.
#[derive(Debug)]
pub struct Detector<P: Process> {
    hosted: P,
    is_root: bool,
    /// Unacknowledged messages this vertex has sent.
    deficit: u64,
    /// The engaging sender awaiting our final acknowledgment.
    engager: Option<NodeId>,
    /// Root only: the time at which termination was detected.
    detected_at: Option<SimTime>,
    /// Root only: whether the root ever became active.
    started: bool,
}

impl<P: Process> Detector<P> {
    /// Wraps `hosted` at vertex `v`; `root` is the diffusing
    /// computation's initiator.
    pub fn new(v: NodeId, root: NodeId, hosted: P) -> Self {
        Detector {
            hosted,
            is_root: v == root,
            deficit: 0,
            engager: None,
            detected_at: None,
            started: false,
        }
    }

    /// The hosted protocol state.
    pub fn hosted(&self) -> &P {
        &self.hosted
    }

    /// Root only: when termination was detected, if it was.
    pub fn detected_at(&self) -> Option<SimTime> {
        self.detected_at
    }

    /// Relays the hosted outbox, counting the deficit.
    fn relay(
        &mut self,
        sends: Vec<(NodeId, P::Msg, CostClass)>,
        ctx: &mut Context<'_, DsMsg<P::Msg>>,
    ) {
        for (to, msg, _class) in sends {
            self.deficit += 1;
            ctx.send(to, DsMsg::App(msg));
        }
        self.maybe_quiesce(ctx);
    }

    fn maybe_quiesce(&mut self, ctx: &mut Context<'_, DsMsg<P::Msg>>) {
        if self.deficit > 0 {
            return;
        }
        if let Some(e) = self.engager.take() {
            ctx.send_class(e, DsMsg::Ack, CostClass::Auxiliary);
        } else if self.is_root && self.started && self.detected_at.is_none() {
            self.detected_at = Some(ctx.time());
        }
    }
}

impl<P: Process> Process for Detector<P> {
    type Msg = DsMsg<P::Msg>;

    fn on_start(&mut self, ctx: &mut Context<'_, DsMsg<P::Msg>>) {
        let mut inner = ctx.derive::<P::Msg>();
        self.hosted.on_start(&mut inner);
        let sends = inner.take_outbox();
        if self.is_root {
            self.started = true;
        }
        self.relay(sends, ctx);
    }

    fn on_message(
        &mut self,
        from: NodeId,
        msg: DsMsg<P::Msg>,
        ctx: &mut Context<'_, DsMsg<P::Msg>>,
    ) {
        match msg {
            DsMsg::App(m) => {
                let engaging = self.deficit == 0 && self.engager.is_none() && !self.is_root;
                let mut inner = ctx.derive::<P::Msg>();
                self.hosted.on_message(from, m, &mut inner);
                let sends = inner.take_outbox();
                if engaging && !sends.is_empty() {
                    // Becoming active: defer this message's ack until we
                    // quiesce.
                    self.engager = Some(from);
                } else {
                    ctx.send_class(from, DsMsg::Ack, CostClass::Auxiliary);
                }
                self.relay(sends, ctx);
            }
            DsMsg::Ack => {
                self.deficit -= 1;
                self.maybe_quiesce(ctx);
            }
        }
    }
}

/// Outcome of a run with termination detection.
#[derive(Debug)]
pub struct DetectedRun<P> {
    /// Final hosted protocol states.
    pub states: Vec<P>,
    /// Simulated time at which the initiator detected termination.
    pub detected_at: SimTime,
    /// Metered costs; acknowledgments are [`CostClass::Auxiliary`].
    pub cost: CostReport,
}

/// Runs a diffusing computation with Dijkstra–Scholten termination
/// detection; the initiator's detection time is returned alongside the
/// states.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
///
/// # Panics
///
/// Panics if `root` is out of range, or the hosted protocol is not a
/// diffusing computation (a non-initiator acted spontaneously, so the
/// engagement tree cannot cover it).
pub fn run_with_termination_detection<P, F>(
    g: &WeightedGraph,
    root: NodeId,
    delay: DelayModel,
    seed: u64,
    mut make: F,
) -> Result<DetectedRun<P>, SimError>
where
    P: Process,
    F: FnMut(NodeId, &WeightedGraph) -> P,
{
    g.check_node(root);
    let run = Simulator::new(g)
        .delay(delay)
        .seed(seed)
        .run(|v, g| Detector::new(v, root, make(v, g)))?;
    let detected_at = run.states[root.index()]
        .detected_at()
        .expect("the initiator must detect termination at quiescence");
    let states = run.states.into_iter().map(|d| d.hosted).collect();
    Ok(DetectedRun {
        states,
        detected_at,
        cost: run.cost,
    })
}

/// The weighted overhead of detection: the acknowledgment share of the
/// total (always ≤ the hosted share, i.e. a factor ≤ 2 overall).
pub fn detection_overhead(cost: &CostReport) -> Cost {
    cost.comm_of(CostClass::Auxiliary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flood::Flood;
    use csp_graph::generators;

    #[test]
    fn detects_flood_termination() {
        let g = generators::connected_gnp(18, 0.2, generators::WeightDist::Uniform(1, 12), 4);
        let out =
            run_with_termination_detection(&g, NodeId::new(0), DelayModel::WorstCase, 0, |v, _| {
                Flood::new(v == NodeId::new(0))
            })
            .unwrap();
        assert!(out.states.iter().all(Flood::reached));
        // Detection cannot precede the last delivery.
        assert_eq!(out.detected_at, out.cost.completion);
    }

    #[test]
    fn overhead_is_exactly_one_ack_per_message() {
        let g = generators::cycle(10, |_| 3);
        let out =
            run_with_termination_detection(&g, NodeId::new(0), DelayModel::Uniform, 7, |v, _| {
                Flood::new(v == NodeId::new(0))
            })
            .unwrap();
        let app = out.cost.messages_of(CostClass::Protocol);
        let acks = out.cost.messages_of(CostClass::Auxiliary);
        assert_eq!(app, acks, "every hosted message gets exactly one ack");
        assert_eq!(
            detection_overhead(&out.cost),
            out.cost.comm_of(CostClass::Protocol),
            "weighted overhead factor is exactly 2 for symmetric acks"
        );
    }

    #[test]
    fn silent_protocol_detects_immediately() {
        #[derive(Debug)]
        struct Silent;
        impl Process for Silent {
            type Msg = ();
            fn on_start(&mut self, _ctx: &mut Context<'_, ()>) {}
            fn on_message(&mut self, _f: NodeId, _m: (), _c: &mut Context<'_, ()>) {}
        }
        let g = generators::path(4, |_| 2);
        let out =
            run_with_termination_detection(&g, NodeId::new(0), DelayModel::WorstCase, 0, |_, _| {
                Silent
            })
            .unwrap();
        assert_eq!(out.detected_at, SimTime::ZERO);
        assert_eq!(out.cost.messages, 0);
    }

    #[test]
    fn detection_works_under_random_delays() {
        let g = generators::grid(4, 4, generators::WeightDist::Uniform(1, 10), 2);
        for seed in 0..5 {
            let out = run_with_termination_detection(
                &g,
                NodeId::new(5),
                DelayModel::Uniform,
                seed,
                |v, _| Flood::new(v == NodeId::new(5)),
            )
            .unwrap();
            assert!(out.states.iter().all(Flood::reached), "seed {seed}");
        }
    }
}
