#![deny(missing_docs)]

//! Cost-sensitive distributed protocols.
//!
//! Every protocol of the paper, implemented as [`csp_sim::Process`] (or
//! [`csp_sim::SyncProcess`](csp_sim::sync::SyncProcess)) state machines and
//! measured with the weighted complexity measures:
//!
//! | paper section | module | protocol | weighted bounds (comm, time) |
//! |---|---|---|---|
//! | §2    | [`global`]     | global function computation over an SLT | `O(V̂)`, `O(D̂)` |
//! | §6.1  | [`flood`]      | `CON_flood` broadcast / spanning tree | `O(Ê)`, `O(D̂)` |
//! | §6.2  | [`dfs`]        | distributed DFS with root estimates | `O(Ê)`, `O(Ê)` |
//! | §6.3  | [`mst`]        | `MST_centr` full-information Prim | `O(n·V̂)`, `O(n·Diam(MST))` |
//! | §6.4  | [`spt`]        | `SPT_centr` full-information Dijkstra | `O(n²·V̂)`, `O(n·D̂)` |
//! | §7.2  | [`con_hybrid`] | `CON_hybrid` | `O(min{Ê, n·V̂})` |
//! | §8.1  | [`mst`]        | `MST_ghs` (Gallager–Humblet–Spira) | `O(Ê + V̂·log n)` |
//! | §8.2  | [`mst`]        | `MST_hybrid` | `O(min{Ê + V̂ log n, n·V̂})` |
//! | §8.3  | [`mst`]        | `MST_fast` (guess doubling) | `O(Ê·log n·log V̂)` |
//! | §9.1  | [`spt`]        | `SPT_synch` (synchronous SPT + γ_w) | `O(Ê + D̂·k·n·log n)` |
//! | §9.2  | [`spt`]        | `SPT_recur` (layered strips) | strip-tunable |
//! | §9.3  | [`spt`]        | `SPT_hybrid` | min of the two |
//! | §2.4  | [`slt_dist`]   | distributed SLT construction | `O(V̂·n²)`, `O(D̂·n²)` |
//! | —     | [`resilient`]  | self-healing flood / SPT (crash-tolerant distance vector) | exact on the surviving component |

pub mod cast;
pub mod con_hybrid;
pub mod dfs;
pub mod flood;
pub mod full_info;
pub mod global;
pub mod leader;
pub mod mst;
pub mod reliable;
pub mod resilient;
pub mod slt_dist;
pub mod spt;
pub mod termination;
pub mod util;
