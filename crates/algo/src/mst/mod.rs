//! Minimum spanning tree protocols (Sections 6.3 and 8).
//!
//! | algorithm | communication | time |
//! |---|---|---|
//! | [`centr::run_mst_centr`] | `O(n·V̂)` | `O(n·Diam(MST))` |
//! | [`ghs::run_mst_ghs`] | `O(Ê + V̂·log n)` | `O(Ê + V̂·log n)` |
//! | [`fast::run_mst_fast`] | `O(Ê·log n·log V̂)` | `O(Diam(MST)·log V̂·log n)` |
//! | [`hybrid::run_mst_hybrid`] | `O(min{Ê + V̂ log n, n·V̂})` | — |

pub mod centr;
pub mod fast;
pub mod ghs;
pub mod hybrid;
pub mod wakeup;

pub use centr::{run_mst_centr, run_mst_centr_budgeted};
pub use fast::run_mst_fast;
pub use ghs::run_mst_ghs;
pub use hybrid::run_mst_hybrid;
pub use wakeup::{run_mst_ghs_staged, WakeUp};
