//! `MST_ghs` — the Gallager–Humblet–Spira minimum spanning tree algorithm
//! (Section 8.1, \[GHS83]), in its classic asynchronous form.
//!
//! Fragments of the MST merge level by level. Within a fragment, the core
//! edge's endpoints coordinate a search for the fragment's minimum-weight
//! outgoing edge (`Initiate`/`Test`/`Accept`/`Reject` then a `Report`
//! convergecast); the fragment then connects over that edge (`ChangeRoot`,
//! `Connect`), either merging with a same-level fragment (creating a new
//! core, level + 1) or absorbing into a higher-level one.
//!
//! Weighted complexity (Lemma 8.1): every non-tree edge is scanned at most
//! twice (`Test`/`Reject`) and every tree edge carries `O(log n)` rounds
//! of fragment coordination, so communication is `O(Ê + V̂·log n)`.
//!
//! Distinct weights are required for correctness; we use the canonical
//! `(weight, edge id)` key, the same tie-break as the sequential
//! [`prim_mst`](csp_graph::algo::prim_mst), so the result is *the*
//! canonical MST.
//!
//! All vertices awaken spontaneously at time zero. (The paper's §8.1
//! "wake-up stage" — flooding or DFS from one initiator — matters only
//! for the hybrid variant, which wakes the network via DFS; see
//! [`hybrid`](crate::mst::hybrid).)

use crate::util::tree_from_parents;
use csp_graph::{NodeId, RootedTree, WeightedGraph};
use csp_sim::{Context, CostReport, DelayModel, Process, SimError, Simulator};
use std::collections::VecDeque;

/// A totally ordered edge key: `(weight, edge id)`. Fragment names are
/// core-edge keys.
pub type EdgeKey = (u64, usize);

/// The "no edge" / infinite-weight sentinel.
const INF: EdgeKey = (u64::MAX, usize::MAX);

/// Node states of GHS.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum NodeState {
    Sleeping,
    Find,
    Found,
}

/// Per-incident-edge classification.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum EdgeState {
    /// Untested.
    Basic,
    /// In the MST.
    Branch,
    /// Proven non-MST (both endpoints in the same fragment).
    Rejected,
}

/// GHS messages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GhsMsg {
    /// Fragment connection attempt at `level`.
    Connect {
        /// Sender fragment's level.
        level: u32,
    },
    /// New fragment identity broadcast.
    Initiate {
        /// Fragment level.
        level: u32,
        /// Fragment name (core edge key).
        name: EdgeKey,
        /// Whether the receiver should join the find.
        find: bool,
    },
    /// Is this edge outgoing from my fragment?
    Test {
        /// Sender fragment's level.
        level: u32,
        /// Sender fragment's name.
        name: EdgeKey,
    },
    /// The tested edge leaves the sender's fragment.
    Accept,
    /// The tested edge stays inside the fragment.
    Reject,
    /// Convergecast of the subtree's best outgoing edge weight.
    Report {
        /// Best outgoing key in the subtree (INF if none).
        best: EdgeKey,
    },
    /// Move the fragment root toward the best outgoing edge.
    ChangeRoot,
}

/// Per-vertex state of the GHS protocol.
#[derive(Clone, Debug)]
pub struct Ghs {
    state: NodeState,
    level: u32,
    fragment: EdgeKey,
    /// Edge states, parallel to the sorted neighbor table.
    edge_state: Vec<EdgeState>,
    /// Sorted `(neighbor, edge key)` table.
    neighbors: Vec<(NodeId, EdgeKey)>,
    /// Index into `neighbors` of the edge toward the core.
    in_branch: Option<usize>,
    /// Index of the edge under test.
    test_edge: Option<usize>,
    /// Best outgoing edge seen this find: (key, local index).
    best_edge: Option<usize>,
    best_key: EdgeKey,
    find_count: u32,
    /// Messages that arrived too early (higher level than ours).
    deferred: VecDeque<(NodeId, GhsMsg)>,
    /// This node detected global termination (core nodes only).
    halted: bool,
}

impl Ghs {
    /// Creates the per-vertex GHS state.
    pub fn new(v: NodeId, g: &WeightedGraph) -> Self {
        let mut neighbors: Vec<(NodeId, EdgeKey)> = g
            .neighbors(v)
            .map(|(u, eid, w)| (u, (w.get(), eid.index())))
            .collect();
        neighbors.sort_by_key(|&(_, key)| key);
        Ghs {
            state: NodeState::Sleeping,
            level: 0,
            fragment: INF,
            edge_state: vec![EdgeState::Basic; neighbors.len()],
            neighbors,
            in_branch: None,
            test_edge: None,
            best_edge: None,
            best_key: INF,
            find_count: 0,
            deferred: VecDeque::new(),
            halted: false,
        }
    }

    /// The neighbors this vertex marked as MST (Branch) edges.
    pub fn branch_neighbors(&self) -> Vec<NodeId> {
        self.neighbors
            .iter()
            .zip(self.edge_state.iter())
            .filter(|&(_, &s)| s == EdgeState::Branch)
            .map(|(&(u, _), _)| u)
            .collect()
    }

    /// Whether this vertex detected global termination.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// The neighbor across the final core edge (meaningful once
    /// [`halted`](Ghs::halted) — the two core endpoints are the only
    /// vertices that detect termination, and they are adjacent).
    pub fn core_neighbor(&self) -> Option<NodeId> {
        self.in_branch.map(|j| self.neighbors[j].0)
    }

    fn index_of(&self, u: NodeId) -> usize {
        self.neighbors
            .iter()
            .position(|&(v, _)| v == u)
            .expect("message from a neighbor")
    }

    fn wakeup(&mut self, ctx: &mut Context<'_, GhsMsg>) {
        if self.state != NodeState::Sleeping {
            return;
        }
        // (1): connect over the lightest incident edge at level 0.
        let m = 0; // neighbors sorted by key: index 0 is the minimum
        self.edge_state[m] = EdgeState::Branch;
        self.level = 0;
        self.state = NodeState::Found;
        self.find_count = 0;
        let (u, _) = self.neighbors[m];
        ctx.send(u, GhsMsg::Connect { level: 0 });
    }

    /// Tries to handle one message; returns `false` to defer it.
    fn handle(&mut self, from: NodeId, msg: GhsMsg, ctx: &mut Context<'_, GhsMsg>) -> bool {
        match msg {
            GhsMsg::Connect { level } => {
                self.wakeup(ctx);
                let j = self.index_of(from);
                if level < self.level {
                    // Absorb the lower-level fragment.
                    self.edge_state[j] = EdgeState::Branch;
                    ctx.send(
                        from,
                        GhsMsg::Initiate {
                            level: self.level,
                            name: self.fragment,
                            find: self.state == NodeState::Find,
                        },
                    );
                    if self.state == NodeState::Find {
                        self.find_count += 1;
                    }
                    true
                } else if self.edge_state[j] == EdgeState::Basic {
                    false // defer until our level catches up
                } else {
                    // Same-level merge: edge j becomes the new core.
                    let (_, key) = self.neighbors[j];
                    ctx.send(
                        from,
                        GhsMsg::Initiate {
                            level: self.level + 1,
                            name: key,
                            find: true,
                        },
                    );
                    true
                }
            }
            GhsMsg::Initiate { level, name, find } => {
                let j = self.index_of(from);
                self.level = level;
                self.fragment = name;
                self.state = if find {
                    NodeState::Find
                } else {
                    NodeState::Found
                };
                self.in_branch = Some(j);
                self.best_edge = None;
                self.best_key = INF;
                self.test_edge = None;
                for i in 0..self.neighbors.len() {
                    if i != j && self.edge_state[i] == EdgeState::Branch {
                        let (u, _) = self.neighbors[i];
                        ctx.send(u, GhsMsg::Initiate { level, name, find });
                        if find {
                            self.find_count += 1;
                        }
                    }
                }
                if find {
                    self.test(ctx);
                }
                true
            }
            GhsMsg::Test { level, name } => {
                self.wakeup(ctx);
                if level > self.level {
                    return false; // defer
                }
                let j = self.index_of(from);
                if name != self.fragment {
                    ctx.send(from, GhsMsg::Accept);
                } else {
                    if self.edge_state[j] == EdgeState::Basic {
                        self.edge_state[j] = EdgeState::Rejected;
                    }
                    if self.test_edge != Some(j) {
                        ctx.send(from, GhsMsg::Reject);
                    } else {
                        // Both ends tested the same internal edge; skip the
                        // Reject and move on.
                        self.test(ctx);
                    }
                }
                true
            }
            GhsMsg::Accept => {
                let j = self.index_of(from);
                self.test_edge = None;
                let (_, key) = self.neighbors[j];
                if key < self.best_key {
                    self.best_key = key;
                    self.best_edge = Some(j);
                }
                self.report(ctx);
                true
            }
            GhsMsg::Reject => {
                let j = self.index_of(from);
                if self.edge_state[j] == EdgeState::Basic {
                    self.edge_state[j] = EdgeState::Rejected;
                }
                self.test(ctx);
                true
            }
            GhsMsg::Report { best } => {
                let j = self.index_of(from);
                if Some(j) != self.in_branch {
                    // From a child subtree.
                    self.find_count -= 1;
                    if best < self.best_key {
                        self.best_key = best;
                        self.best_edge = Some(j);
                    }
                    self.report(ctx);
                    true
                } else if self.state == NodeState::Find {
                    false // defer: our own find is still running
                } else if best > self.best_key {
                    self.change_root(ctx);
                    true
                } else if best == INF && self.best_key == INF {
                    self.halted = true; // the MST is complete
                    true
                } else {
                    // The other side has the better edge; it will act.
                    true
                }
            }
            GhsMsg::ChangeRoot => {
                self.change_root(ctx);
                true
            }
        }
    }

    /// (4): test the lightest untested edge, or start reporting.
    fn test(&mut self, ctx: &mut Context<'_, GhsMsg>) {
        let basic = (0..self.neighbors.len()).find(|&i| self.edge_state[i] == EdgeState::Basic);
        match basic {
            Some(i) => {
                self.test_edge = Some(i);
                let (u, _) = self.neighbors[i];
                ctx.send(
                    u,
                    GhsMsg::Test {
                        level: self.level,
                        name: self.fragment,
                    },
                );
            }
            None => {
                self.test_edge = None;
                self.report(ctx);
            }
        }
    }

    /// (8): if the local search and all children are done, report up.
    fn report(&mut self, ctx: &mut Context<'_, GhsMsg>) {
        if self.find_count == 0 && self.test_edge.is_none() && self.state == NodeState::Find {
            self.state = NodeState::Found;
            let j = self.in_branch.expect("find implies a core direction");
            let (u, _) = self.neighbors[j];
            ctx.send(
                u,
                GhsMsg::Report {
                    best: self.best_key,
                },
            );
        }
    }

    /// (10): move the fragment root to the best outgoing edge.
    fn change_root(&mut self, ctx: &mut Context<'_, GhsMsg>) {
        let b = self
            .best_edge
            .expect("change-root implies a best outgoing edge");
        let (u, _) = self.neighbors[b];
        if self.edge_state[b] == EdgeState::Branch {
            ctx.send(u, GhsMsg::ChangeRoot);
        } else {
            self.edge_state[b] = EdgeState::Branch;
            ctx.send(u, GhsMsg::Connect { level: self.level });
        }
    }

    /// Re-tries deferred messages until none makes progress.
    fn drain_deferred(&mut self, ctx: &mut Context<'_, GhsMsg>) {
        loop {
            let mut progressed = false;
            for _ in 0..self.deferred.len() {
                let (from, msg) = self.deferred.pop_front().expect("length checked");
                if self.handle(from, msg, ctx) {
                    progressed = true;
                } else {
                    self.deferred.push_back((from, msg));
                }
            }
            if !progressed || self.deferred.is_empty() {
                return;
            }
        }
    }
}

impl Process for Ghs {
    type Msg = GhsMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, GhsMsg>) {
        if ctx.degree() > 0 {
            self.wakeup(ctx);
        }
    }

    fn on_message(&mut self, from: NodeId, msg: GhsMsg, ctx: &mut Context<'_, GhsMsg>) {
        if self.handle(from, msg, ctx) {
            self.drain_deferred(ctx);
        } else {
            self.deferred.push_back((from, msg));
        }
    }
}

/// Outcome of a GHS run.
#[derive(Debug)]
pub struct GhsOutcome {
    /// The minimum spanning tree (rooted, for uniform reporting, at the
    /// supplied root).
    pub tree: RootedTree,
    /// Metered costs.
    pub cost: CostReport,
}

/// Runs GHS to completion and extracts the MST (rooted at `root` for
/// reporting purposes — GHS itself has no distinguished root).
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
///
/// # Panics
///
/// Panics if `g` is disconnected or `root` is out of range.
pub fn run_mst_ghs(
    g: &WeightedGraph,
    root: NodeId,
    delay: DelayModel,
    seed: u64,
) -> Result<GhsOutcome, SimError> {
    g.check_node(root);
    if g.node_count() == 1 {
        return Ok(GhsOutcome {
            tree: RootedTree::new(1, root),
            cost: CostReport::new(0),
        });
    }
    let run = Simulator::new(g).delay(delay).seed(seed).run(Ghs::new)?;
    assert!(
        run.states.iter().any(Ghs::halted),
        "GHS must detect termination"
    );
    // Branch edges, agreed by both endpoints, form the MST.
    let mut is_branch = vec![false; g.edge_count()];
    for v in g.nodes() {
        for u in run.states[v.index()].branch_neighbors() {
            let eid = g.edge_between(v, u).expect("branch is a graph edge");
            is_branch[eid.index()] = true;
        }
    }
    // Root the edge set at `root` by BFS over branch edges.
    let mut parents: Vec<Option<NodeId>> = vec![None; g.node_count()];
    let mut seen = vec![false; g.node_count()];
    seen[root.index()] = true;
    let mut queue = VecDeque::from([root]);
    while let Some(v) = queue.pop_front() {
        for (u, eid, _) in g.neighbors(v) {
            if is_branch[eid.index()] && !seen[u.index()] {
                seen[u.index()] = true;
                parents[u.index()] = Some(v);
                queue.push_back(u);
            }
        }
    }
    let tree = tree_from_parents(g, root, &parents);
    assert!(tree.is_spanning(), "GHS tree must span a connected graph");
    Ok(GhsOutcome {
        tree,
        cost: run.cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_graph::params::CostParams;
    use csp_graph::{algo, generators};

    #[test]
    fn ghs_finds_the_canonical_mst_on_random_graphs() {
        for seed in 0..6 {
            let g =
                generators::connected_gnp(20, 0.25, generators::WeightDist::Uniform(1, 50), seed);
            let out = run_mst_ghs(&g, NodeId::new(0), DelayModel::WorstCase, 0).unwrap();
            let reference = algo::prim_mst(&g, NodeId::new(0));
            assert_eq!(out.tree.weight(), reference.weight(), "seed {seed}");
        }
    }

    #[test]
    fn ghs_survives_adversarial_random_delays() {
        let g = generators::grid(4, 5, generators::WeightDist::Uniform(1, 30), 11);
        let reference = algo::prim_mst(&g, NodeId::new(0)).weight();
        for seed in 0..8 {
            let out = run_mst_ghs(&g, NodeId::new(0), DelayModel::Uniform, seed).unwrap();
            assert_eq!(out.tree.weight(), reference, "delay seed {seed}");
        }
    }

    #[test]
    fn ghs_on_two_nodes() {
        let g = generators::path(2, |_| 7);
        let out = run_mst_ghs(&g, NodeId::new(0), DelayModel::WorstCase, 0).unwrap();
        assert_eq!(out.tree.weight().get(), 7);
    }

    #[test]
    fn ghs_with_equal_weights_uses_id_tie_break() {
        let g = generators::complete(8, |_, _| 5);
        let out = run_mst_ghs(&g, NodeId::new(0), DelayModel::WorstCase, 0).unwrap();
        let reference = algo::prim_mst(&g, NodeId::new(0));
        assert_eq!(out.tree.weight(), reference.weight());
        let mut a: Vec<_> = out.tree.edges().map(|(_, _, e, _)| e).collect();
        let mut b: Vec<_> = reference.edges().map(|(_, _, e, _)| e).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "edge sets must match the canonical MST");
    }

    #[test]
    fn ghs_communication_matches_lemma_8_1() {
        // comm ≤ c·(Ê + V̂·log n) with a small constant.
        for seed in 0..3 {
            let g =
                generators::connected_gnp(30, 0.2, generators::WeightDist::Uniform(1, 64), seed);
            let p = CostParams::of(&g);
            let out = run_mst_ghs(&g, NodeId::new(0), DelayModel::WorstCase, 0).unwrap();
            let log_n = (p.n as f64).log2().ceil() as u128;
            let bound = (p.total_weight + p.mst_weight * log_n) * 5;
            assert!(
                out.cost.weighted_comm <= bound,
                "comm {} > 5(Ê + V̂ log n) = {bound}",
                out.cost.weighted_comm
            );
        }
    }

    #[test]
    fn ghs_on_a_long_path() {
        let g = generators::path(40, |i| (i as u64 % 9) + 1);
        let out = run_mst_ghs(&g, NodeId::new(0), DelayModel::WorstCase, 0).unwrap();
        assert_eq!(out.tree.weight(), g.total_weight());
    }
}

#[cfg(test)]
mod stress_tests {
    use super::*;
    use csp_graph::{algo, generators};

    #[test]
    fn ghs_on_complete_graphs_with_eager_delays() {
        // Eager delivery maximizes racing Connect/Initiate interleavings.
        for n in [6usize, 10, 14] {
            let g = generators::complete(n, |i, j| ((i * 7 + j * 13) % 40 + 1) as u64);
            let reference = algo::prim_mst(&g, NodeId::new(0)).weight();
            let out = run_mst_ghs(&g, NodeId::new(0), DelayModel::Eager, 0).unwrap();
            assert_eq!(out.tree.weight(), reference, "n={n}");
        }
    }

    #[test]
    fn ghs_on_stars_and_paths() {
        let star = generators::star(12, |i| i as u64 + 1);
        let out = run_mst_ghs(&star, NodeId::new(0), DelayModel::WorstCase, 0).unwrap();
        assert_eq!(out.tree.weight(), star.total_weight());

        let path = generators::path(30, |_| 5);
        let out = run_mst_ghs(&path, NodeId::new(15), DelayModel::Uniform, 9).unwrap();
        assert_eq!(out.tree.weight(), path.total_weight());
    }

    #[test]
    fn ghs_proportional_delays_sweep() {
        let g = generators::grid(3, 5, generators::WeightDist::Uniform(1, 20), 3);
        let reference = algo::prim_mst(&g, NodeId::new(0)).weight();
        for den in [2u64, 3, 5] {
            let out = run_mst_ghs(
                &g,
                NodeId::new(0),
                DelayModel::Proportional { num: 1, den },
                0,
            )
            .unwrap();
            assert_eq!(out.tree.weight(), reference, "den={den}");
        }
    }

    #[test]
    fn exactly_two_core_endpoints_halt() {
        let g = generators::connected_gnp(20, 0.2, generators::WeightDist::Uniform(1, 30), 6);
        let run = Simulator::new(&g).run(Ghs::new).unwrap();
        let halted: Vec<usize> = (0..20).filter(|&i| run.states[i].halted()).collect();
        assert_eq!(halted.len(), 2, "exactly the two core endpoints halt");
        let a = NodeId::new(halted[0]);
        let b = NodeId::new(halted[1]);
        assert_eq!(run.states[a.index()].core_neighbor(), Some(b));
        assert_eq!(run.states[b.index()].core_neighbor(), Some(a));
    }
}
