//! Wake-up stages for GHS (Sections 8.1 and 8.2).
//!
//! The paper's `MST_ghs` starts with a *wake-up stage*: a single
//! initiator activates the network before the GHS work stage runs —
//! by flooding in §8.1 (`O(Ê)` extra communication, `O(D̂)` time), or by
//! the controlled DFS in §8.2 (also `O(Ê)`, but leaving the root with a
//! running estimate of the communication spent, the hook `MST_hybrid`
//! arbitrates on). The bare [`run_mst_ghs`](super::run_mst_ghs) wakes
//! every vertex spontaneously (GHS's other standard mode); these
//! variants reproduce the single-initiator protocols.

use crate::dfs::{Dfs, DfsMsg};
use crate::mst::ghs::{Ghs, GhsMsg};
use crate::util::tree_from_parents;
use csp_graph::{NodeId, RootedTree, WeightedGraph};
use csp_sim::{Context, CostClass, CostReport, DelayModel, Process, SimError, Simulator};
use std::collections::VecDeque;

/// How the network is awakened.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WakeUp {
    /// §8.1: the initiator floods a wake-up token.
    Flood,
    /// §8.2: the initiator's DFS token visits (and wakes) every vertex.
    Dfs,
}

/// Messages of the wake-staged GHS.
#[derive(Clone, Debug)]
pub enum WakeMsg {
    /// Flood wake-up token.
    Wake,
    /// Embedded DFS traffic (DFS wake-up only).
    Dfs(DfsMsg),
    /// Embedded GHS traffic.
    Ghs(GhsMsg),
}

/// Per-vertex state: an optional DFS, the GHS machine, and the awake
/// flag.
#[derive(Debug)]
pub struct StagedGhs {
    mode: WakeUp,
    initiator: bool,
    awake: bool,
    dfs: Dfs,
    ghs: Ghs,
    /// GHS messages that arrived before this vertex awoke.
    early: VecDeque<(NodeId, GhsMsg)>,
}

impl StagedGhs {
    /// Creates the per-vertex state for a wake-staged GHS initiated at
    /// `root`.
    pub fn new(v: NodeId, g: &WeightedGraph, root: NodeId, mode: WakeUp) -> Self {
        StagedGhs {
            mode,
            initiator: v == root,
            awake: false,
            dfs: Dfs::new(v, g, root),
            ghs: Ghs::new(v, g),
            early: VecDeque::new(),
        }
    }

    /// Access to the embedded GHS state (branch edges, halt flag).
    pub fn ghs(&self) -> &Ghs {
        &self.ghs
    }

    /// Whether this vertex was awakened.
    pub fn awake(&self) -> bool {
        self.awake
    }

    fn relay_ghs(
        &mut self,
        ctx: &mut Context<'_, WakeMsg>,
        inner_run: impl FnOnce(&mut Ghs, &mut Context<'_, GhsMsg>),
    ) {
        let mut inner = ctx.derive::<GhsMsg>();
        inner_run(&mut self.ghs, &mut inner);
        for (to, msg, class) in inner.take_outbox() {
            ctx.send_class(to, WakeMsg::Ghs(msg), class);
        }
    }

    fn relay_dfs(
        &mut self,
        ctx: &mut Context<'_, WakeMsg>,
        inner_run: impl FnOnce(&mut Dfs, &mut Context<'_, DfsMsg>),
    ) {
        let mut inner = ctx.derive::<DfsMsg>();
        inner_run(&mut self.dfs, &mut inner);
        for (to, msg, _class) in inner.take_outbox() {
            // All wake-stage traffic is auxiliary to the MST itself.
            ctx.send_class(to, WakeMsg::Dfs(msg), CostClass::Auxiliary);
        }
    }

    /// First activation: start the GHS machine and drain early arrivals.
    fn wake(&mut self, ctx: &mut Context<'_, WakeMsg>) {
        if self.awake {
            return;
        }
        self.awake = true;
        self.relay_ghs(ctx, |ghs, inner| ghs.on_start(inner));
        while let Some((from, msg)) = self.early.pop_front() {
            self.relay_ghs(ctx, |ghs, inner| ghs.on_message(from, msg, inner));
        }
    }
}

impl Process for StagedGhs {
    type Msg = WakeMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, WakeMsg>) {
        if !self.initiator {
            return;
        }
        match self.mode {
            WakeUp::Flood => {
                let targets: Vec<NodeId> = ctx.neighbors().map(|(u, _, _)| u).collect();
                for u in targets {
                    ctx.send_class(u, WakeMsg::Wake, CostClass::Auxiliary);
                }
            }
            WakeUp::Dfs => self.relay_dfs(ctx, |dfs, inner| dfs.on_start(inner)),
        }
        self.wake(ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: WakeMsg, ctx: &mut Context<'_, WakeMsg>) {
        match msg {
            WakeMsg::Wake => {
                if !self.awake {
                    let targets: Vec<NodeId> = ctx.neighbors().map(|(u, _, _)| u).collect();
                    for u in targets {
                        ctx.send_class(u, WakeMsg::Wake, CostClass::Auxiliary);
                    }
                    self.wake(ctx);
                }
            }
            WakeMsg::Dfs(m) => {
                self.relay_dfs(ctx, |dfs, inner| dfs.on_message(from, m, inner));
                // The token's visit awakens the vertex.
                self.wake(ctx);
            }
            WakeMsg::Ghs(m) => {
                if self.awake {
                    self.relay_ghs(ctx, |ghs, inner| ghs.on_message(from, m, inner));
                } else {
                    // GHS raced ahead of the wake-up: buffer until awake.
                    // (Connect from an already-awake neighbor can arrive
                    // before our Wake token.)
                    self.early.push_back((from, m));
                }
            }
        }
    }
}

/// Outcome of a wake-staged GHS run.
#[derive(Debug)]
pub struct StagedGhsOutcome {
    /// The minimum spanning tree (rooted at the initiator).
    pub tree: RootedTree,
    /// Metered costs; wake-stage traffic is
    /// [`CostClass::Auxiliary`].
    pub cost: CostReport,
}

/// Runs GHS with a single-initiator wake-up stage (Sections 8.1/8.2).
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
///
/// # Panics
///
/// Panics if `g` is disconnected or `root` is out of range.
pub fn run_mst_ghs_staged(
    g: &WeightedGraph,
    root: NodeId,
    mode: WakeUp,
    delay: DelayModel,
    seed: u64,
) -> Result<StagedGhsOutcome, SimError> {
    g.check_node(root);
    if g.node_count() == 1 {
        return Ok(StagedGhsOutcome {
            tree: RootedTree::new(1, root),
            cost: CostReport::new(0),
        });
    }
    let run = Simulator::new(g)
        .delay(delay)
        .seed(seed)
        .run(|v, g| StagedGhs::new(v, g, root, mode))?;
    assert!(
        run.states.iter().all(StagedGhs::awake),
        "wake-up must reach every vertex"
    );
    assert!(
        run.states.iter().any(|s| s.ghs().halted()),
        "GHS must detect termination"
    );
    let mut is_branch = vec![false; g.edge_count()];
    for v in g.nodes() {
        for u in run.states[v.index()].ghs().branch_neighbors() {
            let eid = g.edge_between(v, u).expect("branch is a graph edge");
            is_branch[eid.index()] = true;
        }
    }
    let mut parents: Vec<Option<NodeId>> = vec![None; g.node_count()];
    let mut seen = vec![false; g.node_count()];
    seen[root.index()] = true;
    let mut queue = VecDeque::from([root]);
    while let Some(v) = queue.pop_front() {
        for (u, eid, _) in g.neighbors(v) {
            if is_branch[eid.index()] && !seen[u.index()] {
                seen[u.index()] = true;
                parents[u.index()] = Some(v);
                queue.push_back(u);
            }
        }
    }
    let tree = tree_from_parents(g, root, &parents);
    assert!(tree.is_spanning(), "staged GHS tree must span");
    Ok(StagedGhsOutcome {
        tree,
        cost: run.cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_graph::params::CostParams;
    use csp_graph::{algo, generators};

    #[test]
    fn both_wake_modes_find_the_canonical_mst() {
        for seed in 0..4 {
            let g =
                generators::connected_gnp(18, 0.25, generators::WeightDist::Uniform(1, 40), seed);
            let reference = algo::prim_mst(&g, NodeId::new(0)).weight();
            for mode in [WakeUp::Flood, WakeUp::Dfs] {
                let out = run_mst_ghs_staged(&g, NodeId::new(0), mode, DelayModel::Uniform, seed)
                    .unwrap();
                assert_eq!(out.tree.weight(), reference, "{mode:?} seed {seed}");
            }
        }
    }

    #[test]
    fn wake_stage_overhead_is_o_e_hat() {
        let g = generators::grid(4, 5, generators::WeightDist::Uniform(1, 12), 7);
        let p = CostParams::of(&g);
        for (mode, factor) in [(WakeUp::Flood, 2u128), (WakeUp::Dfs, 12u128)] {
            let out =
                run_mst_ghs_staged(&g, NodeId::new(0), mode, DelayModel::WorstCase, 0).unwrap();
            let wake_comm = out.cost.comm_of(CostClass::Auxiliary);
            assert!(
                wake_comm <= p.total_weight * factor,
                "{mode:?}: wake comm {wake_comm} > {factor}·Ê"
            );
        }
    }

    #[test]
    fn staged_matches_spontaneous_tree() {
        let g = generators::heavy_chord_cycle(14, 60);
        let spontaneous =
            super::super::ghs::run_mst_ghs(&g, NodeId::new(0), DelayModel::WorstCase, 0)
                .unwrap()
                .tree
                .weight();
        let staged =
            run_mst_ghs_staged(&g, NodeId::new(0), WakeUp::Flood, DelayModel::WorstCase, 0)
                .unwrap()
                .tree
                .weight();
        assert_eq!(staged, spontaneous);
    }

    #[test]
    fn two_vertex_graph_with_dfs_wake() {
        let g = generators::path(2, |_| 3);
        let out =
            run_mst_ghs_staged(&g, NodeId::new(0), WakeUp::Dfs, DelayModel::WorstCase, 0).unwrap();
        assert_eq!(out.tree.weight().get(), 3);
    }
}
