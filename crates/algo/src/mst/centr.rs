//! `MST_centr` — the full-information minimum spanning tree algorithm
//! (Section 6.3), a distributed Prim built on the
//! [growth engine](crate::full_info).
//!
//! Communication `O(n·V̂)` (Corollary 6.4): `n − 1` phases, each a
//! constant number of sweeps over the current tree whose weight never
//! exceeds `V̂`. Its signature property on heavy-fringe graphs (like the
//! lower-bound family of Figure 7) is that it never pays for edges outside
//! the MST, so it beats every `O(Ê)` algorithm whenever `n·V̂ ≪ Ê`.

use crate::full_info::{run_growth, run_growth_budgeted, GrowthBudgetedOutcome, MstRule};
use csp_graph::{NodeId, RootedTree, WeightedGraph};
use csp_sim::{CostReport, DelayModel, SimError};

/// Outcome of an `MST_centr` run.
#[derive(Debug)]
pub struct MstCentrOutcome {
    /// The minimum spanning tree, rooted at the initiator.
    pub tree: RootedTree,
    /// Metered costs.
    pub cost: CostReport,
}

/// Runs `MST_centr` from `root`.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
///
/// # Panics
///
/// Panics if `g` is disconnected or `root` is out of range.
///
/// # Example
///
/// ```
/// use csp_graph::{generators, NodeId};
/// use csp_algo::mst::run_mst_centr;
/// use csp_sim::DelayModel;
///
/// let g = generators::lower_bound_family(10, 4);
/// let out = run_mst_centr(&g, NodeId::new(0), DelayModel::WorstCase, 0)?;
/// // The MST of the family is the light path: (n−1)·x = 9·4.
/// assert_eq!(out.tree.weight().get(), 36);
/// # Ok::<(), csp_sim::SimError>(())
/// ```
pub fn run_mst_centr(
    g: &WeightedGraph,
    root: NodeId,
    delay: DelayModel,
    seed: u64,
) -> Result<MstCentrOutcome, SimError> {
    let out = run_growth(g, root, MstRule, delay, seed)?;
    Ok(MstCentrOutcome {
        tree: out.tree,
        cost: out.cost,
    })
}

/// Budgeted variant for the hybrid algorithms: the root suspends growth
/// rather than exceed `budget` communication.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
pub fn run_mst_centr_budgeted(
    g: &WeightedGraph,
    root: NodeId,
    budget: u128,
    delay: DelayModel,
    seed: u64,
) -> Result<GrowthBudgetedOutcome, SimError> {
    run_growth_budgeted(g, root, MstRule, budget, delay, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_graph::{algo, generators};

    #[test]
    fn matches_sequential_prim() {
        let g = generators::cluster_graph(3, 5, 40, 8);
        let out = run_mst_centr(&g, NodeId::new(0), DelayModel::Uniform, 3).unwrap();
        let reference = algo::prim_mst(&g, NodeId::new(0));
        assert_eq!(out.tree.weight(), reference.weight());
        assert!(out.tree.is_spanning());
    }
}
