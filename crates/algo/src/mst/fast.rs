//! `MST_fast` — the time-efficient MST algorithm (Section 8.3).
//!
//! GHS's find phase scans a fragment's incident edges *serially* in
//! increasing weight order, so a single phase can spend `Θ(Ê)` time on
//! heavy edges that are not in the MST. `MST_fast` modifies the find:
//!
//! * the fragment core maintains a **guess** `G` for the weight of the
//!   minimum outgoing edge, starting at 1;
//! * a find round broadcasts `(fragment, level, G)` and every member
//!   tests **all** its untested edges of weight `≤ G` **in parallel**;
//! * the convergecast reports the best accepted edge, plus a flag
//!   "heavier untested edges exist"; if no outgoing edge `≤ G` was found
//!   but heavier candidates remain, the core doubles `G` and re-runs the
//!   round.
//!
//! Each edge is tested `O(log V̂)` times and each doubling round costs one
//! sweep of the fragment tree, giving communication
//! `O(Ê·log n·log V̂)` and time `O(Diam(MST)·log V̂·log n)`
//! (Corollary 8.3) — more messages than GHS, far less time on workloads
//! whose heavy edges dominate `Ê`.

use crate::util::tree_from_parents;
use csp_graph::{NodeId, RootedTree, WeightedGraph};
use csp_sim::{Context, CostReport, DelayModel, Process, SimError, Simulator};
use std::collections::VecDeque;

use super::ghs::EdgeKey;

const INF: EdgeKey = (u64::MAX, usize::MAX);

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum NodeState {
    Sleeping,
    Find,
    Found,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum EdgeState {
    Basic,
    Branch,
    Rejected,
}

/// `MST_fast` messages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FastMsg {
    /// Fragment connection attempt at `level`.
    Connect {
        /// Sender fragment's level.
        level: u32,
    },
    /// Fragment identity + guess broadcast starting a find round.
    Initiate {
        /// Fragment level.
        level: u32,
        /// Fragment name (core edge key).
        name: EdgeKey,
        /// Whether to participate in the find.
        find: bool,
        /// Current weight guess.
        guess: u64,
    },
    /// Is this edge outgoing? (sent in parallel for all edges ≤ guess)
    Test {
        /// Sender fragment's level.
        level: u32,
        /// Sender fragment's name.
        name: EdgeKey,
    },
    /// The tested edge leaves the sender's fragment.
    Accept,
    /// The tested edge stays inside the fragment.
    Reject,
    /// Convergecast of the subtree's find results.
    Report {
        /// Best outgoing key found (INF if none ≤ guess).
        best: EdgeKey,
        /// Whether untested edges heavier than the guess remain.
        heavier: bool,
    },
    /// Move the fragment root toward the best outgoing edge.
    ChangeRoot,
}

/// Per-vertex state of `MST_fast`.
#[derive(Clone, Debug)]
pub struct MstFast {
    state: NodeState,
    level: u32,
    fragment: EdgeKey,
    guess: u64,
    edge_state: Vec<EdgeState>,
    neighbors: Vec<(NodeId, EdgeKey)>,
    in_branch: Option<usize>,
    /// Indices of edges currently under (parallel) test.
    pending_tests: Vec<usize>,
    best_edge: Option<usize>,
    best_key: EdgeKey,
    /// Subtree has untested edges heavier than the guess.
    heavier: bool,
    find_count: u32,
    deferred: VecDeque<(NodeId, FastMsg)>,
    halted: bool,
}

impl MstFast {
    /// Creates the per-vertex state.
    pub fn new(v: NodeId, g: &WeightedGraph) -> Self {
        let mut neighbors: Vec<(NodeId, EdgeKey)> = g
            .neighbors(v)
            .map(|(u, eid, w)| (u, (w.get(), eid.index())))
            .collect();
        neighbors.sort_by_key(|&(_, key)| key);
        MstFast {
            state: NodeState::Sleeping,
            level: 0,
            fragment: INF,
            guess: 1,
            edge_state: vec![EdgeState::Basic; neighbors.len()],
            neighbors,
            in_branch: None,
            pending_tests: Vec::new(),
            best_edge: None,
            best_key: INF,
            heavier: false,
            find_count: 0,
            deferred: VecDeque::new(),
            halted: false,
        }
    }

    /// The neighbors this vertex marked as MST (Branch) edges.
    pub fn branch_neighbors(&self) -> Vec<NodeId> {
        self.neighbors
            .iter()
            .zip(self.edge_state.iter())
            .filter(|&(_, &s)| s == EdgeState::Branch)
            .map(|(&(u, _), _)| u)
            .collect()
    }

    /// Whether this vertex detected global termination.
    pub fn halted(&self) -> bool {
        self.halted
    }

    fn index_of(&self, u: NodeId) -> usize {
        self.neighbors
            .iter()
            .position(|&(v, _)| v == u)
            .expect("message from a neighbor")
    }

    fn wakeup(&mut self, ctx: &mut Context<'_, FastMsg>) {
        if self.state != NodeState::Sleeping {
            return;
        }
        self.edge_state[0] = EdgeState::Branch;
        self.level = 0;
        self.state = NodeState::Found;
        let (u, _) = self.neighbors[0];
        ctx.send(u, FastMsg::Connect { level: 0 });
    }

    fn handle(&mut self, from: NodeId, msg: FastMsg, ctx: &mut Context<'_, FastMsg>) -> bool {
        match msg {
            FastMsg::Connect { level } => {
                self.wakeup(ctx);
                let j = self.index_of(from);
                if level < self.level {
                    self.edge_state[j] = EdgeState::Branch;
                    ctx.send(
                        from,
                        FastMsg::Initiate {
                            level: self.level,
                            name: self.fragment,
                            find: self.state == NodeState::Find,
                            guess: self.guess,
                        },
                    );
                    if self.state == NodeState::Find {
                        self.find_count += 1;
                    }
                    true
                } else if self.edge_state[j] == EdgeState::Basic {
                    false
                } else {
                    let (_, key) = self.neighbors[j];
                    ctx.send(
                        from,
                        FastMsg::Initiate {
                            level: self.level + 1,
                            name: key,
                            find: true,
                            guess: 1,
                        },
                    );
                    true
                }
            }
            FastMsg::Initiate {
                level,
                name,
                find,
                guess,
            } => {
                let j = self.index_of(from);
                self.begin_round(level, name, find, guess, Some(j), ctx);
                true
            }
            FastMsg::Test { level, name } => {
                self.wakeup(ctx);
                if level > self.level {
                    return false;
                }
                let j = self.index_of(from);
                if name != self.fragment {
                    ctx.send(from, FastMsg::Accept);
                } else {
                    if self.edge_state[j] == EdgeState::Basic {
                        self.edge_state[j] = EdgeState::Rejected;
                    }
                    if let Some(pos) = self.pending_tests.iter().position(|&i| i == j) {
                        // Mutual internal test: count it as our response.
                        self.pending_tests.swap_remove(pos);
                        self.maybe_report(ctx);
                    } else {
                        ctx.send(from, FastMsg::Reject);
                    }
                }
                true
            }
            FastMsg::Accept => {
                let j = self.index_of(from);
                if let Some(pos) = self.pending_tests.iter().position(|&i| i == j) {
                    self.pending_tests.swap_remove(pos);
                }
                let (_, key) = self.neighbors[j];
                if key < self.best_key {
                    self.best_key = key;
                    self.best_edge = Some(j);
                }
                self.maybe_report(ctx);
                true
            }
            FastMsg::Reject => {
                let j = self.index_of(from);
                if self.edge_state[j] == EdgeState::Basic {
                    self.edge_state[j] = EdgeState::Rejected;
                }
                if let Some(pos) = self.pending_tests.iter().position(|&i| i == j) {
                    self.pending_tests.swap_remove(pos);
                }
                self.maybe_report(ctx);
                true
            }
            FastMsg::Report { best, heavier } => {
                let j = self.index_of(from);
                if Some(j) != self.in_branch {
                    self.find_count -= 1;
                    if best < self.best_key {
                        self.best_key = best;
                        self.best_edge = Some(j);
                    }
                    self.heavier |= heavier;
                    self.maybe_report(ctx);
                    true
                } else if self.state == NodeState::Find {
                    false
                } else if best == INF && self.best_key == INF {
                    if heavier || self.heavier {
                        // Both halves came up empty but heavier candidates
                        // remain: double the guess and re-run the round on
                        // this half. The other core endpoint does the same.
                        let new_guess = self.guess.saturating_mul(2);
                        let (level, name) = (self.level, self.fragment);
                        self.begin_round(level, name, true, new_guess, self.in_branch, ctx);
                    } else {
                        self.halted = true;
                    }
                    true
                } else if best > self.best_key {
                    self.change_root(ctx);
                    true
                } else {
                    true
                }
            }
            FastMsg::ChangeRoot => {
                self.change_root(ctx);
                true
            }
        }
    }

    /// Starts a find round (or joins one): adopt identity + guess,
    /// rebroadcast over branch edges away from `via`, then test locally.
    fn begin_round(
        &mut self,
        level: u32,
        name: EdgeKey,
        find: bool,
        guess: u64,
        via: Option<usize>,
        ctx: &mut Context<'_, FastMsg>,
    ) {
        self.level = level;
        self.fragment = name;
        self.guess = guess;
        self.state = if find {
            NodeState::Find
        } else {
            NodeState::Found
        };
        self.in_branch = via;
        self.best_edge = None;
        self.best_key = INF;
        self.heavier = false;
        self.pending_tests.clear();
        for i in 0..self.neighbors.len() {
            if Some(i) != via && self.edge_state[i] == EdgeState::Branch {
                let (u, _) = self.neighbors[i];
                ctx.send(
                    u,
                    FastMsg::Initiate {
                        level,
                        name,
                        find,
                        guess,
                    },
                );
                if find {
                    self.find_count += 1;
                }
            }
        }
        if find {
            self.test_parallel(ctx);
        }
    }

    /// Tests every untested edge of weight ≤ guess, all at once.
    fn test_parallel(&mut self, ctx: &mut Context<'_, FastMsg>) {
        for i in 0..self.neighbors.len() {
            let (u, key) = self.neighbors[i];
            if self.edge_state[i] != EdgeState::Basic {
                continue;
            }
            if key.0 <= self.guess {
                self.pending_tests.push(i);
                ctx.send(
                    u,
                    FastMsg::Test {
                        level: self.level,
                        name: self.fragment,
                    },
                );
            } else {
                self.heavier = true;
            }
        }
        self.maybe_report(ctx);
    }

    fn maybe_report(&mut self, ctx: &mut Context<'_, FastMsg>) {
        if self.find_count == 0 && self.pending_tests.is_empty() && self.state == NodeState::Find {
            self.state = NodeState::Found;
            match self.in_branch {
                Some(j) => {
                    let (u, _) = self.neighbors[j];
                    ctx.send(
                        u,
                        FastMsg::Report {
                            best: self.best_key,
                            heavier: self.heavier,
                        },
                    );
                }
                None => unreachable!("find always has a core direction"),
            }
        }
    }

    fn change_root(&mut self, ctx: &mut Context<'_, FastMsg>) {
        let b = self
            .best_edge
            .expect("change-root implies a best outgoing edge");
        let (u, _) = self.neighbors[b];
        if self.edge_state[b] == EdgeState::Branch {
            ctx.send(u, FastMsg::ChangeRoot);
        } else {
            self.edge_state[b] = EdgeState::Branch;
            ctx.send(u, FastMsg::Connect { level: self.level });
        }
    }

    fn drain_deferred(&mut self, ctx: &mut Context<'_, FastMsg>) {
        loop {
            let mut progressed = false;
            for _ in 0..self.deferred.len() {
                let (from, msg) = self.deferred.pop_front().expect("length checked");
                if self.handle(from, msg, ctx) {
                    progressed = true;
                } else {
                    self.deferred.push_back((from, msg));
                }
            }
            if !progressed || self.deferred.is_empty() {
                return;
            }
        }
    }
}

impl Process for MstFast {
    type Msg = FastMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, FastMsg>) {
        if ctx.degree() > 0 {
            self.wakeup(ctx);
        }
    }

    fn on_message(&mut self, from: NodeId, msg: FastMsg, ctx: &mut Context<'_, FastMsg>) {
        if self.handle(from, msg, ctx) {
            self.drain_deferred(ctx);
        } else {
            self.deferred.push_back((from, msg));
        }
    }
}

/// Outcome of an `MST_fast` run.
#[derive(Debug)]
pub struct MstFastOutcome {
    /// The minimum spanning tree (rooted at `root` for reporting).
    pub tree: RootedTree,
    /// Metered costs.
    pub cost: CostReport,
}

/// Runs `MST_fast` to completion and extracts the MST.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
///
/// # Panics
///
/// Panics if `g` is disconnected or `root` is out of range.
pub fn run_mst_fast(
    g: &WeightedGraph,
    root: NodeId,
    delay: DelayModel,
    seed: u64,
) -> Result<MstFastOutcome, SimError> {
    g.check_node(root);
    if g.node_count() == 1 {
        return Ok(MstFastOutcome {
            tree: RootedTree::new(1, root),
            cost: CostReport::new(0),
        });
    }
    let run = Simulator::new(g)
        .delay(delay)
        .seed(seed)
        .run(MstFast::new)?;
    assert!(
        run.states.iter().any(MstFast::halted),
        "MST_fast must detect termination"
    );
    let mut is_branch = vec![false; g.edge_count()];
    for v in g.nodes() {
        for u in run.states[v.index()].branch_neighbors() {
            let eid = g.edge_between(v, u).expect("branch is a graph edge");
            is_branch[eid.index()] = true;
        }
    }
    let mut parents: Vec<Option<NodeId>> = vec![None; g.node_count()];
    let mut seen = vec![false; g.node_count()];
    seen[root.index()] = true;
    let mut queue = VecDeque::from([root]);
    while let Some(v) = queue.pop_front() {
        for (u, eid, _) in g.neighbors(v) {
            if is_branch[eid.index()] && !seen[u.index()] {
                seen[u.index()] = true;
                parents[u.index()] = Some(v);
                queue.push_back(u);
            }
        }
    }
    let tree = tree_from_parents(g, root, &parents);
    assert!(tree.is_spanning(), "MST_fast tree must span");
    Ok(MstFastOutcome {
        tree,
        cost: run.cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_graph::{algo, generators};
    use csp_sim::SimTime;

    #[test]
    fn fast_finds_the_canonical_mst() {
        for seed in 0..6 {
            let g =
                generators::connected_gnp(20, 0.25, generators::WeightDist::Uniform(1, 50), seed);
            let out = run_mst_fast(&g, NodeId::new(0), DelayModel::WorstCase, 0).unwrap();
            let reference = algo::prim_mst(&g, NodeId::new(0));
            assert_eq!(out.tree.weight(), reference.weight(), "seed {seed}");
        }
    }

    #[test]
    fn fast_under_random_delays() {
        let g = generators::grid(4, 4, generators::WeightDist::Uniform(1, 30), 5);
        let reference = algo::prim_mst(&g, NodeId::new(0)).weight();
        for seed in 0..6 {
            let out = run_mst_fast(&g, NodeId::new(0), DelayModel::Uniform, seed).unwrap();
            assert_eq!(out.tree.weight(), reference, "delay seed {seed}");
        }
    }

    #[test]
    fn fast_beats_ghs_in_time_when_heavy_rejections_serialize() {
        // A light star (the MST) inside a heavy complete graph: by the
        // final find every vertex must *reject* ~n heavy internal edges.
        // GHS scans them one round-trip at a time (Θ(n·H) time); MST_fast
        // tests everything under the guess in parallel (Θ(H) plus
        // doubling sweeps) — the scenario Section 8.3 is about.
        let g = generators::complete(16, |i, _| if i == 0 { 1 } else { 64 });
        let fast = run_mst_fast(&g, NodeId::new(0), DelayModel::WorstCase, 0).unwrap();
        let ghs =
            super::super::ghs::run_mst_ghs(&g, NodeId::new(0), DelayModel::WorstCase, 0).unwrap();
        assert_eq!(fast.tree.weight(), ghs.tree.weight());
        assert!(
            fast.cost.completion < ghs.cost.completion,
            "fast time {} not below GHS time {}",
            fast.cost.completion,
            ghs.cost.completion
        );
        let _ = SimTime::ZERO;
    }

    #[test]
    fn fast_on_two_nodes() {
        let g = generators::path(2, |_| 9);
        let out = run_mst_fast(&g, NodeId::new(1), DelayModel::WorstCase, 0).unwrap();
        assert_eq!(out.tree.weight().get(), 9);
    }

    #[test]
    fn fast_with_equal_weights() {
        let g = generators::complete(7, |_, _| 4);
        let out = run_mst_fast(&g, NodeId::new(0), DelayModel::WorstCase, 0).unwrap();
        let reference = algo::prim_mst(&g, NodeId::new(0));
        assert_eq!(out.tree.weight(), reference.weight());
    }
}
