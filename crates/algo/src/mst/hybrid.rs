//! `MST_hybrid` — minimum spanning tree in
//! `O(min{Ê + V̂·log n, n·V̂})` communication (Section 8.2).
//!
//! The paper's plan: wake GHS via the controlled DFS (so the root knows
//! the communication wasted so far) and dovetail it against `MST_centr`
//! as in `CON_hybrid`. We realize the arbitration the same way as
//! [`run_con_hybrid`](crate::con_hybrid::run_con_hybrid): budget-doubling
//! restarts, where each attempt is *suspended* at its communication
//! budget — GHS through the simulator's [`comm_limit`]
//! (modelling the root withholding permission; the wasted work of a
//! suspended attempt is bounded by the budget), `MST_centr` through its
//! root-side budget. The first component to finish within budget wins;
//! geometric budgets keep the total within a constant factor of the
//! cheaper component.
//!
//! [`comm_limit`]: csp_sim::Simulator::comm_limit

use crate::con_hybrid::{accumulate, HybridWinner};
use crate::mst::centr::run_mst_centr_budgeted;
use crate::mst::ghs::Ghs;
use crate::util::tree_from_parents;
use csp_graph::{NodeId, RootedTree, WeightedGraph};
use csp_sim::{CostReport, DelayModel, SimError, Simulator};
use std::collections::VecDeque;

/// Outcome of an `MST_hybrid` run.
#[derive(Debug)]
pub struct MstHybridOutcome {
    /// The minimum spanning tree.
    pub tree: RootedTree,
    /// Which component produced it (`Dfs` stands for the GHS side, which
    /// the paper wakes through the DFS).
    pub winner: HybridWinner,
    /// Total metered cost across all rounds, including suspended
    /// attempts.
    pub cost: CostReport,
    /// Number of budget-doubling rounds used.
    pub rounds: u32,
}

/// Tries GHS under a communication budget; returns the MST if it
/// completed.
fn try_ghs_budgeted(
    g: &WeightedGraph,
    root: NodeId,
    budget: u128,
    delay: DelayModel,
    seed: u64,
) -> Result<(Option<RootedTree>, CostReport), SimError> {
    let run = Simulator::new(g)
        .delay(delay)
        .seed(seed)
        .comm_limit(budget)
        .run(Ghs::new)?;
    if run.truncated || !run.states.iter().any(Ghs::halted) {
        return Ok((None, run.cost));
    }
    let mut is_branch = vec![false; g.edge_count()];
    for v in g.nodes() {
        for u in run.states[v.index()].branch_neighbors() {
            let eid = g.edge_between(v, u).expect("branch is a graph edge");
            is_branch[eid.index()] = true;
        }
    }
    let mut parents: Vec<Option<NodeId>> = vec![None; g.node_count()];
    let mut seen = vec![false; g.node_count()];
    seen[root.index()] = true;
    let mut queue = VecDeque::from([root]);
    while let Some(v) = queue.pop_front() {
        for (u, eid, _) in g.neighbors(v) {
            if is_branch[eid.index()] && !seen[u.index()] {
                seen[u.index()] = true;
                parents[u.index()] = Some(v);
                queue.push_back(u);
            }
        }
    }
    let tree = tree_from_parents(g, root, &parents);
    if tree.is_spanning() {
        Ok((Some(tree), run.cost))
    } else {
        Ok((None, run.cost))
    }
}

/// Runs `MST_hybrid` from `root`.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
///
/// # Panics
///
/// Panics if `g` is disconnected or `root` is out of range.
pub fn run_mst_hybrid(
    g: &WeightedGraph,
    root: NodeId,
    delay: DelayModel,
    seed: u64,
) -> Result<MstHybridOutcome, SimError> {
    g.check_node(root);
    if g.node_count() == 1 {
        return Ok(MstHybridOutcome {
            tree: RootedTree::new(1, root),
            winner: HybridWinner::MstCentr,
            cost: CostReport::new(0),
            rounds: 0,
        });
    }
    let mut total = CostReport::new(g.edge_count());
    let mut budget: u128 = g
        .neighbors(root)
        .map(|(_, _, w)| w.get() as u128)
        .min()
        .unwrap_or(1)
        * 4;
    let mut rounds = 0;
    loop {
        rounds += 1;
        let (ghs_tree, ghs_cost) = try_ghs_budgeted(g, root, budget, delay, seed)?;
        accumulate(&mut total, &ghs_cost);
        if let Some(tree) = ghs_tree {
            return Ok(MstHybridOutcome {
                tree,
                winner: HybridWinner::Dfs,
                cost: total,
                rounds,
            });
        }
        let centr = run_mst_centr_budgeted(g, root, budget, delay, seed)?;
        accumulate(&mut total, &centr.cost);
        if let Some(tree) = centr.tree {
            if tree.is_spanning() {
                return Ok(MstHybridOutcome {
                    tree,
                    winner: HybridWinner::MstCentr,
                    cost: total,
                    rounds,
                });
            }
        }
        budget = budget.saturating_mul(2);
        assert!(rounds < 200, "budget doubling failed to converge");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_graph::params::CostParams;
    use csp_graph::{algo, generators};

    #[test]
    fn hybrid_finds_the_mst_in_both_regimes() {
        // Regime A: Ê + V̂ log n ≪ n·V̂ — GHS should win.
        let a = generators::sparse_heavy_path(24, 50, 2);
        let out_a = run_mst_hybrid(&a, NodeId::new(0), DelayModel::WorstCase, 0).unwrap();
        assert_eq!(
            out_a.tree.weight(),
            algo::prim_mst(&a, NodeId::new(0)).weight()
        );

        // Regime B: n·V̂ ≪ Ê — MST_centr should win.
        let b = generators::lower_bound_family(20, 16);
        let pb = CostParams::of(&b);
        let out_b = run_mst_hybrid(&b, NodeId::new(0), DelayModel::WorstCase, 0).unwrap();
        assert_eq!(
            out_b.tree.weight(),
            algo::prim_mst(&b, NodeId::new(0)).weight()
        );
        assert!(
            out_b.cost.weighted_comm < pb.total_weight,
            "hybrid cost {} should beat Ê = {} on the bypass family",
            out_b.cost.weighted_comm,
            pb.total_weight
        );
    }

    #[test]
    fn hybrid_cost_within_constant_of_best_component() {
        let g = generators::connected_gnp(18, 0.25, generators::WeightDist::Uniform(1, 24), 4);
        let ghs = crate::mst::ghs::run_mst_ghs(&g, NodeId::new(0), DelayModel::WorstCase, 0)
            .unwrap()
            .cost
            .weighted_comm;
        let centr = crate::mst::centr::run_mst_centr(&g, NodeId::new(0), DelayModel::WorstCase, 0)
            .unwrap()
            .cost
            .weighted_comm;
        let best = ghs.min(centr);
        let hybrid = run_mst_hybrid(&g, NodeId::new(0), DelayModel::WorstCase, 0)
            .unwrap()
            .cost
            .weighted_comm;
        assert!(
            hybrid <= best * 16,
            "hybrid {hybrid} ≫ 16×best component {best}"
        );
    }
}
