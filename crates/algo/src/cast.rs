//! Reusable broadcast / convergecast primitives over a shared tree.
//!
//! Half the protocols in the paper are built from two communication
//! patterns on a rooted tree (Section 3.2 calls them *broadcast* and
//! *convergecast*): pushing a value from the root to all members, and
//! folding values from the leaves to the root. This module packages them
//! as standalone protocols with cost accounting, so applications (and
//! tests) don't have to re-derive the state machines:
//!
//! * one broadcast costs exactly `w(T)` and takes `height(T)` time;
//! * one convergecast costs exactly `w(T)` and takes `height(T)` time;
//! * [`run_echo`] composes them — a broadcast whose completion is
//!   *detected* at the root (the PIF / echo pattern), the building block
//!   of synchronizer β.

use crate::util::tree_from_parents;
use csp_graph::{NodeId, RootedTree, WeightedGraph};
use csp_sim::{Context, CostReport, DelayModel, Process, SimError, Simulator};

/// Messages of the echo protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EchoMsg {
    /// The payload moving down the tree.
    Down(u64),
    /// Completion report moving up.
    UpDone,
}

/// Per-vertex state of broadcast-with-feedback (PIF / echo) over a
/// shared tree.
#[derive(Clone, Debug)]
pub struct Echo {
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    payload: Option<u64>,
    pending: usize,
    /// Root only: every vertex has received and confirmed the payload.
    complete: bool,
}

impl Echo {
    /// Creates the per-vertex state over `tree`; the root supplies the
    /// payload.
    pub fn new(v: NodeId, tree: &RootedTree, payload: Option<u64>) -> Self {
        let children: Vec<NodeId> = tree.children_lists()[v.index()]
            .iter()
            .map(|&(c, _)| c)
            .collect();
        Echo {
            parent: tree.parent(v).map(|(p, _, _)| p),
            pending: children.len(),
            children,
            payload,
            complete: false,
        }
    }

    /// The received payload.
    pub fn payload(&self) -> Option<u64> {
        self.payload
    }

    /// Root only: completion was detected.
    pub fn complete(&self) -> bool {
        self.complete
    }

    fn maybe_done(&mut self, ctx: &mut Context<'_, EchoMsg>) {
        if self.pending > 0 || self.payload.is_none() {
            return;
        }
        match self.parent {
            Some(p) => {
                ctx.send(p, EchoMsg::UpDone);
            }
            None => self.complete = true,
        }
    }
}

impl Process for Echo {
    type Msg = EchoMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, EchoMsg>) {
        if self.parent.is_none() {
            let payload = self.payload.expect("the root supplies the payload");
            for c in self.children.clone() {
                ctx.send(c, EchoMsg::Down(payload));
            }
            self.maybe_done(ctx);
        }
    }

    fn on_message(&mut self, _from: NodeId, msg: EchoMsg, ctx: &mut Context<'_, EchoMsg>) {
        match msg {
            EchoMsg::Down(payload) => {
                self.payload = Some(payload);
                for c in self.children.clone() {
                    ctx.send(c, EchoMsg::Down(payload));
                }
                self.maybe_done(ctx);
            }
            EchoMsg::UpDone => {
                self.pending -= 1;
                self.maybe_done(ctx);
            }
        }
    }
}

/// Outcome of an echo run.
#[derive(Debug)]
pub struct EchoOutcome {
    /// Payload as received at every vertex.
    pub payloads: Vec<u64>,
    /// Metered costs: exactly `2·w(T)` communication, one round trip of
    /// the tree in time.
    pub cost: CostReport,
}

/// Broadcasts `payload` from `tree.root()` over `tree` with completion
/// feedback (PIF): the returned run ends the moment the root *knows*
/// everyone has the payload.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
///
/// # Panics
///
/// Panics if `tree` does not span `g`'s vertices.
pub fn run_echo(
    g: &WeightedGraph,
    tree: &RootedTree,
    payload: u64,
    delay: DelayModel,
    seed: u64,
) -> Result<EchoOutcome, SimError> {
    assert!(tree.is_spanning(), "echo needs a spanning tree");
    let root = tree.root();
    let run = Simulator::new(g)
        .delay(delay)
        .seed(seed)
        .run(|v, _| Echo::new(v, tree, (v == root).then_some(payload)))?;
    assert!(run.states[root.index()].complete(), "echo must complete");
    let payloads = run
        .states
        .iter()
        .map(|s| s.payload().expect("everyone receives the payload"))
        .collect();
    Ok(EchoOutcome {
        payloads,
        cost: run.cost,
    })
}

/// Builds a spanning tree by flooding (the cheapest preprocessing step,
/// Fact 6.1) and returns it for reuse by the cast primitives.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
pub fn flood_tree(
    g: &WeightedGraph,
    root: NodeId,
    delay: DelayModel,
    seed: u64,
) -> Result<RootedTree, SimError> {
    let run = Simulator::new(g)
        .delay(delay)
        .seed(seed)
        .run(|v, _| crate::flood::Flood::new(v == root))?;
    let parents: Vec<Option<NodeId>> = run.states.iter().map(crate::flood::Flood::parent).collect();
    Ok(tree_from_parents(g, root, &parents))
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_graph::algo::shortest_path_tree;
    use csp_graph::{generators, Cost};

    #[test]
    fn echo_delivers_everywhere_and_costs_two_tree_weights() {
        let g = generators::connected_gnp(20, 0.2, generators::WeightDist::Uniform(1, 10), 8);
        let tree = shortest_path_tree(&g, NodeId::new(0));
        let out = run_echo(&g, &tree, 42, DelayModel::WorstCase, 0).unwrap();
        assert!(out.payloads.iter().all(|&p| p == 42));
        assert_eq!(out.cost.weighted_comm, tree.weight() * 2);
        // Time: down sweep + up sweep ≤ 2·height.
        assert!(
            Cost::new(out.cost.completion.get() as u128) <= tree.height() * 2,
            "echo time {} > 2·height {}",
            out.cost.completion,
            tree.height() * 2
        );
    }

    #[test]
    fn echo_over_flood_tree_composes() {
        let g = generators::torus(3, 4, generators::WeightDist::Uniform(1, 6), 2);
        let tree = flood_tree(&g, NodeId::new(5), DelayModel::Uniform, 1).unwrap();
        assert!(tree.is_spanning());
        let out = run_echo(&g, &tree, 7, DelayModel::Uniform, 2).unwrap();
        assert!(out.payloads.iter().all(|&p| p == 7));
    }

    #[test]
    fn echo_on_singleton_completes_immediately() {
        let g = csp_graph::GraphBuilder::new(1).build().unwrap();
        let tree = RootedTree::new(1, NodeId::new(0));
        let out = run_echo(&g, &tree, 1, DelayModel::WorstCase, 0).unwrap();
        assert_eq!(out.cost.messages, 0);
        assert_eq!(out.payloads, vec![1]);
    }

    #[test]
    #[should_panic(expected = "spanning")]
    fn echo_rejects_partial_trees() {
        let g = generators::path(3, |_| 1);
        let tree = RootedTree::new(3, NodeId::new(0)); // only the root
        let _ = run_echo(&g, &tree, 0, DelayModel::WorstCase, 0);
    }
}
