//! Distributed depth-first search with root estimates (Section 6.2).
//!
//! A token traverses the network in depth-first order; each edge is
//! traversed at most twice in each direction (forward/reject on non-tree
//! edges, forward/return on tree edges), so communication and time are
//! both `O(Ê)` (Fact 6.2).
//!
//! The algorithm additionally maintains two running estimates of the total
//! traversal cost — the *center estimate* `EST_C` carried with the token
//! and the *root estimate* `EST_R` held at the root. Whenever the center
//! is about to traverse an edge that would double `EST_C` relative to
//! `EST_R`, it first sends a report up the DFS tree refreshing `EST_R`.
//! The doubling rule makes the reports' total cost a geometric series
//! bounded by twice the traversal cost, and keeps `EST_R` within a factor
//! of two of the true cost — the hook the hybrid algorithms (Sections 7.2,
//! 8.2) use to arbitrate between sub-protocols at the root.

use crate::util::tree_from_parents;
use csp_graph::{Cost, NodeId, RootedTree, WeightedGraph};
use csp_sim::{Context, CostClass, CostReport, DelayModel, Process, SimError, Simulator};

/// Messages of the DFS protocol. Every variant carries the center
/// estimate (the cumulative weight of all traversals, including itself).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DfsMsg {
    /// The token moving forward to a (hopefully unvisited) vertex.
    Token {
        /// Center estimate after this traversal.
        est: u128,
        /// Root estimate known to the center.
        root_est: u128,
    },
    /// Bounce: the target was already visited.
    Reject {
        /// Center estimate after the bounce traversal.
        est: u128,
        /// Root estimate known to the center.
        root_est: u128,
    },
    /// Backtrack: the child's subtree is fully explored.
    Return {
        /// Center estimate after the backtrack traversal.
        est: u128,
        /// Root estimate known to the center.
        root_est: u128,
    },
    /// Estimate refresh climbing the DFS tree to the root.
    Report {
        /// The new root estimate.
        est: u128,
    },
    /// Budget exceeded: the search is being called off; climbs the DFS
    /// tree to the root (budgeted runs only, see [`run_dfs_budgeted`]).
    Abort {
        /// Center estimate when the budget was hit.
        est: u128,
    },
}

/// Per-vertex state of the DFS protocol.
#[derive(Clone, Debug)]
pub struct Dfs {
    root: NodeId,
    visited: bool,
    parent: Option<NodeId>,
    /// Sorted neighbor list, fixed at construction.
    neighbors: Vec<NodeId>,
    /// Next neighbor index to try.
    cursor: usize,
    /// At the root: the final center estimate when the search completed.
    final_estimate: Option<u128>,
    /// At the root: the current root estimate `EST_R`.
    root_estimate: u128,
    /// Optional traversal-cost budget; exceeding it aborts the search.
    budget: Option<u128>,
    /// At the root: the budget was exceeded.
    exceeded: bool,
}

impl Dfs {
    /// Creates the per-vertex state for a DFS rooted at `root`.
    pub fn new(v: NodeId, g: &WeightedGraph, root: NodeId) -> Self {
        let mut neighbors: Vec<NodeId> = g.neighbors(v).map(|(u, _, _)| u).collect();
        neighbors.sort();
        Dfs {
            root,
            visited: false,
            parent: None,
            neighbors,
            cursor: 0,
            final_estimate: None,
            root_estimate: 0,
            budget: None,
            exceeded: false,
        }
    }

    /// Creates the per-vertex state for a *budgeted* DFS: the search
    /// aborts once the center estimate would exceed `budget`.
    pub fn with_budget(v: NodeId, g: &WeightedGraph, root: NodeId, budget: u128) -> Self {
        let mut state = Dfs::new(v, g, root);
        state.budget = Some(budget);
        state
    }

    /// At the root, whether a budgeted search gave up.
    pub fn exceeded(&self) -> bool {
        self.exceeded
    }

    /// The DFS-tree parent (`None` at the root).
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// At the root, the exact total traversal cost when the search ended.
    pub fn final_estimate(&self) -> Option<Cost> {
        self.final_estimate.map(Cost::new)
    }

    /// At the root, the doubling-maintained estimate `EST_R`.
    pub fn root_estimate(&self) -> Cost {
        Cost::new(self.root_estimate)
    }

    fn edge_weight(&self, ctx: &Context<'_, DfsMsg>, to: NodeId) -> u128 {
        let g = ctx.graph();
        let eid = g
            .edge_between(ctx.self_id(), to)
            .expect("DFS only talks to neighbors");
        g.weight(eid).get() as u128
    }

    /// Advances the token from this vertex: try the next neighbor, or
    /// backtrack.
    fn proceed(&mut self, est: u128, mut root_est: u128, ctx: &mut Context<'_, DfsMsg>) {
        let me_is_root = ctx.self_id() == self.root;
        while self.cursor < self.neighbors.len() {
            let u = self.neighbors[self.cursor];
            if Some(u) == self.parent {
                self.cursor += 1;
                continue;
            }
            self.cursor += 1;
            let w = self.edge_weight(ctx, u);
            let est2 = est + w;
            if self.budget.is_some_and(|b| est2 > b) {
                self.begin_abort(est, ctx);
                return;
            }
            self.maybe_report(est2, &mut root_est, me_is_root, ctx);
            ctx.send(
                u,
                DfsMsg::Token {
                    est: est2,
                    root_est,
                },
            );
            return;
        }
        // Exhausted: backtrack or finish.
        match self.parent {
            Some(p) => {
                let w = self.edge_weight(ctx, p);
                let est2 = est + w;
                self.maybe_report(est2, &mut root_est, me_is_root, ctx);
                ctx.send(
                    p,
                    DfsMsg::Return {
                        est: est2,
                        root_est,
                    },
                );
            }
            None => {
                // The root has explored everything. `EST_R` is left at its
                // last doubling-rule refresh so callers can observe the
                // factor-two invariant.
                self.final_estimate = Some(est);
            }
        }
    }

    /// Starts (or continues) an abort: hand the bad news to the parent,
    /// paying for the climb, without exploring further.
    fn begin_abort(&mut self, est: u128, ctx: &mut Context<'_, DfsMsg>) {
        match self.parent {
            Some(p) => {
                let w = self.edge_weight(ctx, p);
                ctx.send(p, DfsMsg::Abort { est: est + w });
            }
            None => {
                self.exceeded = true;
            }
        }
    }

    /// Implements the doubling rule: refresh `EST_R` before a traversal
    /// that would exceed twice its current value.
    fn maybe_report(
        &mut self,
        est_after: u128,
        root_est: &mut u128,
        me_is_root: bool,
        ctx: &mut Context<'_, DfsMsg>,
    ) {
        if est_after > 2 * (*root_est).max(1) {
            *root_est = est_after;
            if me_is_root {
                self.root_estimate = self.root_estimate.max(est_after);
            } else if let Some(p) = self.parent {
                ctx.send_class(p, DfsMsg::Report { est: est_after }, CostClass::Auxiliary);
            }
        }
    }
}

impl Process for Dfs {
    type Msg = DfsMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, DfsMsg>) {
        if ctx.self_id() == self.root {
            self.visited = true;
            self.proceed(0, 0, ctx);
        }
    }

    fn on_message(&mut self, from: NodeId, msg: DfsMsg, ctx: &mut Context<'_, DfsMsg>) {
        match msg {
            DfsMsg::Token { est, root_est } => {
                if self.visited {
                    let w = self.edge_weight(ctx, from);
                    ctx.send(
                        from,
                        DfsMsg::Reject {
                            est: est + w,
                            root_est,
                        },
                    );
                } else {
                    self.visited = true;
                    self.parent = Some(from);
                    self.proceed(est, root_est, ctx);
                }
            }
            DfsMsg::Reject { est, root_est } | DfsMsg::Return { est, root_est } => {
                self.proceed(est, root_est, ctx);
            }
            DfsMsg::Abort { est } => self.begin_abort(est, ctx),
            DfsMsg::Report { est } => {
                if ctx.self_id() == self.root {
                    self.root_estimate = self.root_estimate.max(est);
                } else if let Some(p) = self.parent {
                    ctx.send_class(p, DfsMsg::Report { est }, CostClass::Auxiliary);
                } else {
                    // A report raced ahead of the token to an unvisited
                    // vertex — impossible: reports climb the tree, and
                    // tree edges are only created by the token.
                    unreachable!("report climbed past an unvisited vertex");
                }
            }
        }
    }
}

/// Outcome of a DFS run.
#[derive(Debug)]
pub struct DfsOutcome {
    /// The DFS spanning tree.
    pub tree: RootedTree,
    /// Exact total traversal cost (the final center estimate).
    pub traversal_cost: Cost,
    /// The root's doubling-maintained estimate at completion.
    pub root_estimate: Cost,
    /// Metered costs.
    pub cost: CostReport,
}

/// Runs the DFS protocol from `root` and extracts the DFS tree and
/// estimates.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
///
/// # Panics
///
/// Panics if `g` is disconnected or `root` is out of range.
pub fn run_dfs(
    g: &WeightedGraph,
    root: NodeId,
    delay: DelayModel,
    seed: u64,
) -> Result<DfsOutcome, SimError> {
    g.check_node(root);
    let run = Simulator::new(g)
        .delay(delay)
        .seed(seed)
        .run(|v, g| Dfs::new(v, g, root))?;
    let parents: Vec<Option<NodeId>> = run.states.iter().map(Dfs::parent).collect();
    let tree = tree_from_parents(g, root, &parents);
    assert!(tree.is_spanning(), "DFS tree must span a connected graph");
    let root_state = &run.states[root.index()];
    Ok(DfsOutcome {
        tree,
        traversal_cost: root_state
            .final_estimate()
            .expect("root finished the search"),
        root_estimate: root_state.root_estimate(),
        cost: run.cost,
    })
}

/// Outcome of a budgeted DFS run.
#[derive(Debug)]
pub struct DfsBudgetedOutcome {
    /// The DFS tree if the search completed within budget.
    pub tree: Option<RootedTree>,
    /// Exact traversal cost if completed.
    pub traversal_cost: Option<Cost>,
    /// Metered costs (also of aborted runs — the wasted work the hybrid
    /// algorithms must account for).
    pub cost: CostReport,
}

/// Runs the DFS protocol with a traversal-cost budget: if a *forward*
/// traversal would push the center estimate past `budget`, the token
/// climbs home and the search reports failure. (Backtracks are exempt:
/// a `Return` move costs exactly what the abort climb would, so the
/// completed-run overshoot is bounded by one climb, same as an abort.) The wasted work of an aborted run is at most the
/// budget plus one climb (`≤ 2·budget`), which is what makes
/// budget-doubling hybrids (Sections 7.2, 8.2) cost only a constant
/// factor above the cheaper component.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
///
/// # Panics
///
/// Panics if `root` is out of range.
pub fn run_dfs_budgeted(
    g: &WeightedGraph,
    root: NodeId,
    budget: u128,
    delay: DelayModel,
    seed: u64,
) -> Result<DfsBudgetedOutcome, SimError> {
    g.check_node(root);
    let run = Simulator::new(g)
        .delay(delay)
        .seed(seed)
        .run(|v, g| Dfs::with_budget(v, g, root, budget))?;
    let root_state = &run.states[root.index()];
    if root_state.exceeded() || root_state.final_estimate().is_none() {
        return Ok(DfsBudgetedOutcome {
            tree: None,
            traversal_cost: None,
            cost: run.cost,
        });
    }
    let parents: Vec<Option<NodeId>> = run.states.iter().map(Dfs::parent).collect();
    let tree = tree_from_parents(g, root, &parents);
    Ok(DfsBudgetedOutcome {
        tree: Some(tree),
        traversal_cost: root_state.final_estimate(),
        cost: run.cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_graph::generators;
    use csp_graph::params::CostParams;

    #[test]
    fn dfs_spans_and_stays_within_fact_6_2() {
        for seed in 0..4 {
            let g =
                generators::connected_gnp(25, 0.2, generators::WeightDist::Uniform(1, 16), seed);
            let p = CostParams::of(&g);
            let out = run_dfs(&g, NodeId::new(0), DelayModel::WorstCase, 0).unwrap();
            assert!(out.tree.is_spanning());
            // Token/reject/return: ≤ 4 traversals per edge; reports add at
            // most 2× more (geometric series). Total ≤ 12·Ê is a very
            // safe envelope; typical runs are ≈ 2–4·Ê.
            assert!(
                out.cost.weighted_comm <= p.total_weight * 12,
                "comm {} > 12·Ê = {}",
                out.cost.weighted_comm,
                p.total_weight * 12
            );
        }
    }

    #[test]
    fn dfs_tree_on_a_path_is_the_path() {
        let g = generators::path(6, |i| i as u64 + 1);
        let out = run_dfs(&g, NodeId::new(0), DelayModel::WorstCase, 0).unwrap();
        assert_eq!(out.tree.weight(), g.total_weight());
        // On a tree-shaped graph every edge is traversed exactly twice.
        assert_eq!(out.traversal_cost, g.total_weight() * 2);
    }

    #[test]
    fn root_estimate_within_factor_two() {
        for seed in 0..6 {
            let g =
                generators::connected_gnp(20, 0.25, generators::WeightDist::Uniform(1, 50), seed);
            let out = run_dfs(&g, NodeId::new(0), DelayModel::Uniform, seed).unwrap();
            let exact = out.traversal_cost;
            let est = out.root_estimate;
            assert!(
                est <= exact,
                "EST_R {est} must never exceed the true cost {exact}"
            );
            assert!(
                est.get() * 2 >= exact.get(),
                "EST_R {est} below half the true cost {exact}"
            );
        }
    }

    #[test]
    fn visits_every_vertex_exactly_once() {
        let g = generators::grid(4, 5, generators::WeightDist::Uniform(1, 9), 1);
        let out = run_dfs(&g, NodeId::new(10), DelayModel::WorstCase, 0).unwrap();
        assert_eq!(out.tree.len(), 20);
        assert_eq!(out.tree.root(), NodeId::new(10));
    }

    #[test]
    fn dfs_is_deterministic_under_worst_case_delays() {
        let g = generators::heavy_chord_cycle(12, 30);
        let a = run_dfs(&g, NodeId::new(0), DelayModel::WorstCase, 0).unwrap();
        let b = run_dfs(&g, NodeId::new(0), DelayModel::WorstCase, 0).unwrap();
        assert_eq!(a.cost.messages, b.cost.messages);
        assert_eq!(a.traversal_cost, b.traversal_cost);
    }

    #[test]
    fn reports_are_tagged_auxiliary() {
        let g = generators::lower_bound_family(10, 3);
        let out = run_dfs(&g, NodeId::new(0), DelayModel::WorstCase, 0).unwrap();
        use csp_sim::CostClass;
        // The DFS itself uses Protocol class; reports use Auxiliary.
        assert!(out.cost.messages_of(CostClass::Protocol) > 0);
        // Reports exist on graphs with non-trivial weight growth.
        assert!(
            out.cost.comm_of(CostClass::Auxiliary) <= out.cost.comm_of(CostClass::Protocol) * 2
        );
    }
}

#[cfg(test)]
mod budget_tests {
    use super::*;
    use csp_graph::generators;

    #[test]
    fn tiny_budget_aborts_cheaply() {
        let g = generators::connected_gnp(20, 0.2, generators::WeightDist::Uniform(1, 20), 1);
        let out = run_dfs_budgeted(&g, NodeId::new(0), 10, DelayModel::WorstCase, 0).unwrap();
        assert!(out.tree.is_none());
        // Wasted work bounded: budget + climb home + reports.
        assert!(
            out.cost.weighted_comm.get() <= 3 * 10 + 40,
            "aborted run cost {} too high",
            out.cost.weighted_comm
        );
    }

    #[test]
    fn huge_budget_behaves_like_unbudgeted() {
        let g = generators::grid(4, 4, generators::WeightDist::Uniform(1, 5), 3);
        let plain = run_dfs(&g, NodeId::new(0), DelayModel::WorstCase, 0).unwrap();
        let budgeted =
            run_dfs_budgeted(&g, NodeId::new(0), u128::MAX / 4, DelayModel::WorstCase, 0).unwrap();
        assert_eq!(budgeted.traversal_cost, Some(plain.traversal_cost));
        assert_eq!(budgeted.cost.messages, plain.cost.messages);
    }

    #[test]
    fn budget_exactly_at_cost_completes() {
        let g = generators::path(5, |_| 2);
        // full traversal cost = 2 * 8 = 16
        let out = run_dfs_budgeted(&g, NodeId::new(0), 16, DelayModel::WorstCase, 0).unwrap();
        assert!(out.tree.is_some());
        assert_eq!(out.traversal_cost, Some(Cost::new(16)));
    }

    #[test]
    fn budget_below_forward_cost_aborts() {
        // Forward traversals happen at cost 2, 4, 6, 8; a budget of 7
        // blocks the fourth one. (Backtracks are exempt from the check —
        // a Return move costs exactly what the Abort climb would, so
        // cutting them saves nothing.)
        let g = generators::path(5, |_| 2);
        let out = run_dfs_budgeted(&g, NodeId::new(0), 7, DelayModel::WorstCase, 0).unwrap();
        assert!(out.tree.is_none());
        assert!(out.cost.weighted_comm.get() <= 3 * 7 + 8);
    }
}
