//! Leader election through MST construction (\[Awe87], cited in
//! Section 8 as the companion of the MST results).
//!
//! Once GHS terminates, exactly two adjacent vertices — the final core
//! edge's endpoints — detect it. Each locally computes the same
//! candidate (the smaller of the two endpoint identifiers) and
//! broadcasts it over the MST's branch edges; every vertex learns the
//! leader with `n − 1` additional messages, i.e. `O(V̂)` extra weighted
//! communication on top of GHS's `O(Ê + V̂·log n)`.

use crate::mst::ghs::{Ghs, GhsMsg};
use csp_graph::{NodeId, WeightedGraph};
use csp_sim::{Context, CostClass, CostReport, DelayModel, Process, SimError, Simulator};

/// Messages of the leader election: GHS traffic plus the announcement.
#[derive(Clone, Debug)]
pub enum LeaderMsg {
    /// Embedded GHS message.
    Ghs(GhsMsg),
    /// The elected leader, broadcast over branch edges.
    Announce(NodeId),
}

/// Per-vertex state: GHS plus the announcement phase.
#[derive(Debug)]
pub struct LeaderElect {
    ghs: Ghs,
    leader: Option<NodeId>,
}

impl LeaderElect {
    /// Creates the per-vertex state.
    pub fn new(v: NodeId, g: &WeightedGraph) -> Self {
        LeaderElect {
            ghs: Ghs::new(v, g),
            leader: None,
        }
    }

    /// The elected leader (after the run).
    pub fn leader(&self) -> Option<NodeId> {
        self.leader
    }

    /// Runs an embedded GHS handler and relays its sends, then checks
    /// for the halt transition.
    fn drive_ghs<F>(&mut self, ctx: &mut Context<'_, LeaderMsg>, f: F)
    where
        F: FnOnce(&mut Ghs, &mut Context<'_, GhsMsg>),
    {
        let mut inner = ctx.derive::<GhsMsg>();
        f(&mut self.ghs, &mut inner);
        for (to, msg, class) in inner.take_outbox() {
            ctx.send_class(to, LeaderMsg::Ghs(msg), class);
        }
        if self.ghs.halted() && self.leader.is_none() {
            let me = ctx.self_id();
            let other = self
                .ghs
                .core_neighbor()
                .expect("a halted vertex sits on the core edge");
            let leader = me.min(other);
            self.announce(leader, None, ctx);
        }
    }

    /// Adopts and forwards the announcement over branch edges.
    fn announce(&mut self, leader: NodeId, from: Option<NodeId>, ctx: &mut Context<'_, LeaderMsg>) {
        if self.leader.is_some() {
            return;
        }
        self.leader = Some(leader);
        for u in self.ghs.branch_neighbors() {
            if Some(u) != from {
                ctx.send_class(u, LeaderMsg::Announce(leader), CostClass::Auxiliary);
            }
        }
    }
}

impl Process for LeaderElect {
    type Msg = LeaderMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, LeaderMsg>) {
        if ctx.node_count() == 1 {
            self.leader = Some(ctx.self_id());
            return;
        }
        self.drive_ghs(ctx, |ghs, inner| ghs.on_start(inner));
    }

    fn on_message(&mut self, from: NodeId, msg: LeaderMsg, ctx: &mut Context<'_, LeaderMsg>) {
        match msg {
            LeaderMsg::Ghs(m) => self.drive_ghs(ctx, |ghs, inner| ghs.on_message(from, m, inner)),
            LeaderMsg::Announce(leader) => self.announce(leader, Some(from), ctx),
        }
    }
}

/// Outcome of a leader election.
#[derive(Debug)]
pub struct LeaderOutcome {
    /// The elected vertex (agreed by everyone).
    pub leader: NodeId,
    /// Metered costs; announcements are [`CostClass::Auxiliary`].
    pub cost: CostReport,
}

/// Elects a leader by GHS + core announcement.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
///
/// # Panics
///
/// Panics if `g` is disconnected or empty.
pub fn run_leader_election(
    g: &WeightedGraph,
    delay: DelayModel,
    seed: u64,
) -> Result<LeaderOutcome, SimError> {
    assert!(g.node_count() > 0, "cannot elect a leader of nothing");
    let run = Simulator::new(g)
        .delay(delay)
        .seed(seed)
        .run(LeaderElect::new)?;
    let leader = run.states[0]
        .leader()
        .expect("every vertex learns the leader");
    for (i, s) in run.states.iter().enumerate() {
        assert_eq!(
            s.leader(),
            Some(leader),
            "vertex {i} disagrees on the leader"
        );
    }
    Ok(LeaderOutcome {
        leader,
        cost: run.cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_graph::generators;
    use csp_graph::params::CostParams;

    #[test]
    fn everyone_agrees_on_one_leader() {
        for seed in 0..4 {
            let g =
                generators::connected_gnp(16, 0.25, generators::WeightDist::Uniform(1, 20), seed);
            let out = run_leader_election(&g, DelayModel::Uniform, seed).unwrap();
            assert!(out.leader.index() < 16);
        }
    }

    #[test]
    fn leader_is_a_core_endpoint_of_the_canonical_mst() {
        // Deterministic under worst-case delays; the core is the last
        // merge edge, so the leader is well-defined but topology-
        // dependent. We only require agreement and stability.
        let g = generators::grid(3, 4, generators::WeightDist::Uniform(1, 9), 6);
        let a = run_leader_election(&g, DelayModel::WorstCase, 0).unwrap();
        let b = run_leader_election(&g, DelayModel::WorstCase, 0).unwrap();
        assert_eq!(a.leader, b.leader);
    }

    #[test]
    fn announcement_overhead_is_small() {
        let g = generators::heavy_chord_cycle(12, 80);
        let p = CostParams::of(&g);
        let out = run_leader_election(&g, DelayModel::WorstCase, 0).unwrap();
        use csp_sim::CostClass;
        // Announcements travel over MST branches only: ≤ 2·V̂.
        assert!(out.cost.comm_of(CostClass::Auxiliary) <= p.mst_weight * 2);
    }

    #[test]
    fn two_vertices_elect_the_smaller() {
        let g = generators::path(2, |_| 5);
        let out = run_leader_election(&g, DelayModel::WorstCase, 0).unwrap();
        assert_eq!(out.leader, NodeId::new(0));
    }

    #[test]
    fn single_vertex_is_its_own_leader() {
        let g = csp_graph::GraphBuilder::new(1).build().unwrap();
        let out = run_leader_election(&g, DelayModel::WorstCase, 0).unwrap();
        assert_eq!(out.leader, NodeId::new(0));
        assert_eq!(out.cost.messages, 0);
    }
}
