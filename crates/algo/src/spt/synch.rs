//! `SPT_synch` — the synchronous shortest-path tree algorithm
//! (Section 9.1).
//!
//! On a *synchronous* weighted network, where a message sent at pulse `p`
//! over edge `e` arrives exactly at pulse `p + w(e)`, shortest paths
//! compute themselves: the source floods at pulse 0, and the first token
//! to reach a vertex arrives exactly at its weighted distance, from an
//! SPT parent. One message crosses each edge direction at most once, so
//! the synchronous protocol costs `O(Ê)` communication and `D̂` time.
//!
//! [`run_spt_synch_ideal`] executes this directly on the lock-step
//! [`SyncRunner`]. The full `SPT_synch` of the paper —
//! [`run_spt_synch`] — runs the same
//! protocol on an *asynchronous* network through the network synchronizer
//! γ_w of `csp-sync`, paying the synchronizer's `O(k·n·log n)` per-pulse
//! communication overhead (Corollary 9.1: `O(Ê + D̂·k·n·log n)` total).

use crate::util::tree_from_parents;
use csp_graph::{Cost, NodeId, RootedTree, WeightedGraph};
use csp_sim::sync::{SyncContext, SyncProcess, SyncRunner};
use csp_sim::CostReport;
use csp_sim::{DelayModel, SimError};
use csp_sync::net::{run_synchronized, GammaWConfig};

/// Per-vertex state of the synchronous SPT flood.
#[derive(Clone, Debug)]
pub struct SptSynch {
    source: NodeId,
    /// Pulse of first arrival — exactly the weighted distance.
    dist: Option<u64>,
    parent: Option<NodeId>,
}

impl SptSynch {
    /// Creates the per-vertex state for a run from `source`.
    pub fn new(v: NodeId, source: NodeId) -> Self {
        SptSynch {
            source,
            dist: if v == source { Some(0) } else { None },
            parent: None,
        }
    }

    /// Weighted distance from the source (after the run).
    pub fn dist(&self) -> Option<Cost> {
        self.dist.map(|d| Cost::new(d as u128))
    }

    /// SPT parent pointer.
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    fn flood(&self, ctx: &mut SyncContext<'_, ()>) {
        let targets: Vec<NodeId> = ctx.neighbors().map(|(u, _, _)| u).collect();
        for u in targets {
            ctx.send(u, ());
        }
    }
}

impl SyncProcess for SptSynch {
    type Msg = ();

    fn on_pulse(&mut self, pulse: u64, inbox: &[(NodeId, ())], ctx: &mut SyncContext<'_, ()>) {
        if pulse == 0 {
            if ctx.self_id() == self.source {
                self.flood(ctx);
            }
            ctx.finish();
            return;
        }
        if self.dist.is_none() {
            if let Some(&(from, ())) = inbox.first() {
                self.dist = Some(pulse);
                self.parent = Some(from);
                self.flood(ctx);
            }
        }
        // Late duplicate arrivals are ignored; `finish` was already
        // declared at pulse 0, so the runner stops at quiescence.
    }
}

/// Outcome of a synchronous SPT run.
#[derive(Debug)]
pub struct SptSynchOutcome {
    /// The shortest-path tree.
    pub tree: RootedTree,
    /// Exact weighted distances.
    pub dists: Vec<Cost>,
    /// Metered costs. For the ideal runner, `completion` equals `D̂`; for
    /// the synchronizer-hosted run it is the asynchronous wall-clock, and
    /// the synchronizer's overhead is metered under
    /// [`CostClass::Synchronizer`](csp_sim::CostClass::Synchronizer).
    pub cost: CostReport,
}

/// Runs the synchronous SPT on the lock-step weighted synchronous
/// executor (the idealized network the synchronizer simulates).
///
/// # Panics
///
/// Panics if `g` is disconnected, `s` is out of range, or the run
/// exceeds the pulse budget (`D̂` pulses are needed).
pub fn run_spt_synch_ideal(g: &WeightedGraph, s: NodeId) -> SptSynchOutcome {
    g.check_node(s);
    let run = SyncRunner::new(&g.clone())
        .pulse_limit(u64::MAX / 4)
        .run(|v, _| SptSynch::new(v, s))
        .expect("synchronous SPT cannot exceed the pulse budget");
    extract(g, s, run.states, run.cost)
}

/// Runs `SPT_synch` proper: the synchronous SPT protocol hosted on an
/// asynchronous network by the network synchronizer γ_w with cluster
/// parameter `k` (Corollary 9.1).
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
///
/// # Panics
///
/// Panics if `g` is disconnected or `s` is out of range.
pub fn run_spt_synch(
    g: &WeightedGraph,
    s: NodeId,
    k: usize,
    delay: DelayModel,
    seed: u64,
) -> Result<SptSynchOutcome, SimError> {
    g.check_node(s);
    let config = GammaWConfig::new(k);
    // The synchronous SPT finishes at pulse D̂ (the eccentricity of `s`);
    // the synchronizer needs the horizon up front (Section 4 provides
    // pulses, not termination detection — see the γ_w docs).
    let ecc = csp_graph::algo::distances(g, s)
        .into_iter()
        .map(|d| d.get() as u64)
        .max()
        .unwrap_or(0);
    // Horizon: the last vertex fires at pulse D̂ and its (ignored) echo
    // messages land at most W pulses later.
    let horizon = ecc + g.max_weight().get() + 1;
    let hosted = run_synchronized(g, &config, horizon, delay, seed, |v, _| SptSynch::new(v, s))?;
    Ok(extract(g, s, hosted.states, hosted.cost))
}

fn extract(
    g: &WeightedGraph,
    s: NodeId,
    states: Vec<SptSynch>,
    cost: CostReport,
) -> SptSynchOutcome {
    let parents: Vec<Option<NodeId>> = states.iter().map(SptSynch::parent).collect();
    let tree = tree_from_parents(g, s, &parents);
    assert!(tree.is_spanning(), "SPT_synch tree must span");
    let dists = states
        .iter()
        .map(|st| st.dist().expect("all vertices reached"))
        .collect();
    SptSynchOutcome { tree, dists, cost }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_graph::params::CostParams;
    use csp_graph::{algo, generators};

    #[test]
    fn ideal_run_matches_dijkstra_exactly() {
        for seed in 0..4 {
            let g =
                generators::connected_gnp(20, 0.25, generators::WeightDist::Uniform(1, 20), seed);
            let out = run_spt_synch_ideal(&g, NodeId::new(0));
            let reference = algo::distances(&g, NodeId::new(0));
            for v in g.nodes() {
                assert_eq!(out.dists[v.index()], reference[v.index()]);
                assert_eq!(out.tree.depth(v), reference[v.index()]);
            }
        }
    }

    #[test]
    fn ideal_run_costs_at_most_two_messages_per_edge_and_time_d() {
        let g = generators::heavy_chord_cycle(16, 40);
        let p = CostParams::of(&g);
        let out = run_spt_synch_ideal(&g, NodeId::new(0));
        assert!(out.cost.weighted_comm <= p.total_weight * 2);
        assert!(
            Cost::new(out.cost.completion.get() as u128)
                <= p.weighted_diameter + p.max_weight.to_cost(),
            "time {} > D̂ + W",
            out.cost.completion
        );
    }

    #[test]
    fn synchronized_run_matches_dijkstra() {
        let g = generators::connected_gnp(12, 0.25, generators::WeightDist::Uniform(1, 8), 3);
        let out = run_spt_synch(&g, NodeId::new(0), 2, DelayModel::WorstCase, 0).unwrap();
        let reference = algo::distances(&g, NodeId::new(0));
        for v in g.nodes() {
            assert_eq!(out.dists[v.index()], reference[v.index()]);
        }
    }
}
