//! `SPT_recur` — layered shortest-path tree construction with the strip
//! method (Section 9.2, Figure 9).
//!
//! The weighted network is conceptually reduced to an unweighted one by
//! subdividing each edge of weight `w` into `w` unit edges; a BFS of the
//! subdivided graph is a weighted SPT of the original. Running the simple
//! layered algorithm (the paper's DIJKSTRA algorithm, after
//! Dijkstra–Scholten) one unit layer at a time would take `D̂` global
//! iterations; the *strip method* slices the distance range into strips
//! of depth `Δ` and processes one strip per iteration:
//!
//! * all distances `≤ k·Δ` are final when strip `k` starts;
//! * the source starts strip `k` with a `Start` broadcast over the
//!   *introduction tree* (every reached vertex hangs under the vertex
//!   that first reached it);
//! * each reached vertex relaxes exactly those incident edges whose
//!   relaxed distance lands inside the strip `(k·Δ, (k+1)·Δ]`;
//!   intra-strip improvements propagate Bellman–Ford style but can never
//!   escape the strip;
//! * termination of the strip is detected by Dijkstra–Scholten
//!   acknowledgments: every `Start`/`Relax` is acked, engaging messages
//!   only after the engaged vertex's own activity quiesces; the ack wave
//!   aggregates the number of newly reached vertices, so the source knows
//!   when all `n` vertices are final.
//!
//! Per strip the synchronization overhead is one sweep of the
//! introduction tree; there are `⌈D̂/Δ⌉` strips. Small `Δ` approximates
//! the layer-by-layer DIJKSTRA algorithm (cheap relaxation, heavy
//! synchronization); large `Δ` approaches plain distributed Bellman–Ford.
//! The full recursion of \[Awe89] (slicing recursively with balanced
//! parameters) is approximated by this single-level strip decomposition —
//! see DESIGN.md for the substitution note.
//!
//! `Start`/`Ack` traffic is metered as [`CostClass::Auxiliary`] so the
//! synchronization overhead is separable in benchmarks.

use crate::util::tree_from_parents;
use csp_graph::{Cost, NodeId, RootedTree, WeightedGraph};
use csp_sim::{
    Context, CostClass, CostReport, DelayModel, FaultAware, Process, SimError, Simulator,
};

/// Messages of `SPT_recur`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecurMsg {
    /// Strip `k` begins — broadcast over the introduction tree.
    Start {
        /// Strip index.
        strip: u64,
    },
    /// Distance relaxation within strip `strip`.
    Relax {
        /// Tentative distance offered to the receiver.
        dist: u128,
        /// Strip index.
        strip: u64,
    },
    /// Dijkstra–Scholten acknowledgment.
    Ack {
        /// Newly reached vertices accounted by this ack's subtree.
        count: u64,
        /// Whether the acker asks to become the receiver's introduction
        /// child (it was reached for the first time).
        adopt: bool,
    },
}

/// Per-vertex state of `SPT_recur`.
#[derive(Debug, Hash)]
pub struct SptRecur {
    source: NodeId,
    delta: u64,
    /// Tentative / final weighted distance.
    dist: Option<u128>,
    /// Current SPT parent (the best relaxer so far).
    parent: Option<NodeId>,
    /// Vertices introduced (first reached) by this vertex.
    intro_children: Vec<NodeId>,
    /// Whether this vertex has ever announced itself to an introducer.
    adopted: bool,
    /// Dijkstra–Scholten episode state.
    engaged: bool,
    engager: Option<NodeId>,
    outstanding: u32,
    count_acc: u64,
    reached_this_episode: bool,
    /// Current strip index.
    strip: u64,
    /// Source only: total vertices reached, and completion flag.
    total_reached: u64,
    finished: bool,
}

// Hand-written so `clone_from` reuses the `intro_children` buffer: the
// adversary's checkpoint-restore path clones whole state vectors per
// candidate, and `Vec<SptRecur>::clone_from` delegates element-wise.
impl Clone for SptRecur {
    fn clone(&self) -> Self {
        SptRecur {
            intro_children: self.intro_children.clone(),
            ..*self
        }
    }

    fn clone_from(&mut self, src: &Self) {
        let SptRecur {
            source,
            delta,
            dist,
            parent,
            ref intro_children,
            adopted,
            engaged,
            engager,
            outstanding,
            count_acc,
            reached_this_episode,
            strip,
            total_reached,
            finished,
        } = *src;
        self.intro_children.clone_from(intro_children);
        self.source = source;
        self.delta = delta;
        self.dist = dist;
        self.parent = parent;
        self.adopted = adopted;
        self.engaged = engaged;
        self.engager = engager;
        self.outstanding = outstanding;
        self.count_acc = count_acc;
        self.reached_this_episode = reached_this_episode;
        self.strip = strip;
        self.total_reached = total_reached;
        self.finished = finished;
    }
}

impl SptRecur {
    /// Creates the per-vertex state for a run from `source` with strip
    /// depth `delta`.
    ///
    /// # Panics
    ///
    /// Panics if `delta == 0`.
    pub fn new(v: NodeId, source: NodeId, delta: u64) -> Self {
        assert!(delta >= 1, "strip depth must be at least 1");
        SptRecur {
            source,
            delta,
            dist: if v == source { Some(0) } else { None },
            parent: None,
            intro_children: Vec::new(),
            adopted: v == source,
            engaged: false,
            engager: None,
            outstanding: 0,
            count_acc: 0,
            reached_this_episode: false,
            strip: 0,
            total_reached: 1,
            finished: false,
        }
    }

    /// Final distance (exact after the run).
    pub fn dist(&self) -> Option<Cost> {
        self.dist.map(Cost::new)
    }

    /// SPT parent pointer.
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// Source only: the protocol completed.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Number of strips processed (source only; `strip` is the last
    /// started strip index + 1 after completion).
    pub fn strips_used(&self) -> u64 {
        self.strip
    }

    fn strip_upper(&self, strip: u64) -> u128 {
        (strip as u128 + 1) * self.delta as u128
    }

    fn strip_lower(&self, strip: u64) -> u128 {
        strip as u128 * self.delta as u128
    }

    /// Relaxes this vertex's incident edges whose relaxed distance lands
    /// in the current strip. `fresh_only` limits to offers landing in the
    /// strip's range (always true — kept for clarity).
    fn relax_neighbors(&mut self, strip: u64, ctx: &mut Context<'_, RecurMsg>) {
        let d = self.dist.expect("only reached vertices relax");
        let offers: Vec<(NodeId, u128)> = ctx
            .neighbors()
            .filter_map(|(u, _, w)| {
                let nd = d + w.get() as u128;
                (nd > self.strip_lower(strip) && nd <= self.strip_upper(strip)).then_some((u, nd))
            })
            .collect();
        for (u, nd) in offers {
            self.outstanding += 1;
            ctx.send(u, RecurMsg::Relax { dist: nd, strip });
        }
    }

    /// Ends the Dijkstra–Scholten episode if all activity quiesced.
    fn maybe_quiesce(&mut self, ctx: &mut Context<'_, RecurMsg>) {
        if !self.engaged || self.outstanding > 0 {
            return;
        }
        self.engaged = false;
        let count = self.count_acc + u64::from(self.reached_this_episode);
        self.count_acc = 0;
        let adopt = self.reached_this_episode && !self.adopted;
        if adopt {
            self.adopted = true;
        }
        self.reached_this_episode = false;
        match self.engager.take() {
            Some(e) => {
                ctx.send_class(e, RecurMsg::Ack { count, adopt }, CostClass::Auxiliary);
            }
            None => {
                // Source: strip complete.
                self.total_reached += count;
                if self.total_reached as usize >= ctx.node_count() {
                    self.finished = true;
                } else {
                    self.strip += 1;
                    self.begin_strip(ctx);
                }
            }
        }
    }

    /// Source only: start the next strip. Iterates past strips that
    /// produce no traffic at the source (everything still local), so deep
    /// distance ranges cannot recurse through `maybe_quiesce`.
    fn begin_strip(&mut self, ctx: &mut Context<'_, RecurMsg>) {
        loop {
            self.engaged = true;
            self.engager = None;
            let strip = self.strip;
            for c in self.intro_children.clone() {
                self.outstanding += 1;
                ctx.send_class(c, RecurMsg::Start { strip }, CostClass::Auxiliary);
            }
            self.relax_neighbors(strip, ctx);
            if self.outstanding > 0 {
                return; // quiescence will arrive with the acks
            }
            // Nothing to do in this strip at the source and no tree to
            // sweep: move straight to the next strip.
            self.engaged = false;
            self.strip += 1;
        }
    }
}

impl Process for SptRecur {
    type Msg = RecurMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, RecurMsg>) {
        if ctx.self_id() == self.source {
            if ctx.node_count() == 1 {
                self.finished = true;
            } else {
                self.begin_strip(ctx);
            }
        }
    }

    fn on_message(&mut self, from: NodeId, msg: RecurMsg, ctx: &mut Context<'_, RecurMsg>) {
        match msg {
            RecurMsg::Start { strip } => {
                self.strip = strip;
                if !self.engaged {
                    self.engaged = true;
                    self.engager = Some(from);
                }
                // Forward the strip start to introduced vertices and relax
                // the fringe.
                for c in self.intro_children.clone() {
                    self.outstanding += 1;
                    ctx.send_class(c, RecurMsg::Start { strip }, CostClass::Auxiliary);
                }
                self.relax_neighbors(strip, ctx);
                self.maybe_quiesce(ctx);
            }
            RecurMsg::Relax { dist, strip } => {
                self.strip = strip;
                let engaging = !self.engaged;
                if engaging {
                    self.engaged = true;
                    self.engager = Some(from);
                }
                let improved = match self.dist {
                    None => {
                        self.reached_this_episode = true;
                        true
                    }
                    Some(d) => dist < d,
                };
                if improved {
                    self.dist = Some(dist);
                    self.parent = Some(from);
                    self.relax_neighbors(strip, ctx);
                }
                if !engaging {
                    // Non-engaging messages are acked immediately.
                    ctx.send_class(
                        from,
                        RecurMsg::Ack {
                            count: 0,
                            adopt: false,
                        },
                        CostClass::Auxiliary,
                    );
                }
                self.maybe_quiesce(ctx);
            }
            RecurMsg::Ack { count, adopt } => {
                self.outstanding -= 1;
                self.count_acc += count;
                if adopt {
                    self.intro_children.push(from);
                }
                self.maybe_quiesce(ctx);
            }
        }
    }
}

/// `SPT_recur` ignores fault upcalls itself — its ack-counting
/// termination assumes reliable channels, which is exactly what the
/// [`Reliable`](csp_sim::Reliable) wrapper restores under bounded loss.
/// Opting in lets it ride inside that wrapper and under
/// [`Detect`](csp_sim::Detect).
impl FaultAware for SptRecur {}

/// Outcome of an `SPT_recur` run.
#[derive(Debug)]
pub struct SptRecurOutcome {
    /// The shortest-path tree.
    pub tree: RootedTree,
    /// Exact weighted distances from the source.
    pub dists: Vec<Cost>,
    /// Number of strips processed.
    pub strips: u64,
    /// Metered costs (`Relax` under `Protocol`, `Start`/`Ack` under
    /// `Auxiliary`).
    pub cost: CostReport,
}

/// Runs `SPT_recur` from `s` with strip depth `delta`.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
///
/// # Panics
///
/// Panics if `g` is disconnected, `s` is out of range, or `delta == 0`.
pub fn run_spt_recur(
    g: &WeightedGraph,
    s: NodeId,
    delta: u64,
    delay: DelayModel,
    seed: u64,
) -> Result<SptRecurOutcome, SimError> {
    g.check_node(s);
    let run = Simulator::new(g)
        .delay(delay)
        .seed(seed)
        .run(|v, _| SptRecur::new(v, s, delta))?;
    let src = &run.states[s.index()];
    assert!(
        src.finished(),
        "SPT_recur must complete on a connected graph"
    );
    let parents: Vec<Option<NodeId>> = run.states.iter().map(SptRecur::parent).collect();
    let tree = tree_from_parents(g, s, &parents);
    assert!(tree.is_spanning(), "SPT_recur tree must span");
    let dists = run
        .states
        .iter()
        .map(|st| st.dist().expect("all vertices reached"))
        .collect();
    Ok(SptRecurOutcome {
        tree,
        dists,
        strips: src.strips_used() + 1,
        cost: run.cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_graph::{algo, generators};

    #[test]
    fn exact_distances_for_various_strip_depths() {
        let g = generators::connected_gnp(22, 0.2, generators::WeightDist::Uniform(1, 30), 7);
        let reference = algo::distances(&g, NodeId::new(0));
        for delta in [1, 2, 5, 17, 1000] {
            let out = run_spt_recur(&g, NodeId::new(0), delta, DelayModel::WorstCase, 0).unwrap();
            for v in g.nodes() {
                assert_eq!(
                    out.dists[v.index()],
                    reference[v.index()],
                    "Δ={delta}, vertex {v}"
                );
                assert_eq!(out.tree.depth(v), reference[v.index()]);
            }
        }
    }

    #[test]
    fn random_delays_do_not_break_exactness() {
        let g = generators::grid(4, 5, generators::WeightDist::Uniform(1, 12), 9);
        let reference = algo::distances(&g, NodeId::new(3));
        for seed in 0..5 {
            let out = run_spt_recur(&g, NodeId::new(3), 4, DelayModel::Uniform, seed).unwrap();
            for v in g.nodes() {
                assert_eq!(out.dists[v.index()], reference[v.index()], "seed {seed}");
            }
        }
    }

    #[test]
    fn strip_count_matches_diameter_over_delta() {
        let g = generators::path(12, |_| 5); // eccentricity of 0 = 55
        let out = run_spt_recur(&g, NodeId::new(0), 10, DelayModel::WorstCase, 0).unwrap();
        // distances reach 55; strips of depth 10 → at least 6 strips.
        assert!(out.strips >= 6, "expected ≥ 6 strips, got {}", out.strips);
        let big = run_spt_recur(&g, NodeId::new(0), 100, DelayModel::WorstCase, 0).unwrap();
        assert_eq!(big.strips, 1);
    }

    #[test]
    fn bigger_strips_mean_less_sync_overhead() {
        let g = generators::connected_gnp(25, 0.15, generators::WeightDist::Uniform(1, 40), 2);
        let fine = run_spt_recur(&g, NodeId::new(0), 2, DelayModel::WorstCase, 0).unwrap();
        let coarse = run_spt_recur(&g, NodeId::new(0), 200, DelayModel::WorstCase, 0).unwrap();
        assert!(
            coarse.cost.comm_of(CostClass::Auxiliary) <= fine.cost.comm_of(CostClass::Auxiliary),
            "coarse strips must not increase sync overhead"
        );
    }

    #[test]
    fn single_vertex_is_trivial() {
        let g = csp_graph::GraphBuilder::new(1).build().unwrap();
        let out = run_spt_recur(&g, NodeId::new(0), 5, DelayModel::WorstCase, 0).unwrap();
        assert_eq!(out.cost.messages, 0);
        assert_eq!(out.dists[0], Cost::ZERO);
    }

    #[test]
    fn heavy_single_edge_crossing_many_strips() {
        // An edge of weight 50 with Δ = 3: relaxed exactly once, in the
        // strip containing its relaxed distance.
        let g = generators::path(3, |i| if i == 0 { 50 } else { 1 });
        let out = run_spt_recur(&g, NodeId::new(0), 3, DelayModel::WorstCase, 0).unwrap();
        assert_eq!(out.dists[1], Cost::new(50));
        assert_eq!(out.dists[2], Cost::new(51));
    }
}
