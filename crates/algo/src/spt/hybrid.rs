//! `SPT_hybrid` — shortest-path tree at the cheaper of `SPT_synch` and
//! `SPT_recur` (Section 9.3).
//!
//! Same budget-doubling arbitration as the other hybrids: for geometric
//! communication budgets, first a budgeted `SPT_recur` attempt, then a
//! budgeted `SPT_synch` attempt (both suspended at the budget through the
//! simulator's communication cap); the first to finish wins.

use crate::con_hybrid::accumulate;
use crate::spt::recur::SptRecur;
use crate::spt::synch::SptSynch;
use crate::util::tree_from_parents;
use csp_graph::{Cost, NodeId, RootedTree, WeightedGraph};
use csp_sim::{CostReport, DelayModel, SimError, Simulator};
use csp_sync::net::{run_synchronized_budgeted, GammaWConfig};

/// Which component of `SPT_hybrid` finished first.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SptWinner {
    /// The layered strip algorithm.
    Recur,
    /// The synchronizer-hosted synchronous algorithm.
    Synch,
}

/// Outcome of an `SPT_hybrid` run.
#[derive(Debug)]
pub struct SptHybridOutcome {
    /// The shortest-path tree.
    pub tree: RootedTree,
    /// Exact weighted distances from the source.
    pub dists: Vec<Cost>,
    /// Which component won.
    pub winner: SptWinner,
    /// Total metered cost across all rounds.
    pub cost: CostReport,
    /// Budget-doubling rounds used.
    pub rounds: u32,
}

/// Runs `SPT_hybrid` from `s` with strip depth `delta` (for the recur
/// component) and cluster parameter `k` (for the synch component).
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
///
/// # Panics
///
/// Panics if `g` is disconnected, `s` is out of range, `delta == 0` or
/// `k < 2`.
pub fn run_spt_hybrid(
    g: &WeightedGraph,
    s: NodeId,
    delta: u64,
    k: usize,
    delay: DelayModel,
    seed: u64,
) -> Result<SptHybridOutcome, SimError> {
    g.check_node(s);
    let ecc = csp_graph::algo::distances(g, s)
        .into_iter()
        .map(|d| d.get() as u64)
        .max()
        .unwrap_or(0);
    let horizon = ecc + g.max_weight().get() + 1;
    let config = GammaWConfig::new(k);
    let mut total = CostReport::new(g.edge_count());
    let mut budget: u128 = g
        .neighbors(s)
        .map(|(_, _, w)| w.get() as u128)
        .min()
        .unwrap_or(1)
        * 4;
    let mut rounds = 0;
    loop {
        rounds += 1;
        // Component 1: budgeted SPT_recur.
        let recur = Simulator::new(g)
            .delay(delay)
            .seed(seed)
            .comm_limit(budget)
            .run(|v, _| SptRecur::new(v, s, delta))?;
        accumulate(&mut total, &recur.cost);
        if !recur.truncated && recur.states[s.index()].finished() {
            let parents: Vec<Option<NodeId>> = recur.states.iter().map(SptRecur::parent).collect();
            let tree = tree_from_parents(g, s, &parents);
            let dists = recur
                .states
                .iter()
                .map(|st| st.dist().expect("finished run reached everyone"))
                .collect();
            return Ok(SptHybridOutcome {
                tree,
                dists,
                winner: SptWinner::Recur,
                cost: total,
                rounds,
            });
        }
        // Component 2: budgeted SPT_synch.
        let (states, cost) =
            run_synchronized_budgeted(g, &config, horizon, budget, delay, seed, |v, _| {
                SptSynch::new(v, s)
            })?;
        accumulate(&mut total, &cost);
        if let Some(states) = states {
            let parents: Vec<Option<NodeId>> = states.iter().map(SptSynch::parent).collect();
            let tree = tree_from_parents(g, s, &parents);
            let dists = states
                .iter()
                .map(|st| st.dist().expect("finished run reached everyone"))
                .collect();
            return Ok(SptHybridOutcome {
                tree,
                dists,
                winner: SptWinner::Synch,
                cost: total,
                rounds,
            });
        }
        budget = budget.saturating_mul(2);
        assert!(rounds < 200, "budget doubling failed to converge");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_graph::{algo, generators};

    #[test]
    fn hybrid_distances_are_exact() {
        let g = generators::connected_gnp(14, 0.25, generators::WeightDist::Uniform(1, 10), 6);
        let out = run_spt_hybrid(&g, NodeId::new(0), 4, 2, DelayModel::WorstCase, 0).unwrap();
        let reference = algo::distances(&g, NodeId::new(0));
        for v in g.nodes() {
            assert_eq!(out.dists[v.index()], reference[v.index()]);
        }
        assert!(out.tree.is_spanning());
    }

    #[test]
    fn hybrid_cost_within_constant_of_best_component() {
        let g = generators::grid(3, 4, generators::WeightDist::Uniform(1, 8), 2);
        let recur =
            crate::spt::recur::run_spt_recur(&g, NodeId::new(0), 4, DelayModel::WorstCase, 0)
                .unwrap()
                .cost
                .weighted_comm;
        let synch =
            crate::spt::synch::run_spt_synch(&g, NodeId::new(0), 2, DelayModel::WorstCase, 0)
                .unwrap()
                .cost
                .weighted_comm;
        let best = recur.min(synch);
        let hybrid = run_spt_hybrid(&g, NodeId::new(0), 4, 2, DelayModel::WorstCase, 0)
            .unwrap()
            .cost
            .weighted_comm;
        assert!(
            hybrid <= best * 16,
            "hybrid {hybrid} ≫ 16×best component {best}"
        );
    }
}
