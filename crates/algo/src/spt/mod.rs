//! Shortest-path tree protocols (Sections 6.4 and 9).
//!
//! | algorithm | communication | time |
//! |---|---|---|
//! | [`centr::run_spt_centr`] | `O(n·w(SPT)) = O(n²·V̂)` | `O(n·D̂)` |
//! | [`synch::run_spt_synch`] | `O(Ê + D̂·k·n·log n)` | `O(D̂·log_k n·log n)` |
//! | [`recur::run_spt_recur`] | strip-tunable (Figure 9) | strip-tunable |
//! | [`hybrid::run_spt_hybrid`] | min of `synch`/`recur` | — |

pub mod centr;
pub mod hybrid;
pub mod recur;
pub mod synch;

pub use centr::{run_spt_centr, run_spt_centr_budgeted};
pub use hybrid::run_spt_hybrid;
pub use recur::run_spt_recur;
pub use synch::run_spt_synch;
