//! `SPT_centr` — the full-information shortest-path tree algorithm
//! (Section 6.4), a distributed Dijkstra built on the
//! [growth engine](crate::full_info).
//!
//! Each phase adds the non-member with the smallest tentative distance,
//! so on completion the labels are exact weighted distances and the tree
//! is a shortest-path tree. Communication `O(n·w(SPT))`, which Fact 6.5
//! bounds by `O(n²·V̂)`; time `O(n·D̂)` (Corollary 6.6).

use crate::full_info::{run_growth, run_growth_budgeted, GrowthBudgetedOutcome, SptRule};
use csp_graph::{Cost, NodeId, RootedTree, WeightedGraph};
use csp_sim::{CostReport, DelayModel, SimError};

/// Outcome of an `SPT_centr` run.
#[derive(Debug)]
pub struct SptCentrOutcome {
    /// The shortest-path tree rooted at the source.
    pub tree: RootedTree,
    /// Exact weighted distances from the source.
    pub dists: Vec<Cost>,
    /// Metered costs.
    pub cost: CostReport,
}

/// Runs `SPT_centr` from source `s`.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
///
/// # Panics
///
/// Panics if `g` is disconnected or `s` is out of range.
///
/// # Example
///
/// ```
/// use csp_graph::{generators, NodeId};
/// use csp_algo::spt::run_spt_centr;
/// use csp_sim::DelayModel;
///
/// let g = generators::heavy_chord_cycle(8, 50);
/// let out = run_spt_centr(&g, NodeId::new(0), DelayModel::WorstCase, 0)?;
/// let reference = csp_graph::algo::distances(&g, NodeId::new(0));
/// assert_eq!(out.dists, reference);
/// # Ok::<(), csp_sim::SimError>(())
/// ```
pub fn run_spt_centr(
    g: &WeightedGraph,
    s: NodeId,
    delay: DelayModel,
    seed: u64,
) -> Result<SptCentrOutcome, SimError> {
    let out = run_growth(g, s, SptRule, delay, seed)?;
    Ok(SptCentrOutcome {
        tree: out.tree,
        dists: out.dists,
        cost: out.cost,
    })
}

/// Budgeted variant for the hybrid algorithms.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
pub fn run_spt_centr_budgeted(
    g: &WeightedGraph,
    s: NodeId,
    budget: u128,
    delay: DelayModel,
    seed: u64,
) -> Result<GrowthBudgetedOutcome, SimError> {
    run_growth_budgeted(g, s, SptRule, budget, delay, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_graph::{algo, generators};

    #[test]
    fn exact_distances_on_random_graphs() {
        for seed in 0..3 {
            let g =
                generators::connected_gnp(15, 0.3, generators::WeightDist::Uniform(1, 25), seed);
            let out = run_spt_centr(&g, NodeId::new(1), DelayModel::WorstCase, 0).unwrap();
            let reference = algo::distances(&g, NodeId::new(1));
            assert_eq!(out.dists, reference);
            for v in g.nodes() {
                assert_eq!(out.tree.depth(v), reference[v.index()]);
            }
        }
    }
}
