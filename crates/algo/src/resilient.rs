//! Self-healing broadcast and shortest paths: crash-tolerant variants
//! of `CON_flood` (Section 6.1) and the SPT protocols (Section 9).
//!
//! The paper's protocols assume a fixed fault-free network. [`Resilient`]
//! is one distance-vector state machine covering both weighted regimes
//! that *survives vertex crashes*: hosted under the simulator's
//! [`Detect`] failure detector (and optionally the [`Reliable`]
//! retransmission wrapper), it reacts to `peer_suspected` /
//! `channel_failed` upcalls by routing around dead channels and
//! re-parenting orphaned subtrees.
//!
//! # The protocol
//!
//! Every vertex keeps, per neighbor, the neighbor's last *announced*
//! distance to the source (its **offer**), and computes its own distance
//! as the minimum of `offer(u) + cost(u, v)` over live neighbors — where
//! `cost` is `1` under [`Metric::Hops`] (flood: reach everyone, build a
//! tree) and `w(e)` under [`Metric::Weighted`] (SPT: exact weighted
//! distances). Whenever its own distance changes it announces the new
//! value to all live neighbors; a vertex with no surviving support
//! announces a *retraction* (`None`), which cascades through any subtree
//! the crash orphaned. A count-to-infinity bound (`n - 1` hops, total
//! graph weight respectively) converts loop-supported climbing into
//! retraction in bounded time.
//!
//! Fault upcalls are the only crash input: when the detector suspects a
//! peer (or the reliability layer abandons its channel), the vertex
//! marks the peer dead, discards its offer, ignores any straggler
//! traffic from it, and recomputes.
//!
//! # Churn: rejoins and drift
//!
//! Under a churn adversary a crashed vertex may *rejoin* with fresh
//! protocol state. The detector revokes the suspicion on the rejoined
//! incarnation's first life sign and delivers
//! [`FaultAware::on_peer_restored`]; the vertex clears its dead mark and
//! stale offer and **re-announces its own distance to the restored peer**
//! — metered under [`CostClass::Auxiliary`], the measurable price of
//! state re-synchronisation — so the blank incarnation re-enters the
//! Bellman fixpoint. Routes then reconverge to the exact distances of
//! the final surviving component; [`reconvergence_violation`] checks
//! both the routes and that the protocol's own traffic settled within a
//! detector-derived horizon of the last churn event. The contract
//! requires each crash to be *suspected before the matching rejoin*
//! (rejoin at or after the crash plus the channel's `θ(e)`): an
//! invisible crash–rejoin leaves a blank incarnation nobody re-syncs.
//!
//! Mid-run *weight drift* moves delays, cost metering and the detector's
//! timeouts, but not the routing objective: distances remain defined by
//! the static topology weights. Reacting to revisions would need a drift
//! upcall no vertex receives — deliberately out of scope, and stated
//! here rather than papered over.
//!
//! # Correctness contract
//!
//! Let `C` be the surviving component of the source — the vertices
//! reachable from it in the subgraph induced by non-crashed vertices
//! ([`surviving_component`](csp_graph::algo::surviving_component)).
//! If every crash is detected (it is whenever crashes fall within the
//! detector's [`detection_horizon`](DetectConfig::detection_horizon)),
//! then at quiescence **every vertex of `C` holds exactly its distance
//! from the source in the live-induced subgraph**, with parent pointers
//! forming a tree on `C` rooted at the source; every live vertex outside
//! `C` holds `None`. If the source itself crashes the contract is
//! vacuous (all survivors eventually retract to `None`).
//!
//! The fixpoint argument: once all dead offers are cleared and all
//! announcements delivered, the offer tables satisfy the Bellman
//! equations of the live-induced subgraph, whose unique bounded solution
//! is the true distance vector — any loop-supported value would strictly
//! decrease along its own support chain without reaching the source,
//! and values above the bound are forced to `None`.

use csp_graph::{NodeId, WeightedGraph};
use csp_sim::{
    Context, CostClass, CostReport, Detect, DetectConfig, FaultAware, LinkOracle, Process,
    Reliable, Run, SimError, Simulator,
};

/// Which cost the distance-vector computation minimizes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Metric {
    /// Every edge costs 1: distances are hop counts and the protocol is
    /// a crash-tolerant flood (reach the surviving component, build a
    /// BFS-style tree over it).
    Hops,
    /// Every edge costs `w(e)`: distances are weighted and the protocol
    /// is a crash-tolerant SPT.
    Weighted,
}

/// Per-vertex state of the self-healing distance-vector protocol. See
/// the [module docs](self) for the algorithm and its contract.
#[derive(Clone, Debug)]
pub struct Resilient {
    me: NodeId,
    source: NodeId,
    metric: Metric,
    /// Count-to-infinity cutoff: candidate distances above this are
    /// treated as unreachable.
    bound: u64,
    dist: Option<u64>,
    parent: Option<NodeId>,
    /// Last announced distance per vertex id (entries for non-neighbors
    /// stay `None` forever).
    offers: Vec<Option<u64>>,
    /// Neighbors marked dead by a fault upcall.
    dead: Vec<bool>,
    /// Restore upcalls consumed (rejoined neighbors re-synced).
    restored: u64,
}

impl Resilient {
    /// Creates the state for vertex `v` computing distances from
    /// `source` under `metric` on `g`.
    ///
    /// The count-to-infinity bound is derived from the graph: `n - 1`
    /// for [`Metric::Hops`], the total edge weight for
    /// [`Metric::Weighted`] — both upper bounds on any real distance, so
    /// the cutoff never truncates a true value.
    pub fn new(v: NodeId, source: NodeId, metric: Metric, g: &WeightedGraph) -> Self {
        g.check_node(v);
        g.check_node(source);
        let bound = match metric {
            Metric::Hops => g.node_count().saturating_sub(1) as u64,
            Metric::Weighted => g.edges().map(|e| e.weight().get()).sum(),
        };
        Resilient {
            me: v,
            source,
            metric,
            bound,
            dist: None,
            parent: None,
            offers: vec![None; g.node_count()],
            dead: vec![false; g.node_count()],
            restored: 0,
        }
    }

    /// The vertex's current distance to the source (`None` = no
    /// surviving support).
    pub fn dist(&self) -> Option<u64> {
        self.dist
    }

    /// The supporting neighbor (`None` at the source and at unreached
    /// vertices).
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// Whether a fault upcall has marked `peer` dead.
    pub fn knows_dead(&self, peer: NodeId) -> bool {
        self.dead[peer.index()]
    }

    /// Number of neighbors *currently* marked dead — a restoration
    /// clears the mark again, so at quiescence this counts the
    /// final-down channels.
    pub fn dead_neighbor_count(&self) -> usize {
        self.dead.iter().filter(|&&d| d).count()
    }

    /// Number of restore upcalls consumed: rejoined neighbors this
    /// vertex re-synchronised with an [`CostClass::Auxiliary`]
    /// re-announcement.
    pub fn restored_count(&self) -> u64 {
        self.restored
    }

    fn edge_cost(&self, w: csp_graph::Weight) -> u64 {
        match self.metric {
            Metric::Hops => 1,
            Metric::Weighted => w.get(),
        }
    }

    /// Recomputes `dist`/`parent` from the live offers; announces the
    /// distance to all live neighbors if it changed.
    fn recompute(&mut self, ctx: &mut Context<'_, Option<u64>>) {
        let g = ctx.graph();
        let (new_dist, new_parent) = if self.me == self.source {
            (Some(0), None)
        } else {
            // Deterministic tie-break: first neighbor in adjacency
            // order achieving the minimum.
            let mut best: Option<(u64, NodeId)> = None;
            for (u, _, w) in g.neighbors(self.me) {
                if self.dead[u.index()] {
                    continue;
                }
                if let Some(d) = self.offers[u.index()] {
                    let c = d.saturating_add(self.edge_cost(w));
                    if c <= self.bound && best.is_none_or(|(b, _)| c < b) {
                        best = Some((c, u));
                    }
                }
            }
            match best {
                Some((d, u)) => (Some(d), Some(u)),
                None => (None, None),
            }
        };
        self.parent = new_parent;
        if new_dist != self.dist {
            self.dist = new_dist;
            self.announce(ctx);
        }
    }

    fn announce(&mut self, ctx: &mut Context<'_, Option<u64>>) {
        let g = ctx.graph();
        for (u, _, _) in g.neighbors(self.me) {
            if !self.dead[u.index()] {
                ctx.send_class(u, self.dist, CostClass::Protocol);
            }
        }
    }

    fn mark_dead(&mut self, peer: NodeId, ctx: &mut Context<'_, Option<u64>>) {
        if self.dead[peer.index()] {
            return; // e.g. suspected after the channel already failed
        }
        self.dead[peer.index()] = true;
        self.offers[peer.index()] = None;
        self.recompute(ctx);
    }
}

impl Process for Resilient {
    type Msg = Option<u64>;

    fn on_start(&mut self, ctx: &mut Context<'_, Option<u64>>) {
        if self.me == self.source {
            self.dist = Some(0);
            self.announce(ctx);
        }
    }

    fn on_message(&mut self, from: NodeId, offer: Option<u64>, ctx: &mut Context<'_, Option<u64>>) {
        if self.dead[from.index()] {
            return; // straggler from a suspected peer
        }
        self.offers[from.index()] = offer;
        self.recompute(ctx);
    }
}

impl FaultAware for Resilient {
    fn on_channel_failed(&mut self, peer: NodeId, ctx: &mut Context<'_, Option<u64>>) {
        self.mark_dead(peer, ctx);
    }

    fn on_peer_suspected(&mut self, peer: NodeId, ctx: &mut Context<'_, Option<u64>>) {
        self.mark_dead(peer, ctx);
    }

    fn on_peer_restored(&mut self, peer: NodeId, ctx: &mut Context<'_, Option<u64>>) {
        self.dead[peer.index()] = false;
        self.offers[peer.index()] = None;
        self.restored += 1;
        // State re-synchronisation: the restarted incarnation knows
        // nothing, so hand it our current distance. Metered Auxiliary —
        // recovery overhead, not forward progress — and unconditional:
        // even a `None` tells the rejoined vertex this channel offers no
        // support. Its own recompute-and-announce cascade (Protocol
        // class) folds it back into the Bellman fixpoint.
        ctx.send_class(peer, self.dist, CostClass::Auxiliary);
    }
}

/// Outcome of a self-healing run.
#[derive(Debug)]
pub struct ResilientOutcome {
    /// Per-vertex distance to the source at quiescence (`None` at
    /// crashed, retracted and never-reached vertices).
    pub dists: Vec<Option<u64>>,
    /// Per-vertex supporting neighbor — parent pointers of the recovery
    /// tree over the surviving component.
    pub parents: Vec<Option<NodeId>>,
    /// Channels still marked dead at quiescence, summed over all
    /// vertices (each surviving endpoint of a final-down channel counts
    /// once; a restored channel no longer counts).
    pub suspected_links: usize,
    /// Restore upcalls consumed over all vertices: each one paid an
    /// `Auxiliary` re-announcement toward the rejoined neighbor.
    pub restored_links: u64,
    /// Retransmissions performed by the [`Reliable`] layer — `0` for the
    /// crash-only stack.
    pub retransmissions: u64,
    /// Channels the [`Reliable`] layer abandoned — `0` for the
    /// crash-only stack.
    pub failed_channels: usize,
    /// Metered costs: announcements under `Protocol`; heartbeats, acks
    /// and retransmissions under `Auxiliary`. Fault meters (`drops`,
    /// `crashed_nodes`, `dead_events`) record what the adversary did.
    pub cost: CostReport,
}

/// Runs the crash-tolerant flood ([`Metric::Hops`]) under `oracle` on
/// the `Detect<Resilient>` stack.
///
/// Crash-only tolerance: the detector handles dead vertices, but a
/// dropped announcement is simply lost — combine with [`Reliable`] via
/// [`run_resilient_flood_reliable`] when the adversary also drops
/// messages.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
///
/// # Panics
///
/// Panics if `root` is out of range.
pub fn run_resilient_flood<O>(
    g: &WeightedGraph,
    root: NodeId,
    oracle: &mut O,
    cfg: DetectConfig,
) -> Result<ResilientOutcome, SimError>
where
    O: LinkOracle + ?Sized,
{
    run_detected(g, root, Metric::Hops, oracle, cfg)
}

/// Runs the crash-tolerant SPT ([`Metric::Weighted`]) under `oracle` on
/// the `Detect<Resilient>` stack.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
///
/// # Panics
///
/// Panics if `s` is out of range.
pub fn run_resilient_spt<O>(
    g: &WeightedGraph,
    s: NodeId,
    oracle: &mut O,
    cfg: DetectConfig,
) -> Result<ResilientOutcome, SimError>
where
    O: LinkOracle + ?Sized,
{
    run_detected(g, s, Metric::Weighted, oracle, cfg)
}

fn run_detected<O>(
    g: &WeightedGraph,
    source: NodeId,
    metric: Metric,
    oracle: &mut O,
    cfg: DetectConfig,
) -> Result<ResilientOutcome, SimError>
where
    O: LinkOracle + ?Sized,
{
    g.check_node(source);
    let run: Run<Detect<Resilient>> = Simulator::new(g).run_with_oracle(oracle, |v, _| {
        Detect::new(Resilient::new(v, source, metric, g), cfg)
    })?;
    Ok(collect(g, run, |d| d.inner(), 0, 0))
}

/// Runs the full drop-and-crash-tolerant stack
/// `Detect<Reliable<Resilient>>` under `oracle`.
///
/// The reliability layer restores exactly the delivery assumption the
/// distance-vector fixpoint argument needs (every announcement
/// eventually arrives), so the contract survives adversaries that both
/// drop messages (below the retry bound) and crash vertices (within the
/// detection horizon). `metric` picks flood versus SPT.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn run_resilient_reliable<O>(
    g: &WeightedGraph,
    source: NodeId,
    metric: Metric,
    oracle: &mut O,
    cfg: DetectConfig,
    max_retries: u32,
) -> Result<ResilientOutcome, SimError>
where
    O: LinkOracle + ?Sized,
{
    g.check_node(source);
    let run: Run<Detect<Reliable<Resilient>>> =
        Simulator::new(g).run_with_oracle(oracle, |v, _| {
            Detect::new(
                Reliable::new(Resilient::new(v, source, metric, g), max_retries),
                cfg,
            )
        })?;
    let retransmissions = run.states.iter().map(|d| d.inner().retransmissions()).sum();
    let failed = run
        .states
        .iter()
        .map(|d| d.inner().failed_channel_count())
        .sum();
    Ok(collect(
        g,
        run,
        |d| d.inner().inner(),
        retransmissions,
        failed,
    ))
}

/// Convenience alias for the combined stack with [`Metric::Hops`].
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator.
pub fn run_resilient_flood_reliable<O>(
    g: &WeightedGraph,
    root: NodeId,
    oracle: &mut O,
    cfg: DetectConfig,
    max_retries: u32,
) -> Result<ResilientOutcome, SimError>
where
    O: LinkOracle + ?Sized,
{
    run_resilient_reliable(g, root, Metric::Hops, oracle, cfg, max_retries)
}

fn collect<S, F>(
    g: &WeightedGraph,
    run: Run<S>,
    unwrap: F,
    retransmissions: u64,
    failed_channels: usize,
) -> ResilientOutcome
where
    S: Process,
    F: Fn(&S) -> &Resilient,
{
    let _ = g;
    let dists = run.states.iter().map(|s| unwrap(s).dist()).collect();
    let parents = run.states.iter().map(|s| unwrap(s).parent()).collect();
    let suspected_links = run
        .states
        .iter()
        .map(|s| unwrap(s).dead_neighbor_count())
        .sum();
    let restored_links = run.states.iter().map(|s| unwrap(s).restored_count()).sum();
    ResilientOutcome {
        dists,
        parents,
        suspected_links,
        restored_links,
        retransmissions,
        failed_channels,
        cost: run.cost,
    }
}

/// Checks the self-healing contract against the reference subgraph
/// answers: exact distances on the surviving component of `source`,
/// `None` everywhere else, and parent pointers realizing the distances.
///
/// Returns the first violated vertex, or `None` when the contract
/// holds. `dead[v]` must mark exactly the crashed vertices.
///
/// # Panics
///
/// Panics if `dead.len() != n`.
pub fn contract_violation(
    g: &WeightedGraph,
    source: NodeId,
    metric: Metric,
    dead: &[bool],
    out: &ResilientOutcome,
) -> Option<NodeId> {
    let reference: Vec<Option<u64>> = match metric {
        Metric::Hops => csp_graph::algo::surviving_hop_distances(g, source, dead)
            .into_iter()
            .map(|d| d.map(|h| h as u64))
            .collect(),
        Metric::Weighted => csp_graph::algo::surviving_distances(g, source, dead)
            .into_iter()
            .map(|d| d.map(|c| u64::try_from(c.get()).expect("distance fits u64")))
            .collect(),
    };
    for v in g.nodes() {
        if dead[v.index()] {
            continue; // crashed vertices report nothing
        }
        if out.dists[v.index()] != reference[v.index()] {
            return Some(v);
        }
        // A reached non-source vertex's parent must be a live neighbor
        // whose distance accounts for its own.
        if v != source && reference[v.index()].is_some() {
            let Some(p) = out.parents[v.index()] else {
                return Some(v);
            };
            let Some(&(_, _, w)) = g
                .neighbors(v)
                .collect::<Vec<_>>()
                .iter()
                .find(|&&(u, _, _)| u == p)
            else {
                return Some(v);
            };
            let step = match metric {
                Metric::Hops => 1,
                Metric::Weighted => w.get(),
            };
            if dead[p.index()] || reference[p.index()].map(|d| d + step) != reference[v.index()] {
                return Some(v);
            }
        }
    }
    None
}

/// How a post-heal run failed [`reconvergence_violation`]'s checks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReconvergenceViolation {
    /// A vertex holds a wrong distance or parent (the
    /// [`contract_violation`] route checks against the final
    /// surviving component).
    Route(NodeId),
    /// Routes are correct but healed too slowly: the last
    /// `Protocol`-class delivery landed after the deadline.
    Late {
        /// When the protocol's own traffic actually settled.
        settled: csp_sim::SimTime,
        /// The deadline it had to settle by: `last_churn + horizon`.
        deadline: csp_sim::SimTime,
    },
}

/// Post-heal route verifier: checks that after the *last* churn event
/// (crash, rejoin, or weight revision at `last_churn`) the protocol
/// reconverged to the exact distances of the final surviving component
/// — `dead[v]` marks the vertices down at the end of the run — and did
/// so promptly: its own (`Protocol`-class) traffic settled within
/// `horizon` ticks of `last_churn`. Pass the detector's
/// [`detection_horizon`](DetectConfig::detection_horizon) at the
/// graph's maximum weight for `horizon` — the completeness window the
/// detector itself promises.
///
/// Returns the first violation found, or `None` when the contract
/// holds.
///
/// # Panics
///
/// Panics if `dead.len() != g.node_count()`.
pub fn reconvergence_violation(
    g: &WeightedGraph,
    source: NodeId,
    metric: Metric,
    dead: &[bool],
    last_churn: csp_sim::SimTime,
    horizon: u64,
    out: &ResilientOutcome,
) -> Option<ReconvergenceViolation> {
    if let Some(v) = contract_violation(g, source, metric, dead, out) {
        return Some(ReconvergenceViolation::Route(v));
    }
    let settled = out.cost.completion_of(CostClass::Protocol);
    let deadline = last_churn + horizon;
    if settled > deadline {
        return Some(ReconvergenceViolation::Late { settled, deadline });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_graph::generators::{self, WeightDist};
    use csp_sim::{ChurnOracle, CrashOracle, DelayModel, DropOracle, ModelOracle, SimTime};

    fn gnp() -> WeightedGraph {
        generators::connected_gnp(12, 0.3, WeightDist::Uniform(1, 16), 42)
    }

    /// A detector window generous enough that every crash in these
    /// tests falls inside the detection horizon.
    fn wide_cfg() -> DetectConfig {
        DetectConfig::new(4, 60, 0)
    }

    fn crash_only(crashes: Vec<(NodeId, SimTime)>) -> CrashOracle<ModelOracle> {
        CrashOracle::new(ModelOracle::new(DelayModel::WorstCase, 0), crashes)
    }

    fn dead_mask(n: usize, crashes: &[(NodeId, SimTime)]) -> Vec<bool> {
        let mut dead = vec![false; n];
        for &(v, _) in crashes {
            dead[v.index()] = true;
        }
        dead
    }

    #[test]
    fn crash_free_flood_matches_plain_bfs() {
        let g = gnp();
        let mut oracle = ModelOracle::new(DelayModel::WorstCase, 0);
        let out = run_resilient_flood(&g, NodeId::new(0), &mut oracle, wide_cfg()).unwrap();
        let dead = vec![false; g.node_count()];
        assert_eq!(
            contract_violation(&g, NodeId::new(0), Metric::Hops, &dead, &out),
            None
        );
        assert_eq!(out.suspected_links, 0);
        assert!(!out.cost.has_faults());
    }

    #[test]
    fn crash_free_spt_matches_dijkstra() {
        let g = gnp();
        let reference = csp_graph::algo::distances(&g, NodeId::new(0));
        let mut oracle = ModelOracle::new(DelayModel::Uniform, 7);
        let out = run_resilient_spt(&g, NodeId::new(0), &mut oracle, wide_cfg()).unwrap();
        for v in g.nodes() {
            assert_eq!(
                out.dists[v.index()],
                Some(u64::try_from(reference[v.index()].get()).unwrap()),
                "{v}"
            );
        }
    }

    #[test]
    fn flood_survives_a_mid_run_crash() {
        let g = gnp();
        let crashes = vec![(NodeId::new(5), SimTime::new(20))];
        let mut oracle = crash_only(crashes.clone());
        let out = run_resilient_flood(&g, NodeId::new(0), &mut oracle, wide_cfg()).unwrap();
        let dead = dead_mask(g.node_count(), &crashes);
        assert_eq!(
            contract_violation(&g, NodeId::new(0), Metric::Hops, &dead, &out),
            None
        );
        // Every live neighbor of the victim marked it dead.
        let neighbors = g.neighbors(NodeId::new(5)).count();
        assert_eq!(out.suspected_links, neighbors);
        assert_eq!(out.cost.crashed_nodes, 1);
    }

    #[test]
    fn spt_reroutes_and_reparents_after_crashes() {
        let g = gnp();
        for victim in [1usize, 3, 7, 10] {
            for at in [0u64, 5, 30, 80] {
                let crashes = vec![(NodeId::new(victim), SimTime::new(at))];
                let mut oracle = crash_only(crashes.clone());
                let out = run_resilient_spt(&g, NodeId::new(0), &mut oracle, wide_cfg()).unwrap();
                let dead = dead_mask(g.node_count(), &crashes);
                assert_eq!(
                    contract_violation(&g, NodeId::new(0), Metric::Weighted, &dead, &out),
                    None,
                    "victim {victim} at t={at}"
                );
            }
        }
    }

    #[test]
    fn double_crash_that_disconnects_retracts_the_cut_off_side() {
        // Path 0-1-2-3: crashing 1 strands 2 and 3, which must retract
        // to None rather than keep pre-crash distances.
        let g = generators::path(4, |_| 2);
        let crashes = vec![(NodeId::new(1), SimTime::new(15))];
        let mut oracle = crash_only(crashes.clone());
        let out = run_resilient_spt(&g, NodeId::new(0), &mut oracle, wide_cfg()).unwrap();
        let dead = dead_mask(4, &crashes);
        assert_eq!(
            contract_violation(&g, NodeId::new(0), Metric::Weighted, &dead, &out),
            None
        );
        assert_eq!(out.dists[2], None);
        assert_eq!(out.dists[3], None);
        assert_eq!(out.parents[3], None, "orphaned subtree must re-parent away");
    }

    #[test]
    fn source_crash_retracts_everyone() {
        let g = gnp();
        let crashes = vec![(NodeId::new(0), SimTime::new(25))];
        let mut oracle = crash_only(crashes.clone());
        let out = run_resilient_flood(&g, NodeId::new(0), &mut oracle, wide_cfg()).unwrap();
        for v in g.nodes().filter(|&v| v != NodeId::new(0)) {
            assert_eq!(out.dists[v.index()], None, "{v}");
        }
    }

    #[test]
    fn combined_stack_survives_drops_and_a_crash_together() {
        let g = gnp();
        let crashes = vec![(NodeId::new(4), SimTime::new(12))];
        for seed in 0..3 {
            // Drop budget 3 < max_retries 8; loss_tolerance covers the
            // budget so heartbeats cannot false-suspect.
            let lossy = DropOracle::new(DelayModel::Uniform, seed, 0.3, 3);
            let mut oracle = CrashOracle::new(lossy, crashes.clone());
            let cfg = DetectConfig::new(4, 60, 3);
            let out =
                run_resilient_reliable(&g, NodeId::new(0), Metric::Weighted, &mut oracle, cfg, 8)
                    .unwrap();
            let dead = dead_mask(g.node_count(), &crashes);
            assert_eq!(
                contract_violation(&g, NodeId::new(0), Metric::Weighted, &dead, &out),
                None,
                "seed {seed}"
            );
            assert!(out.cost.drops > 0, "adversary must actually drop");
        }
    }

    #[test]
    fn crash_rejoin_heals_back_to_exact_distances() {
        let g = gnp();
        let victim = NodeId::new(5);
        // Crash at 20 (suspected by ~60), rejoin at 120: the restarted
        // incarnation is re-synced and the final routes must equal the
        // crash-free answer exactly.
        let mut oracle = ChurnOracle::new(
            ModelOracle::new(DelayModel::WorstCase, 0),
            vec![(victim, vec![SimTime::new(20), SimTime::new(120)])],
            vec![],
        );
        let out = run_resilient_spt(&g, NodeId::new(0), &mut oracle, wide_cfg()).unwrap();
        let dead = vec![false; g.node_count()];
        let horizon = wide_cfg().detection_horizon(16);
        assert_eq!(
            reconvergence_violation(
                &g,
                NodeId::new(0),
                Metric::Weighted,
                &dead,
                SimTime::new(120),
                horizon,
                &out
            ),
            None
        );
        let neighbors = g.neighbors(victim).count() as u64;
        assert_eq!(out.restored_links, neighbors, "every neighbor re-synced");
        assert_eq!(out.suspected_links, 0, "no channel stays marked dead");
        assert_eq!(out.cost.recoveries, 1);
        assert!(out.cost.has_churn());
    }

    #[test]
    fn crash_rejoin_recrash_retracts_again() {
        let g = gnp();
        let victim = NodeId::new(5);
        let mut oracle = ChurnOracle::new(
            ModelOracle::new(DelayModel::WorstCase, 0),
            vec![(
                victim,
                vec![SimTime::new(20), SimTime::new(120), SimTime::new(200)],
            )],
            vec![],
        );
        let out = run_resilient_spt(&g, NodeId::new(0), &mut oracle, wide_cfg()).unwrap();
        // Down at the end: the healed-then-recrashed vertex must be
        // routed around exactly as a plain crash would be.
        let mut dead = vec![false; g.node_count()];
        dead[victim.index()] = true;
        let horizon = wide_cfg().detection_horizon(16);
        assert_eq!(
            reconvergence_violation(
                &g,
                NodeId::new(0),
                Metric::Weighted,
                &dead,
                SimTime::new(200),
                horizon,
                &out
            ),
            None
        );
        let neighbors = g.neighbors(victim).count();
        assert_eq!(out.restored_links, neighbors as u64);
        assert_eq!(
            out.suspected_links, neighbors,
            "recrash re-marked the links"
        );
        assert_eq!(out.cost.recoveries, 1);
    }

    #[test]
    fn drift_moves_cost_but_not_the_routing_objective() {
        // Weight drift changes delays, metering and detector timeouts;
        // the distance-vector objective stays the static weights (the
        // module docs state this honestly). Drift lands exactly on an
        // arrival instant of the revised edge so the detector's live
        // θ(e) absorbs the slowdown without a false suspicion.
        let g = generators::path(4, |_| 2);
        let mut oracle = ChurnOracle::new(
            ModelOracle::new(DelayModel::WorstCase, 0),
            vec![],
            vec![(
                csp_graph::EdgeId::new(1),
                SimTime::new(10),
                csp_graph::Weight::new(6),
            )],
        );
        let out = run_resilient_spt(&g, NodeId::new(0), &mut oracle, wide_cfg()).unwrap();
        let dead = vec![false; 4];
        assert_eq!(
            contract_violation(&g, NodeId::new(0), Metric::Weighted, &dead, &out),
            None
        );
        assert_eq!(out.dists, vec![Some(0), Some(2), Some(4), Some(6)]);
        assert_eq!(out.suspected_links, 0, "drift must not false-suspect");
        assert_eq!(out.cost.weight_revisions, 1);
        assert!(out.cost.has_churn());
    }

    #[test]
    fn late_crash_forces_recovery_traffic() {
        // A crash after convergence makes the protocol redo work: its
        // weighted protocol traffic strictly exceeds the time-0 crash
        // run, where the victim never participated.
        let g = gnp();
        let victim = NodeId::new(5);
        let run_at = |t: u64| {
            let mut oracle = crash_only(vec![(victim, SimTime::new(t))]);
            run_resilient_spt(&g, NodeId::new(0), &mut oracle, wide_cfg()).unwrap()
        };
        let early = run_at(0);
        let late = run_at(60);
        let dead = dead_mask(g.node_count(), &[(victim, SimTime::new(0))]);
        assert_eq!(
            contract_violation(&g, NodeId::new(0), Metric::Weighted, &dead, &early),
            None
        );
        assert_eq!(
            contract_violation(&g, NodeId::new(0), Metric::Weighted, &dead, &late),
            None
        );
        assert!(
            late.cost.comm_of(CostClass::Protocol) > early.cost.comm_of(CostClass::Protocol),
            "late {} vs early {}",
            late.cost.comm_of(CostClass::Protocol),
            early.cost.comm_of(CostClass::Protocol)
        );
    }
}
