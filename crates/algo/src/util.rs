//! Shared helpers for extracting structures from protocol runs.

use csp_graph::{NodeId, RootedTree, WeightedGraph};

/// Reassembles a [`RootedTree`] from per-vertex parent pointers (the usual
/// output shape of distributed spanning-tree protocols).
///
/// Vertices with `None` outside the root are left out of the tree (they
/// were never reached).
///
/// # Panics
///
/// Panics if `parents[root]` is not `None`, if a parent pointer refers to
/// a non-edge, or if the pointers contain a cycle.
pub fn tree_from_parents(
    g: &WeightedGraph,
    root: NodeId,
    parents: &[Option<NodeId>],
) -> RootedTree {
    assert_eq!(parents.len(), g.node_count(), "one parent slot per vertex");
    assert!(
        parents[root.index()].is_none(),
        "root must not have a parent"
    );
    let mut tree = RootedTree::new(g.node_count(), root);
    // Attach in topological order: repeatedly attach vertices whose parent
    // is already a member.
    let mut remaining: Vec<NodeId> = g
        .nodes()
        .filter(|&v| v != root && parents[v.index()].is_some())
        .collect();
    while !remaining.is_empty() {
        let before = remaining.len();
        remaining.retain(|&v| {
            let p = parents[v.index()].expect("filtered to Some");
            if tree.contains(p) {
                tree.attach(v, p, g);
                false
            } else {
                true
            }
        });
        assert!(
            remaining.len() < before,
            "parent pointers contain a cycle or dangle off the tree"
        );
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_graph::generators;

    #[test]
    fn rebuilds_a_path_tree() {
        let g = generators::path(4, |_| 2);
        let parents = vec![
            None,
            Some(NodeId::new(0)),
            Some(NodeId::new(1)),
            Some(NodeId::new(2)),
        ];
        let t = tree_from_parents(&g, NodeId::new(0), &parents);
        assert!(t.is_spanning());
        assert_eq!(t.weight().get(), 6);
    }

    #[test]
    fn unreached_vertices_left_out() {
        let g = generators::path(4, |_| 1);
        let parents = vec![None, Some(NodeId::new(0)), None, None];
        let t = tree_from_parents(&g, NodeId::new(0), &parents);
        assert!(t.contains(NodeId::new(1)));
        assert!(!t.contains(NodeId::new(2)));
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycles_detected() {
        let g = generators::cycle(3, |_| 1);
        let parents = vec![None, Some(NodeId::new(2)), Some(NodeId::new(1))];
        let _ = tree_from_parents(&g, NodeId::new(0), &parents);
    }

    #[test]
    #[should_panic(expected = "root must not have a parent")]
    fn parented_root_rejected() {
        let g = generators::path(2, |_| 1);
        let parents = vec![Some(NodeId::new(1)), None];
        let _ = tree_from_parents(&g, NodeId::new(0), &parents);
    }
}
