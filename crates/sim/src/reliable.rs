//! `Reliable<P>`: a retransmission wrapper making any [`Process`]
//! survive message loss.
//!
//! The paper's model assumes reliable FIFO links; the fault-injection
//! adversary ([`LinkDecision::Drop`](crate::LinkDecision::Drop)) breaks
//! that assumption. `Reliable<P>` restores it the classical way —
//! per-channel sequence numbers, cumulative acknowledgements, and
//! timeout-driven retransmission with bounded exponential backoff — so
//! the cost of reliability is itself measurable in the paper's
//! vocabulary:
//!
//! * original data sends are metered under the inner protocol's own
//!   [`CostClass`], exactly as if `P` ran bare;
//! * every ack and every retransmission is metered under
//!   [`CostClass::Auxiliary`], so the weighted overhead of surviving a
//!   drop schedule is `comm_of(Auxiliary)` — a Σ w(e) quantity directly
//!   comparable to the protocol's own communication.
//!
//! Retransmission stops after `max_retries` consecutive timeouts on a
//! channel (the peer has likely crashed); the channel is marked failed
//! and its buffer discarded, so runs against crash adversaries still
//! quiesce. Against a pure drop adversary whose per-channel loss streaks
//! are bounded — e.g. [`DropOracle`](crate::DropOracle) with budget at
//! most `max_retries` — delivery of every sent message is guaranteed,
//! not merely probable.
//!
//! Under churn a give-up is not the end of the story: when an enclosing
//! detector reports the peer restored ([`FaultAware::on_peer_restored`]),
//! the channel is reset to sequence zero — matching the rejoined
//! incarnation's fresh state — and traffic flows again.

use crate::cost::CostClass;
use crate::detect::FaultAware;
use crate::process::{Context, Process, TimerId};
use csp_graph::NodeId;
use std::collections::VecDeque;

/// Wire alphabet of [`Reliable<P>`]: sequenced data plus cumulative
/// acks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RelMsg<M> {
    /// The `seq`-th payload of this directed channel.
    Data {
        /// Channel-local sequence number, assigned in send order.
        seq: u64,
        /// The inner protocol's message.
        msg: M,
    },
    /// Cumulative acknowledgement: every `Data` with `seq < next` on the
    /// reverse channel has been received.
    Ack {
        /// One past the highest contiguously received sequence number.
        next: u64,
    },
}

/// Per-neighbor channel state: send window, receive cursor, and the
/// retransmission timer.
#[derive(Clone, Debug)]
struct Chan<M> {
    peer: NodeId,
    /// Next sequence number to assign on the send side.
    next_seq: u64,
    /// Sent but unacknowledged `(seq, msg, class)`, in seq order.
    send_buf: VecDeque<(u64, M, CostClass)>,
    /// Next sequence number the receive side will deliver.
    recv_next: u64,
    /// Consecutive timeouts since the last acknowledged progress.
    retries: u32,
    /// Outstanding retransmission timer, if any.
    timer: Option<TimerId>,
    /// Current timeout, doubled per retry up to `8 · rto_base`.
    rto: u64,
    /// Initial timeout: one round trip on this edge plus a tick,
    /// `2·w + 1`.
    rto_base: u64,
    /// Set when `max_retries` consecutive timeouts expired — the channel
    /// gave up and discards further traffic.
    failed: bool,
}

/// Retransmission wrapper: runs `P` unchanged over lossy links. See the
/// [module docs](self) for the protocol and its cost accounting.
///
/// The hosted protocol must be [`FaultAware`]: when a channel exhausts
/// its retries, the wrapper delivers
/// [`FaultAware::on_channel_failed`] so crash-tolerant protocols can
/// re-route (protocols that don't care opt in with an empty impl).
#[derive(Clone, Debug)]
pub struct Reliable<P: FaultAware> {
    inner: P,
    max_retries: u32,
    /// Retransmitted `Data` messages so far — the count behind the
    /// `Auxiliary` overhead meter, surfaced for fault reports.
    retransmissions: u64,
    /// Lazily created channels, scanned linearly by peer (vertex degrees
    /// in the model are small; determinism matters more than hashing).
    chans: Vec<Chan<P::Msg>>,
}

impl<P: FaultAware> Reliable<P> {
    /// Wraps `inner`, giving up on a channel after `max_retries`
    /// consecutive unacknowledged timeouts.
    pub fn new(inner: P, max_retries: u32) -> Self {
        Reliable {
            inner,
            max_retries,
            retransmissions: 0,
            chans: Vec::new(),
        }
    }

    /// The wrapped protocol instance.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Unwraps into the inner protocol instance.
    pub fn into_inner(self) -> P {
        self.inner
    }

    /// Whether the channel toward `peer` exhausted its retries and gave
    /// up.
    pub fn channel_failed(&self, peer: NodeId) -> bool {
        self.chans.iter().any(|c| c.peer == peer && c.failed)
    }

    /// Number of channels at this vertex that gave up.
    pub fn failed_channel_count(&self) -> usize {
        self.chans.iter().filter(|c| c.failed).count()
    }

    /// Number of `Data` retransmissions this vertex performed — each
    /// one was metered under [`CostClass::Auxiliary`].
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// The channel toward `peer`, created on first use with its
    /// edge-derived timeout.
    fn chan_mut<'c>(
        chans: &'c mut Vec<Chan<P::Msg>>,
        ctx: &Context<'_, RelMsg<P::Msg>>,
        peer: NodeId,
    ) -> &'c mut Chan<P::Msg> {
        if let Some(i) = chans.iter().position(|c| c.peer == peer) {
            return &mut chans[i];
        }
        let eid = ctx
            .graph()
            .edge_between(ctx.self_id(), peer)
            .expect("reliable channels only exist along edges");
        let rto_base = 2 * ctx.graph().weight(eid).get() + 1;
        chans.push(Chan {
            peer,
            next_seq: 0,
            send_buf: VecDeque::new(),
            recv_next: 0,
            retries: 0,
            timer: None,
            rto: rto_base,
            rto_base,
            failed: false,
        });
        chans.last_mut().expect("just pushed")
    }

    /// Relays the inner handler's queued sends as sequenced, buffered
    /// `Data` messages, arming each touched channel's timer.
    fn relay(
        &mut self,
        out: Vec<(NodeId, P::Msg, CostClass)>,
        ctx: &mut Context<'_, RelMsg<P::Msg>>,
    ) {
        for (to, msg, class) in out {
            let c = Self::chan_mut(&mut self.chans, ctx, to);
            if c.failed {
                continue;
            }
            let seq = c.next_seq;
            c.next_seq += 1;
            c.send_buf.push_back((seq, msg.clone(), class));
            let rto = c.rto;
            let needs_timer = c.timer.is_none();
            ctx.send_class(to, RelMsg::Data { seq, msg }, class);
            if needs_timer {
                let t = ctx.set_timer(rto);
                Self::chan_mut(&mut self.chans, ctx, to).timer = Some(t);
            }
        }
    }

    /// Runs an inner handler on a derived context and relays its output.
    fn host<F>(&mut self, ctx: &mut Context<'_, RelMsg<P::Msg>>, f: F)
    where
        F: FnOnce(&mut P, &mut Context<'_, P::Msg>),
    {
        let mut inner_ctx = ctx.derive::<P::Msg>();
        f(&mut self.inner, &mut inner_ctx);
        let out = inner_ctx.take_outbox();
        self.relay(out, ctx);
    }
}

impl<P: FaultAware> Process for Reliable<P> {
    type Msg = RelMsg<P::Msg>;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        self.host(ctx, |p, c| p.on_start(c));
    }

    fn on_message(&mut self, from: NodeId, msg: Self::Msg, ctx: &mut Context<'_, Self::Msg>) {
        match msg {
            RelMsg::Data { seq, msg } => {
                let c = Self::chan_mut(&mut self.chans, ctx, from);
                let deliver = seq == c.recv_next;
                if deliver {
                    c.recv_next += 1;
                }
                // Ack unconditionally: duplicates mean the previous ack
                // was lost, and out-of-window data tells the sender
                // where to resume. The ack is overhead, not protocol.
                let next = if deliver { seq + 1 } else { c.recv_next };
                ctx.send_class(from, RelMsg::Ack { next }, CostClass::Auxiliary);
                if deliver {
                    self.host(ctx, |p, c| p.on_message(from, msg, c));
                }
            }
            RelMsg::Ack { next } => {
                let c = Self::chan_mut(&mut self.chans, ctx, from);
                let mut progressed = false;
                while c.send_buf.front().is_some_and(|(s, _, _)| *s < next) {
                    c.send_buf.pop_front();
                    progressed = true;
                }
                if progressed {
                    c.retries = 0;
                    c.rto = c.rto_base;
                    let rto = c.rto;
                    let empty = c.send_buf.is_empty();
                    if let Some(t) = c.timer.take() {
                        ctx.cancel_timer(t);
                    }
                    if !empty {
                        let t = ctx.set_timer(rto);
                        Self::chan_mut(&mut self.chans, ctx, from).timer = Some(t);
                    }
                }
            }
        }
    }

    fn on_timer(&mut self, id: TimerId, ctx: &mut Context<'_, Self::Msg>) {
        let Some(i) = self.chans.iter().position(|c| c.timer == Some(id)) else {
            return; // stale fire: the channel re-armed or finished
        };
        self.chans[i].timer = None;
        if self.chans[i].send_buf.is_empty() {
            return;
        }
        self.chans[i].retries += 1;
        if self.chans[i].retries > self.max_retries {
            // The peer is unreachable (crashed, or the adversary owns
            // the channel outright): give up so the run quiesces, and
            // leave the failure observable — both as queryable state and
            // as an upcall the hosted protocol can re-route on.
            self.chans[i].send_buf.clear();
            self.chans[i].failed = true;
            let peer = self.chans[i].peer;
            self.host(ctx, |p, c| p.on_channel_failed(peer, c));
            return;
        }
        // Retransmit the whole window in order — metered as Auxiliary,
        // the measurable price of reliability — and back off.
        let peer = self.chans[i].peer;
        let resend: Vec<(u64, P::Msg)> = self.chans[i]
            .send_buf
            .iter()
            .map(|(s, m, _)| (*s, m.clone()))
            .collect();
        self.retransmissions += resend.len() as u64;
        for (seq, msg) in resend {
            ctx.send_class(peer, RelMsg::Data { seq, msg }, CostClass::Auxiliary);
        }
        let c = &mut self.chans[i];
        c.rto = (c.rto * 2).min(c.rto_base * 8);
        let rto = c.rto;
        let t = ctx.set_timer(rto);
        self.chans[i].timer = Some(t);
    }
}

/// Failure notifications pass through to the hosted protocol: a
/// suspicion raised by an enclosing detector (`Detect<Reliable<P>>`)
/// reaches `P` with its sends still sequenced through this wrapper.
///
/// A *restoration* additionally resets the channel toward the rejoined
/// peer before the upcall is forwarded: the restarted incarnation opens
/// its channels from sequence zero and has forgotten everything we
/// sent, so any surviving send window, receive cursor, or failed
/// give-up mark is about a peer that no longer exists. Without the
/// reset, the first post-rejoin send would carry a stale sequence
/// number the fresh receiver never delivers.
impl<P: FaultAware> FaultAware for Reliable<P> {
    fn on_channel_failed(&mut self, peer: NodeId, ctx: &mut Context<'_, Self::Msg>) {
        self.host(ctx, |p, c| p.on_channel_failed(peer, c));
    }

    fn on_peer_suspected(&mut self, peer: NodeId, ctx: &mut Context<'_, Self::Msg>) {
        self.host(ctx, |p, c| p.on_peer_suspected(peer, c));
    }

    fn on_peer_restored(&mut self, peer: NodeId, ctx: &mut Context<'_, Self::Msg>) {
        if let Some(c) = self.chans.iter_mut().find(|c| c.peer == peer) {
            c.next_seq = 0;
            c.send_buf.clear();
            c.recv_next = 0;
            c.retries = 0;
            c.rto = c.rto_base;
            c.failed = false;
            if let Some(t) = c.timer.take() {
                ctx.cancel_timer(t);
            }
        }
        self.host(ctx, |p, c| p.on_peer_restored(peer, c));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::{DelayModel, DropOracle, LinkDecision, LinkOracle, ModelOracle, MsgInfo};
    use crate::runtime::{CoreKind, Simulator};
    use crate::time::SimTime;
    use csp_graph::generators;

    /// Minimal flooding protocol for wrapper tests.
    #[derive(Clone, Debug)]
    struct Flood {
        initiator: bool,
        reached: bool,
    }

    impl Process for Flood {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
            if self.initiator {
                self.reached = true;
                ctx.send_all(());
            }
        }
        fn on_message(&mut self, _from: NodeId, _msg: (), ctx: &mut Context<'_, ()>) {
            if !self.reached {
                self.reached = true;
                ctx.send_all(());
            }
        }
    }

    impl FaultAware for Flood {}

    fn make(v: NodeId, _: &csp_graph::WeightedGraph) -> Reliable<Flood> {
        Reliable::new(
            Flood {
                initiator: v == NodeId::new(0),
                reached: false,
            },
            8,
        )
    }

    #[test]
    fn lossless_wrapped_flood_reaches_everyone() {
        let g = generators::connected_gnp(10, 0.35, generators::WeightDist::Uniform(1, 9), 3);
        let run = Simulator::new(&g).run(make).unwrap();
        assert!(run.states.iter().all(|s| s.inner().reached));
        // Overhead exists (one ack per delivered data message at least).
        assert!(run.cost.comm_of(CostClass::Auxiliary).raw() > 0);
    }

    #[test]
    fn wrapped_flood_survives_bounded_drops() {
        let g = generators::connected_gnp(10, 0.35, generators::WeightDist::Uniform(1, 9), 3);
        for seed in 0..5 {
            let mut oracle = DropOracle::new(DelayModel::Uniform, seed, 0.4, 4);
            let run = Simulator::new(&g)
                .run_with_oracle(&mut oracle, make)
                .unwrap();
            assert!(
                run.states.iter().all(|s| s.inner().reached),
                "a vertex stayed unreached at seed {seed}"
            );
        }
    }

    #[test]
    fn bare_flood_stalls_where_wrapped_flood_recovers() {
        // Drop the initiator's very first transmission on a path graph:
        // bare flood dies instantly, wrapped flood retransmits.
        struct DropFirst;
        impl LinkOracle for DropFirst {
            fn decide(&mut self, msg: &MsgInfo) -> LinkDecision {
                if msg.index == 0 {
                    LinkDecision::Drop
                } else {
                    LinkDecision::Deliver {
                        delay: msg.weight.get(),
                    }
                }
            }
        }
        let g = generators::path(4, |_| 3);
        let bare = Simulator::new(&g)
            .run_with_oracle(&mut DropFirst, |v, _| Flood {
                initiator: v == NodeId::new(0),
                reached: false,
            })
            .unwrap();
        assert!(!bare.states[1].reached, "the drop should kill bare flood");

        let wrapped = Simulator::new(&g)
            .run_with_oracle(&mut DropFirst, make)
            .unwrap();
        assert!(wrapped.states.iter().all(|s| s.inner().reached));
    }

    #[test]
    fn channel_gives_up_against_a_crashed_peer() {
        /// Delivers everything instantly but crashes vertex 1 at t=0.
        struct CrashOne;
        impl LinkOracle for CrashOne {
            fn decide(&mut self, _msg: &MsgInfo) -> LinkDecision {
                LinkDecision::Deliver { delay: 1 }
            }
            fn crash_at(&mut self, node: NodeId) -> Option<SimTime> {
                (node == NodeId::new(1)).then_some(SimTime::ZERO)
            }
        }
        let g = generators::path(3, |_| 2);
        let run = Simulator::new(&g)
            .run_with_oracle(&mut CrashOne, |v, _| {
                Reliable::new(
                    Flood {
                        initiator: v == NodeId::new(0),
                        reached: false,
                    },
                    3,
                )
            })
            .unwrap();
        // The run quiesces (this line being reached proves it), the
        // initiator's channel to the dead vertex is marked failed, and
        // the partition behind the crash stays unreached.
        assert!(run.states[0].channel_failed(NodeId::new(1)));
        assert!(!run.states[2].inner().reached);
    }

    #[test]
    fn retransmissions_are_metered_as_auxiliary() {
        struct DropFirst;
        impl LinkOracle for DropFirst {
            fn decide(&mut self, msg: &MsgInfo) -> LinkDecision {
                if msg.index == 0 {
                    LinkDecision::Drop
                } else {
                    LinkDecision::Deliver {
                        delay: msg.weight.get(),
                    }
                }
            }
        }
        let g = generators::path(2, |_| 5);
        let lossless = Simulator::new(&g)
            .run_with_oracle(&mut ModelOracle::new(DelayModel::WorstCase, 0), make)
            .unwrap();
        let lossy = Simulator::new(&g)
            .run_with_oracle(&mut DropFirst, make)
            .unwrap();
        // The drop forces at least one retransmission, so the lossy
        // run's auxiliary (overhead) cost strictly exceeds lossless.
        assert!(
            lossy.cost.comm_of(CostClass::Auxiliary) > lossless.cost.comm_of(CostClass::Auxiliary)
        );
        // The protocol-class cost is identical: originals only.
        assert_eq!(
            lossy.cost.comm_of(CostClass::Protocol),
            lossless.cost.comm_of(CostClass::Protocol)
        );
    }

    #[test]
    fn give_up_delivers_the_channel_failed_upcall() {
        /// Flood that records which channels it was told failed.
        #[derive(Clone, Debug)]
        struct Probe {
            initiator: bool,
            reached: bool,
            failed: Vec<NodeId>,
        }
        impl Process for Probe {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                if self.initiator {
                    self.reached = true;
                    ctx.send_all(());
                }
            }
            fn on_message(&mut self, _f: NodeId, _m: (), ctx: &mut Context<'_, ()>) {
                if !self.reached {
                    self.reached = true;
                    ctx.send_all(());
                }
            }
        }
        impl FaultAware for Probe {
            fn on_channel_failed(&mut self, peer: NodeId, _ctx: &mut Context<'_, ()>) {
                self.failed.push(peer);
            }
        }
        struct CrashOne;
        impl LinkOracle for CrashOne {
            fn decide(&mut self, _msg: &MsgInfo) -> LinkDecision {
                LinkDecision::Deliver { delay: 1 }
            }
            fn crash_at(&mut self, node: NodeId) -> Option<SimTime> {
                (node == NodeId::new(1)).then_some(SimTime::ZERO)
            }
        }
        let g = generators::path(3, |_| 2);
        let run = Simulator::new(&g)
            .run_with_oracle(&mut CrashOne, |v, _| {
                Reliable::new(
                    Probe {
                        initiator: v == NodeId::new(0),
                        reached: false,
                        failed: Vec::new(),
                    },
                    3,
                )
            })
            .unwrap();
        // The initiator's channel to the dead vertex gave up — and told
        // the hosted protocol so, with retransmissions metered.
        assert_eq!(run.states[0].inner().failed, vec![NodeId::new(1)]);
        assert_eq!(run.states[0].failed_channel_count(), 1);
        assert!(run.states[0].retransmissions() > 0);
        assert_eq!(run.cost.crashed_nodes, 1);
    }

    #[test]
    fn restored_peer_resets_the_channel_to_sequence_zero() {
        use crate::delay::ChurnOracle;
        use crate::detect::{Detect, DetectConfig};

        /// Greets on start; re-greets any peer reported restored.
        #[derive(Clone, Debug)]
        struct Greeter {
            initiator: bool,
            reached: bool,
            regreeted: bool,
        }
        impl Process for Greeter {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                if self.initiator {
                    self.reached = true;
                    ctx.send_all(());
                }
            }
            fn on_message(&mut self, _f: NodeId, _m: (), _ctx: &mut Context<'_, ()>) {
                self.reached = true;
            }
        }
        impl FaultAware for Greeter {
            fn on_peer_restored(&mut self, peer: NodeId, ctx: &mut Context<'_, ()>) {
                self.regreeted = true;
                ctx.send_class(peer, (), CostClass::Protocol);
            }
        }

        struct Clean;
        impl LinkOracle for Clean {
            fn decide(&mut self, msg: &MsgInfo) -> LinkDecision {
                LinkDecision::Deliver {
                    delay: msg.weight.get(),
                }
            }
        }

        // Vertex 1 takes the initiator's greeting (seq 0), crashes, and
        // rejoins as a fresh incarnation expecting sequence zero again.
        // Only the channel reset lets the post-rejoin re-greeting —
        // assigned seq 0 anew — reach it.
        let g = generators::path(2, |_| 2);
        let mut oracle = ChurnOracle::new(
            Clean,
            vec![(NodeId::new(1), vec![SimTime::new(9), SimTime::new(25)])],
            vec![],
        );
        let run = Simulator::new(&g)
            .run_with_oracle(&mut oracle, |v, _| {
                Detect::new(
                    Reliable::new(
                        Greeter {
                            initiator: v == NodeId::new(0),
                            reached: false,
                            regreeted: false,
                        },
                        3,
                    ),
                    DetectConfig::new(4, 30, 0),
                )
            })
            .unwrap();
        let initiator = &run.states[0];
        assert!(!initiator.suspects(NodeId::new(1)), "suspicion not revoked");
        assert!(initiator.inner().inner().regreeted, "restore upcall lost");
        assert!(
            !initiator.inner().channel_failed(NodeId::new(1)),
            "channel still marked failed after restore"
        );
        // The rejoined incarnation received the re-greeting: delivery
        // only works if the sender restarted from sequence zero.
        assert!(
            run.states[1].inner().inner().reached,
            "fresh incarnation never heard the re-greeting"
        );
        assert_eq!(run.cost.recoveries, 1);
    }

    #[test]
    fn wrapped_runs_are_identical_across_cores() {
        let g = generators::connected_gnp(9, 0.4, generators::WeightDist::Uniform(1, 7), 5);
        let run_on = |kind: CoreKind| {
            let mut oracle = DropOracle::new(DelayModel::Uniform, 2, 0.3, 4);
            let mut sim = Simulator::new(&g);
            sim.core(kind).record_trace(1 << 14);
            sim.run_with_oracle(&mut oracle, make).unwrap()
        };
        let b = run_on(CoreKind::Bucket);
        let h = run_on(CoreKind::Heap);
        assert_eq!(b.cost, h.cost);
        assert_eq!(b.trace.events(), h.trace.events());
        assert_eq!(format!("{:?}", b.states), format!("{:?}", h.states));
    }
}
